//! Property tests for the wire protocol.
//!
//! Three families: round trips (every frame re-encodes to the identical
//! byte string after a decode — the bit-exactness the end-to-end
//! determinism check rests on), cross-version compatibility (v1 clients
//! against v2 servers and vice versa stay mutually decodable, with v2
//! extension fields either preserved byte-identically or dropped to
//! zero), and malformed-input fuzzing (arbitrary and corrupted byte
//! strings produce typed errors, never panics, and never allocations
//! beyond the length cap).

use proptest::collection::vec;
use proptest::prelude::*;
use sknn_serve::protocol::{
    parse_header, CancelFrame, ErrorCode, ErrorFrame, ExecRequestFrame, Frame, ProtocolError,
    QueryFrame, RadiusFrame, RadiusRequestFrame, RangeFrame, RangeRequestFrame, ResponseFrame,
    SeedsFrame, SeedsRequestFrame, ServerTiming, StatsFrame, TraceDumpFrame, WireNeighbor,
    WireObject, HEADER_LEN, MAX_PAYLOAD, MIN_VERSION, VERSION,
};

fn short_string() -> impl Strategy<Value = String> {
    vec(any::<char>(), 0..16).prop_map(|cs| cs.into_iter().collect())
}

fn wire_f64() -> impl Strategy<Value = f64> {
    // All bit patterns, including NaNs, infinities and -0.0: the wire
    // format must preserve every one exactly.
    any::<u64>().prop_map(f64::from_bits)
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    (0u8..6).prop_map(|i| {
        [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExpired,
            ErrorCode::FaultBudgetExceeded,
            ErrorCode::ShuttingDown,
            ErrorCode::BadRequest,
            ErrorCode::Cancelled,
        ][i as usize]
    })
}

fn neighbor() -> impl Strategy<Value = WireNeighbor> {
    (any::<u32>(), wire_f64(), wire_f64()).prop_map(|(id, lb, ub)| WireNeighbor { id, lb, ub })
}

fn server_timing() -> impl Strategy<Value = ServerTiming> {
    (
        (any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        any::<u32>(),
        any::<u16>(),
    )
        .prop_map(|((queue_us, linger_us, exec_us), stages, stall_us, batch)| {
            let (knn2d_us, radius_us, range_us, rank_us) = stages;
            ServerTiming {
                queue_us,
                linger_us,
                exec_us,
                knn2d_us,
                radius_us,
                range_us,
                rank_us,
                stall_us,
                batch,
            }
        })
}

fn query_frame() -> impl Strategy<Value = QueryFrame> {
    (
        any::<u64>(),
        any::<u32>(),
        wire_f64(),
        wire_f64(),
        wire_f64(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(|(req_id, tri, x, y, z, k, deadline_ms, trace_id)| QueryFrame {
            req_id,
            tri,
            x,
            y,
            z,
            k,
            deadline_ms,
            trace_id,
        })
}

fn response_frame() -> impl Strategy<Value = ResponseFrame> {
    (
        any::<u64>(),
        any::<u64>(),
        vec(neighbor(), 0..24),
        any::<bool>(),
        short_string(),
        server_timing(),
        wire_f64(),
    )
        .prop_map(
            |(req_id, trace_id, neighbors, degraded_some, degraded_text, timing, radius)| {
                ResponseFrame {
                    req_id,
                    trace_id,
                    neighbors,
                    degraded: degraded_some.then_some(degraded_text),
                    timing,
                    radius,
                }
            },
        )
}

fn wire_object() -> impl Strategy<Value = WireObject> {
    (any::<u32>(), any::<u32>(), wire_f64(), wire_f64(), wire_f64())
        .prop_map(|(id, tri, x, y, z)| WireObject { id, tri, x, y, z })
}

/// Encode → decode → re-encode must reproduce the bytes exactly, and the
/// decode must consume the whole buffer. (Byte-level comparison rather
/// than `==` so NaN payloads are covered too.)
fn assert_round_trip(frame: &Frame) -> Result<(), proptest::test_runner::CaseError> {
    let bytes = frame.encode();
    let (decoded, used) = Frame::decode(&bytes).expect("valid frame must decode");
    prop_assert_eq!(used, bytes.len());
    prop_assert_eq!(decoded.encode(), bytes);
    Ok(())
}

proptest! {
    #[test]
    fn query_frames_round_trip(q in query_frame()) {
        assert_round_trip(&Frame::Query(q))?;
    }

    #[test]
    fn response_frames_round_trip(r in response_frame()) {
        assert_round_trip(&Frame::Response(r))?;
    }

    #[test]
    fn error_frames_round_trip(
        req_id in any::<u64>(),
        code in error_code(),
        detail in short_string(),
    ) {
        assert_round_trip(&Frame::Error(ErrorFrame { req_id, code, detail }))?;
    }

    #[test]
    fn stats_frames_round_trip(
        entries in vec((short_string(), any::<u64>()), 0..12),
    ) {
        assert_round_trip(&Frame::Stats(StatsFrame { entries }))?;
    }

    #[test]
    fn stats_request_round_trips(_x in any::<bool>()) {
        assert_round_trip(&Frame::StatsRequest)?;
    }

    #[test]
    fn trace_dump_frames_round_trip(jsonl in short_string()) {
        assert_round_trip(&Frame::TraceDump(TraceDumpFrame { jsonl }))?;
    }

    /// Old-client/new-server direction: a frame encoded at v1 (what an
    /// old client sends) must decode on a v2 peer, with every v2
    /// extension field read back as zero.
    #[test]
    fn v1_query_decodes_on_v2_peer_with_zero_trace(q in query_frame()) {
        let bytes = Frame::Query(q.clone()).encode_v(MIN_VERSION);
        let (decoded, version, used) =
            Frame::decode_versioned(&bytes).expect("v1 frame must decode");
        prop_assert_eq!(version, MIN_VERSION);
        prop_assert_eq!(used, bytes.len());
        match decoded {
            Frame::Query(d) => {
                prop_assert_eq!(d.req_id, q.req_id);
                prop_assert_eq!(d.tri, q.tri);
                prop_assert_eq!(d.x.to_bits(), q.x.to_bits());
                prop_assert_eq!(d.y.to_bits(), q.y.to_bits());
                prop_assert_eq!(d.z.to_bits(), q.z.to_bits());
                prop_assert_eq!(d.k, q.k);
                prop_assert_eq!(d.deadline_ms, q.deadline_ms);
                // The v2 extension is absent from v1 bytes: zero-filled.
                prop_assert_eq!(d.trace_id, 0);
            }
            other => prop_assert!(false, "decoded to {:?}", other),
        }
    }

    /// New-client/old-server direction: a v2 server replying to a v1
    /// client encodes the response at v1. Those bytes must round-trip
    /// with the v1-visible fields intact and the v2 stage fields dropped
    /// to zero — never a decode error.
    #[test]
    fn v2_response_downgraded_to_v1_stays_decodable(r in response_frame()) {
        let bytes = Frame::Response(r.clone()).encode_v(MIN_VERSION);
        let (decoded, version, used) =
            Frame::decode_versioned(&bytes).expect("v1 response must decode");
        prop_assert_eq!(version, MIN_VERSION);
        prop_assert_eq!(used, bytes.len());
        match decoded {
            Frame::Response(d) => {
                prop_assert_eq!(d.req_id, r.req_id);
                prop_assert_eq!(d.neighbors.len(), r.neighbors.len());
                for (a, b) in d.neighbors.iter().zip(r.neighbors.iter()) {
                    prop_assert_eq!(a.id, b.id);
                    prop_assert_eq!(a.lb.to_bits(), b.lb.to_bits());
                    prop_assert_eq!(a.ub.to_bits(), b.ub.to_bits());
                }
                prop_assert_eq!(&d.degraded, &r.degraded);
                // v1 carries only queue/exec/batch; everything v2 is dropped.
                let expected = ServerTiming {
                    queue_us: r.timing.queue_us,
                    exec_us: r.timing.exec_us,
                    batch: r.timing.batch,
                    ..Default::default()
                };
                prop_assert_eq!(d.timing, expected);
                prop_assert_eq!(d.trace_id, 0);
            }
            other => prop_assert!(false, "decoded to {:?}", other),
        }
    }

    /// v2 → v2: the trace id and every stage-latency field survive the
    /// wire byte-identically (the re-encode equality in the round-trip
    /// family covers the raw bytes; this pins the field semantics).
    #[test]
    fn v2_trace_and_stage_fields_survive_byte_identically(
        q in query_frame(),
        r in response_frame(),
    ) {
        let qb = Frame::Query(q.clone()).encode_v(VERSION);
        let (qd, qv, _) = Frame::decode_versioned(&qb).expect("v2 query must decode");
        prop_assert_eq!(qv, VERSION);
        match qd {
            Frame::Query(d) => prop_assert_eq!(d.trace_id, q.trace_id),
            other => prop_assert!(false, "decoded to {:?}", other),
        }
        let rb = Frame::Response(r.clone()).encode_v(VERSION);
        let (rd, rv, _) = Frame::decode_versioned(&rb).expect("v2 response must decode");
        prop_assert_eq!(rv, VERSION);
        match rd {
            Frame::Response(d) => {
                prop_assert_eq!(d.trace_id, r.trace_id);
                prop_assert_eq!(d.timing, r.timing);
                prop_assert_eq!(Frame::Response(d).encode_v(VERSION), rb);
            }
            other => prop_assert!(false, "decoded to {:?}", other),
        }
    }

    /// Every strict prefix of a valid v2 frame is a typed truncation
    /// error — the new trace/stage bytes introduce no position where a
    /// cut is silently accepted.
    #[test]
    fn truncated_frames_are_typed_errors(
        r in response_frame(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = Frame::Response(r).encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        match Frame::decode(&bytes[..cut]) {
            Err(ProtocolError::Truncated { .. }) => {}
            other => prop_assert!(false, "prefix of len {} gave {:?}", cut, other),
        }
    }

    /// Same property for v1-encoded frames: a v2 peer truncating a v1
    /// stream still reports typed truncation.
    #[test]
    fn truncated_v1_frames_are_typed_errors(
        q in query_frame(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = Frame::Query(q).encode_v(MIN_VERSION);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        match Frame::decode(&bytes[..cut]) {
            Err(ProtocolError::Truncated { .. }) => {}
            other => prop_assert!(false, "prefix of len {} gave {:?}", cut, other),
        }
    }

    /// Arbitrary bytes never panic the decoder; whatever comes back is a
    /// frame or a typed error.
    #[test]
    fn random_bytes_never_panic(bytes in vec(any::<u8>(), 0..64)) {
        let _ = Frame::decode(&bytes);
    }

    /// v3 cancel frames round-trip byte-identically, are raised from a
    /// requested v2 encoding to v3 (their minimum version), and a forged
    /// v2 header around the cancel tag is a typed rejection — an old
    /// peer can never misparse a cancel as something else.
    #[test]
    fn cancel_frames_round_trip_and_are_invalid_at_v2(
        req_id in any::<u64>(),
        trace_id in any::<u64>(),
    ) {
        let frame = Frame::Cancel(CancelFrame { req_id, trace_id });
        assert_round_trip(&frame)?;
        let bytes = frame.encode_v(2);
        let (decoded, version, _) =
            Frame::decode_versioned(&bytes).expect("raised frame decodes");
        prop_assert_eq!(version, 3);
        prop_assert_eq!(decoded.encode_v(3), bytes);
        let mut forged = bytes.clone();
        forged[4..6].copy_from_slice(&2u16.to_le_bytes());
        match Frame::decode(&forged) {
            Err(ProtocolError::UnknownFrameType(_)) => {}
            other => prop_assert!(false, "forged v2 cancel gave {:?}", other),
        }
    }

    /// Every shard-operation frame (seeds / range / radius / exec, both
    /// directions) round-trips byte-identically at v3 and is rejected
    /// with a typed unknown-frame error under a forged v2 header.
    #[test]
    fn shard_op_frames_round_trip_and_are_invalid_at_v2(
        req_id in any::<u64>(),
        trace_id in any::<u64>(),
        xy in (wire_f64(), wire_f64()),
        k in any::<u32>(),
        radius in wire_f64(),
        objects in vec(wire_object(), 0..8),
        dists in vec(wire_f64(), 0..8),
    ) {
        let (x, y) = xy;
        let seeds: Vec<(f64, WireObject)> =
            dists.iter().copied().zip(objects.iter().cloned()).collect();
        let frames = [
            Frame::SeedsRequest(SeedsRequestFrame { req_id, trace_id, x, y, k, deadline_ms: k }),
            Frame::Seeds(SeedsFrame { req_id, trace_id, seeds: seeds.clone() }),
            Frame::RangeRequest(RangeRequestFrame { req_id, trace_id, x, y, radius, deadline_ms: k }),
            Frame::Range(RangeFrame { req_id, trace_id, objects: objects.clone() }),
            Frame::RadiusRequest(RadiusRequestFrame {
                req_id, trace_id, tri: k, x, y, z: radius, deadline_ms: k,
                seeds: objects.clone(),
            }),
            Frame::Radius(RadiusFrame { req_id, trace_id, radius }),
            Frame::ExecRequest(ExecRequestFrame {
                req_id, trace_id, tri: k, x, y, z: radius, k, deadline_ms: k,
                seeds: objects.clone(), cands: objects.clone(),
            }),
        ];
        for frame in &frames {
            assert_round_trip(frame)?;
            let bytes = frame.encode();
            let mut forged = bytes.clone();
            forged[4..6].copy_from_slice(&2u16.to_le_bytes());
            match Frame::decode(&forged) {
                Err(ProtocolError::UnknownFrameType(_)) => {}
                other => prop_assert!(false, "forged v2 shard op gave {:?}", other),
            }
        }
    }

    /// A v3 response downgraded to v2 keeps every v2 field byte-exact
    /// and drops only the radius (read back as 0.0) — v2 routers and v3
    /// shards stay mutually intelligible.
    #[test]
    fn v3_response_downgraded_to_v2_drops_only_radius(r in response_frame()) {
        let bytes = Frame::Response(r.clone()).encode_v(2);
        let (decoded, version, used) =
            Frame::decode_versioned(&bytes).expect("v2 response must decode");
        prop_assert_eq!(version, 2);
        prop_assert_eq!(used, bytes.len());
        match decoded {
            Frame::Response(d) => {
                prop_assert_eq!(d.req_id, r.req_id);
                prop_assert_eq!(d.trace_id, r.trace_id);
                prop_assert_eq!(d.timing, r.timing);
                prop_assert_eq!(&d.degraded, &r.degraded);
                prop_assert_eq!(d.neighbors.len(), r.neighbors.len());
                for (a, b) in d.neighbors.iter().zip(r.neighbors.iter()) {
                    prop_assert_eq!(a.id, b.id);
                    prop_assert_eq!(a.lb.to_bits(), b.lb.to_bits());
                    prop_assert_eq!(a.ub.to_bits(), b.ub.to_bits());
                }
                prop_assert_eq!(d.radius.to_bits(), 0.0f64.to_bits());
            }
            other => prop_assert!(false, "decoded to {:?}", other),
        }
    }

    /// Corrupting one header byte of a valid frame yields a typed error
    /// (or, for the payload-length bytes, possibly a shorter valid frame
    /// — but never a panic or a bogus success of the full length).
    #[test]
    fn corrupted_headers_never_panic(
        pos in 0usize..HEADER_LEN,
        val in any::<u8>(),
    ) {
        let mut bytes = Frame::Query(QueryFrame {
            req_id: 9,
            tri: 0,
            x: 1.0,
            y: 2.0,
            z: 3.0,
            k: 4,
            deadline_ms: 5,
            trace_id: 6,
        })
        .encode();
        let original = bytes[pos];
        bytes[pos] = val;
        let result = Frame::decode(&bytes);
        if original != val && pos != 7 {
            // Any real change outside the reserved byte must be rejected
            // (a changed length either truncates or leaves trailing
            // bytes; both are typed).
            prop_assert!(result.is_err(), "corrupt byte {} accepted: {:?}", pos, result);
        }
    }
}

#[test]
fn oversized_length_rejected_before_allocation() {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(b"SKNN");
    header[4..6].copy_from_slice(&1u16.to_le_bytes());
    header[6] = 1;
    header[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(parse_header(&header), Err(ProtocolError::Oversized { len: u32::MAX }));
    const { assert!(MAX_PAYLOAD < u32::MAX) };
}

#[test]
fn bad_version_and_magic_are_typed() {
    let mut bytes = Frame::StatsRequest.encode();
    bytes[4] = 99;
    assert!(matches!(Frame::decode(&bytes), Err(ProtocolError::BadVersion(_))));
    let mut bytes = Frame::StatsRequest.encode();
    bytes[0] = b'X';
    assert!(matches!(Frame::decode(&bytes), Err(ProtocolError::BadMagic(_))));
    let mut bytes = Frame::StatsRequest.encode();
    bytes[6] = 200;
    assert_eq!(Frame::decode(&bytes), Err(ProtocolError::UnknownFrameType(200)));
}

/// The trace-dump tags are v2-only: a v1 header carrying them is an
/// unknown frame type, so old peers reject rather than misparse.
#[test]
fn trace_dump_tags_are_invalid_at_v1() {
    let dump = Frame::TraceDump(TraceDumpFrame { jsonl: "{}\n".to_string() });
    // encode_v(1) is raised to the frame's minimum version (2).
    let bytes = dump.encode_v(MIN_VERSION);
    let (_, version, _) = Frame::decode_versioned(&bytes).expect("raised frame decodes");
    assert_eq!(version, 2);
    // Forge a v1 header around the same tag: typed rejection.
    let mut forged = bytes.clone();
    forged[4..6].copy_from_slice(&MIN_VERSION.to_le_bytes());
    assert!(matches!(Frame::decode(&forged), Err(ProtocolError::UnknownFrameType(_))));
}
