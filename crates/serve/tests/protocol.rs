//! Property tests for the wire protocol.
//!
//! Two families: round trips (every frame re-encodes to the identical
//! byte string after a decode — the bit-exactness the end-to-end
//! determinism check rests on) and malformed-input fuzzing (arbitrary
//! and corrupted byte strings produce typed errors, never panics, and
//! never allocations beyond the length cap).

use proptest::collection::vec;
use proptest::prelude::*;
use sknn_serve::protocol::{
    parse_header, ErrorCode, ErrorFrame, Frame, ProtocolError, QueryFrame, ResponseFrame,
    ServerTiming, StatsFrame, WireNeighbor, HEADER_LEN, MAX_PAYLOAD,
};

fn short_string() -> impl Strategy<Value = String> {
    vec(any::<char>(), 0..16).prop_map(|cs| cs.into_iter().collect())
}

fn wire_f64() -> impl Strategy<Value = f64> {
    // All bit patterns, including NaNs, infinities and -0.0: the wire
    // format must preserve every one exactly.
    any::<u64>().prop_map(f64::from_bits)
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    (0u8..5).prop_map(|i| {
        [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExpired,
            ErrorCode::FaultBudgetExceeded,
            ErrorCode::ShuttingDown,
            ErrorCode::BadRequest,
        ][i as usize]
    })
}

fn neighbor() -> impl Strategy<Value = WireNeighbor> {
    (any::<u32>(), wire_f64(), wire_f64()).prop_map(|(id, lb, ub)| WireNeighbor { id, lb, ub })
}

/// Encode → decode → re-encode must reproduce the bytes exactly, and the
/// decode must consume the whole buffer. (Byte-level comparison rather
/// than `==` so NaN payloads are covered too.)
fn assert_round_trip(frame: &Frame) -> Result<(), proptest::test_runner::CaseError> {
    let bytes = frame.encode();
    let (decoded, used) = Frame::decode(&bytes).expect("valid frame must decode");
    prop_assert_eq!(used, bytes.len());
    prop_assert_eq!(decoded.encode(), bytes);
    Ok(())
}

proptest! {
    #[test]
    fn query_frames_round_trip(
        req_id in any::<u64>(),
        tri in any::<u32>(),
        x in wire_f64(),
        y in wire_f64(),
        z in wire_f64(),
        k in any::<u32>(),
        deadline_ms in any::<u32>(),
    ) {
        assert_round_trip(&Frame::Query(QueryFrame { req_id, tri, x, y, z, k, deadline_ms }))?;
    }

    #[test]
    fn response_frames_round_trip(
        req_id in any::<u64>(),
        neighbors in vec(neighbor(), 0..24),
        degraded_some in any::<bool>(),
        degraded_text in short_string(),
        queue_us in any::<u32>(),
        exec_us in any::<u32>(),
        batch in any::<u16>(),
    ) {
        assert_round_trip(&Frame::Response(ResponseFrame {
            req_id,
            neighbors,
            degraded: degraded_some.then_some(degraded_text),
            timing: ServerTiming { queue_us, exec_us, batch },
        }))?;
    }

    #[test]
    fn error_frames_round_trip(
        req_id in any::<u64>(),
        code in error_code(),
        detail in short_string(),
    ) {
        assert_round_trip(&Frame::Error(ErrorFrame { req_id, code, detail }))?;
    }

    #[test]
    fn stats_frames_round_trip(
        entries in vec((short_string(), any::<u64>()), 0..12),
    ) {
        assert_round_trip(&Frame::Stats(StatsFrame { entries }))?;
    }

    #[test]
    fn stats_request_round_trips(_x in any::<bool>()) {
        assert_round_trip(&Frame::StatsRequest)?;
    }

    /// Every strict prefix of a valid frame is a typed truncation error.
    #[test]
    fn truncated_frames_are_typed_errors(
        neighbors in vec(neighbor(), 0..8),
        cut_seed in any::<u64>(),
    ) {
        let bytes = Frame::Response(ResponseFrame {
            req_id: 1,
            neighbors,
            degraded: None,
            timing: ServerTiming::default(),
        })
        .encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        match Frame::decode(&bytes[..cut]) {
            Err(ProtocolError::Truncated { .. }) => {}
            other => prop_assert!(false, "prefix of len {} gave {:?}", cut, other),
        }
    }

    /// Arbitrary bytes never panic the decoder; whatever comes back is a
    /// frame or a typed error.
    #[test]
    fn random_bytes_never_panic(bytes in vec(any::<u8>(), 0..64)) {
        let _ = Frame::decode(&bytes);
    }

    /// Corrupting one header byte of a valid frame yields a typed error
    /// (or, for the payload-length bytes, possibly a shorter valid frame
    /// — but never a panic or a bogus success of the full length).
    #[test]
    fn corrupted_headers_never_panic(
        pos in 0usize..HEADER_LEN,
        val in any::<u8>(),
    ) {
        let mut bytes = Frame::Query(QueryFrame {
            req_id: 9,
            tri: 0,
            x: 1.0,
            y: 2.0,
            z: 3.0,
            k: 4,
            deadline_ms: 5,
        })
        .encode();
        let original = bytes[pos];
        bytes[pos] = val;
        let result = Frame::decode(&bytes);
        if original != val && pos != 7 {
            // Any real change outside the reserved byte must be rejected
            // (a changed length either truncates or leaves trailing
            // bytes; both are typed).
            prop_assert!(result.is_err(), "corrupt byte {} accepted: {:?}", pos, result);
        }
    }
}

#[test]
fn oversized_length_rejected_before_allocation() {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(b"SKNN");
    header[4..6].copy_from_slice(&1u16.to_le_bytes());
    header[6] = 1;
    header[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(parse_header(&header), Err(ProtocolError::Oversized { len: u32::MAX }));
    const { assert!(MAX_PAYLOAD < u32::MAX) };
}

#[test]
fn bad_version_and_magic_are_typed() {
    let mut bytes = Frame::StatsRequest.encode();
    bytes[4] = 99;
    assert!(matches!(Frame::decode(&bytes), Err(ProtocolError::BadVersion(_))));
    let mut bytes = Frame::StatsRequest.encode();
    bytes[0] = b'X';
    assert!(matches!(Frame::decode(&bytes), Err(ProtocolError::BadMagic(_))));
    let mut bytes = Frame::StatsRequest.encode();
    bytes[6] = 200;
    assert_eq!(Frame::decode(&bytes), Err(ProtocolError::UnknownFrameType(200)));
}
