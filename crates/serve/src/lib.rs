#![warn(missing_docs)]
//! Networked surface k-NN query service (`sknn-serve`).
//!
//! The MR3 engine (PR 2/3) answers batches of queries on a thread pool
//! with bit-identical results regardless of interleaving — but only for
//! callers that already *have* a batch. A network service receives
//! requests one at a time, on independent connections, at whatever rate
//! clients feel like. This crate closes that gap with four pieces:
//!
//! * [`protocol`] — a length-prefixed binary protocol (versioned header,
//!   query/response/error/stats frames, `f64` as IEEE bit patterns so
//!   round trips are exact). Decoding is total: malformed input yields
//!   typed errors, never panics or unbounded allocations.
//! * [`batch`] (internal) — the adaptive micro-batcher: one dispatcher
//!   thread drains a bounded admission queue, coalescing concurrent
//!   arrivals into single `Engine::try_query_batch_at` calls (up to
//!   `max_batch`, with a short `max_wait` linger under light load).
//! * [`server`] — accept loop, per-connection readers, admission
//!   control (bounded queue; a full queue is an immediate typed
//!   `Overloaded`, never a hang), per-request deadlines enforced at
//!   dequeue and between refinement iterations inside the engine, and
//!   graceful drain: shutdown stops admission, answers everything
//!   already admitted, then returns.
//! * [`client`] / [`loadgen`] — a blocking client and a closed/open-loop
//!   load generator that measures latency percentiles and verifies
//!   responses bit-for-bit against direct engine calls.
//!
//! Request telemetry (protocol v2) rides on top:
//!
//! * [`slowlog`] — an always-on bounded reservoir of slow / degraded /
//!   failed requests, dumped as JSONL via the `TRACE_DUMP` frame and at
//!   drain.
//! * [`metrics_http`] — a std-only HTTP listener serving Prometheus
//!   text (`/metrics`) and drain-aware health (`/healthz`), shared with
//!   the shard router in `sknn-shard`.
//! * [`promtext`] — client-side Prometheus text parsing and quantile
//!   estimation, powering `sknn top` and the CI scrape check.
//!
//! Everything is `std` — `TcpListener`, scoped threads, and
//! `sync_channel` — matching the workspace's no-new-dependencies rule.

pub mod client;
pub mod loadgen;
pub mod metrics_http;
pub mod pool;
pub mod promtext;
pub mod protocol;
pub mod server;
pub mod slowlog;
pub mod stats;

mod batch;
mod lanes;

pub use client::Client;
pub use loadgen::{LoadgenConfig, RunReport};
pub use protocol::{
    ErrorCode, ErrorFrame, Frame, ProtocolError, QueryFrame, RecvError, ResponseFrame,
    ServerTiming, StatsFrame, TraceDumpFrame, WireNeighbor,
};
pub use server::{ServeConfig, Server, ServerHandle};
pub use slowlog::{SlowEntry, SlowOutcome, SlowQueryLog};
pub use stats::ServeStats;
