//! The TCP front end: accept loop, per-connection readers, admission
//! control, and graceful drain.
//!
//! Threading model (all scoped, no detached threads):
//!
//! ```text
//! run()
//!  ├─ dispatcher thread      — crate::batch::dispatch_loop
//!  ├─ accept loop (run itself) — nonblocking accept + shutdown poll
//!  └─ one reader thread per connection
//! ```
//!
//! Admission is the bounded deadline-aware [`crate::lanes`] queue: a
//! reader `try_push`es each request, and a full queue means an immediate
//! typed `Overloaded` reply — load shedding is a fast "no", never a hang
//! or an unbounded buffer. Queued requests can be withdrawn by a `CANCEL`
//! frame (protocol v3) before dispatch.
//!
//! Graceful drain is ordering, not machinery: setting the shutdown flag
//! stops the accept loop and makes every reader exit at its next frame
//! boundary (rejecting frames that slip in mid-read with a typed
//! `ShuttingDown`). Closing the lanes refuses new pushes while the
//! dispatcher drains everything still queued. Admitted requests are
//! therefore answered, new ones refused, and `run` returns when the last
//! reply is written.

use crate::batch::{dispatch_loop, BatchPolicy, ConnWriter, Job, JobOp};
use crate::lanes::{Lanes, PushError};
use crate::metrics_http::{bind_metrics, metrics_loop};
use crate::protocol::{
    decode_payload, parse_header, ErrorCode, ErrorFrame, Frame, ProtocolError, TraceDumpFrame,
    WireObject, HEADER_LEN, LOCATE_TRI, MIN_VERSION,
};
use crate::slowlog::SlowQueryLog;
use crate::stats::ServeStats;
use sknn_core::mr3::Mr3Engine;
use sknn_core::workload::SurfacePoint;
use sknn_geom::Point2;
use sknn_obs::{mint_trace_id, QueryTrace, Recorder, Registry, RingRecorder, NOOP};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the metrics endpoint keeps answering `/healthz` as draining
/// after the drain itself completes (see the lame-duck note in `run`).
const METRICS_DRAIN_GRACE: Duration = Duration::from_millis(250);

/// Serving knobs. The defaults suit an interactive service on a local
/// machine; the load generator and tests override freely.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most requests coalesced into one engine batch.
    pub max_batch: usize,
    /// How long the dispatcher lingers for more work after the first
    /// request of a batch arrives.
    pub max_wait: Duration,
    /// Admission queue bound; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Threads handed to `try_query_batch_at` for each batch.
    pub exec_threads: usize,
    /// Socket read timeout — the granularity at which blocked readers
    /// notice the shutdown flag.
    pub poll_interval: Duration,
    /// Where to serve `/metrics` and `/healthz` (e.g. `"127.0.0.1:0"`);
    /// `None` disables the endpoint.
    pub metrics_addr: Option<String>,
    /// Slow-query capture threshold: a successful request slower than
    /// this lands in the slow-query log. Failures (expired, degraded,
    /// errored) are captured regardless.
    pub slow_threshold: Duration,
    /// Bound on the slow-query reservoir; oldest entries evicted first.
    pub slow_capacity: usize,
    /// Instance name stamped as an `instance` label on every exported
    /// metrics family (shard id or `"router"` in a fleet); empty means
    /// no label (single-process deployments keep their old schema).
    pub instance: String,
    /// Starvation floor of the EDF admission lanes: once the oldest
    /// queued request has waited this long, it is dispatched next
    /// regardless of deadlines. Zero disables the floor (pure EDF).
    pub starvation_floor: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            queue_depth: 64,
            exec_threads: sknn_exec::available_threads(),
            poll_interval: Duration::from_millis(20),
            metrics_addr: None,
            slow_threshold: Duration::from_millis(100),
            slow_capacity: 256,
            instance: String::new(),
            starvation_floor: Duration::from_millis(50),
        }
    }
}

/// Remote handle on a running server: its address and a shutdown switch.
/// Clonable across threads; `shutdown` is idempotent.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The server's bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins graceful drain: stop accepting, answer what was admitted,
    /// then return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A bound (but not yet running) sk-NN query server.
pub struct Server<'e, 's, 'm> {
    engine: &'e Mr3Engine<'s, 'm>,
    listener: TcpListener,
    cfg: ServeConfig,
    stats: Arc<ServeStats>,
    shutdown: Arc<AtomicBool>,
    ring: Option<RingRecorder>,
    slow: SlowQueryLog,
    metrics: Option<TcpListener>,
    metrics_addr: Option<SocketAddr>,
}

impl<'e, 's, 'm> Server<'e, 's, 'm> {
    /// Binds the listener (and the metrics listener, when configured).
    /// Pass port 0 for an ephemeral port (tests).
    pub fn bind<A: ToSocketAddrs>(
        engine: &'e Mr3Engine<'s, 'm>,
        addr: A,
        cfg: ServeConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let (metrics, metrics_addr) = match &cfg.metrics_addr {
            Some(addr) => {
                let (l, a) = bind_metrics(addr)?;
                (Some(l), Some(a))
            }
            None => (None, None),
        };
        let slow = SlowQueryLog::new(cfg.slow_threshold.as_micros() as u64, cfg.slow_capacity);
        Ok(Self {
            engine,
            listener,
            cfg,
            stats: Arc::new(ServeStats::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            ring: None,
            slow,
            metrics,
            metrics_addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// The metrics endpoint's bound address, when one is configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { addr: self.local_addr(), shutdown: Arc::clone(&self.shutdown) }
    }

    /// The live counters (shared; updated while the server runs).
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// The slow-query reservoir (readable at any time; the drain dump in
    /// the binary reads it after [`run`](Self::run) returns).
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.slow
    }

    /// Record per-request spans and per-batch events into a bounded ring,
    /// drained into the trace that [`run`](Self::run) returns.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.ring = Some(RingRecorder::new(capacity));
    }

    /// Builds the metrics registry: serving counters and histograms, the
    /// pager's pool/stall counters, and the fault-injection counters.
    fn build_registry(&self) -> Registry<'_> {
        let registry = if self.cfg.instance.is_empty() {
            Registry::new()
        } else {
            Registry::with_instance(&self.cfg.instance)
        };
        self.stats.register_into(&registry);
        let pager = self.engine.pager();
        registry.counter_fn(
            "sknn_store_stall_us_total",
            "Cumulative pager stall wall time, microseconds",
            move || pager.stall_ns() / 1_000,
        );
        registry.counter_fn(
            "sknn_store_logical_reads_total",
            "Page read requests, hit or miss",
            move || pager.stats().logical_reads,
        );
        registry.counter_fn(
            "sknn_store_physical_reads_total",
            "Buffer-pool misses fetched from disk",
            move || pager.stats().physical_reads,
        );
        registry.counter_fn(
            "sknn_store_singleflight_waits_total",
            "Threads that waited on another's in-flight read",
            move || pager.concurrency_stats().singleflight_waits,
        );
        registry.counter_fn(
            "sknn_store_coalesced_misses_total",
            "Misses that did not pay their own stall",
            move || pager.concurrency_stats().coalesced_misses,
        );
        registry.counter_fn(
            "sknn_store_shard_contention_total",
            "Shard-lock acquisitions that found the lock held",
            move || pager.concurrency_stats().shard_contention,
        );
        registry.counter_fn(
            "sknn_store_faults_injected_total",
            "Storage faults fired by the injector",
            move || pager.fault_stats().injected,
        );
        registry.counter_fn(
            "sknn_store_fault_retries_total",
            "Read attempts beyond a read's first",
            move || pager.fault_stats().retries,
        );
        registry.counter_fn(
            "sknn_store_fault_exhausted_total",
            "Reads that exhausted the retry budget",
            move || pager.fault_stats().exhausted,
        );
        registry.counter_fn(
            "sknn_store_checksum_failures_total",
            "Checksum verification failures on physical reads",
            move || pager.fault_stats().checksum_failures,
        );
        // Shared cut cache. All families render 0 when the cache is
        // disabled so scrapers see a stable schema either way.
        let engine = self.engine;
        let cut = move || engine.cut_cache_snapshot().unwrap_or_default();
        registry.counter_fn(
            "sknn_cutcache_hits_total",
            "Cut fetches served from a resident materialized cut",
            move || cut().hits,
        );
        registry.counter_fn(
            "sknn_cutcache_misses_total",
            "Cut fetches that led an extraction",
            move || cut().misses,
        );
        registry.counter_fn(
            "sknn_cutcache_singleflight_waits_total",
            "Cut fetches that waited on another query's extraction",
            move || cut().singleflight_waits,
        );
        registry.counter_fn(
            "sknn_cutcache_evictions_total",
            "Resident cuts evicted to stay within the weight budget",
            move || cut().evictions,
        );
        registry.counter_fn(
            "sknn_cutcache_failed_loads_total",
            "Cut extractions that failed without publishing an entry",
            move || cut().failed_loads,
        );
        registry.counter_fn(
            "sknn_cutcache_budget_deferrals_total",
            "Cut extractions delayed by the per-tick admission budget",
            move || cut().budget_deferrals,
        );
        registry.gauge_fn(
            "sknn_cutcache_warm_entries",
            "Resident cuts marked warm (recently used)",
            move || cut().warm_entries as f64,
        );
        registry.gauge_fn(
            "sknn_cutcache_cooling_entries",
            "Resident cuts cooled by the CLOCK hand",
            move || cut().cooling_entries as f64,
        );
        registry.gauge_fn(
            "sknn_cutcache_resident_bytes",
            "Approximate bytes of resident cut data",
            move || cut().resident_bytes as f64,
        );
        registry.gauge_fn(
            "sknn_cutcache_extractions_in_flight",
            "Cut extractions running right now",
            move || cut().in_flight as f64,
        );
        registry.gauge_fn(
            "sknn_cutcache_hit_rate",
            "Lifetime hits / (hits + misses) of the cut cache",
            move || cut().hit_rate(),
        );
        // Write path: WAL, writeback and recovery counters.
        let wal = move || engine.write_stats();
        registry.counter_fn(
            "sknn_wal_appends_total",
            "WAL records appended (pending or durable)",
            move || wal().wal.appends,
        );
        registry.counter_fn(
            "sknn_wal_fsyncs_total",
            "Successful WAL fsyncs (one per committed mutation)",
            move || wal().wal.fsyncs,
        );
        registry.counter_fn(
            "sknn_wal_failed_fsyncs_total",
            "WAL fsyncs failed by the fault injector (aborted commits)",
            move || wal().wal.failed_fsyncs,
        );
        registry.counter_fn(
            "sknn_wal_truncated_records_total",
            "Pending WAL records withdrawn by aborted mutations",
            move || wal().wal.truncated,
        );
        registry.counter_fn(
            "sknn_wal_flushed_pages_total",
            "Dirty pages written back to the durable image",
            move || wal().flushed_pages,
        );
        registry.counter_fn(
            "sknn_wal_aborted_ops_total",
            "Mutations aborted by a failed commit fsync",
            move || wal().aborted_ops,
        );
        registry.counter_fn(
            "sknn_wal_recoveries_total",
            "Times the object store was rebuilt from a crash image",
            move || wal().recoveries,
        );
        registry.counter_fn(
            "sknn_wal_replay_records_total",
            "Committed WAL records redone by the last recovery",
            move || wal().replay_records,
        );
        registry.gauge_fn(
            "sknn_wal_dirty_pages",
            "Pages currently dirty (awaiting writeback)",
            move || wal().dirty_pages as f64,
        );
        registry.gauge_fn("sknn_objects_live", "Live objects in the current snapshot", move || {
            wal().live_objects as f64
        });
        registry
    }

    /// Serves until [`ServerHandle::shutdown`] is called, then drains and
    /// returns the final observability trace (when tracing is enabled).
    pub fn run(&self) -> Option<QueryTrace> {
        self.listener.set_nonblocking(true).expect("listener nonblocking");
        let rec: &dyn Recorder = match &self.ring {
            Some(ring) => ring,
            None => &NOOP,
        };
        let policy = BatchPolicy {
            max_batch: self.cfg.max_batch.max(1),
            max_wait: self.cfg.max_wait,
            exec_threads: self.cfg.exec_threads.max(1),
        };
        let registry = self.build_registry();
        let metrics_stop = AtomicBool::new(false);
        let lanes = Lanes::new(self.cfg.queue_depth.max(1), self.cfg.starvation_floor);
        std::thread::scope(|scope| {
            let lanes = &lanes;
            let dispatcher = scope.spawn(move || {
                dispatch_loop(self.engine, lanes, policy, &self.stats, &self.slow, rec)
            });
            if let Some(listener) = &self.metrics {
                let registry = &registry;
                let draining = &*self.shutdown;
                let stop = &metrics_stop;
                scope.spawn(move || metrics_loop(listener, registry, draining, stop));
            }
            while !self.shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        self.stats.connections.inc();
                        scope.spawn(move || self.serve_conn(stream, lanes));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
            // Closing the lanes starts the drain clock: queued jobs keep
            // draining, new pushes are refused with a typed
            // `ShuttingDown`, and the dispatcher exits once the lanes
            // run dry. The metrics endpoint keeps answering `/healthz`
            // as "draining" for the whole window and stops only after
            // the last reply is written.
            lanes.close();
            let _ = dispatcher.join();
            // Lame-duck grace: even an instant drain keeps `/healthz`
            // answering 503 briefly, so pollers observe the state
            // transition instead of a vanished endpoint.
            if self.metrics.is_some() {
                std::thread::sleep(METRICS_DRAIN_GRACE);
            }
            metrics_stop.store(true, Ordering::Relaxed);
        });
        if rec.enabled() {
            rec.event(
                "serve_final",
                0,
                vec![
                    sknn_obs::field("accepted", self.stats.accepted.get()),
                    sknn_obs::field("completed", self.stats.completed.get()),
                    sknn_obs::field("shed", self.stats.shed.get()),
                ],
            );
        }
        self.ring.as_ref().map(|r| r.drain())
    }

    /// Reader thread for one connection.
    fn serve_conn(&self, stream: TcpStream, lanes: &Lanes) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.cfg.poll_interval));
        let writer = match stream.try_clone() {
            Ok(w) => Arc::new(ConnWriter::new(w)),
            Err(_) => return,
        };
        let mut stream = stream;
        loop {
            match read_frame_interruptible(&mut stream, &self.shutdown) {
                ReadOutcome::Frame(Frame::Query(q), version) => {
                    let op = match self.resolve_surface(q.tri, q.x, q.y, q.z) {
                        Ok(point) => JobOp::Query { point, k: q.k as usize },
                        Err(why) => {
                            writer.send(
                                &self.stats,
                                &error_frame(q.req_id, ErrorCode::BadRequest, why),
                                version,
                            );
                            continue;
                        }
                    };
                    self.admit(q.req_id, q.trace_id, q.deadline_ms, op, version, lanes, &writer);
                }
                ReadOutcome::Frame(Frame::SeedsRequest(s), version) => {
                    if !(s.x.is_finite() && s.y.is_finite()) {
                        writer.send(
                            &self.stats,
                            &error_frame(s.req_id, ErrorCode::BadRequest, "non-finite coordinates"),
                            version,
                        );
                        continue;
                    }
                    let op = JobOp::Seeds { xy: Point2::new(s.x, s.y), k: s.k as usize };
                    self.admit(s.req_id, s.trace_id, s.deadline_ms, op, version, lanes, &writer);
                }
                ReadOutcome::Frame(Frame::RangeRequest(r), version) => {
                    if !(r.x.is_finite() && r.y.is_finite()) || r.radius.is_nan() || r.radius < 0.0
                    {
                        writer.send(
                            &self.stats,
                            &error_frame(r.req_id, ErrorCode::BadRequest, "bad range parameters"),
                            version,
                        );
                        continue;
                    }
                    let op = JobOp::Range { xy: Point2::new(r.x, r.y), radius: r.radius };
                    self.admit(r.req_id, r.trace_id, r.deadline_ms, op, version, lanes, &writer);
                }
                ReadOutcome::Frame(Frame::RadiusRequest(r), version) => {
                    let op = self.resolve_surface(r.tri, r.x, r.y, r.z).and_then(|point| {
                        Ok(JobOp::Radius { point, seeds: self.resolve_objs(&r.seeds)? })
                    });
                    match op {
                        Ok(op) => self.admit(
                            r.req_id,
                            r.trace_id,
                            r.deadline_ms,
                            op,
                            version,
                            lanes,
                            &writer,
                        ),
                        Err(why) => {
                            writer.send(
                                &self.stats,
                                &error_frame(r.req_id, ErrorCode::BadRequest, why),
                                version,
                            );
                        }
                    }
                }
                ReadOutcome::Frame(Frame::ExecRequest(e), version) => {
                    let op = self.resolve_surface(e.tri, e.x, e.y, e.z).and_then(|point| {
                        Ok(JobOp::Exec {
                            point,
                            k: e.k as usize,
                            seeds: self.resolve_objs(&e.seeds)?,
                            cands: self.resolve_objs(&e.cands)?,
                        })
                    });
                    match op {
                        Ok(op) => self.admit(
                            e.req_id,
                            e.trace_id,
                            e.deadline_ms,
                            op,
                            version,
                            lanes,
                            &writer,
                        ),
                        Err(why) => {
                            writer.send(
                                &self.stats,
                                &error_frame(e.req_id, ErrorCode::BadRequest, why),
                                version,
                            );
                        }
                    }
                }
                ReadOutcome::Frame(Frame::Cancel(c), _version) => {
                    // Withdraw the queued job if the cancel wins the race.
                    // The typed `Cancelled` reply goes to the *cancelled
                    // request's* connection (its own writer and wire
                    // version) so every admitted request still gets
                    // exactly one reply on its own stream. A miss means
                    // the job is already executing (or finished); its
                    // real reply is coming, so a cancel is silent here.
                    match lanes.cancel(c.req_id, c.trace_id) {
                        Some(job) => {
                            self.stats.cancelled.inc();
                            self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                            job.writer.send(
                                &self.stats,
                                &error_frame(
                                    job.req_id,
                                    ErrorCode::Cancelled,
                                    "cancelled while queued",
                                ),
                                job.wire_version,
                            );
                        }
                        None => {
                            self.stats.cancel_misses.inc();
                        }
                    }
                }
                ReadOutcome::Frame(Frame::StatsRequest, version) => {
                    let mut snap = self.stats.snapshot();
                    // Live object count: the sharding router sums these
                    // to clamp `k` exactly like a single engine over the
                    // union terrain would.
                    snap.entries.push((
                        "objects".to_string(),
                        self.engine.write_stats().live_objects as u64,
                    ));
                    writer.send(&self.stats, &Frame::Stats(snap), version);
                }
                ReadOutcome::Frame(Frame::TraceDumpRequest, version) => {
                    let dump = TraceDumpFrame { jsonl: self.slow.to_jsonl() };
                    writer.send(&self.stats, &Frame::TraceDump(dump), version);
                }
                ReadOutcome::Frame(_, version) => {
                    // Response/Error/Stats/TraceDump only flow server → client.
                    self.stats.protocol_errors.inc();
                    writer.send(
                        &self.stats,
                        &error_frame(0, ErrorCode::BadRequest, "unexpected frame type"),
                        version,
                    );
                }
                ReadOutcome::Protocol(e) => {
                    // A framing error means the stream position is no
                    // longer trustworthy; reply once and hang up. The
                    // sender's version is unknown (the header may be the
                    // corrupt part), so use the oldest layout — the error
                    // frame's body is identical across versions and every
                    // supported peer decodes v1.
                    self.stats.protocol_errors.inc();
                    writer.send(
                        &self.stats,
                        &error_frame(0, ErrorCode::BadRequest, &e.to_string()),
                        MIN_VERSION,
                    );
                    return;
                }
                ReadOutcome::Closed | ReadOutcome::Io => return,
                ReadOutcome::Shutdown => return,
            }
        }
    }

    /// Offers a validated operation to the admission lanes, replying with
    /// the right typed error when it cannot be queued.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        req_id: u64,
        raw_trace_id: u64,
        deadline_ms: u32,
        op: JobOp,
        version: u16,
        lanes: &Lanes,
        writer: &Arc<ConnWriter>,
    ) {
        if self.shutdown.load(Ordering::Relaxed) {
            self.stats.rejected_shutdown.inc();
            writer.send(
                &self.stats,
                &error_frame(req_id, ErrorCode::ShuttingDown, "server is draining"),
                version,
            );
            return;
        }
        let enqueued = Instant::now();
        let deadline = match deadline_ms {
            0 => None,
            ms => Some(enqueued + Duration::from_millis(ms as u64)),
        };
        // Every admitted request has a nonzero trace id from here on:
        // the client's, or one minted now. It becomes the engine's query
        // id, so each obs record this request produces carries it even
        // when the request rides a batch with strangers.
        let trace_id = if raw_trace_id != 0 { raw_trace_id } else { mint_trace_id() };
        let job = Job {
            req_id,
            trace_id,
            op,
            deadline,
            enqueued,
            recv_at: enqueued,
            wire_version: version,
            writer: Arc::clone(writer),
        };
        match lanes.try_push(job) {
            Ok(()) => {
                self.stats.accepted.inc();
                self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
            Err(PushError::Full(job)) => {
                self.stats.shed.inc();
                job.writer.send(
                    &self.stats,
                    &error_frame(job.req_id, ErrorCode::Overloaded, "admission queue full"),
                    job.wire_version,
                );
            }
            Err(PushError::Closed(job)) => {
                self.stats.rejected_shutdown.inc();
                job.writer.send(
                    &self.stats,
                    &error_frame(job.req_id, ErrorCode::ShuttingDown, "server is draining"),
                    job.wire_version,
                );
            }
        }
    }

    /// Lifts wire coordinates onto the surface: either trust the client's
    /// facet id (validated against the mesh) or locate the facet from the
    /// plan position.
    fn resolve_surface(
        &self,
        tri: u32,
        x: f64,
        y: f64,
        z: f64,
    ) -> Result<SurfacePoint, &'static str> {
        if !(x.is_finite() && y.is_finite() && z.is_finite()) {
            return Err("non-finite query coordinates");
        }
        let scene = self.engine.scene();
        if tri == LOCATE_TRI {
            scene.surface_point(Point2::new(x, y)).ok_or("query point outside the terrain extent")
        } else if (tri as usize) < scene.mesh().num_triangles() {
            Ok(SurfacePoint { tri, pos: sknn_geom::Point3::new(x, y, z) })
        } else {
            Err("facet id out of range")
        }
    }

    /// Validates a shipped object list (shard-op frames) and lifts it to
    /// surface points. Objects may be owned by *other* shards, so only
    /// mesh-level validity is checked — the ids are taken on faith, which
    /// is sound because every shard ranks with the coordinates provided
    /// on the wire, not a local lookup.
    fn resolve_objs(&self, objs: &[WireObject]) -> Result<Vec<(u32, SurfacePoint)>, &'static str> {
        let num_tris = self.engine.scene().mesh().num_triangles();
        let mut out = Vec::with_capacity(objs.len());
        for o in objs {
            if !(o.x.is_finite() && o.y.is_finite() && o.z.is_finite()) {
                return Err("non-finite object coordinates");
            }
            if o.tri as usize >= num_tris {
                return Err("object facet id out of range");
            }
            out.push((
                o.id,
                SurfacePoint { tri: o.tri, pos: sknn_geom::Point3::new(o.x, o.y, o.z) },
            ));
        }
        Ok(out)
    }
}

fn error_frame(req_id: u64, code: ErrorCode, detail: &str) -> Frame {
    Frame::Error(ErrorFrame { req_id, code, detail: detail.to_string() })
}

enum ReadOutcome {
    /// A decoded frame plus the wire version it arrived in (replies echo
    /// that version so old clients never see new layouts).
    Frame(Frame, u16),
    /// Clean close at a frame boundary.
    Closed,
    /// Shutdown observed at a frame boundary.
    Shutdown,
    Protocol(ProtocolError),
    Io,
}

/// Reads one frame off a socket with a read timeout, re-arming on
/// timeouts so the reader can poll the shutdown flag. The flag is only
/// honored *between* frames: a frame whose bytes have started arriving
/// is finished and then rejected by the caller, keeping the stream
/// framing intact for the final replies.
fn read_frame_interruptible(stream: &mut TcpStream, shutdown: &AtomicBool) -> ReadOutcome {
    let mut header = [0u8; HEADER_LEN];
    match fill(stream, &mut header, Some(shutdown)) {
        Fill::Done => {}
        Fill::Eof(0) => return ReadOutcome::Closed,
        Fill::Eof(got) => {
            return ReadOutcome::Protocol(ProtocolError::Truncated { needed: HEADER_LEN, got })
        }
        Fill::Shutdown => return ReadOutcome::Shutdown,
        Fill::Io => return ReadOutcome::Io,
    }
    let (version, tag, len) = match parse_header(&header) {
        Ok(v) => v,
        Err(e) => return ReadOutcome::Protocol(e),
    };
    let mut payload = vec![0u8; len as usize];
    match fill(stream, &mut payload, None) {
        Fill::Done => {}
        Fill::Eof(got) => {
            return ReadOutcome::Protocol(ProtocolError::Truncated { needed: len as usize, got })
        }
        Fill::Shutdown => unreachable!("shutdown not polled mid-frame"),
        Fill::Io => return ReadOutcome::Io,
    }
    match decode_payload(version, tag, &payload) {
        Ok(frame) => ReadOutcome::Frame(frame, version),
        Err(e) => ReadOutcome::Protocol(e),
    }
}

enum Fill {
    Done,
    /// EOF after this many bytes.
    Eof(usize),
    Shutdown,
    Io,
}

/// Fills `buf` from the socket, treating timeouts as poll ticks. When
/// `shutdown` is provided it is checked before the first byte — i.e. at
/// a frame boundary only.
fn fill(stream: &mut TcpStream, buf: &mut [u8], shutdown: Option<&AtomicBool>) -> Fill {
    let mut filled = 0;
    while filled < buf.len() {
        if filled == 0 && shutdown.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
            return Fill::Shutdown;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Fill::Eof(filled),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return Fill::Io,
        }
    }
    Fill::Done
}
