//! The TCP front end: accept loop, per-connection readers, admission
//! control, and graceful drain.
//!
//! Threading model (all scoped, no detached threads):
//!
//! ```text
//! run()
//!  ├─ dispatcher thread      — crate::batch::dispatch_loop
//!  ├─ accept loop (run itself) — nonblocking accept + shutdown poll
//!  └─ one reader thread per connection
//! ```
//!
//! Admission is a bounded `sync_channel`: a reader `try_send`s each
//! query, and a full queue means an immediate typed `Overloaded` reply —
//! load shedding is a fast "no", never a hang or an unbounded buffer.
//!
//! Graceful drain is ordering, not machinery: setting the shutdown flag
//! stops the accept loop and makes every reader exit at its next frame
//! boundary (rejecting frames that slip in mid-read with a typed
//! `ShuttingDown`). Readers drop their queue senders as they exit, and
//! the dispatcher — which only terminates on sender disconnect — first
//! receives everything still buffered. Admitted requests are therefore
//! answered, new ones refused, and `run` returns when the last reply is
//! written.

use crate::batch::{dispatch_loop, BatchPolicy, ConnWriter, Job};
use crate::protocol::{
    decode_payload, parse_header, ErrorCode, ErrorFrame, Frame, ProtocolError, QueryFrame,
    HEADER_LEN, LOCATE_TRI,
};
use crate::stats::ServeStats;
use sknn_core::mr3::Mr3Engine;
use sknn_core::workload::SurfacePoint;
use sknn_geom::Point2;
use sknn_obs::{QueryTrace, Recorder, RingRecorder, NOOP};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serving knobs. The defaults suit an interactive service on a local
/// machine; the load generator and tests override freely.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most requests coalesced into one engine batch.
    pub max_batch: usize,
    /// How long the dispatcher lingers for more work after the first
    /// request of a batch arrives.
    pub max_wait: Duration,
    /// Admission queue bound; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Threads handed to `try_query_batch_at` for each batch.
    pub exec_threads: usize,
    /// Socket read timeout — the granularity at which blocked readers
    /// notice the shutdown flag.
    pub poll_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            queue_depth: 64,
            exec_threads: sknn_exec::available_threads(),
            poll_interval: Duration::from_millis(20),
        }
    }
}

/// Remote handle on a running server: its address and a shutdown switch.
/// Clonable across threads; `shutdown` is idempotent.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The server's bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins graceful drain: stop accepting, answer what was admitted,
    /// then return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A bound (but not yet running) sk-NN query server.
pub struct Server<'e, 's, 'm> {
    engine: &'e Mr3Engine<'s, 'm>,
    listener: TcpListener,
    cfg: ServeConfig,
    stats: Arc<ServeStats>,
    shutdown: Arc<AtomicBool>,
    ring: Option<RingRecorder>,
}

impl<'e, 's, 'm> Server<'e, 's, 'm> {
    /// Binds the listener. Pass port 0 for an ephemeral port (tests).
    pub fn bind<A: ToSocketAddrs>(
        engine: &'e Mr3Engine<'s, 'm>,
        addr: A,
        cfg: ServeConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            engine,
            listener,
            cfg,
            stats: Arc::new(ServeStats::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            ring: None,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { addr: self.local_addr(), shutdown: Arc::clone(&self.shutdown) }
    }

    /// The live counters (shared; updated while the server runs).
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// Record per-request spans and per-batch events into a bounded ring,
    /// drained into the trace that [`run`](Self::run) returns.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.ring = Some(RingRecorder::new(capacity));
    }

    /// Serves until [`ServerHandle::shutdown`] is called, then drains and
    /// returns the final observability trace (when tracing is enabled).
    pub fn run(&self) -> Option<QueryTrace> {
        self.listener.set_nonblocking(true).expect("listener nonblocking");
        let rec: &dyn Recorder = match &self.ring {
            Some(ring) => ring,
            None => &NOOP,
        };
        let policy = BatchPolicy {
            max_batch: self.cfg.max_batch.max(1),
            max_wait: self.cfg.max_wait,
            exec_threads: self.cfg.exec_threads.max(1),
        };
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(self.cfg.queue_depth.max(1));
        std::thread::scope(|scope| {
            scope.spawn(move || dispatch_loop(self.engine, &rx, policy, &self.stats, rec));
            while !self.shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        self.stats.connections.inc();
                        let tx = tx.clone();
                        scope.spawn(move || self.serve_conn(stream, tx));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
            // Dropping the master sender starts the drain clock: the
            // dispatcher exits once the per-connection clones are gone
            // too and the queue is empty.
            drop(tx);
        });
        if rec.enabled() {
            rec.event(
                "serve_final",
                0,
                vec![
                    sknn_obs::field("accepted", self.stats.accepted.get()),
                    sknn_obs::field("completed", self.stats.completed.get()),
                    sknn_obs::field("shed", self.stats.shed.get()),
                ],
            );
        }
        self.ring.as_ref().map(|r| r.drain())
    }

    /// Reader thread for one connection.
    fn serve_conn(&self, stream: TcpStream, tx: SyncSender<Job>) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.cfg.poll_interval));
        let writer = match stream.try_clone() {
            Ok(w) => Arc::new(ConnWriter::new(w)),
            Err(_) => return,
        };
        let mut stream = stream;
        loop {
            match read_frame_interruptible(&mut stream, &self.shutdown) {
                ReadOutcome::Frame(Frame::Query(q)) => self.admit(q, &tx, &writer),
                ReadOutcome::Frame(Frame::StatsRequest) => {
                    writer.send(&self.stats, &Frame::Stats(self.stats.snapshot()));
                }
                ReadOutcome::Frame(_) => {
                    // Response/Error/Stats only flow server → client.
                    self.stats.protocol_errors.inc();
                    writer.send(
                        &self.stats,
                        &error_frame(0, ErrorCode::BadRequest, "unexpected frame type"),
                    );
                }
                ReadOutcome::Protocol(e) => {
                    // A framing error means the stream position is no
                    // longer trustworthy; reply once and hang up.
                    self.stats.protocol_errors.inc();
                    writer
                        .send(&self.stats, &error_frame(0, ErrorCode::BadRequest, &e.to_string()));
                    return;
                }
                ReadOutcome::Closed | ReadOutcome::Io => return,
                ReadOutcome::Shutdown => return,
            }
        }
    }

    /// Validates one query frame and offers it to the bounded queue.
    fn admit(&self, q: QueryFrame, tx: &SyncSender<Job>, writer: &Arc<ConnWriter>) {
        if self.shutdown.load(Ordering::Relaxed) {
            self.stats.rejected_shutdown.inc();
            writer.send(
                &self.stats,
                &error_frame(q.req_id, ErrorCode::ShuttingDown, "server is draining"),
            );
            return;
        }
        let point = match self.resolve_point(&q) {
            Ok(p) => p,
            Err(why) => {
                writer.send(&self.stats, &error_frame(q.req_id, ErrorCode::BadRequest, why));
                return;
            }
        };
        let enqueued = Instant::now();
        let deadline = match q.deadline_ms {
            0 => None,
            ms => Some(enqueued + Duration::from_millis(ms as u64)),
        };
        let job = Job {
            req_id: q.req_id,
            point,
            k: q.k as usize,
            deadline,
            enqueued,
            writer: Arc::clone(writer),
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.stats.accepted.inc();
                self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) => {
                self.stats.shed.inc();
                writer.send(
                    &self.stats,
                    &error_frame(q.req_id, ErrorCode::Overloaded, "admission queue full"),
                );
            }
            Err(TrySendError::Disconnected(_)) => {
                self.stats.rejected_shutdown.inc();
                writer.send(
                    &self.stats,
                    &error_frame(q.req_id, ErrorCode::ShuttingDown, "server is draining"),
                );
            }
        }
    }

    /// Lifts the wire coordinates onto the surface: either trust the
    /// client's facet id (validated against the mesh) or locate the facet
    /// from the plan position.
    fn resolve_point(&self, q: &QueryFrame) -> Result<SurfacePoint, &'static str> {
        if !(q.x.is_finite() && q.y.is_finite() && q.z.is_finite()) {
            return Err("non-finite query coordinates");
        }
        let scene = self.engine.scene();
        if q.tri == LOCATE_TRI {
            scene
                .surface_point(Point2::new(q.x, q.y))
                .ok_or("query point outside the terrain extent")
        } else if (q.tri as usize) < scene.mesh().num_triangles() {
            Ok(SurfacePoint { tri: q.tri, pos: sknn_geom::Point3::new(q.x, q.y, q.z) })
        } else {
            Err("facet id out of range")
        }
    }
}

fn error_frame(req_id: u64, code: ErrorCode, detail: &str) -> Frame {
    Frame::Error(ErrorFrame { req_id, code, detail: detail.to_string() })
}

enum ReadOutcome {
    Frame(Frame),
    /// Clean close at a frame boundary.
    Closed,
    /// Shutdown observed at a frame boundary.
    Shutdown,
    Protocol(ProtocolError),
    Io,
}

/// Reads one frame off a socket with a read timeout, re-arming on
/// timeouts so the reader can poll the shutdown flag. The flag is only
/// honored *between* frames: a frame whose bytes have started arriving
/// is finished and then rejected by the caller, keeping the stream
/// framing intact for the final replies.
fn read_frame_interruptible(stream: &mut TcpStream, shutdown: &AtomicBool) -> ReadOutcome {
    let mut header = [0u8; HEADER_LEN];
    match fill(stream, &mut header, Some(shutdown)) {
        Fill::Done => {}
        Fill::Eof(0) => return ReadOutcome::Closed,
        Fill::Eof(got) => {
            return ReadOutcome::Protocol(ProtocolError::Truncated { needed: HEADER_LEN, got })
        }
        Fill::Shutdown => return ReadOutcome::Shutdown,
        Fill::Io => return ReadOutcome::Io,
    }
    let (tag, len) = match parse_header(&header) {
        Ok(v) => v,
        Err(e) => return ReadOutcome::Protocol(e),
    };
    let mut payload = vec![0u8; len as usize];
    match fill(stream, &mut payload, None) {
        Fill::Done => {}
        Fill::Eof(got) => {
            return ReadOutcome::Protocol(ProtocolError::Truncated { needed: len as usize, got })
        }
        Fill::Shutdown => unreachable!("shutdown not polled mid-frame"),
        Fill::Io => return ReadOutcome::Io,
    }
    match decode_payload(tag, &payload) {
        Ok(frame) => ReadOutcome::Frame(frame),
        Err(e) => ReadOutcome::Protocol(e),
    }
}

enum Fill {
    Done,
    /// EOF after this many bytes.
    Eof(usize),
    Shutdown,
    Io,
}

/// Fills `buf` from the socket, treating timeouts as poll ticks. When
/// `shutdown` is provided it is checked before the first byte — i.e. at
/// a frame boundary only.
fn fill(stream: &mut TcpStream, buf: &mut [u8], shutdown: Option<&AtomicBool>) -> Fill {
    let mut filled = 0;
    while filled < buf.len() {
        if filled == 0 && shutdown.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
            return Fill::Shutdown;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Fill::Eof(filled),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return Fill::Io,
        }
    }
    Fill::Done
}
