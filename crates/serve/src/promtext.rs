//! Client-side Prometheus text handling: a std-only HTTP GET, a parser
//! for the text exposition format (version 0.0.4), and the cumulative-
//! bucket quantile estimator `sknn top` and the CI smoke check use.
//!
//! The parser accepts what [`sknn_obs::Registry`] emits plus the common
//! dialect: `# HELP` / `# TYPE` comments (skipped), `name{labels} value`
//! samples, optional timestamps (ignored). It is a validator as much as
//! a reader — CI scrapes the live endpoint and fails if a line does not
//! parse.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label set, sorted by key.
    pub labels: BTreeMap<String, String>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The `le` label parsed as a bound (`+Inf` → infinity), if present.
    pub fn le(&self) -> Option<f64> {
        let raw = self.labels.get("le")?;
        if raw == "+Inf" {
            Some(f64::INFINITY)
        } else {
            raw.parse().ok()
        }
    }
}

/// Parses a full exposition body into samples. Returns the zero-based
/// line number of the first malformed line on failure.
pub fn parse(body: &str) -> Result<Vec<Sample>, usize> {
    let mut samples = Vec::new();
    for (idx, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).ok_or(idx)?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Option<Sample> {
    // name{labels} value [timestamp]  |  name value [timestamp]
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line[brace..].find('}')? + brace;
            (&line[..brace], &line[close + 1..])
        }
        None => {
            let sp = line.find(' ')?;
            (&line[..sp], &line[sp..])
        }
    };
    let name = name_part.trim().to_string();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return None;
    }
    let labels = match line.find('{') {
        Some(brace) => {
            let close = line[brace..].find('}')? + brace;
            parse_labels(&line[brace + 1..close])?
        }
        None => BTreeMap::new(),
    };
    let mut fields = rest.split_whitespace();
    let value_str = fields.next()?;
    let value: f64 = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other.parse().ok()?,
    };
    // An optional timestamp may follow; anything beyond that is garbage.
    let ts = fields.next();
    if ts.is_some_and(|t| t.parse::<i64>().is_err()) || fields.next().is_some() {
        return None;
    }
    Some(Sample { name, labels, value })
}

fn parse_labels(body: &str) -> Option<BTreeMap<String, String>> {
    let mut labels = BTreeMap::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return None;
        }
        // Find the closing quote, honoring backslash escapes.
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return None,
                },
                '"' => {
                    consumed = Some(i + 2); // opening quote + content + closing
                    break;
                }
                c => value.push(c),
            }
        }
        labels.insert(key, value);
        rest = after[consumed?..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Some(labels)
}

/// Estimates a quantile from a histogram's cumulative `_bucket` samples
/// (each carrying an `le` bound). Returns `None` when the histogram is
/// empty or the samples are not a plausible cumulative series. The
/// estimate is the upper bound of the bucket containing the quantile
/// rank — same resolution the server-side log histogram delivers.
pub fn histogram_quantile(buckets: &[Sample], q: f64) -> Option<f64> {
    let mut series: Vec<(f64, f64)> =
        buckets.iter().filter_map(|s| s.le().map(|le| (le, s.value))).collect();
    if series.is_empty() {
        return None;
    }
    series.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let total = series.last()?.1;
    if total <= 0.0 {
        return None;
    }
    let rank = q.clamp(0.0, 1.0) * total;
    for (le, cum) in &series {
        if *cum >= rank {
            return Some(*le);
        }
    }
    Some(series.last()?.0)
}

/// Plain HTTP/1.1 GET returning the response body; `addr` is
/// `host:port`. Follows no redirects, speaks no TLS — it exists so the
/// CI smoke test and `sknn top` need no HTTP dependency.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_head, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response (no header terminator)",
        )),
    }
}

/// [`http_get`] returning `(status, body)` for callers that branch on
/// status (the drain check wants the 503).
pub fn http_get_status(
    addr: &str,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status =
        raw.split(' ').nth(1).and_then(|c| c.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no status code")
        })?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counters_gauges_and_labels() {
        let body = "# HELP hits Total hits\n# TYPE hits counter\nhits 42\n\
                    temp{city=\"oslo\",unit=\"c\"} -3.5\n";
        let samples = parse(body).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "hits");
        assert_eq!(samples[0].value, 42.0);
        assert_eq!(samples[1].labels.get("city").unwrap(), "oslo");
        assert_eq!(samples[1].value, -3.5);
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let body = "ok_metric 1\nnot a metric at all!!!\n";
        assert_eq!(parse(body), Err(1));
    }

    #[test]
    fn quantile_from_cumulative_buckets() {
        let mk = |le: &str, v: f64| Sample {
            name: "lat_bucket".into(),
            labels: [("le".to_string(), le.to_string())].into_iter().collect(),
            value: v,
        };
        let buckets = vec![mk("1", 10.0), mk("10", 60.0), mk("100", 95.0), mk("+Inf", 100.0)];
        assert_eq!(histogram_quantile(&buckets, 0.5), Some(10.0));
        assert_eq!(histogram_quantile(&buckets, 0.95), Some(100.0));
        assert_eq!(histogram_quantile(&buckets, 0.99), Some(f64::INFINITY));
        assert_eq!(histogram_quantile(&[], 0.5), None);
        assert_eq!(histogram_quantile(&[mk("1", 0.0)], 0.5), None);
    }

    #[test]
    fn registry_output_round_trips_through_parser() {
        let reg = sknn_obs::Registry::new();
        reg.counter_fn("c_total", "A counter", || 5);
        let h = sknn_obs::LogHistogram::new();
        h.record(100);
        h.record(3000);
        reg.histogram_fn("lat_us", "Latency", "", move || h.snapshot());
        let samples = parse(&reg.render()).unwrap();
        assert!(samples.iter().any(|s| s.name == "c_total" && s.value == 5.0));
        let buckets: Vec<Sample> =
            samples.iter().filter(|s| s.name == "lat_us_bucket").cloned().collect();
        assert!(!buckets.is_empty());
        let p50 = histogram_quantile(&buckets, 0.5).unwrap();
        assert!(p50 >= 100.0, "p50 {p50} should cover the 100µs sample");
        assert!(samples.iter().any(|s| s.name == "lat_us_count" && s.value == 2.0));
    }
}
