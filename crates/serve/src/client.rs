//! A small blocking client for the sknn wire protocol, used by the load
//! generator, the end-to-end tests, and anyone scripting against a
//! running server.

use crate::protocol::{
    read_frame, write_frame_v, Frame, QueryFrame, RecvError, LOCATE_TRI, VERSION,
};
use sknn_core::workload::SurfacePoint;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a server. Not thread-safe by design — callers that
/// want pipelining split sending and receiving across clones
/// ([`Client::try_clone`]).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Wire version frames are encoded at (default: current). Tests pin
    /// this to exercise old-client/new-server compatibility.
    version: u16,
}

impl Client {
    /// Connects with Nagle disabled and a read timeout, so a wedged
    /// server surfaces as an error rather than a silent hang.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(60))
    }

    /// [`connect`](Self::connect) with an explicit read timeout.
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        read_timeout: Duration,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Self { stream, version: VERSION })
    }

    /// Pins the wire version this client encodes at (the server replies
    /// in kind). Useful for compatibility tests; outside them the
    /// default current version is right.
    pub fn set_wire_version(&mut self, version: u16) {
        self.version = version;
    }

    /// Clones the underlying socket (shared kernel buffers), so one half
    /// can send while the other receives.
    pub fn try_clone(&self) -> io::Result<Self> {
        Ok(Self { stream: self.stream.try_clone()?, version: self.version })
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame_v(&mut self.stream, frame, self.version)
    }

    /// Receives one frame (blocking, up to the read timeout).
    pub fn recv(&mut self) -> Result<Frame, RecvError> {
        read_frame(&mut self.stream)
    }

    /// Sends a query for `k` neighbors of a known surface point.
    pub fn send_query(
        &mut self,
        req_id: u64,
        q: SurfacePoint,
        k: u32,
        deadline_ms: u32,
    ) -> io::Result<()> {
        self.send_query_traced(req_id, q, k, deadline_ms, 0)
    }

    /// [`send_query`](Self::send_query) with an explicit trace id (0 =
    /// let the server mint one; the reply echoes the effective id).
    pub fn send_query_traced(
        &mut self,
        req_id: u64,
        q: SurfacePoint,
        k: u32,
        deadline_ms: u32,
        trace_id: u64,
    ) -> io::Result<()> {
        self.send(&Frame::Query(QueryFrame {
            req_id,
            tri: q.tri,
            x: q.pos.x,
            y: q.pos.y,
            z: q.pos.z,
            k,
            deadline_ms,
            trace_id,
        }))
    }

    /// Sends a query by plan coordinates, leaving facet location to the
    /// server.
    pub fn send_query_xy(&mut self, req_id: u64, x: f64, y: f64, k: u32) -> io::Result<()> {
        self.send(&Frame::Query(QueryFrame {
            req_id,
            tri: LOCATE_TRI,
            x,
            y,
            z: 0.0,
            k,
            deadline_ms: 0,
            trace_id: 0,
        }))
    }

    /// Round-trips a `STATS` request. Only valid when no queries are in
    /// flight on this connection (replies are matched by arrival).
    pub fn fetch_stats(&mut self) -> Result<Vec<(String, u64)>, RecvError> {
        self.send(&Frame::StatsRequest).map_err(RecvError::Io)?;
        loop {
            match self.recv()? {
                Frame::Stats(s) => return Ok(s.entries),
                // Late query replies may still be draining past the
                // stats request; skip them.
                Frame::Response(_) | Frame::Error(_) => continue,
                other => {
                    return Err(RecvError::Protocol(crate::protocol::ProtocolError::Malformed(
                        match other {
                            Frame::Query(_) => "server sent a query frame",
                            _ => "unexpected frame awaiting stats",
                        },
                    )))
                }
            }
        }
    }

    /// Round-trips a `TRACE_DUMP` request, returning the server's
    /// slow-query reservoir as JSONL (v2 servers only). Same caveat as
    /// [`fetch_stats`](Self::fetch_stats): no queries in flight.
    pub fn fetch_trace_dump(&mut self) -> Result<String, RecvError> {
        self.send(&Frame::TraceDumpRequest).map_err(RecvError::Io)?;
        loop {
            match self.recv()? {
                Frame::TraceDump(t) => return Ok(t.jsonl),
                Frame::Response(_) | Frame::Error(_) => continue,
                _ => {
                    return Err(RecvError::Protocol(crate::protocol::ProtocolError::Malformed(
                        "unexpected frame awaiting trace dump",
                    )))
                }
            }
        }
    }
}
