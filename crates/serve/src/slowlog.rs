//! Always-on tail capture: a bounded ring of the slowest / most
//! interesting requests, kept in memory and dumped as JSONL on demand
//! (the `TRACE_DUMP` protocol frame) and at drain.
//!
//! A request is captured when its end-to-end server latency exceeds the
//! configured threshold, or unconditionally when it ended degraded,
//! expired, or errored — the tail is precisely the population you want
//! post-hoc, and at a bounded capacity the cost of keeping it is a mutex
//! and a few hundred small structs, cheap enough to leave on in
//! production.

use crate::protocol::ServerTiming;
use sknn_obs::JsonWriter;
use std::collections::VecDeque;
use std::sync::Mutex;

/// How a captured request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowOutcome {
    /// Completed successfully (captured because it was slow).
    Ok,
    /// Completed with a degradation marker.
    Degraded,
    /// Dropped at dequeue: deadline expired while queued.
    Expired,
    /// The engine returned a typed error.
    Error,
}

impl SlowOutcome {
    fn as_str(self) -> &'static str {
        match self {
            SlowOutcome::Ok => "ok",
            SlowOutcome::Degraded => "degraded",
            SlowOutcome::Expired => "expired",
            SlowOutcome::Error => "error",
        }
    }
}

/// One captured request.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The request's trace id (client-supplied or server-minted).
    pub trace_id: u64,
    /// The client's correlation id.
    pub req_id: u64,
    /// End-to-end server-side latency, microseconds.
    pub total_us: u64,
    /// Per-stage breakdown (zeroed stages for expired requests, which
    /// never reached the engine).
    pub timing: ServerTiming,
    /// How the request ended.
    pub outcome: SlowOutcome,
}

impl SlowEntry {
    /// One JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.key("trace_id").u64(self.trace_id);
        w.key("req_id").u64(self.req_id);
        w.key("total_us").u64(self.total_us);
        w.key("outcome").str(self.outcome.as_str());
        w.key("queue_us").u64(self.timing.queue_us as u64);
        w.key("linger_us").u64(self.timing.linger_us as u64);
        w.key("exec_us").u64(self.timing.exec_us as u64);
        w.key("knn2d_us").u64(self.timing.knn2d_us as u64);
        w.key("radius_us").u64(self.timing.radius_us as u64);
        w.key("range_us").u64(self.timing.range_us as u64);
        w.key("rank_us").u64(self.timing.rank_us as u64);
        w.key("stall_us").u64(self.timing.stall_us as u64);
        w.key("batch").u64(self.timing.batch as u64);
        w.finish()
    }
}

/// Bounded reservoir of slow-query entries, oldest evicted first.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_us: u64,
    capacity: usize,
    inner: Mutex<Reservoir>,
}

#[derive(Debug, Default)]
struct Reservoir {
    entries: VecDeque<SlowEntry>,
    /// Entries evicted to make room (the dump reports it so "ring was
    /// full" is visible in the artifact itself).
    evicted: u64,
}

impl SlowQueryLog {
    /// A log capturing requests slower than `threshold_us` (0 captures
    /// everything), holding at most `capacity` entries.
    pub fn new(threshold_us: u64, capacity: usize) -> Self {
        Self { threshold_us, capacity: capacity.max(1), inner: Mutex::new(Reservoir::default()) }
    }

    /// The capture threshold, microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Whether this request should be captured; callers gate on this to
    /// avoid building entries that would be discarded.
    pub fn wants(&self, total_us: u64, outcome: SlowOutcome) -> bool {
        outcome != SlowOutcome::Ok || total_us >= self.threshold_us
    }

    /// Records one entry (unconditionally; see [`wants`](Self::wants)).
    pub fn push(&self, entry: SlowEntry) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.entries.len() == self.capacity {
            g.entries.pop_front();
            g.evicted += 1;
        }
        g.entries.push_back(entry);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).entries.len()
    }

    /// Whether the reservoir is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the reservoir as JSONL, slowest first, one object per
    /// line (with a final newline when non-empty). A header line carries
    /// the eviction count when any entry was displaced. The reservoir is
    /// left intact — dumps are a read, not a drain.
    pub fn to_jsonl(&self) -> String {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut sorted: Vec<&SlowEntry> = g.entries.iter().collect();
        sorted.sort_by_key(|e| std::cmp::Reverse(e.total_us));
        let mut out = String::new();
        if g.evicted > 0 {
            let mut w = JsonWriter::new();
            w.key("evicted").u64(g.evicted);
            out.push_str(&w.finish());
            out.push('\n');
        }
        for e in sorted {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace_id: u64, total_us: u64) -> SlowEntry {
        SlowEntry {
            trace_id,
            req_id: trace_id,
            total_us,
            timing: ServerTiming::default(),
            outcome: SlowOutcome::Ok,
        }
    }

    #[test]
    fn threshold_gates_ok_but_not_failures() {
        let log = SlowQueryLog::new(1000, 8);
        assert!(!log.wants(10, SlowOutcome::Ok));
        assert!(log.wants(1000, SlowOutcome::Ok));
        assert!(log.wants(10, SlowOutcome::Expired));
        assert!(log.wants(10, SlowOutcome::Degraded));
        assert!(log.wants(10, SlowOutcome::Error));
    }

    #[test]
    fn bounded_eviction_and_sorted_dump() {
        let log = SlowQueryLog::new(0, 3);
        for (id, us) in [(1u64, 50u64), (2, 300), (3, 100), (4, 200)] {
            log.push(entry(id, us));
        }
        assert_eq!(log.len(), 3);
        let dump = log.to_jsonl();
        for line in dump.lines() {
            sknn_obs::json::validate(line).expect("each line is valid JSON");
        }
        let mut lines = dump.lines();
        assert!(lines.next().unwrap().contains("\"evicted\":1"));
        let order: Vec<bool> = lines.map(|l| l.contains("\"outcome\":\"ok\"")).collect();
        assert_eq!(order.len(), 3);
        // Slowest first: 300, 200, 100 (entry 1 evicted).
        assert!(dump.find("\"total_us\":300") < dump.find("\"total_us\":200"));
        assert!(dump.find("\"total_us\":200") < dump.find("\"total_us\":100"));
        assert!(!dump.contains("\"total_us\":50"));
    }
}
