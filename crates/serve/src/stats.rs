//! Aggregate serving metrics: lock-free counters, gauges, and latency
//! histograms, snapshotted into a [`StatsFrame`] for the `STATS` protocol
//! frame and the shutdown summary.

use crate::protocol::StatsFrame;
use sknn_obs::{Counter, LogHistogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters shared by the accept loop, per-connection readers, and the
/// dispatcher. Everything is monotonic except `queue_depth`, a gauge.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: Counter,
    /// Requests admitted to the queue.
    pub accepted: Counter,
    /// Requests answered with a successful response.
    pub completed: Counter,
    /// Requests shed at admission because the queue was full.
    pub shed: Counter,
    /// Requests dropped at dequeue because their deadline had expired.
    pub expired: Counter,
    /// Requests rejected because the server was draining.
    pub rejected_shutdown: Counter,
    /// Malformed or unexpected frames received.
    pub protocol_errors: Counter,
    /// Queries that ran but returned a typed engine error.
    pub query_errors: Counter,
    /// Micro-batches dispatched to the engine.
    pub batches: Counter,
    /// Requests executed across all batches (`batched_requests / batches`
    /// is the mean coalescing factor — the adaptive batcher's yield).
    pub batched_requests: Counter,
    /// Reply writes that failed (client gone mid-flight).
    pub write_errors: Counter,
    /// Requests currently queued (gauge).
    pub queue_depth: AtomicU64,
    /// Time spent waiting in the queue, microseconds.
    pub queue_us: LogHistogram,
    /// End-to-end server-side latency (enqueue to reply), microseconds.
    pub latency_us: LogHistogram,
    /// Micro-batch sizes.
    pub batch_size: LogHistogram,
}

impl ServeStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean requests per dispatched micro-batch (0 before any batch).
    pub fn mean_batch(&self) -> f64 {
        let batches = self.batches.get();
        if batches == 0 {
            0.0
        } else {
            self.batched_requests.get() as f64 / batches as f64
        }
    }

    /// Snapshot for the `STATS` frame. Quantiles come from the log2
    /// histograms, so they are bucket-resolution approximations; the mean
    /// batch size is scaled by 1000 to survive the integer wire format.
    pub fn snapshot(&self) -> StatsFrame {
        let q = |h: &LogHistogram, p: f64| h.quantile(p).unwrap_or(0);
        let entries = vec![
            ("connections".to_string(), self.connections.get()),
            ("accepted".to_string(), self.accepted.get()),
            ("completed".to_string(), self.completed.get()),
            ("shed".to_string(), self.shed.get()),
            ("expired".to_string(), self.expired.get()),
            ("rejected_shutdown".to_string(), self.rejected_shutdown.get()),
            ("protocol_errors".to_string(), self.protocol_errors.get()),
            ("query_errors".to_string(), self.query_errors.get()),
            ("batches".to_string(), self.batches.get()),
            ("batched_requests".to_string(), self.batched_requests.get()),
            ("write_errors".to_string(), self.write_errors.get()),
            ("queue_depth".to_string(), self.queue_depth.load(Ordering::Relaxed)),
            ("mean_batch_x1000".to_string(), (self.mean_batch() * 1000.0).round() as u64),
            ("queue_p50_us".to_string(), q(&self.queue_us, 0.5)),
            ("latency_p50_us".to_string(), q(&self.latency_us, 0.5)),
            ("latency_p95_us".to_string(), q(&self.latency_us, 0.95)),
            ("latency_p99_us".to_string(), q(&self.latency_us, 0.99)),
        ];
        StatsFrame { entries }
    }

    /// One-line human summary for the shutdown log.
    pub fn summary(&self) -> String {
        format!(
            "{} conns, {} accepted, {} completed, {} shed, {} expired, \
             {} shutdown-rejected, {} protocol errors; {} batches \
             (mean size {:.2}), latency {}",
            self.connections.get(),
            self.accepted.get(),
            self.completed.get(),
            self.shed.get(),
            self.expired.get(),
            self.rejected_shutdown.get(),
            self.protocol_errors.get(),
            self.batches.get(),
            self.mean_batch(),
            self.latency_us.summary(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_batch_and_snapshot() {
        let s = ServeStats::new();
        assert_eq!(s.mean_batch(), 0.0);
        s.batches.inc();
        s.batches.inc();
        s.batched_requests.add(7);
        assert!((s.mean_batch() - 3.5).abs() < 1e-12);
        let snap = s.snapshot();
        let get = |name: &str| snap.entries.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("batches"), 2);
        assert_eq!(get("batched_requests"), 7);
        assert_eq!(get("mean_batch_x1000"), 3500);
    }
}
