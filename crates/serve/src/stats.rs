//! Aggregate serving metrics: lock-free counters, gauges, and latency
//! histograms, snapshotted into a [`StatsFrame`] for the `STATS` protocol
//! frame and the shutdown summary, and registered into an
//! [`sknn_obs::Registry`] for the Prometheus metrics endpoint.
//!
//! The per-stage histograms decompose `latency_us` along the request's
//! path: admission queue wait → micro-batch linger → engine execution
//! (itself split into the four MR3 steps) — plus the pager stall time of
//! the batch the request rode in. Stage sums are ≤ the end-to-end
//! latency; the remainder is dispatch overhead and reply writing.

use crate::protocol::StatsFrame;
use sknn_obs::{Counter, LogHistogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters shared by the accept loop, per-connection readers, and the
/// dispatcher. Everything is monotonic except `queue_depth`, a gauge.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: Counter,
    /// Requests admitted to the queue.
    pub accepted: Counter,
    /// Requests answered with a successful response.
    pub completed: Counter,
    /// Requests shed at admission because the queue was full.
    pub shed: Counter,
    /// Requests dropped at dequeue because their deadline had expired.
    pub expired: Counter,
    /// Requests rejected because the server was draining.
    pub rejected_shutdown: Counter,
    /// Malformed or unexpected frames received.
    pub protocol_errors: Counter,
    /// Queries that ran but returned a typed engine error.
    pub query_errors: Counter,
    /// Requests withdrawn from the queue by a `CANCEL` frame (v3).
    pub cancelled: Counter,
    /// `CANCEL` frames that missed (request already executing, unknown,
    /// or already answered).
    pub cancel_misses: Counter,
    /// Successful responses that carried a degradation marker.
    pub degraded: Counter,
    /// Requests captured by the slow-query log.
    pub slow_captured: Counter,
    /// Micro-batches dispatched to the engine.
    pub batches: Counter,
    /// Requests executed across all batches (`batched_requests / batches`
    /// is the mean coalescing factor — the adaptive batcher's yield).
    pub batched_requests: Counter,
    /// Reply writes that failed (client gone mid-flight).
    pub write_errors: Counter,
    /// Dijkstra priority-queue pushes across all served queries.
    pub dijkstra_pushes: Counter,
    /// Dijkstra priority-queue pops across all served queries.
    pub dijkstra_pops: Counter,
    /// Dijkstra stale pops (superseded entries discarded on pop).
    pub dijkstra_stale_pops: Counter,
    /// Dijkstra nodes settled across all served queries.
    pub dijkstra_settled: Counter,
    /// Requests currently queued (gauge).
    pub queue_depth: AtomicU64,
    /// Time spent waiting in the queue (arrival → dispatcher pickup), µs.
    pub queue_us: LogHistogram,
    /// Time between dispatcher pickup and batch execution start, µs.
    pub linger_us: LogHistogram,
    /// Engine batch execution time, recorded once per request, µs.
    pub exec_us: LogHistogram,
    /// Engine step 1 (2D k-NN seeding) per-request wall time, µs.
    pub stage_knn2d_us: LogHistogram,
    /// Engine step 2 (radius estimation) per-request wall time, µs.
    pub stage_radius_us: LogHistogram,
    /// Engine step 3 (planar range query) per-request wall time, µs.
    pub stage_range_us: LogHistogram,
    /// Engine step 4 (iterative ranking) per-request wall time, µs.
    pub stage_rank_us: LogHistogram,
    /// Pager stall wall time per batch (recorded once per batch), µs.
    pub stall_us: LogHistogram,
    /// End-to-end server-side latency (enqueue to reply), microseconds.
    pub latency_us: LogHistogram,
    /// Micro-batch sizes.
    pub batch_size: LogHistogram,
}

impl ServeStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean requests per dispatched micro-batch (0 before any batch).
    pub fn mean_batch(&self) -> f64 {
        let batches = self.batches.get();
        if batches == 0 {
            0.0
        } else {
            self.batched_requests.get() as f64 / batches as f64
        }
    }

    /// Snapshot for the `STATS` frame. Quantiles come from the log2
    /// histograms, so they are bucket-resolution approximations; the mean
    /// batch size is scaled by 1000 to survive the integer wire format.
    ///
    /// Every quantile entry is paired with an `_n` sample-count entry for
    /// its histogram, so a reader can tell "p50 of nothing" (count 0,
    /// quantile reported 0) from a genuine sub-microsecond p50.
    pub fn snapshot(&self) -> StatsFrame {
        let q = |h: &LogHistogram, p: f64| h.quantile(p).unwrap_or(0);
        let entries = vec![
            ("connections".to_string(), self.connections.get()),
            ("accepted".to_string(), self.accepted.get()),
            ("completed".to_string(), self.completed.get()),
            ("shed".to_string(), self.shed.get()),
            ("expired".to_string(), self.expired.get()),
            ("rejected_shutdown".to_string(), self.rejected_shutdown.get()),
            ("protocol_errors".to_string(), self.protocol_errors.get()),
            ("query_errors".to_string(), self.query_errors.get()),
            ("cancelled".to_string(), self.cancelled.get()),
            ("cancel_misses".to_string(), self.cancel_misses.get()),
            ("degraded".to_string(), self.degraded.get()),
            ("slow_captured".to_string(), self.slow_captured.get()),
            ("batches".to_string(), self.batches.get()),
            ("batched_requests".to_string(), self.batched_requests.get()),
            ("write_errors".to_string(), self.write_errors.get()),
            ("dijkstra_pushes".to_string(), self.dijkstra_pushes.get()),
            ("dijkstra_pops".to_string(), self.dijkstra_pops.get()),
            ("dijkstra_stale_pops".to_string(), self.dijkstra_stale_pops.get()),
            ("dijkstra_settled".to_string(), self.dijkstra_settled.get()),
            ("queue_depth".to_string(), self.queue_depth.load(Ordering::Relaxed)),
            ("mean_batch_x1000".to_string(), (self.mean_batch() * 1000.0).round() as u64),
            ("queue_p50_us".to_string(), q(&self.queue_us, 0.5)),
            ("queue_us_n".to_string(), self.queue_us.count()),
            ("linger_p50_us".to_string(), q(&self.linger_us, 0.5)),
            ("linger_us_n".to_string(), self.linger_us.count()),
            ("latency_p50_us".to_string(), q(&self.latency_us, 0.5)),
            ("latency_p95_us".to_string(), q(&self.latency_us, 0.95)),
            ("latency_p99_us".to_string(), q(&self.latency_us, 0.99)),
            ("latency_us_n".to_string(), self.latency_us.count()),
        ];
        StatsFrame { entries }
    }

    /// Registers every counter, the queue-depth gauge, and all latency
    /// histograms into `reg` under the `sknn_serve_` prefix. Sources are
    /// `Arc` clones, so the registry may outlive the server loop.
    pub fn register_into(self: &Arc<Self>, reg: &Registry<'_>) {
        macro_rules! counters {
            ($($field:ident => $help:expr),+ $(,)?) => {$(
                let s = Arc::clone(self);
                reg.counter_fn(
                    concat!("sknn_serve_", stringify!($field), "_total"),
                    $help,
                    move || s.$field.get(),
                );
            )+};
        }
        counters! {
            connections => "Connections accepted",
            accepted => "Requests admitted to the queue",
            completed => "Requests answered with a successful response",
            shed => "Requests shed at admission (queue full)",
            expired => "Requests dropped at dequeue (deadline expired)",
            rejected_shutdown => "Requests rejected while draining",
            protocol_errors => "Malformed or unexpected frames received",
            query_errors => "Queries returning a typed engine error",
            cancelled => "Requests withdrawn from the queue by CANCEL",
            cancel_misses => "CANCEL frames that missed a queued request",
            degraded => "Successful responses carrying a degradation marker",
            slow_captured => "Requests captured by the slow-query log",
            batches => "Micro-batches dispatched to the engine",
            batched_requests => "Requests executed across all batches",
            write_errors => "Reply writes that failed",
        }
        // Engine hot-path counters live under their own `sknn_dijkstra_`
        // prefix: they describe kernel work (queue traffic, settled
        // nodes), not request plumbing.
        macro_rules! dijkstra {
            ($($field:ident => $name:expr, $help:expr);+ $(;)?) => {$(
                let s = Arc::clone(self);
                reg.counter_fn($name, $help, move || s.$field.get());
            )+};
        }
        dijkstra! {
            dijkstra_pushes => "sknn_dijkstra_pushes_total",
                "Dijkstra priority-queue pushes across served queries";
            dijkstra_pops => "sknn_dijkstra_pops_total",
                "Dijkstra priority-queue pops across served queries";
            dijkstra_stale_pops => "sknn_dijkstra_stale_pops_total",
                "Dijkstra stale pops (superseded entries discarded)";
            dijkstra_settled => "sknn_dijkstra_settled_total",
                "Dijkstra nodes settled across served queries";
        }
        let s = Arc::clone(self);
        reg.gauge_fn("sknn_serve_queue_depth", "Requests currently queued", move || {
            s.queue_depth.load(Ordering::Relaxed) as f64
        });
        macro_rules! hists {
            ($($field:ident => $help:expr),+ $(,)?) => {$(
                let s = Arc::clone(self);
                reg.histogram_fn(
                    concat!("sknn_serve_", stringify!($field)),
                    $help,
                    "",
                    move || s.$field.snapshot(),
                );
            )+};
        }
        hists! {
            queue_us => "Admission queue wait, microseconds",
            linger_us => "Micro-batch linger share of latency, microseconds",
            exec_us => "Engine batch execution time per request, microseconds",
            stage_knn2d_us => "MR3 step 1 (2D k-NN seeding) wall time, microseconds",
            stage_radius_us => "MR3 step 2 (radius estimation) wall time, microseconds",
            stage_range_us => "MR3 step 3 (planar range query) wall time, microseconds",
            stage_rank_us => "MR3 step 4 (iterative ranking) wall time, microseconds",
            stall_us => "Pager stall wall time per batch, microseconds",
            latency_us => "End-to-end server-side latency, microseconds",
            batch_size => "Micro-batch sizes",
        }
    }

    /// One-line human summary for the shutdown log.
    pub fn summary(&self) -> String {
        format!(
            "{} conns, {} accepted, {} completed, {} shed, {} expired, \
             {} shutdown-rejected, {} protocol errors; {} batches \
             (mean size {:.2}), latency {}",
            self.connections.get(),
            self.accepted.get(),
            self.completed.get(),
            self.shed.get(),
            self.expired.get(),
            self.rejected_shutdown.get(),
            self.protocol_errors.get(),
            self.batches.get(),
            self.mean_batch(),
            self.latency_us.summary(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_batch_and_snapshot() {
        let s = ServeStats::new();
        assert_eq!(s.mean_batch(), 0.0);
        s.batches.inc();
        s.batches.inc();
        s.batched_requests.add(7);
        let snap = s.snapshot();
        let get = |name: &str| snap.entries.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("batches"), 2);
        assert_eq!(get("batched_requests"), 7);
        assert_eq!(get("mean_batch_x1000"), 3500);
    }

    /// The `_n` entries disambiguate the quantile fallback: an empty
    /// histogram reports quantile 0 *and* count 0; a populated one whose
    /// samples all landed in bucket 0 reports quantile 0 with a nonzero
    /// count.
    #[test]
    fn snapshot_counts_disambiguate_zero_quantiles() {
        let s = ServeStats::new();
        let get =
            |snap: &StatsFrame, name: &str| snap.entries.iter().find(|(n, _)| n == name).unwrap().1;
        let empty = s.snapshot();
        assert_eq!(get(&empty, "latency_p50_us"), 0);
        assert_eq!(get(&empty, "latency_us_n"), 0);
        s.latency_us.record(0);
        s.latency_us.record(0);
        let populated = s.snapshot();
        assert_eq!(get(&populated, "latency_p50_us"), 0);
        assert_eq!(get(&populated, "latency_us_n"), 2);
    }

    #[test]
    fn registry_exposes_counters_and_histograms() {
        let s = Arc::new(ServeStats::new());
        s.accepted.inc();
        s.latency_us.record(100);
        let reg = Registry::new();
        s.register_into(&reg);
        let text = reg.render();
        assert!(text.contains("sknn_serve_accepted_total 1"), "{text}");
        assert!(text.contains("sknn_dijkstra_pushes_total 0"), "{text}");
        assert!(text.contains("sknn_serve_latency_us_count 1"), "{text}");
        assert!(text.contains("sknn_serve_queue_depth 0"), "{text}");
    }
}
