//! Persistent multiplexed connections: one long-lived socket per peer,
//! many requests in flight at once, demultiplexed by request id.
//!
//! The blocking [`Client`](crate::client::Client) opens a connection and
//! matches replies by arrival order — fine for a load generator's
//! one-in-one-out loops, useless for a router that keeps several
//! operations in flight to several shards and wants answers as they
//! land. A [`PoolClient`] owns one connection per peer:
//!
//! * a single writer, serialized by a mutex, assigns wire-unique request
//!   ids ([`PoolClient::next_req_id`]) and sends frames back to back;
//! * a reader thread demultiplexes every inbound frame by its `req_id`
//!   into per-request channels, so callers [`InFlight::wait`] only for
//!   their own reply;
//! * reconnection is lazy: a dead socket fails all in-flight requests
//!   with [`PoolError::ConnectionLost`], and the next send dials afresh.
//!   An epoch counter keeps a stale reader (from a replaced connection)
//!   from failing requests that belong to its successor;
//! * [`PoolClient::cancel`] is fire-and-forget: it writes a `CANCEL`
//!   frame (protocol v3) without consuming the pending slot — if the
//!   cancel wins, the reply is a typed `Cancelled` error; if it loses,
//!   the real answer arrives. Either way exactly one frame lands.
//!
//! Only frames that carry a `req_id` (responses, errors, and the shard
//! operation replies) can ride a pooled connection; `STATS` and
//! `TRACE_DUMP` have no id and belong on a plain [`Client`].
//!
//! [`Client`]: crate::client::Client

use crate::protocol::{read_frame, write_frame, CancelFrame, Frame, ProtocolError, RecvError};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long a lazy reconnect waits for the TCP handshake.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Why a pooled request failed.
#[derive(Debug)]
pub enum PoolError {
    /// The connection died with the request in flight. The request may
    /// or may not have executed on the peer; retrying is the caller's
    /// call.
    ConnectionLost,
    /// No reply within the caller's wait budget. The pending slot is
    /// released, so a late reply is silently dropped.
    Timeout,
    /// Dialing or writing failed.
    Io(io::Error),
    /// The peer sent bytes that were not a valid frame (the connection
    /// is torn down).
    Protocol(ProtocolError),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ConnectionLost => f.write_str("connection lost mid-flight"),
            PoolError::Timeout => f.write_str("timed out awaiting reply"),
            PoolError::Io(e) => write!(f, "i/o error: {e}"),
            PoolError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for PoolError {}

type PendingMap = HashMap<u64, SyncSender<Result<Frame, PoolError>>>;

struct Shared {
    addr: String,
    /// The write half. `None` means disconnected; the next send dials.
    write: Mutex<Option<TcpStream>>,
    /// In-flight requests awaiting their reply, keyed by `req_id`.
    pending: Mutex<PendingMap>,
    /// Bumped on every successful dial; a reader that observes a
    /// mismatch on exit belongs to a replaced connection and must not
    /// touch shared state.
    epoch: AtomicU64,
    /// Monotonic request-id source (wire-unique per pool).
    req_ids: AtomicU64,
    /// Whether the pool believes the peer reachable (last dial/IO).
    healthy: AtomicBool,
}

/// One persistent, multiplexed connection to a peer. Cheap to share
/// (`Clone` is an `Arc` bump); all methods take `&self`.
#[derive(Clone)]
pub struct PoolClient {
    shared: Arc<Shared>,
}

/// A request that has been written and awaits its reply. Dropping it
/// releases the pending slot (a late reply is discarded).
pub struct InFlight {
    shared: Arc<Shared>,
    /// The request id this flight is keyed on.
    pub req_id: u64,
    rx: Receiver<Result<Frame, PoolError>>,
}

impl PoolClient {
    /// A pool for `addr`. No connection is made until the first send.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            shared: Arc::new(Shared {
                addr: addr.into(),
                write: Mutex::new(None),
                pending: Mutex::new(HashMap::new()),
                epoch: AtomicU64::new(0),
                req_ids: AtomicU64::new(1),
                healthy: AtomicBool::new(false),
            }),
        }
    }

    /// The peer address this pool dials.
    pub fn addr(&self) -> &str {
        &self.shared.addr
    }

    /// A fresh request id, unique across this pool's lifetime. Callers
    /// stamp it into the frame they pass to [`begin`](Self::begin).
    pub fn next_req_id(&self) -> u64 {
        self.shared.req_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether the peer is reachable: reuses the live connection or
    /// dials. A `false` marks the pool unhealthy until a dial succeeds.
    pub fn health(&self) -> bool {
        let mut w = self.shared.write.lock().unwrap_or_else(|e| e.into_inner());
        ensure_conn(&self.shared, &mut w).is_ok()
    }

    /// Whether the last dial or write succeeded (no I/O performed).
    pub fn last_healthy(&self) -> bool {
        self.shared.healthy.load(Ordering::Relaxed)
    }

    /// Sends `frame` (which must carry a `req_id` from
    /// [`next_req_id`](Self::next_req_id)) and returns the in-flight
    /// handle to wait on. The pending slot is registered before the
    /// write, so a reply can never race past its waiter.
    pub fn begin(&self, req_id: u64, frame: &Frame) -> Result<InFlight, PoolError> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.shared.pending.lock().unwrap_or_else(|e| e.into_inner()).insert(req_id, tx);
        let mut w = self.shared.write.lock().unwrap_or_else(|e| e.into_inner());
        let send = ensure_conn(&self.shared, &mut w)
            .and_then(|()| write_frame(w.as_mut().expect("ensured"), frame));
        drop(w);
        if let Err(e) = send {
            self.shared.pending.lock().unwrap_or_else(|e| e.into_inner()).remove(&req_id);
            self.drop_conn();
            return Err(PoolError::Io(e));
        }
        Ok(InFlight { shared: Arc::clone(&self.shared), req_id, rx })
    }

    /// [`begin`](Self::begin) + [`wait`](InFlight::wait): one round trip.
    pub fn call(&self, req_id: u64, frame: &Frame, timeout: Duration) -> Result<Frame, PoolError> {
        self.begin(req_id, frame)?.wait(timeout)
    }

    /// Fire-and-forget `CANCEL` for a request previously begun on this
    /// pool. Does not consume the pending slot: the reply (a typed
    /// `Cancelled` error if the cancel won, the real answer if it lost)
    /// still resolves the original [`InFlight`]. Write errors are
    /// swallowed — a dead connection has already failed the flight.
    pub fn cancel(&self, req_id: u64, trace_id: u64) {
        let mut w = self.shared.write.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = w.as_mut() {
            let frame = Frame::Cancel(CancelFrame { req_id, trace_id });
            if write_frame(stream, &frame).is_err() {
                drop(w);
                self.drop_conn();
            }
        }
    }

    /// Tears down the current connection (reader exits; in-flight
    /// requests fail with [`PoolError::ConnectionLost`]).
    fn drop_conn(&self) {
        self.shared.healthy.store(false, Ordering::Relaxed);
        let stream = self.shared.write.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(s) = stream {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for InFlight {
    fn drop(&mut self) {
        // Release the slot so a late reply (or a reply to an abandoned
        // request) is discarded instead of leaking map entries.
        self.shared.pending.lock().unwrap_or_else(|e| e.into_inner()).remove(&self.req_id);
    }
}

impl InFlight {
    /// Blocks for the reply up to `timeout`.
    pub fn wait(self, timeout: Duration) -> Result<Frame, PoolError> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => Err(PoolError::Timeout),
            // Sender gone without a value: the reader died between
            // failing the map and our receive — same as a lost
            // connection.
            Err(RecvTimeoutError::Disconnected) => Err(PoolError::ConnectionLost),
        }
        // `self` drops here, releasing the pending slot.
    }
}

/// Dials if disconnected; on success the reader thread for the new
/// connection is running and `*w` is `Some`.
fn ensure_conn(shared: &Arc<Shared>, w: &mut Option<TcpStream>) -> io::Result<()> {
    if w.is_some() {
        return Ok(());
    }
    let dial = || -> io::Result<TcpStream> {
        let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no addresses resolved");
        for addr in shared.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
                Ok(s) => return Ok(s),
                Err(e) => last = e,
            }
        }
        Err(last)
    };
    let stream = match dial() {
        Ok(s) => s,
        Err(e) => {
            shared.healthy.store(false, Ordering::Relaxed);
            return Err(e);
        }
    };
    stream.set_nodelay(true)?;
    let read_half = stream.try_clone()?;
    let epoch = shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
    let reader_shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("sknn-pool-reader-{epoch}"))
        .spawn(move || reader_loop(reader_shared, read_half, epoch))
        .map_err(io::Error::other)?;
    *w = Some(stream);
    shared.healthy.store(true, Ordering::Relaxed);
    Ok(())
}

/// Demultiplexes inbound frames into pending slots until the connection
/// dies, then (if this connection is still the current one) fails every
/// in-flight request and clears the write half for a lazy redial.
fn reader_loop(shared: Arc<Shared>, mut stream: TcpStream, epoch: u64) {
    let fatal: PoolError = loop {
        match read_frame(&mut stream) {
            Ok(frame) => {
                let Some(req_id) = frame_req_id(&frame) else {
                    // Stats / trace dumps carry no request id; a pooled
                    // connection never asks for them, so drop silently.
                    continue;
                };
                let waiter =
                    shared.pending.lock().unwrap_or_else(|e| e.into_inner()).remove(&req_id);
                if let Some(tx) = waiter {
                    // A dropped waiter (abandoned flight) is fine.
                    let _ = tx.send(Ok(frame));
                }
            }
            Err(RecvError::Closed) => break PoolError::ConnectionLost,
            Err(RecvError::Io(_)) => break PoolError::ConnectionLost,
            Err(RecvError::Protocol(e)) => break PoolError::Protocol(e),
        }
    };
    // Stale-reader guard: if a newer connection exists, its reader owns
    // the pending map and the write half — touch nothing.
    let mut w = shared.write.lock().unwrap_or_else(|e| e.into_inner());
    if shared.epoch.load(Ordering::SeqCst) != epoch {
        return;
    }
    *w = None;
    shared.healthy.store(false, Ordering::Relaxed);
    drop(w);
    let drained: Vec<_> = {
        let mut p = shared.pending.lock().unwrap_or_else(|e| e.into_inner());
        p.drain().collect()
    };
    let mut fatal = Some(fatal);
    for (_, tx) in drained {
        // The first waiter gets the real cause; the rest get the generic
        // loss (PoolError is not Clone because io::Error is not).
        let err = fatal.take().unwrap_or(PoolError::ConnectionLost);
        let _ = tx.send(Err(err));
    }
}

/// The request id a server→client frame answers, if it carries one.
fn frame_req_id(frame: &Frame) -> Option<u64> {
    match frame {
        Frame::Response(r) => Some(r.req_id),
        Frame::Error(e) => Some(e.req_id),
        Frame::Seeds(s) => Some(s.req_id),
        Frame::Range(r) => Some(r.req_id),
        Frame::Radius(r) => Some(r.req_id),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{write_frame, ErrorCode, ErrorFrame, HEADER_LEN};
    use std::io::Write;
    use std::net::TcpListener;

    /// A trivial echo peer: answers every inbound frame with an error
    /// frame carrying the same req_id, in whatever order `reorder` says.
    fn spawn_peer(reorder: bool) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut pending: Vec<u64> = Vec::new();
            loop {
                match read_frame(&mut s) {
                    Ok(f) => {
                        if let Some(id) = frame_req_id_req(&f) {
                            pending.push(id);
                        }
                        let flush = if reorder { pending.len() >= 2 } else { true };
                        if flush {
                            if reorder {
                                pending.reverse();
                            }
                            for id in pending.drain(..) {
                                let reply = Frame::Error(ErrorFrame {
                                    req_id: id,
                                    code: ErrorCode::BadRequest,
                                    detail: format!("echo {id}"),
                                });
                                write_frame(&mut s, &reply).unwrap();
                            }
                        }
                    }
                    Err(_) => return,
                }
            }
        });
        (addr, h)
    }

    /// Request-side req_id (test peer helper).
    fn frame_req_id_req(frame: &Frame) -> Option<u64> {
        match frame {
            Frame::Query(q) => Some(q.req_id),
            Frame::SeedsRequest(s) => Some(s.req_id),
            _ => None,
        }
    }

    fn query(req_id: u64) -> Frame {
        Frame::Query(crate::protocol::QueryFrame {
            req_id,
            tri: 0,
            x: 0.0,
            y: 0.0,
            z: 0.0,
            k: 1,
            deadline_ms: 0,
            trace_id: req_id,
        })
    }

    #[test]
    fn replies_demux_by_req_id_even_reordered() {
        let (addr, _h) = spawn_peer(true);
        let pool = PoolClient::new(addr.to_string());
        let a = pool.next_req_id();
        let b = pool.next_req_id();
        let fa = pool.begin(a, &query(a)).unwrap();
        let fb = pool.begin(b, &query(b)).unwrap();
        // Peer flushes both replies in reverse order; each flight still
        // gets its own.
        let ra = fa.wait(Duration::from_secs(5)).unwrap();
        let rb = fb.wait(Duration::from_secs(5)).unwrap();
        match (ra, rb) {
            (Frame::Error(ea), Frame::Error(eb)) => {
                assert_eq!(ea.req_id, a);
                assert_eq!(eb.req_id, b);
            }
            other => panic!("unexpected frames: {other:?}"),
        }
    }

    #[test]
    fn dead_peer_fails_in_flight_and_reconnects() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // First connection: read the request header, then hang up.
        let l2 = listener.try_clone().unwrap();
        let peer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut hdr = [0u8; HEADER_LEN];
            use std::io::Read;
            let _ = s.read_exact(&mut hdr);
            drop(s);
            // Second connection: behave.
            let (mut s, _) = l2.accept().unwrap();
            if let Ok(f) = read_frame(&mut s) {
                if let Some(id) = frame_req_id_req(&f) {
                    let reply = Frame::Error(ErrorFrame {
                        req_id: id,
                        code: ErrorCode::BadRequest,
                        detail: "ok".into(),
                    });
                    let _ = write_frame(&mut s, &reply);
                }
            }
            let _ = s.flush();
            std::thread::sleep(Duration::from_millis(100));
        });
        let pool = PoolClient::new(addr.to_string());
        let id = pool.next_req_id();
        let flight = pool.begin(id, &query(id)).unwrap();
        match flight.wait(Duration::from_secs(5)) {
            Err(PoolError::ConnectionLost) => {}
            other => panic!("expected ConnectionLost, got {other:?}"),
        }
        assert!(!pool.last_healthy());
        // Lazy reconnect on the next begin.
        let id2 = pool.next_req_id();
        let reply = pool.call(id2, &query(id2), Duration::from_secs(5)).unwrap();
        match reply {
            Frame::Error(e) => assert_eq!(e.req_id, id2),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(pool.last_healthy());
        peer.join().unwrap();
    }

    #[test]
    fn timeout_releases_the_pending_slot() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _keep = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(300));
            drop(s);
        });
        let pool = PoolClient::new(addr.to_string());
        let id = pool.next_req_id();
        let flight = pool.begin(id, &query(id)).unwrap();
        match flight.wait(Duration::from_millis(20)) {
            Err(PoolError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(pool.shared.pending.lock().unwrap().is_empty(), "slot must be released");
    }
}
