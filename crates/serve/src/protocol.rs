//! The `sknn` wire protocol: length-prefixed binary frames.
//!
//! Every frame is a fixed 12-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"SKNN"
//!      4     2  protocol version (little-endian u16, 1..=3)
//!      6     1  frame type tag
//!      7     1  reserved (must be 0 on send, ignored on receive)
//!      8     4  payload length (little-endian u32, <= MAX_PAYLOAD)
//! ```
//!
//! All integers are little-endian; `f64` values travel as their IEEE-754
//! bit patterns (`to_bits`/`from_bits`), so a decoded frame re-encodes to
//! the identical byte string — the property the round-trip proptests pin
//! down, and what makes the end-to-end "server result == direct engine
//! call" comparison exact rather than approximate.
//!
//! # Versioning
//!
//! The version travels per frame, and both ends accept the whole
//! [`MIN_VERSION`]`..=`[`VERSION`] range. Version 2 extends version 1
//! with request telemetry:
//!
//! * [`QueryFrame`] carries a `trace_id` (appended; 0 = "server mints"),
//! * [`ResponseFrame`] echoes the `trace_id` and carries the full
//!   per-stage [`ServerTiming`] breakdown (v1 encodes only
//!   queue/exec/batch),
//! * the `TRACE_DUMP_REQUEST` / `TRACE_DUMP` frames (slow-query JSONL
//!   retrieval) exist only in v2.
//!
//! Negotiation is implicit: the server replies to each request in the
//! version the request arrived in, so an old client never sees fields it
//! cannot parse, and a new client talking to an old server gets a typed
//! [`ProtocolError::BadVersion`] rejection it can downgrade on. Decoding
//! a v1 payload fills the v2-only fields with their zero values.
//!
//! Version 3 adds the sharded-serving vocabulary:
//!
//! * [`CancelFrame`] — withdraw a queued request (router cancels fan-out
//!   legs whose answer the merged bound already proves irrelevant); a
//!   cancelled request is answered with [`ErrorCode::Cancelled`],
//! * [`ResponseFrame`] carries the step-2 search `radius` (`0.0` from
//!   older frames), the router's straddle test,
//! * the shard-op frames ([`SeedsRequestFrame`]/[`SeedsFrame`],
//!   [`RangeRequestFrame`]/[`RangeFrame`], [`RadiusRequestFrame`]/
//!   [`RadiusFrame`], [`ExecRequestFrame`]) that decompose MR3 across a
//!   fleet: per-shard 2D seeding and range collection, then one coupled
//!   ranking run over the merged candidate list on the home shard.
//!
//! None of the v3 tags are valid in a v1/v2 header — a forged one is a
//! typed [`ProtocolError::UnknownFrameType`].
//!
//! Decoding is total: any byte string produces either a frame or a typed
//! [`ProtocolError`], never a panic. The payload-length cap bounds every
//! allocation before it happens, including the per-list counts inside
//! payloads (a claimed element count is checked against the bytes actually
//! present before a vector is reserved).

use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SKNN";

/// Current (highest supported) protocol version. Frames carrying any
/// version in [`MIN_VERSION`]`..=VERSION` are accepted; others are
/// rejected with [`ProtocolError::BadVersion`].
pub const VERSION: u16 = 3;

/// Oldest protocol version still decoded (v1: no trace ids, three-field
/// timing, no trace-dump frames).
pub const MIN_VERSION: u16 = 1;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a payload. Frames claiming more are rejected before any
/// allocation happens, so a hostile length field cannot balloon memory.
pub const MAX_PAYLOAD: u32 = 4 << 20;

/// Sentinel triangle id in a [`QueryFrame`]: the query point carries only
/// plan coordinates `(x, y)` and the server locates the containing facet
/// itself (`Scene::surface_point`). Any other value names the facet
/// directly and `z` must be the surface height.
pub const LOCATE_TRI: u32 = u32::MAX;

const TAG_QUERY: u8 = 1;
const TAG_RESPONSE: u8 = 2;
const TAG_ERROR: u8 = 3;
const TAG_STATS_REQUEST: u8 = 4;
const TAG_STATS: u8 = 5;
const TAG_TRACE_DUMP_REQUEST: u8 = 6;
const TAG_TRACE_DUMP: u8 = 7;
const TAG_CANCEL: u8 = 8;
const TAG_SEEDS_REQUEST: u8 = 9;
const TAG_SEEDS: u8 = 10;
const TAG_RANGE_REQUEST: u8 = 11;
const TAG_RANGE: u8 = 12;
const TAG_RADIUS_REQUEST: u8 = 13;
const TAG_RADIUS: u8 = 14;
const TAG_EXEC_REQUEST: u8 = 15;

/// A surface k-NN request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFrame {
    /// Client-chosen correlation id, echoed verbatim in the reply. Replies
    /// may arrive out of order (different micro-batches finish at
    /// different times), so clients match on this, not on arrival order.
    pub req_id: u64,
    /// Containing facet of the query point, or [`LOCATE_TRI`] to have the
    /// server locate it from `(x, y)`.
    pub tri: u32,
    /// Query point x (bit-exact f64).
    pub x: f64,
    /// Query point y.
    pub y: f64,
    /// Query point z (surface height; ignored when `tri` is [`LOCATE_TRI`]).
    pub z: f64,
    /// Number of neighbors requested.
    pub k: u32,
    /// Per-request deadline in milliseconds from arrival; `0` means none.
    pub deadline_ms: u32,
    /// Client-supplied trace id stamping every obs record this request
    /// produces; `0` asks the server to mint one (echoed in the reply
    /// either way). v2 only — decoding a v1 frame yields 0.
    pub trace_id: u64,
}

/// One ranked neighbor on the wire: object id plus its surface-distance
/// range `[lb, ub]`, bit-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireNeighbor {
    /// Object id.
    pub id: u32,
    /// Surface distance lower bound.
    pub lb: f64,
    /// Surface distance upper bound.
    pub ub: f64,
}

/// Server-side timing attached to every successful response.
///
/// v1 carries only `queue_us`, `exec_us`, and `batch`; the per-stage
/// fields are a v2 extension and decode as 0 from a v1 frame. The four
/// engine-stage fields are per-request wall time inside the engine call;
/// `stall_us` is the pager stall of the whole batch (stalls overlap
/// across batch members, so per-request attribution is not defined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerTiming {
    /// Microseconds the request waited in the admission queue (arrival to
    /// dispatcher pickup).
    pub queue_us: u32,
    /// Microseconds between dispatcher pickup and batch execution start —
    /// the micro-batcher's linger share of this request's latency.
    pub linger_us: u32,
    /// Microseconds the micro-batch spent in `Engine::try_query_batch_at`.
    pub exec_us: u32,
    /// Engine step 1 (2D k-NN seeding) wall time for this request.
    pub knn2d_us: u32,
    /// Engine step 2 (radius estimation) wall time for this request.
    pub radius_us: u32,
    /// Engine step 3 (planar range query) wall time for this request.
    pub range_us: u32,
    /// Engine step 4 (iterative ranking) wall time for this request.
    pub rank_us: u32,
    /// Pager stall wall time of the batch this request rode in.
    pub stall_us: u32,
    /// Number of requests coalesced into the batch that served this one.
    pub batch: u16,
}

/// A successful k-NN reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// Echo of the request's correlation id.
    pub req_id: u64,
    /// The request's trace id (client-supplied or server-minted) — the
    /// key into metrics-endpoint slow-query dumps and server traces.
    /// v2 only; 0 when decoded from a v1 frame.
    pub trace_id: u64,
    /// The k nearest objects, ascending by distance estimate.
    pub neighbors: Vec<WireNeighbor>,
    /// Set when the result is valid but looser than a fault-free,
    /// deadline-free run would deliver (e.g. `"DeadlineExpired"`).
    pub degraded: Option<String>,
    /// Queue/execution timing and batch size for this request.
    pub timing: ServerTiming,
    /// The MR3 step-2 search radius this answer was computed under — the
    /// router's straddle test (a query whose radius-circle stays inside
    /// one tile is fully answered by that tile's shard). v3 only; `0.0`
    /// when decoded from an older frame or when the engine reported none.
    pub radius: f64,
}

/// One object on the wire: id plus its located surface point, enough for
/// a peer to rebuild the engine's candidate without a local object table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireObject {
    /// Object id (global across the fleet — shards keep genesis ids).
    pub id: u32,
    /// Containing facet of the object's surface point.
    pub tri: u32,
    /// Surface point x (bit-exact f64).
    pub x: f64,
    /// Surface point y.
    pub y: f64,
    /// Surface point z.
    pub z: f64,
}

const WIRE_OBJECT_LEN: usize = 28;

/// Withdraw a queued request (v3 only). The target removes the request
/// from its admission lanes if still queued and answers it with
/// [`ErrorCode::Cancelled`]; a request already executing runs to
/// completion (a cancel miss — counted, not an error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelFrame {
    /// Correlation id of the request to withdraw.
    pub req_id: u64,
    /// Trace id the request carried — both must match for the cancel to
    /// land, so a recycled `req_id` cannot kill a stranger's request.
    pub trace_id: u64,
}

/// Shard op: return the k nearest *live objects by 2D plan distance* to
/// `(x, y)` (MR3 step 1 restricted to this shard's tile). v3 only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedsRequestFrame {
    /// Correlation id, echoed in the [`SeedsFrame`] reply.
    pub req_id: u64,
    /// Trace id stamping the shard's obs records for this leg.
    pub trace_id: u64,
    /// Query plan x.
    pub x: f64,
    /// Query plan y.
    pub y: f64,
    /// Number of seeds requested.
    pub k: u32,
    /// Per-request deadline in milliseconds from arrival; `0` means none.
    pub deadline_ms: u32,
}

/// Reply to [`SeedsRequestFrame`]: this shard's local 2D k-NN seeds,
/// ascending by `(dist, id)` — the canonical order the router's merge
/// preserves. v3 only.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedsFrame {
    /// Echo of the request's correlation id.
    pub req_id: u64,
    /// Echo of the request's trace id.
    pub trace_id: u64,
    /// `(2D plan distance, object)` pairs, ascending by `(dist, id)`.
    pub seeds: Vec<(f64, WireObject)>,
}

/// Shard op: return every live object within 2D plan distance `radius`
/// of `(x, y)` (MR3 step 3 restricted to this shard's tile). A
/// non-finite radius means "every live object" — the engine's degenerate
/// fallback when radius estimation hit its deadline. v3 only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeRequestFrame {
    /// Correlation id, echoed in the [`RangeFrame`] reply.
    pub req_id: u64,
    /// Trace id stamping the shard's obs records for this leg.
    pub trace_id: u64,
    /// Query plan x.
    pub x: f64,
    /// Query plan y.
    pub y: f64,
    /// 2D search radius (bit-exact; may be non-finite).
    pub radius: f64,
    /// Per-request deadline in milliseconds from arrival; `0` means none.
    pub deadline_ms: u32,
}

/// Reply to [`RangeRequestFrame`]: the in-range objects ascending by id
/// (canonical order; the router's k-way merge preserves it). v3 only.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeFrame {
    /// Echo of the request's correlation id.
    pub req_id: u64,
    /// Echo of the request's trace id.
    pub trace_id: u64,
    /// In-range objects, ascending by id.
    pub objects: Vec<WireObject>,
}

/// Shard op: run MR3 step 2 (radius estimation) on the home shard with
/// an explicit, already-merged seed list — the candidate population and
/// order are the router's, so the estimate is bit-identical to a single
/// engine seeded the same way. v3 only.
#[derive(Debug, Clone, PartialEq)]
pub struct RadiusRequestFrame {
    /// Correlation id, echoed in the [`RadiusFrame`] reply.
    pub req_id: u64,
    /// Trace id stamping the shard's obs records.
    pub trace_id: u64,
    /// Containing facet of the query point, or [`LOCATE_TRI`].
    pub tri: u32,
    /// Query point x.
    pub x: f64,
    /// Query point y.
    pub y: f64,
    /// Query point z.
    pub z: f64,
    /// Per-request deadline in milliseconds from arrival; `0` means none.
    pub deadline_ms: u32,
    /// The globally merged seeds, in canonical `(dist, id)` order.
    pub seeds: Vec<WireObject>,
}

/// Reply to [`RadiusRequestFrame`]. v3 only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiusFrame {
    /// Echo of the request's correlation id.
    pub req_id: u64,
    /// Echo of the request's trace id.
    pub trace_id: u64,
    /// The estimated search radius (bit-exact; may be non-finite).
    pub radius: f64,
}

/// Shard op: run MR3 steps 2+4 (radius + coupled ranking) on the home
/// shard over explicit, router-merged seed and candidate lists, replying
/// with a [`ResponseFrame`] whose neighbors carry up to `k + 1` entries
/// so the router can re-check the `ub(p_k) ≤ lb(p_{k+1})` termination
/// bound itself. v3 only.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecRequestFrame {
    /// Correlation id, echoed in the reply.
    pub req_id: u64,
    /// Trace id stamping the shard's obs records.
    pub trace_id: u64,
    /// Containing facet of the query point, or [`LOCATE_TRI`].
    pub tri: u32,
    /// Query point x.
    pub x: f64,
    /// Query point y.
    pub y: f64,
    /// Query point z.
    pub z: f64,
    /// Number of neighbors requested.
    pub k: u32,
    /// Per-request deadline in milliseconds from arrival; `0` means none.
    pub deadline_ms: u32,
    /// The globally merged seeds, in canonical `(dist, id)` order.
    pub seeds: Vec<WireObject>,
    /// The globally merged in-range candidates, ascending by id.
    pub cands: Vec<WireObject>,
}

/// Why a request was answered with an [`ErrorFrame`] instead of a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The admission queue was full; the request was shed without being
    /// executed. Retry against a less-loaded server (or later).
    Overloaded,
    /// The deadline expired while the request was still queued; it was
    /// dropped at dequeue without being executed.
    DeadlineExpired,
    /// The query ran but storage faults exceeded the engine's per-query
    /// budget (`QueryError::FaultBudgetExceeded`).
    FaultBudgetExceeded,
    /// The server is draining and no longer admits new requests.
    ShuttingDown,
    /// The frame was well-formed but semantically invalid (facet id out of
    /// range, non-finite coordinates, point outside the terrain, or an
    /// unexpected frame type).
    BadRequest,
    /// The request was withdrawn by a [`CancelFrame`] while still queued;
    /// it was never executed (v3 only — a router cancelling a losing
    /// fan-out leg is the expected producer).
    Cancelled,
}

impl ErrorCode {
    fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::DeadlineExpired => 2,
            ErrorCode::FaultBudgetExceeded => 3,
            ErrorCode::ShuttingDown => 4,
            ErrorCode::BadRequest => 5,
            ErrorCode::Cancelled => 6,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExpired,
            3 => ErrorCode::FaultBudgetExceeded,
            4 => ErrorCode::ShuttingDown,
            5 => ErrorCode::BadRequest,
            6 => ErrorCode::Cancelled,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Overloaded => "Overloaded",
            ErrorCode::DeadlineExpired => "DeadlineExpired",
            ErrorCode::FaultBudgetExceeded => "FaultBudgetExceeded",
            ErrorCode::ShuttingDown => "ShuttingDown",
            ErrorCode::BadRequest => "BadRequest",
            ErrorCode::Cancelled => "Cancelled",
        };
        f.write_str(s)
    }
}

/// A typed error reply. Every admitted or rejected request gets exactly
/// one reply — an error frame is the "no" that prevents client hangs.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// Echo of the request's correlation id (0 when the error is not
    /// attributable to a specific request, e.g. a malformed frame).
    pub req_id: u64,
    /// Machine-readable reason.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

/// A server statistics snapshot: ordered `(name, value)` counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsFrame {
    /// Counter name/value pairs, in server-defined order.
    pub entries: Vec<(String, u64)>,
}

/// The slow-query reservoir as JSONL, one object per captured request
/// (v2 only). The text is truncated at a char boundary if it would
/// exceed [`MAX_PAYLOAD`]; each line is self-contained, so truncation
/// loses whole oldest-entries, never syntax.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceDumpFrame {
    /// JSONL body: newline-separated JSON objects.
    pub jsonl: String,
}

/// Any protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: a k-NN request.
    Query(QueryFrame),
    /// Server → client: a successful reply.
    Response(ResponseFrame),
    /// Server → client: a typed failure reply.
    Error(ErrorFrame),
    /// Client → server: ask for a statistics snapshot.
    StatsRequest,
    /// Server → client: the statistics snapshot.
    Stats(StatsFrame),
    /// Client → server: ask for the slow-query JSONL dump (v2 only).
    TraceDumpRequest,
    /// Server → client: the slow-query JSONL dump (v2 only).
    TraceDump(TraceDumpFrame),
    /// Client → server: withdraw a queued request (v3 only).
    Cancel(CancelFrame),
    /// Router → shard: local 2D k-NN seeds (v3 only).
    SeedsRequest(SeedsRequestFrame),
    /// Shard → router: the local seeds (v3 only).
    Seeds(SeedsFrame),
    /// Router → shard: local 2D range collection (v3 only).
    RangeRequest(RangeRequestFrame),
    /// Shard → router: the in-range objects (v3 only).
    Range(RangeFrame),
    /// Router → home shard: radius estimation over merged seeds (v3 only).
    RadiusRequest(RadiusRequestFrame),
    /// Home shard → router: the estimated radius (v3 only).
    Radius(RadiusFrame),
    /// Router → home shard: coupled ranking over merged candidates; the
    /// reply is a [`Frame::Response`] (v3 only).
    ExecRequest(ExecRequestFrame),
}

/// Why a byte string failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version field was outside [`MIN_VERSION`]`..=`[`VERSION`].
    BadVersion(u16),
    /// The frame type tag is not one this version defines.
    UnknownFrameType(u8),
    /// The header claimed a payload larger than [`MAX_PAYLOAD`].
    Oversized {
        /// Claimed payload length.
        len: u32,
    },
    /// The input ended before the field being read was complete.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        got: usize,
    },
    /// The payload parsed but violated an invariant (bad UTF-8, unknown
    /// error code, trailing bytes, a count larger than the payload could
    /// possibly hold).
    Malformed(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            ProtocolError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (supported {MIN_VERSION}..={VERSION})")
            }
            ProtocolError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            ProtocolError::Oversized { len } => {
                write!(f, "payload length {len} exceeds cap {MAX_PAYLOAD}")
            }
            ProtocolError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} more bytes, got {got}")
            }
            ProtocolError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Writes `s` as a u16 length prefix plus UTF-8 bytes, truncating at a
/// char boundary if it exceeds the prefix's range (our strings are short
/// degradation reasons and error details; truncation is a non-event).
fn put_str(out: &mut Vec<u8>, s: &str) {
    let mut end = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    put_u16(out, end as u16);
    out.extend_from_slice(&s.as_bytes()[..end]);
}

/// Writes `s` as a u32 length prefix plus UTF-8 bytes, truncating at a
/// char boundary so the payload stays within [`MAX_PAYLOAD`] (used by the
/// JSONL trace dump, whose lines are independently parseable — dropping a
/// tail loses entries, never syntax).
fn put_str32(out: &mut Vec<u8>, s: &str) {
    let mut end = s.len().min(MAX_PAYLOAD as usize - 4);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    put_u32(out, end as u32);
    out.extend_from_slice(&s.as_bytes()[..end]);
}

fn put_object(out: &mut Vec<u8>, o: &WireObject) {
    put_u32(out, o.id);
    put_u32(out, o.tri);
    put_f64(out, o.x);
    put_f64(out, o.y);
    put_f64(out, o.z);
}

/// Writes a u32 count followed by the objects. Lists this long only occur
/// inside frames whose totals stay under [`MAX_PAYLOAD`]; the count is
/// nevertheless clamped so encoding can never produce an undecodable
/// frame.
fn put_objects(out: &mut Vec<u8>, objs: &[WireObject]) {
    let n = objs.len().min((MAX_PAYLOAD as usize - 4) / WIRE_OBJECT_LEN);
    put_u32(out, n as u32);
    for o in &objs[..n] {
        put_object(out, o);
    }
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Query(_) => TAG_QUERY,
            Frame::Response(_) => TAG_RESPONSE,
            Frame::Error(_) => TAG_ERROR,
            Frame::StatsRequest => TAG_STATS_REQUEST,
            Frame::Stats(_) => TAG_STATS,
            Frame::TraceDumpRequest => TAG_TRACE_DUMP_REQUEST,
            Frame::TraceDump(_) => TAG_TRACE_DUMP,
            Frame::Cancel(_) => TAG_CANCEL,
            Frame::SeedsRequest(_) => TAG_SEEDS_REQUEST,
            Frame::Seeds(_) => TAG_SEEDS,
            Frame::RangeRequest(_) => TAG_RANGE_REQUEST,
            Frame::Range(_) => TAG_RANGE,
            Frame::RadiusRequest(_) => TAG_RADIUS_REQUEST,
            Frame::Radius(_) => TAG_RADIUS,
            Frame::ExecRequest(_) => TAG_EXEC_REQUEST,
        }
    }

    /// Lowest protocol version whose wire format can carry this frame.
    pub fn min_version(&self) -> u16 {
        match self {
            Frame::Cancel(_)
            | Frame::SeedsRequest(_)
            | Frame::Seeds(_)
            | Frame::RangeRequest(_)
            | Frame::Range(_)
            | Frame::RadiusRequest(_)
            | Frame::Radius(_)
            | Frame::ExecRequest(_) => 3,
            Frame::TraceDumpRequest | Frame::TraceDump(_) => 2,
            _ => 1,
        }
    }

    fn encode_payload(&self, version: u16, out: &mut Vec<u8>) {
        match self {
            Frame::Query(q) => {
                put_u64(out, q.req_id);
                put_u32(out, q.tri);
                put_f64(out, q.x);
                put_f64(out, q.y);
                put_f64(out, q.z);
                put_u32(out, q.k);
                put_u32(out, q.deadline_ms);
                if version >= 2 {
                    put_u64(out, q.trace_id);
                }
            }
            Frame::Response(r) => {
                put_u64(out, r.req_id);
                if version >= 2 {
                    put_u64(out, r.trace_id);
                }
                if version >= 3 {
                    put_f64(out, r.radius);
                }
                put_u32(out, r.timing.queue_us);
                if version >= 2 {
                    put_u32(out, r.timing.linger_us);
                }
                put_u32(out, r.timing.exec_us);
                if version >= 2 {
                    put_u32(out, r.timing.knn2d_us);
                    put_u32(out, r.timing.radius_us);
                    put_u32(out, r.timing.range_us);
                    put_u32(out, r.timing.rank_us);
                    put_u32(out, r.timing.stall_us);
                }
                put_u16(out, r.timing.batch);
                match &r.degraded {
                    Some(s) => {
                        out.push(1);
                        put_str(out, s);
                    }
                    None => out.push(0),
                }
                let n = r.neighbors.len().min(u16::MAX as usize);
                put_u16(out, n as u16);
                for nb in &r.neighbors[..n] {
                    put_u32(out, nb.id);
                    put_f64(out, nb.lb);
                    put_f64(out, nb.ub);
                }
            }
            Frame::Error(e) => {
                put_u64(out, e.req_id);
                out.push(e.code.as_u8());
                put_str(out, &e.detail);
            }
            Frame::StatsRequest => {}
            Frame::Stats(s) => {
                let n = s.entries.len().min(u16::MAX as usize);
                put_u16(out, n as u16);
                for (name, value) in &s.entries[..n] {
                    put_str(out, name);
                    put_u64(out, *value);
                }
            }
            Frame::TraceDumpRequest => {}
            Frame::TraceDump(t) => put_str32(out, &t.jsonl),
            Frame::Cancel(c) => {
                put_u64(out, c.req_id);
                put_u64(out, c.trace_id);
            }
            Frame::SeedsRequest(s) => {
                put_u64(out, s.req_id);
                put_u64(out, s.trace_id);
                put_f64(out, s.x);
                put_f64(out, s.y);
                put_u32(out, s.k);
                put_u32(out, s.deadline_ms);
            }
            Frame::Seeds(s) => {
                put_u64(out, s.req_id);
                put_u64(out, s.trace_id);
                let n = s.seeds.len().min((MAX_PAYLOAD as usize - 4) / (WIRE_OBJECT_LEN + 8));
                put_u32(out, n as u32);
                for (dist, obj) in &s.seeds[..n] {
                    put_f64(out, *dist);
                    put_object(out, obj);
                }
            }
            Frame::RangeRequest(r) => {
                put_u64(out, r.req_id);
                put_u64(out, r.trace_id);
                put_f64(out, r.x);
                put_f64(out, r.y);
                put_f64(out, r.radius);
                put_u32(out, r.deadline_ms);
            }
            Frame::Range(r) => {
                put_u64(out, r.req_id);
                put_u64(out, r.trace_id);
                put_objects(out, &r.objects);
            }
            Frame::RadiusRequest(r) => {
                put_u64(out, r.req_id);
                put_u64(out, r.trace_id);
                put_u32(out, r.tri);
                put_f64(out, r.x);
                put_f64(out, r.y);
                put_f64(out, r.z);
                put_u32(out, r.deadline_ms);
                put_objects(out, &r.seeds);
            }
            Frame::Radius(r) => {
                put_u64(out, r.req_id);
                put_u64(out, r.trace_id);
                put_f64(out, r.radius);
            }
            Frame::ExecRequest(e) => {
                put_u64(out, e.req_id);
                put_u64(out, e.trace_id);
                put_u32(out, e.tri);
                put_f64(out, e.x);
                put_f64(out, e.y);
                put_f64(out, e.z);
                put_u32(out, e.k);
                put_u32(out, e.deadline_ms);
                put_objects(out, &e.seeds);
                put_objects(out, &e.cands);
            }
        }
    }

    /// Serializes the frame at the current protocol [`VERSION`].
    pub fn encode(&self) -> Vec<u8> {
        self.encode_v(VERSION)
    }

    /// Serializes the frame at a specific protocol version — the server
    /// replies in the version each request arrived in, so old clients
    /// never see v2 fields. Out-of-range versions are clamped into
    /// [`MIN_VERSION`]`..=`[`VERSION`], and a frame that does not exist
    /// below some version (trace dumps) is raised to it, so the output is
    /// always a decodable frame.
    pub fn encode_v(&self, version: u16) -> Vec<u8> {
        let version = version.clamp(MIN_VERSION, VERSION).max(self.min_version());
        let mut out = Vec::with_capacity(HEADER_LEN + 64);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.push(self.tag());
        out.push(0); // reserved
        out.extend_from_slice(&0u32.to_le_bytes()); // length back-patched
        self.encode_payload(version, &mut out);
        let len = (out.len() - HEADER_LEN) as u32;
        out[8..12].copy_from_slice(&len.to_le_bytes());
        out
    }

    /// Parses exactly one frame from the front of `bytes`, returning the
    /// frame and the number of bytes it occupied. Trailing bytes beyond
    /// the frame are the caller's business (the next frame, typically).
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), ProtocolError> {
        let (frame, _version, used) = Self::decode_versioned(bytes)?;
        Ok((frame, used))
    }

    /// [`decode`](Self::decode), also returning the wire version the
    /// frame arrived in (what a server echoes back).
    pub fn decode_versioned(bytes: &[u8]) -> Result<(Frame, u16, usize), ProtocolError> {
        if bytes.len() < HEADER_LEN {
            return Err(ProtocolError::Truncated { needed: HEADER_LEN, got: bytes.len() });
        }
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&bytes[..HEADER_LEN]);
        let (version, tag, len) = parse_header(&header)?;
        let total = HEADER_LEN + len as usize;
        if bytes.len() < total {
            return Err(ProtocolError::Truncated { needed: total, got: bytes.len() });
        }
        let frame = decode_payload(version, tag, &bytes[HEADER_LEN..total])?;
        Ok((frame, version, total))
    }
}

/// Validates a frame header, returning the wire version, frame type tag,
/// and payload length. Shared by the one-shot [`Frame::decode`] and the
/// incremental socket readers (which need to size the payload read before
/// it exists). The valid tag range is version-dependent: the trace-dump
/// tags do not exist in v1 headers.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u16, u8, u32), ProtocolError> {
    if header[..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&header[..4]);
        return Err(ProtocolError::BadMagic(m));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ProtocolError::BadVersion(version));
    }
    let tag = header[6];
    let max_tag = if version >= 3 {
        TAG_EXEC_REQUEST
    } else if version == 2 {
        TAG_TRACE_DUMP
    } else {
        TAG_STATS
    };
    if !(TAG_QUERY..=max_tag).contains(&tag) {
        return Err(ProtocolError::UnknownFrameType(tag));
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized { len });
    }
    Ok((version, tag, len))
}

/// Cursor over a payload with bounds-checked little-endian reads.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated { needed: n, got: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str16(&mut self) -> Result<String, ProtocolError> {
        let len = self.u16()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Malformed("invalid utf-8 in string"))
    }

    fn str32(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Malformed("invalid utf-8 in string"))
    }

    fn object(&mut self) -> Result<WireObject, ProtocolError> {
        Ok(WireObject {
            id: self.u32()?,
            tri: self.u32()?,
            x: self.f64()?,
            y: self.f64()?,
            z: self.f64()?,
        })
    }

    /// Reads a u32-counted object list, rejecting counts the remaining
    /// payload cannot hold before reserving anything.
    fn objects(&mut self) -> Result<Vec<WireObject>, ProtocolError> {
        let n = self.u32()? as usize;
        if self.remaining() < n * WIRE_OBJECT_LEN {
            return Err(ProtocolError::Truncated {
                needed: n * WIRE_OBJECT_LEN,
                got: self.remaining(),
            });
        }
        let mut objs = Vec::with_capacity(n);
        for _ in 0..n {
            objs.push(self.object()?);
        }
        Ok(objs)
    }
}

/// Decodes a validated-header payload into a frame. The payload must be
/// consumed exactly; trailing bytes are malformed (they would silently
/// desynchronize a stream under a future layout change). `version` is the
/// wire version from the header: v1 payloads fill the v2-only fields
/// (trace ids, per-stage timing) with zeros.
pub fn decode_payload(version: u16, tag: u8, payload: &[u8]) -> Result<Frame, ProtocolError> {
    let v2 = version >= 2;
    let v3 = version >= 3;
    let mut rd = Rd { buf: payload, pos: 0 };
    let frame = match tag {
        TAG_QUERY => Frame::Query(QueryFrame {
            req_id: rd.u64()?,
            tri: rd.u32()?,
            x: rd.f64()?,
            y: rd.f64()?,
            z: rd.f64()?,
            k: rd.u32()?,
            deadline_ms: rd.u32()?,
            trace_id: if v2 { rd.u64()? } else { 0 },
        }),
        TAG_RESPONSE => {
            let req_id = rd.u64()?;
            let trace_id = if v2 { rd.u64()? } else { 0 };
            let radius = if v3 { rd.f64()? } else { 0.0 };
            let timing = ServerTiming {
                queue_us: rd.u32()?,
                linger_us: if v2 { rd.u32()? } else { 0 },
                exec_us: rd.u32()?,
                knn2d_us: if v2 { rd.u32()? } else { 0 },
                radius_us: if v2 { rd.u32()? } else { 0 },
                range_us: if v2 { rd.u32()? } else { 0 },
                rank_us: if v2 { rd.u32()? } else { 0 },
                stall_us: if v2 { rd.u32()? } else { 0 },
                batch: rd.u16()?,
            };
            let degraded = match rd.u8()? {
                0 => None,
                1 => Some(rd.str16()?),
                _ => return Err(ProtocolError::Malformed("bad degraded flag")),
            };
            let n = rd.u16()? as usize;
            // Each neighbor is 20 bytes; reject counts the payload cannot
            // hold before reserving anything.
            if rd.remaining() < n * 20 {
                return Err(ProtocolError::Truncated { needed: n * 20, got: rd.remaining() });
            }
            let mut neighbors = Vec::with_capacity(n);
            for _ in 0..n {
                neighbors.push(WireNeighbor { id: rd.u32()?, lb: rd.f64()?, ub: rd.f64()? });
            }
            Frame::Response(ResponseFrame { req_id, trace_id, neighbors, degraded, timing, radius })
        }
        TAG_ERROR => {
            let req_id = rd.u64()?;
            let code = ErrorCode::from_u8(rd.u8()?)
                .ok_or(ProtocolError::Malformed("unknown error code"))?;
            let detail = rd.str16()?;
            Frame::Error(ErrorFrame { req_id, code, detail })
        }
        TAG_STATS_REQUEST => Frame::StatsRequest,
        TAG_STATS => {
            let n = rd.u16()? as usize;
            // Each entry is at least 10 bytes (empty name + u64 value).
            if rd.remaining() < n * 10 {
                return Err(ProtocolError::Truncated { needed: n * 10, got: rd.remaining() });
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let name = rd.str16()?;
                let value = rd.u64()?;
                entries.push((name, value));
            }
            Frame::Stats(StatsFrame { entries })
        }
        TAG_TRACE_DUMP_REQUEST if v2 => Frame::TraceDumpRequest,
        TAG_TRACE_DUMP if v2 => Frame::TraceDump(TraceDumpFrame { jsonl: rd.str32()? }),
        TAG_CANCEL if v3 => Frame::Cancel(CancelFrame { req_id: rd.u64()?, trace_id: rd.u64()? }),
        TAG_SEEDS_REQUEST if v3 => Frame::SeedsRequest(SeedsRequestFrame {
            req_id: rd.u64()?,
            trace_id: rd.u64()?,
            x: rd.f64()?,
            y: rd.f64()?,
            k: rd.u32()?,
            deadline_ms: rd.u32()?,
        }),
        TAG_SEEDS if v3 => {
            let req_id = rd.u64()?;
            let trace_id = rd.u64()?;
            let n = rd.u32()? as usize;
            if rd.remaining() < n * (WIRE_OBJECT_LEN + 8) {
                return Err(ProtocolError::Truncated {
                    needed: n * (WIRE_OBJECT_LEN + 8),
                    got: rd.remaining(),
                });
            }
            let mut seeds = Vec::with_capacity(n);
            for _ in 0..n {
                let dist = rd.f64()?;
                seeds.push((dist, rd.object()?));
            }
            Frame::Seeds(SeedsFrame { req_id, trace_id, seeds })
        }
        TAG_RANGE_REQUEST if v3 => Frame::RangeRequest(RangeRequestFrame {
            req_id: rd.u64()?,
            trace_id: rd.u64()?,
            x: rd.f64()?,
            y: rd.f64()?,
            radius: rd.f64()?,
            deadline_ms: rd.u32()?,
        }),
        TAG_RANGE if v3 => Frame::Range(RangeFrame {
            req_id: rd.u64()?,
            trace_id: rd.u64()?,
            objects: rd.objects()?,
        }),
        TAG_RADIUS_REQUEST if v3 => Frame::RadiusRequest(RadiusRequestFrame {
            req_id: rd.u64()?,
            trace_id: rd.u64()?,
            tri: rd.u32()?,
            x: rd.f64()?,
            y: rd.f64()?,
            z: rd.f64()?,
            deadline_ms: rd.u32()?,
            seeds: rd.objects()?,
        }),
        TAG_RADIUS if v3 => {
            Frame::Radius(RadiusFrame { req_id: rd.u64()?, trace_id: rd.u64()?, radius: rd.f64()? })
        }
        TAG_EXEC_REQUEST if v3 => Frame::ExecRequest(ExecRequestFrame {
            req_id: rd.u64()?,
            trace_id: rd.u64()?,
            tri: rd.u32()?,
            x: rd.f64()?,
            y: rd.f64()?,
            z: rd.f64()?,
            k: rd.u32()?,
            deadline_ms: rd.u32()?,
            seeds: rd.objects()?,
            cands: rd.objects()?,
        }),
        other => return Err(ProtocolError::UnknownFrameType(other)),
    };
    if rd.pos != payload.len() {
        return Err(ProtocolError::Malformed("trailing bytes in payload"));
    }
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Blocking socket I/O
// ---------------------------------------------------------------------------

/// Why a blocking frame read failed.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The transport failed (including read timeouts).
    Io(io::Error),
    /// Bytes arrived but were not a valid frame.
    Protocol(ProtocolError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => f.write_str("connection closed"),
            RecvError::Io(e) => write!(f, "i/o error: {e}"),
            RecvError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Writes one frame to `w` (single `write_all`, so concurrent writers
/// serialized by a mutex cannot interleave partial frames).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())
}

/// [`write_frame`] at a specific wire version (see [`Frame::encode_v`]).
pub fn write_frame_v<W: Write>(w: &mut W, frame: &Frame, version: u16) -> io::Result<()> {
    w.write_all(&frame.encode_v(version))
}

/// Blocking read of exactly one frame. EOF at a frame boundary is
/// [`RecvError::Closed`]; EOF mid-frame is a protocol truncation.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, RecvError> {
    Ok(read_frame_versioned(r)?.0)
}

/// [`read_frame`], also returning the wire version the frame arrived in.
pub fn read_frame_versioned<R: Read>(r: &mut R) -> Result<(Frame, u16), RecvError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(r, &mut header, true)?;
    let (version, tag, len) = parse_header(&header).map_err(RecvError::Protocol)?;
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, false)?;
    let frame = decode_payload(version, tag, &payload).map_err(RecvError::Protocol)?;
    Ok((frame, version))
}

/// `read_exact` that distinguishes clean EOF before the first byte
/// (`boundary` true → [`RecvError::Closed`]) from truncation mid-field.
fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], boundary: bool) -> Result<(), RecvError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if boundary && filled == 0 {
                    Err(RecvError::Closed)
                } else {
                    Err(RecvError::Protocol(ProtocolError::Truncated {
                        needed: buf.len(),
                        got: filled,
                    }))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trip() {
        let f = Frame::Query(QueryFrame {
            req_id: 7,
            tri: 3,
            x: 10.5,
            y: -2.25,
            z: 99.0,
            k: 4,
            deadline_ms: 250,
            trace_id: 0xDEAD_BEEF,
        });
        let bytes = f.encode();
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn nan_coordinates_round_trip_bit_exact() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let f = Frame::Query(QueryFrame {
            req_id: 1,
            tri: LOCATE_TRI,
            x: weird,
            y: f64::NEG_INFINITY,
            z: -0.0,
            k: 1,
            deadline_ms: 0,
            trace_id: 0,
        });
        let bytes = f.encode();
        let (back, _) = Frame::decode(&bytes).unwrap();
        // NaN != NaN, so compare the re-encoding byte-for-byte.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn v1_query_decodes_with_zero_trace_id() {
        let f = Frame::Query(QueryFrame {
            req_id: 9,
            tri: 2,
            x: 1.0,
            y: 2.0,
            z: 3.0,
            k: 5,
            deadline_ms: 10,
            trace_id: 0x1234,
        });
        let bytes = f.encode_v(1);
        let (back, version, _) = Frame::decode_versioned(&bytes).unwrap();
        assert_eq!(version, 1);
        match back {
            Frame::Query(q) => {
                assert_eq!(q.trace_id, 0, "v1 wire cannot carry a trace id");
                assert_eq!(q.req_id, 9);
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn v1_response_drops_stage_fields_v2_keeps_them() {
        let f = Frame::Response(ResponseFrame {
            req_id: 11,
            trace_id: 77,
            neighbors: vec![WireNeighbor { id: 1, lb: 0.5, ub: 1.5 }],
            degraded: None,
            timing: ServerTiming {
                queue_us: 10,
                linger_us: 20,
                exec_us: 30,
                knn2d_us: 1,
                radius_us: 2,
                range_us: 3,
                rank_us: 4,
                stall_us: 5,
                batch: 6,
            },
            radius: 0.0,
        });
        let (v1, _) = Frame::decode(&f.encode_v(1)).unwrap();
        match &v1 {
            Frame::Response(r) => {
                assert_eq!(r.trace_id, 0);
                assert_eq!(
                    r.timing,
                    ServerTiming { queue_us: 10, exec_us: 30, batch: 6, ..Default::default() }
                );
            }
            other => panic!("expected response, got {other:?}"),
        }
        let (v2, _) = Frame::decode(&f.encode_v(2)).unwrap();
        assert_eq!(v2, f);
    }

    #[test]
    fn trace_dump_round_trips_and_is_v2_only() {
        let f = Frame::TraceDump(TraceDumpFrame { jsonl: "{\"a\":1}\n{\"b\":2}\n".into() });
        // Asking for v1 is raised to the frame's minimum version.
        let bytes = f.encode_v(1);
        let (back, version, _) = Frame::decode_versioned(&bytes).unwrap();
        assert_eq!(version, 2);
        assert_eq!(back, f);
        // A v1 header with a trace-dump tag is an unknown frame type.
        let mut forged = Frame::TraceDumpRequest.encode();
        forged[4..6].copy_from_slice(&1u16.to_le_bytes());
        assert_eq!(
            Frame::decode(&forged),
            Err(ProtocolError::UnknownFrameType(TAG_TRACE_DUMP_REQUEST))
        );
    }

    #[test]
    fn response_radius_is_v3_only() {
        let f = Frame::Response(ResponseFrame {
            req_id: 1,
            trace_id: 2,
            neighbors: vec![],
            degraded: None,
            timing: ServerTiming::default(),
            radius: 42.5,
        });
        let (v3, version, _) = Frame::decode_versioned(&f.encode_v(3)).unwrap();
        assert_eq!(version, 3);
        assert_eq!(v3, f);
        let (v2, _) = Frame::decode(&f.encode_v(2)).unwrap();
        match v2 {
            Frame::Response(r) => assert_eq!(r.radius, 0.0, "v2 wire cannot carry a radius"),
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn cancel_round_trips_and_is_v3_only() {
        let f = Frame::Cancel(CancelFrame { req_id: 5, trace_id: 0xABCD });
        // Asking for v2 is raised to the frame's minimum version.
        let bytes = f.encode_v(2);
        let (back, version, _) = Frame::decode_versioned(&bytes).unwrap();
        assert_eq!(version, 3);
        assert_eq!(back, f);
        // A v2 header with a cancel tag is an unknown frame type.
        let mut forged = f.encode();
        forged[4..6].copy_from_slice(&2u16.to_le_bytes());
        assert_eq!(Frame::decode(&forged), Err(ProtocolError::UnknownFrameType(TAG_CANCEL)));
    }

    #[test]
    fn shard_op_frames_round_trip_bit_exact() {
        let obj = |id: u32| WireObject {
            id,
            tri: id * 3,
            x: id as f64 + 0.25,
            y: -(id as f64),
            z: id as f64 * 0.5,
        };
        let frames = vec![
            Frame::SeedsRequest(SeedsRequestFrame {
                req_id: 1,
                trace_id: 2,
                x: 3.5,
                y: -4.5,
                k: 8,
                deadline_ms: 100,
            }),
            Frame::Seeds(SeedsFrame {
                req_id: 1,
                trace_id: 2,
                seeds: vec![(0.5, obj(7)), (f64::INFINITY, obj(9))],
            }),
            Frame::RangeRequest(RangeRequestFrame {
                req_id: 3,
                trace_id: 4,
                x: 1.0,
                y: 2.0,
                radius: f64::INFINITY,
                deadline_ms: 0,
            }),
            Frame::Range(RangeFrame { req_id: 3, trace_id: 4, objects: vec![obj(1), obj(2)] }),
            Frame::RadiusRequest(RadiusRequestFrame {
                req_id: 5,
                trace_id: 6,
                tri: 11,
                x: 0.0,
                y: -0.0,
                z: 9.0,
                deadline_ms: 50,
                seeds: vec![obj(4)],
            }),
            Frame::Radius(RadiusFrame { req_id: 5, trace_id: 6, radius: 12.25 }),
            Frame::ExecRequest(ExecRequestFrame {
                req_id: 7,
                trace_id: 8,
                tri: LOCATE_TRI,
                x: 1.5,
                y: 2.5,
                z: 0.0,
                k: 3,
                deadline_ms: 250,
                seeds: vec![obj(1), obj(2)],
                cands: vec![obj(1), obj(2), obj(3)],
            }),
        ];
        for f in frames {
            let bytes = f.encode();
            let (back, version, used) = Frame::decode_versioned(&bytes).unwrap();
            assert_eq!(version, 3);
            assert_eq!(used, bytes.len());
            assert_eq!(back.encode(), bytes, "{f:?}");
            assert_eq!(back, f);
        }
    }

    #[test]
    fn object_list_count_checked_before_reserve() {
        let f = Frame::Range(RangeFrame { req_id: 1, trace_id: 2, objects: vec![] });
        let mut bytes = f.encode();
        // Overwrite the count (after req_id + trace_id) with a huge value.
        let count_at = HEADER_LEN + 16;
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        match Frame::decode(&bytes) {
            Err(ProtocolError::Truncated { .. }) => {}
            other => panic!("expected truncated, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_typed_without_allocation() {
        let mut bytes = Frame::StatsRequest.encode();
        bytes[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(ProtocolError::Oversized { len: MAX_PAYLOAD + 1 }));
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut bytes = Frame::StatsRequest.encode();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        bytes.push(0xAB);
        assert_eq!(
            Frame::decode(&bytes),
            Err(ProtocolError::Malformed("trailing bytes in payload"))
        );
    }
}
