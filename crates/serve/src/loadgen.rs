//! Load generation against a running server: closed-loop (one request
//! in flight per connection — measures service latency and the batcher's
//! coalescing yield) and open-loop (requests launched on a fixed
//! schedule regardless of completions — the arrival process that
//! saturates the admission queue and exercises load shedding).
//!
//! Every request is classified by its typed reply; a missing reply is a
//! protocol failure, not a statistic. With a verification engine the
//! generator also checks each non-degraded response bit-for-bit against
//! a direct `Engine::try_query` call — the end-to-end determinism
//! guarantee, measured rather than assumed.

use crate::client::Client;
use crate::protocol::{ErrorCode, Frame, RecvError, ServerTiming};
use sknn_core::mr3::Mr3Engine;
use sknn_core::workload::{Scene, SurfacePoint};
use std::collections::HashMap;
use std::io;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Stage names, in request-path order, for the server-side breakdown
/// table. Indices match [`stage_values`].
pub const STAGE_NAMES: [&str; 8] =
    ["queue", "linger", "exec", "knn2d", "radius", "range", "rank", "stall"];

fn stage_values(t: &ServerTiming) -> [u32; 8] {
    [t.queue_us, t.linger_us, t.exec_us, t.knn2d_us, t.radius_us, t.range_us, t.rank_us, t.stall_us]
}

/// What to run against the server.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_conn: usize,
    /// Aggregate open-loop arrival rate in queries/second; `0` selects
    /// the closed loop.
    pub qps: f64,
    /// Neighbors per query.
    pub k: u32,
    /// Per-request deadline forwarded to the server (`0` = none).
    pub deadline_ms: u32,
    /// Workload seed (query points are `scene.random_queries` of it).
    pub seed: u64,
}

/// Latency summary over successful responses, milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyMs {
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// Outcome of one loadgen pass.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Open-loop target rate (0 for closed loop).
    pub target_qps: f64,
    /// Requests sent.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Successful responses carrying a degradation marker.
    pub degraded: u64,
    /// Typed `Overloaded` rejections (shed at admission).
    pub overloaded: u64,
    /// Typed `DeadlineExpired` replies.
    pub expired: u64,
    /// Typed `ShuttingDown` rejections.
    pub shutdown_rejected: u64,
    /// Typed `BadRequest` replies.
    pub bad_request: u64,
    /// Typed `FaultBudgetExceeded` replies.
    pub fault_errors: u64,
    /// Typed `Cancelled` replies (v3; zero unless something cancelled
    /// this client's requests out from under it).
    pub cancelled: u64,
    /// Requests with no reply at all (should be zero — every admitted or
    /// rejected request gets a frame).
    pub missing: u64,
    /// Frames that failed to decode.
    pub protocol_errors: u64,
    /// Responses compared bit-for-bit against a direct engine call.
    pub verified: u64,
    /// Comparisons that differed (should be zero).
    pub mismatches: u64,
    /// Wall-clock for the pass, seconds.
    pub wall_s: f64,
    /// Completed responses per second.
    pub achieved_qps: f64,
    /// Latency of successful responses.
    pub latency: LatencyMs,
    /// Server-reported per-stage latency summaries (protocol v2), in
    /// [`STAGE_NAMES`] order. Empty when the server spoke v1.
    pub stages: Vec<(String, LatencyMs)>,
    /// Responses whose server-reported stage sum (queue + linger + exec)
    /// exceeded the client-measured round trip — should be zero; both
    /// come from monotonic clocks and the client span contains the
    /// server span.
    pub stage_sum_violations: u64,
    /// Server `STATS` snapshot taken after the pass.
    pub server: Vec<(String, u64)>,
}

impl RunReport {
    /// A named counter from the post-run server snapshot.
    pub fn server_stat(&self, name: &str) -> u64 {
        self.server.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Mean micro-batch size observed by the server.
    pub fn server_mean_batch(&self) -> f64 {
        self.server_stat("mean_batch_x1000") as f64 / 1000.0
    }

    /// The per-stage breakdown as an aligned text table (empty string
    /// when the server reported no stage timing).
    pub fn stage_table(&self) -> String {
        if self.stages.is_empty() {
            return String::new();
        }
        let mut s = String::new();
        s.push_str(&format!(
            "  {:<8} {:>10} {:>10} {:>10} {:>10}\n",
            "stage", "mean_ms", "p50_ms", "p95_ms", "p99_ms"
        ));
        for (name, l) in &self.stages {
            s.push_str(&format!(
                "  {:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                name, l.mean, l.p50, l.p95, l.p99
            ));
        }
        s
    }

    /// The pass as a JSON object (one element of `BENCH_serve.json`).
    pub fn to_json(&self, indent: &str) -> String {
        let mut s = String::new();
        let l = &self.latency;
        s.push_str(&format!("{indent}{{\n"));
        s.push_str(&format!(
            "{indent}  \"mode\": \"{}\", \"target_qps\": {:.1}, \"sent\": {}, \"ok\": {},\n",
            self.mode, self.target_qps, self.sent, self.ok
        ));
        s.push_str(&format!(
            "{indent}  \"degraded\": {}, \"overloaded\": {}, \"expired\": {}, \
             \"shutdown_rejected\": {}, \"bad_request\": {}, \"fault_errors\": {}, \
             \"cancelled\": {},\n",
            self.degraded,
            self.overloaded,
            self.expired,
            self.shutdown_rejected,
            self.bad_request,
            self.fault_errors,
            self.cancelled
        ));
        s.push_str(&format!(
            "{indent}  \"missing\": {}, \"protocol_errors\": {}, \"verified\": {}, \
             \"mismatches\": {},\n",
            self.missing, self.protocol_errors, self.verified, self.mismatches
        ));
        s.push_str(&format!(
            "{indent}  \"wall_s\": {:.4}, \"achieved_qps\": {:.2},\n",
            self.wall_s, self.achieved_qps
        ));
        s.push_str(&format!(
            "{indent}  \"latency_ms\": {{\"mean\": {:.3}, \"p50\": {:.3}, \"p95\": {:.3}, \
             \"p99\": {:.3}, \"max\": {:.3}}},\n",
            l.mean, l.p50, l.p95, l.p99, l.max
        ));
        s.push_str(&format!(
            "{indent}  \"stage_sum_violations\": {},\n",
            self.stage_sum_violations
        ));
        s.push_str(&format!("{indent}  \"stages_ms\": {{"));
        for (i, (name, sl)) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{name}\": {{\"mean\": {:.3}, \"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}",
                sl.mean, sl.p50, sl.p95, sl.p99
            ));
        }
        s.push_str("},\n");
        s.push_str(&format!("{indent}  \"server\": {{"));
        for (i, (name, value)) in self.server.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{name}\": {value}"));
        }
        s.push_str("}\n");
        s.push_str(&format!("{indent}}}"));
        s
    }
}

/// Per-connection tally, merged into the final report.
#[derive(Debug, Default)]
struct ConnTally {
    sent: u64,
    ok: u64,
    degraded: u64,
    overloaded: u64,
    expired: u64,
    shutdown_rejected: u64,
    bad_request: u64,
    fault_errors: u64,
    cancelled: u64,
    missing: u64,
    protocol_errors: u64,
    verified: u64,
    mismatches: u64,
    latencies_ms: Vec<f64>,
    /// Per-stage server-reported times, ms, in [`STAGE_NAMES`] order.
    stage_ms: [Vec<f64>; 8],
    stage_sum_violations: u64,
}

impl ConnTally {
    /// Folds one response's server timing into the stage vectors and
    /// checks the containment invariant against the client round trip.
    fn record_stages(&mut self, timing: &ServerTiming, e2e_ms: f64) {
        // A v1 server reports no stage split; skip rather than pollute
        // the table with zeros (queue/exec alone are still reported via
        // the plain latency stats).
        if timing.linger_us == 0 && timing.knn2d_us == 0 && timing.rank_us == 0 {
            // Either a v1 reply or a genuinely sub-µs request; the latter
            // also carries nothing worth tabulating.
            return;
        }
        for (vec, us) in self.stage_ms.iter_mut().zip(stage_values(timing)) {
            vec.push(us as f64 / 1e3);
        }
        let server_path_ms =
            (timing.queue_us as u64 + timing.linger_us as u64 + timing.exec_us as u64) as f64 / 1e3;
        // Allow a microsecond of rounding slack: each stage is truncated
        // to whole µs independently of the client's clock read.
        if server_path_ms > e2e_ms + 0.001 {
            self.stage_sum_violations += 1;
        }
    }
}

/// Bit pattern of a response, for exact comparison.
type Fingerprint = Vec<(u32, u64, u64)>;

fn fingerprint_result(res: &sknn_core::metrics::QueryResult) -> Fingerprint {
    res.neighbors.iter().map(|n| (n.id, n.range.lb.to_bits(), n.range.ub.to_bits())).collect()
}

fn fingerprint_response(neighbors: &[crate::protocol::WireNeighbor]) -> Fingerprint {
    neighbors.iter().map(|n| (n.id, n.lb.to_bits(), n.ub.to_bits())).collect()
}

/// Runs one pass. `verify` supplies a local engine over the *same* scene
/// the server uses; when present, every non-degraded response is
/// compared bit-for-bit against `try_query`.
pub fn run(
    scene: &Scene<'_>,
    cfg: &LoadgenConfig,
    verify: Option<&Mr3Engine<'_, '_>>,
) -> io::Result<RunReport> {
    let conns = cfg.connections.max(1);
    let per_conn = cfg.requests_per_conn;
    // Deterministic per-connection workloads, disjoint by seed.
    let workloads: Vec<Vec<SurfacePoint>> = (0..conns)
        .map(|c| scene.random_queries(per_conn, cfg.seed ^ ((c as u64 + 1) * 0x9E37_79B9)))
        .collect();
    // Expected fingerprints are computed before the clock starts so
    // verification work cannot distort the measured run.
    let expected: Vec<Vec<Option<Fingerprint>>> = workloads
        .iter()
        .map(|qs| {
            qs.iter()
                .map(|&q| {
                    verify.map(|e| {
                        fingerprint_result(
                            &e.try_query(q, cfg.k as usize).expect("verify engine query failed"),
                        )
                    })
                })
                .collect()
        })
        .collect();

    let start = Instant::now();
    let tallies: Vec<io::Result<ConnTally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let queries = &workloads[c];
                let expect = &expected[c];
                scope.spawn(move || {
                    if cfg.qps > 0.0 {
                        run_open_conn(cfg, c as u64, queries, expect)
                    } else {
                        run_closed_conn(cfg, c as u64, queries, expect)
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen connection panicked")).collect()
    });
    let wall_s = start.elapsed().as_secs_f64();

    let mut report = RunReport {
        mode: if cfg.qps > 0.0 { "open" } else { "closed" }.to_string(),
        target_qps: cfg.qps,
        wall_s,
        ..Default::default()
    };
    let mut latencies: Vec<f64> = Vec::new();
    let mut stage_ms: [Vec<f64>; 8] = Default::default();
    for tally in tallies {
        let t = tally?;
        report.sent += t.sent;
        report.ok += t.ok;
        report.degraded += t.degraded;
        report.overloaded += t.overloaded;
        report.expired += t.expired;
        report.shutdown_rejected += t.shutdown_rejected;
        report.bad_request += t.bad_request;
        report.fault_errors += t.fault_errors;
        report.cancelled += t.cancelled;
        report.missing += t.missing;
        report.protocol_errors += t.protocol_errors;
        report.verified += t.verified;
        report.mismatches += t.mismatches;
        report.stage_sum_violations += t.stage_sum_violations;
        latencies.extend(t.latencies_ms);
        for (merged, conn) in stage_ms.iter_mut().zip(t.stage_ms) {
            merged.extend(conn);
        }
    }
    report.achieved_qps = report.ok as f64 / wall_s.max(1e-9);
    report.latency = summarize(&mut latencies);
    if stage_ms.iter().any(|v| !v.is_empty()) {
        report.stages = STAGE_NAMES
            .iter()
            .zip(stage_ms.iter_mut())
            .map(|(name, vals)| (name.to_string(), summarize(vals)))
            .collect();
    }
    report.server = Client::connect(&cfg.addr)?
        .fetch_stats()
        .map_err(|e| io::Error::other(format!("stats fetch failed: {e}")))?;
    Ok(report)
}

fn summarize(latencies: &mut [f64]) -> LatencyMs {
    if latencies.is_empty() {
        return LatencyMs::default();
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let at = |p: f64| {
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx]
    };
    LatencyMs {
        mean: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p50: at(0.50),
        p95: at(0.95),
        p99: at(0.99),
        max: latencies[latencies.len() - 1],
    }
}

/// Splits a reply into the tally. Returns the request index the frame
/// answered, or `None` for undecodable traffic.
fn classify(tally: &mut ConnTally, frame: &Frame, expect: &[Option<Fingerprint>]) -> Option<usize> {
    match frame {
        Frame::Response(r) => {
            let idx = (r.req_id & 0xFFFF_FFFF) as usize;
            tally.ok += 1;
            if r.degraded.is_some() {
                tally.degraded += 1;
            } else if let Some(Some(fp)) = expect.get(idx) {
                tally.verified += 1;
                if fingerprint_response(&r.neighbors) != *fp {
                    tally.mismatches += 1;
                }
            }
            Some(idx)
        }
        Frame::Error(e) => {
            match e.code {
                ErrorCode::Overloaded => tally.overloaded += 1,
                ErrorCode::DeadlineExpired => tally.expired += 1,
                ErrorCode::ShuttingDown => tally.shutdown_rejected += 1,
                ErrorCode::BadRequest => tally.bad_request += 1,
                ErrorCode::FaultBudgetExceeded => tally.fault_errors += 1,
                ErrorCode::Cancelled => tally.cancelled += 1,
            }
            Some((e.req_id & 0xFFFF_FFFF) as usize)
        }
        _ => {
            tally.protocol_errors += 1;
            None
        }
    }
}

/// Closed loop: send, wait, repeat. Latency is the full round trip.
fn run_closed_conn(
    cfg: &LoadgenConfig,
    conn: u64,
    queries: &[SurfacePoint],
    expect: &[Option<Fingerprint>],
) -> io::Result<ConnTally> {
    // A 10 s idle timeout converts a wedged server into a counted
    // failure instead of an indefinite hang.
    let mut client = Client::connect_with_timeout(&cfg.addr, Duration::from_secs(10))?;
    let mut tally = ConnTally::default();
    for (i, &q) in queries.iter().enumerate() {
        let req_id = (conn << 32) | i as u64;
        let sent_at = Instant::now();
        client.send_query(req_id, q, cfg.k, cfg.deadline_ms)?;
        tally.sent += 1;
        match client.recv() {
            Ok(frame) => {
                if classify(&mut tally, &frame, expect).is_some() {
                    if let Frame::Response(r) = &frame {
                        let e2e_ms = sent_at.elapsed().as_secs_f64() * 1e3;
                        tally.latencies_ms.push(e2e_ms);
                        tally.record_stages(&r.timing, e2e_ms);
                    }
                }
            }
            Err(RecvError::Protocol(_)) => {
                tally.protocol_errors += 1;
                tally.missing += 1;
                break;
            }
            Err(_) => {
                tally.missing += 1;
                break;
            }
        }
    }
    Ok(tally)
}

/// Open loop: a sender thread fires on a fixed schedule while the main
/// thread collects replies, matching on `req_id` (micro-batches complete
/// out of order).
fn run_open_conn(
    cfg: &LoadgenConfig,
    conn: u64,
    queries: &[SurfacePoint],
    expect: &[Option<Fingerprint>],
) -> io::Result<ConnTally> {
    let mut recv_client = Client::connect_with_timeout(&cfg.addr, Duration::from_secs(10))?;
    let mut send_client = recv_client.try_clone()?;
    let interval = Duration::from_secs_f64(cfg.connections.max(1) as f64 / cfg.qps);
    let (time_tx, time_rx) = mpsc::channel::<(usize, Instant)>();

    let mut tally = ConnTally::default();
    let total = queries.len();
    std::thread::scope(|scope| -> io::Result<()> {
        let sender = scope.spawn(move || -> io::Result<u64> {
            let t0 = Instant::now();
            for (i, &q) in queries.iter().enumerate() {
                let due = t0 + interval.mul_f64(i as f64);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let req_id = (conn << 32) | i as u64;
                time_tx.send((i, Instant::now())).ok();
                send_client.send_query(req_id, q, cfg.k, cfg.deadline_ms)?;
            }
            Ok(total as u64)
        });

        let mut send_times: HashMap<usize, Instant> = HashMap::with_capacity(total);
        let mut outcomes = 0usize;
        while outcomes < total {
            match recv_client.recv() {
                Ok(frame) => {
                    while let Ok((i, at)) = time_rx.try_recv() {
                        send_times.insert(i, at);
                    }
                    if let Some(idx) = classify(&mut tally, &frame, expect) {
                        outcomes += 1;
                        if let (Frame::Response(r), Some(at)) = (&frame, send_times.get(&idx)) {
                            let e2e_ms = at.elapsed().as_secs_f64() * 1e3;
                            tally.latencies_ms.push(e2e_ms);
                            tally.record_stages(&r.timing, e2e_ms);
                        }
                    }
                }
                Err(RecvError::Protocol(_)) => {
                    tally.protocol_errors += 1;
                    break;
                }
                Err(_) => break,
            }
        }
        tally.missing += (total - outcomes) as u64;
        tally.sent = sender.join().expect("loadgen sender panicked")?;
        Ok(())
    })?;
    Ok(tally)
}
