//! Deadline-aware admission lanes: the bounded queue between connection
//! readers and the micro-batch dispatcher, replacing the original FIFO
//! `sync_channel`.
//!
//! Scheduling is earliest-deadline-first with a starvation floor:
//!
//! * a job with an absolute deadline is dispatched before every job with
//!   a later (or no) deadline — the request with the least slack gets
//!   the engine first, which is what turns per-request deadlines from a
//!   drop policy into an actual scheduling policy;
//! * deadline-less jobs keep FIFO order among themselves and yield to
//!   any deadlined job — *unless* the oldest queued job (deadlined or
//!   not) has waited longer than the floor, in which case it is taken
//!   next regardless. The floor bounds how long a stream of urgent
//!   arrivals can park a patient request, so EDF cannot starve.
//!
//! The lanes also support withdrawal: a queued job can be [`cancel`]led
//! by `(req_id, trace_id)` before the dispatcher picks it up — the hook
//! the sharding router uses to kill speculative fan-out legs whose
//! answer the merged bound has already proven irrelevant.
//!
//! [`cancel`]: Lanes::cancel

use crate::batch::Job;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused. The job is handed back so the caller can
/// answer it with the right typed error.
pub(crate) enum PushError {
    /// The queue is at capacity; shed the job (`Overloaded`).
    Full(Job),
    /// The lanes are closed (server draining); reject (`ShuttingDown`).
    Closed(Job),
}

struct Inner {
    jobs: Vec<Job>,
    closed: bool,
}

/// The shared admission queue. Producers (`try_push`, `cancel`) are the
/// per-connection readers; the single consumer is the dispatcher.
pub(crate) struct Lanes {
    inner: Mutex<Inner>,
    cond: Condvar,
    capacity: usize,
    floor: Duration,
}

impl Lanes {
    /// An empty queue bounded at `capacity` with the given starvation
    /// floor (a zero floor disables the floor — pure EDF).
    pub(crate) fn new(capacity: usize, floor: Duration) -> Self {
        Self {
            inner: Mutex::new(Inner { jobs: Vec::new(), closed: false }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
            floor,
        }
    }

    /// Offers a job; never blocks. On refusal the job comes back in the
    /// error so the caller can reply to it — the error is as big as the
    /// job on purpose.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, job: Job) -> Result<(), PushError> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.closed {
            return Err(PushError::Closed(job));
        }
        if g.jobs.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        g.jobs.push(job);
        drop(g);
        self.cond.notify_one();
        Ok(())
    }

    /// Withdraws a queued job matching both ids (the pair must match so a
    /// recycled `req_id` cannot kill a stranger's request). Returns the
    /// job — with its reply writer — when the cancel lands; `None` is a
    /// cancel miss (already dispatched, unknown, or already answered).
    pub(crate) fn cancel(&self, req_id: u64, trace_id: u64) -> Option<Job> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let i = g.jobs.iter().position(|j| j.req_id == req_id && j.trace_id == trace_id)?;
        Some(g.jobs.remove(i))
    }

    /// Closes the lanes: future pushes fail with [`PushError::Closed`],
    /// queued jobs keep draining, and poppers see `None` once empty.
    pub(crate) fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.cond.notify_all();
    }

    /// Blocking pop: the scheduled-next job, or `None` once the lanes
    /// are closed and empty (the dispatcher's exit condition).
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(i) = self.pick(&g.jobs) {
                return Some(g.jobs.remove(i));
            }
            if g.closed {
                return None;
            }
            g = self.cond.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking pop.
    pub(crate) fn try_pop(&self) -> Option<Job> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.pick(&g.jobs).map(|i| g.jobs.remove(i))
    }

    /// Pop that waits at most until `until` (the dispatcher's linger
    /// window). `None` on timeout or on closed-and-empty.
    pub(crate) fn pop_until(&self, until: Instant) -> Option<Job> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(i) = self.pick(&g.jobs) {
                return Some(g.jobs.remove(i));
            }
            if g.closed {
                return None;
            }
            let now = Instant::now();
            if now >= until {
                return None;
            }
            let (guard, timeout) =
                self.cond.wait_timeout(g, until - now).unwrap_or_else(|e| e.into_inner());
            g = guard;
            if timeout.timed_out() && self.pick(&g.jobs).is_none() {
                return None;
            }
        }
    }

    /// The scheduling rule. Returns the index to dispatch next.
    fn pick(&self, jobs: &[Job]) -> Option<usize> {
        if jobs.is_empty() {
            return None;
        }
        // Starvation floor: once the oldest arrival has waited past the
        // floor, it goes next no matter what deadlines are queued.
        let (oldest, job) =
            jobs.iter().enumerate().min_by_key(|(_, j)| j.enqueued).expect("non-empty");
        if !self.floor.is_zero() && job.enqueued.elapsed() >= self.floor {
            return Some(oldest);
        }
        // EDF: earliest absolute deadline first; deadline-less jobs sort
        // after every deadlined one and FIFO among themselves. `min_by`
        // keeps the first of equals, so equal deadlines are FIFO too.
        jobs.iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| match (a.deadline, b.deadline) {
                (Some(x), Some(y)) => x.cmp(&y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => a.enqueued.cmp(&b.enqueued),
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{ConnWriter, Job, JobOp};
    use sknn_core::workload::SurfacePoint;
    use sknn_geom::Point3;
    use std::sync::Arc;

    fn job(req_id: u64, deadline: Option<Instant>, enqueued: Instant) -> Job {
        Job {
            req_id,
            trace_id: req_id + 1000,
            op: JobOp::Query {
                point: SurfacePoint { tri: 0, pos: Point3::new(0.0, 0.0, 0.0) },
                k: 1,
            },
            deadline,
            enqueued,
            recv_at: enqueued,
            wire_version: 3,
            writer: Arc::new(ConnWriter::null()),
        }
    }

    #[test]
    fn edf_orders_by_deadline_not_arrival() {
        let lanes = Lanes::new(8, Duration::from_secs(60));
        let t0 = Instant::now();
        let late = t0 + Duration::from_secs(30);
        let soon = t0 + Duration::from_secs(1);
        let mid = t0 + Duration::from_secs(10);
        lanes.try_push(job(1, Some(late), t0)).ok().unwrap();
        lanes.try_push(job(2, None, t0)).ok().unwrap();
        lanes.try_push(job(3, Some(soon), t0)).ok().unwrap();
        lanes.try_push(job(4, Some(mid), t0)).ok().unwrap();
        let order: Vec<u64> = (0..4).map(|_| lanes.pop().unwrap().req_id).collect();
        assert_eq!(order, vec![3, 4, 1, 2]);
    }

    #[test]
    fn deadline_less_jobs_stay_fifo() {
        let lanes = Lanes::new(8, Duration::from_secs(60));
        let t0 = Instant::now();
        for i in 0..4 {
            lanes.try_push(job(i, None, t0 + Duration::from_micros(i))).ok().unwrap();
        }
        let order: Vec<u64> = (0..4).map(|_| lanes.pop().unwrap().req_id).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn starvation_floor_overrides_edf() {
        let lanes = Lanes::new(8, Duration::from_millis(1));
        // Enqueued far enough in the past to be past the floor already.
        let old = Instant::now() - Duration::from_millis(50);
        lanes.try_push(job(1, None, old)).ok().unwrap();
        lanes.try_push(job(2, Some(Instant::now()), Instant::now())).ok().unwrap();
        // EDF alone would pick 2 (only deadlined job); the floor forces
        // the starved deadline-less 1 first.
        assert_eq!(lanes.pop().unwrap().req_id, 1);
        assert_eq!(lanes.pop().unwrap().req_id, 2);
    }

    #[test]
    fn full_queue_sheds_and_cancel_withdraws() {
        let lanes = Lanes::new(2, Duration::ZERO);
        let t0 = Instant::now();
        lanes.try_push(job(1, None, t0)).ok().unwrap();
        lanes.try_push(job(2, None, t0)).ok().unwrap();
        match lanes.try_push(job(3, None, t0)) {
            Err(PushError::Full(j)) => assert_eq!(j.req_id, 3),
            _ => panic!("expected Full"),
        }
        // Wrong trace id: miss. Right pair: withdrawn.
        assert!(lanes.cancel(1, 0).is_none());
        let withdrawn = lanes.cancel(1, 1001).unwrap();
        assert_eq!(withdrawn.req_id, 1);
        assert!(lanes.cancel(1, 1001).is_none(), "second cancel is a miss");
        assert_eq!(lanes.pop().unwrap().req_id, 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let lanes = Lanes::new(4, Duration::ZERO);
        let t0 = Instant::now();
        lanes.try_push(job(1, None, t0)).ok().unwrap();
        lanes.close();
        match lanes.try_push(job(2, None, t0)) {
            Err(PushError::Closed(j)) => assert_eq!(j.req_id, 2),
            _ => panic!("expected Closed"),
        }
        assert_eq!(lanes.pop().unwrap().req_id, 1);
        assert!(lanes.pop().is_none());
        assert!(lanes.pop_until(Instant::now() + Duration::from_millis(5)).is_none());
    }
}
