//! The adaptive micro-batcher: a single dispatcher thread that drains the
//! bounded admission queue, coalescing whatever is waiting into one
//! `Mr3Engine::try_query_batch_at` call.
//!
//! The coalescing rule is the classic linger: the first job is taken the
//! moment it is available, then the dispatcher gathers more until the
//! batch is full (`max_batch`) or a short window (`max_wait`) closes.
//! Under light load batches degenerate to size 1 and add at most
//! `max_wait` of latency; under concurrent load the queue is non-empty
//! when the dispatcher returns from the engine, so batches fill without
//! waiting at all — throughput rises with offered load instead of
//! collapsing into per-request lock churn.
//!
//! Termination doubles as graceful drain: the loop exits when every
//! sender handle has dropped *and* the queue is empty, which is exactly
//! `std::sync::mpsc`'s disconnect contract — buffered messages are all
//! delivered first. The server shuts down by stopping the producers, and
//! every admitted request still gets its reply.

use crate::protocol::{
    write_frame, ErrorCode, ErrorFrame, Frame, ResponseFrame, ServerTiming, WireNeighbor,
};
use crate::stats::ServeStats;
use sknn_core::mr3::Mr3Engine;
use sknn_core::resilience::QueryError;
use sknn_core::workload::SurfacePoint;
use sknn_obs::{field, Recorder};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared write half of a connection. The dispatcher and the
/// connection's reader thread both reply on the same socket (responses
/// vs. admission rejections), so writes go through a mutex and each
/// frame is a single `write_all` — frames never interleave.
#[derive(Debug)]
pub(crate) struct ConnWriter {
    stream: Mutex<TcpStream>,
    /// Latched on the first failed write: the client is gone, so further
    /// replies are skipped instead of erroring one by one.
    dead: AtomicBool,
}

impl ConnWriter {
    pub(crate) fn new(stream: TcpStream) -> Self {
        Self { stream: Mutex::new(stream), dead: AtomicBool::new(false) }
    }

    /// Writes one frame; returns whether the client is still reachable.
    pub(crate) fn send(&self, stats: &ServeStats, frame: &Frame) -> bool {
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        match write_frame(&mut *stream, frame) {
            Ok(()) => true,
            Err(_) => {
                self.dead.store(true, Ordering::Relaxed);
                stats.write_errors.inc();
                false
            }
        }
    }
}

/// One admitted request, parked in the queue until a batch picks it up.
pub(crate) struct Job {
    pub req_id: u64,
    pub point: SurfacePoint,
    pub k: usize,
    /// Absolute deadline (arrival + `deadline_ms`); enforced at dequeue
    /// and passed into the engine for mid-query enforcement.
    pub deadline: Option<Instant>,
    pub enqueued: Instant,
    pub writer: std::sync::Arc<ConnWriter>,
}

/// Batching knobs, copied out of the server config.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchPolicy {
    pub max_batch: usize,
    pub max_wait: Duration,
    pub exec_threads: usize,
}

/// Dispatcher thread body: drain the queue into micro-batches until all
/// producers have hung up.
pub(crate) fn dispatch_loop(
    engine: &Mr3Engine<'_, '_>,
    rx: &Receiver<Job>,
    policy: BatchPolicy,
    stats: &ServeStats,
    rec: &dyn Recorder,
) {
    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        let linger_until = Instant::now() + policy.max_wait;
        while jobs.len() < policy.max_batch {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {
                    let now = Instant::now();
                    if now >= linger_until {
                        break;
                    }
                    match rx.recv_timeout(linger_until - now) {
                        Ok(job) => jobs.push(job),
                        Err(_) => break,
                    }
                }
            }
        }
        run_batch(engine, jobs, policy, stats, rec);
    }
}

fn micros_u64(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

fn micros_u32(d: Duration) -> u32 {
    d.as_micros().min(u32::MAX as u128) as u32
}

fn run_batch(
    engine: &Mr3Engine<'_, '_>,
    jobs: Vec<Job>,
    policy: BatchPolicy,
    stats: &ServeStats,
    rec: &dyn Recorder,
) {
    // Dequeue-time bookkeeping and deadline enforcement: a request whose
    // budget burned away in the queue is answered immediately instead of
    // occupying an engine slot to produce a reply nobody wants.
    let dequeued = Instant::now();
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs {
        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        stats.queue_us.record(micros_u64(dequeued.duration_since(job.enqueued)));
        if job.deadline.is_some_and(|d| dequeued >= d) {
            stats.expired.inc();
            job.writer.send(
                stats,
                &Frame::Error(ErrorFrame {
                    req_id: job.req_id,
                    code: ErrorCode::DeadlineExpired,
                    detail: "deadline expired while queued".to_string(),
                }),
            );
            continue;
        }
        live.push(job);
    }
    if live.is_empty() {
        return;
    }

    let batch: Vec<(SurfacePoint, usize, Option<Instant>)> =
        live.iter().map(|j| (j.point, j.k, j.deadline)).collect();
    let exec_start = Instant::now();
    let results = engine.try_query_batch_at(&batch, policy.exec_threads);
    let exec_us = micros_u32(exec_start.elapsed());

    let size = live.len();
    let batch_id = stats.batches.get();
    stats.batches.inc();
    stats.batched_requests.add(size as u64);
    stats.batch_size.record(size as u64);
    if rec.enabled() {
        rec.event(
            "serve_batch",
            batch_id,
            vec![
                field("size", size),
                field("exec_us", exec_us as u64),
                field("queue_depth", stats.queue_depth.load(Ordering::Relaxed)),
            ],
        );
    }

    let timing_for = |job: &Job| ServerTiming {
        queue_us: micros_u32(dequeued.duration_since(job.enqueued)),
        exec_us,
        batch: size.min(u16::MAX as usize) as u16,
    };
    for (job, result) in live.into_iter().zip(results) {
        let latency = micros_u64(Instant::now().duration_since(job.enqueued));
        stats.latency_us.record(latency);
        let frame = match result {
            Ok(res) => {
                stats.completed.inc();
                Frame::Response(ResponseFrame {
                    req_id: job.req_id,
                    timing: timing_for(&job),
                    degraded: res.degraded.as_ref().map(|d| d.reason.clone()),
                    neighbors: res
                        .neighbors
                        .iter()
                        .map(|n| WireNeighbor { id: n.id, lb: n.range.lb, ub: n.range.ub })
                        .collect(),
                })
            }
            Err(e @ QueryError::FaultBudgetExceeded { .. }) => {
                stats.query_errors.inc();
                Frame::Error(ErrorFrame {
                    req_id: job.req_id,
                    code: ErrorCode::FaultBudgetExceeded,
                    detail: e.to_string(),
                })
            }
        };
        if rec.enabled() {
            rec.span(
                "serve_request",
                job.req_id,
                vec![field("dur_us", latency), field("batch", size)],
            );
        }
        job.writer.send(stats, &frame);
    }
}
