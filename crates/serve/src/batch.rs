//! The adaptive micro-batcher: a single dispatcher thread that drains the
//! bounded admission queue, coalescing whatever is waiting into one
//! `Mr3Engine::try_query_batch_traced` call.
//!
//! The coalescing rule is the classic linger: the first job is taken the
//! moment it is available, then the dispatcher gathers more until the
//! batch is full (`max_batch`) or a short window (`max_wait`) closes.
//! Under light load batches degenerate to size 1 and add at most
//! `max_wait` of latency; under concurrent load the queue is non-empty
//! when the dispatcher returns from the engine, so batches fill without
//! waiting at all — throughput rises with offered load instead of
//! collapsing into per-request lock churn.
//!
//! Each job carries three clocks from the same monotonic source:
//! `enqueued` (admission), `recv_at` (dispatcher pickup — stamped at the
//! moment the job leaves the channel, so queue time and linger time are
//! genuinely disjoint), and the batch-wide `exec_start`. The stage
//! decomposition the response reports is therefore a partition of real
//! wall time: queue (enqueued→recv) + linger (recv→exec) + engine stages
//! ≤ end-to-end latency.
//!
//! Termination doubles as graceful drain: the loop exits when every
//! sender handle has dropped *and* the queue is empty, which is exactly
//! `std::sync::mpsc`'s disconnect contract — buffered messages are all
//! delivered first. The server shuts down by stopping the producers, and
//! every admitted request still gets its reply.

use crate::lanes::Lanes;
use crate::protocol::{
    write_frame_v, ErrorCode, ErrorFrame, Frame, RadiusFrame, RangeFrame, ResponseFrame,
    SeedsFrame, ServerTiming, WireNeighbor, WireObject,
};
use crate::slowlog::{SlowEntry, SlowOutcome, SlowQueryLog};
use crate::stats::ServeStats;
use sknn_core::metrics::QueryResult;
use sknn_core::mr3::Mr3Engine;
use sknn_core::resilience::QueryError;
use sknn_core::workload::SurfacePoint;
use sknn_geom::Point2;
use sknn_obs::{field, Recorder};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared write half of a connection. The dispatcher and the
/// connection's reader thread both reply on the same socket (responses
/// vs. admission rejections), so writes go through a mutex and each
/// frame is a single `write_all` — frames never interleave.
#[derive(Debug)]
pub(crate) struct ConnWriter {
    /// `None` is the null sink (tests and internal jobs): every send
    /// succeeds and goes nowhere.
    stream: Mutex<Option<TcpStream>>,
    /// Latched on the first failed write: the client is gone, so further
    /// replies are skipped instead of erroring one by one.
    dead: AtomicBool,
}

impl ConnWriter {
    pub(crate) fn new(stream: TcpStream) -> Self {
        Self { stream: Mutex::new(Some(stream)), dead: AtomicBool::new(false) }
    }

    /// A writer that discards every frame (unit tests).
    #[cfg(test)]
    pub(crate) fn null() -> Self {
        Self { stream: Mutex::new(None), dead: AtomicBool::new(false) }
    }

    /// Writes one frame encoded at `version` (the wire version the
    /// request being answered arrived in — a v1 client must never see a
    /// v2 layout); returns whether the client is still reachable.
    pub(crate) fn send(&self, stats: &ServeStats, frame: &Frame, version: u16) -> bool {
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let Some(stream) = stream.as_mut() else { return true };
        match write_frame_v(stream, frame, version) {
            Ok(()) => true,
            Err(_) => {
                self.dead.store(true, Ordering::Relaxed);
                stats.write_errors.inc();
                false
            }
        }
    }
}

/// What an admitted request asks the engine for. `Query` is the whole
/// MR3 pipeline; the rest are the decomposed shard ops of protocol v3
/// (a router reconstructing one query across a fleet). All ops flow
/// through the same lanes and batches, so every op is cancellable while
/// queued and every reply carries the same timing envelope.
pub(crate) enum JobOp {
    /// Full k-NN query (steps 1–4).
    Query { point: SurfacePoint, k: usize },
    /// Step 1 only: local 2D seeds.
    Seeds { xy: Point2, k: usize },
    /// Step 3 only: local 2D range collection.
    Range { xy: Point2, radius: f64 },
    /// Step 2 with explicit merged seeds.
    Radius { point: SurfacePoint, seeds: Vec<(u32, SurfacePoint)> },
    /// Steps 2+4 with explicit merged lists (home-shard coupled ranking).
    Exec {
        point: SurfacePoint,
        k: usize,
        seeds: Vec<(u32, SurfacePoint)>,
        cands: Vec<(u32, SurfacePoint)>,
    },
}

/// One admitted request, parked in the lanes until a batch picks it up.
pub(crate) struct Job {
    pub req_id: u64,
    /// The request's trace id: client-supplied or minted at admission,
    /// never 0 past that point. Doubles as the engine's query id so every
    /// obs record of this request carries it.
    pub trace_id: u64,
    /// What to run.
    pub op: JobOp,
    /// Absolute deadline (arrival + `deadline_ms`); enforced at dequeue
    /// and passed into the engine for mid-query enforcement.
    pub deadline: Option<Instant>,
    pub enqueued: Instant,
    /// When the dispatcher pulled this job off the lanes. Initialized
    /// to `enqueued` at admission and overwritten at pickup.
    pub recv_at: Instant,
    /// Protocol version the request frame arrived in; replies use it.
    pub wire_version: u16,
    pub writer: std::sync::Arc<ConnWriter>,
}

/// Batching knobs, copied out of the server config.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchPolicy {
    pub max_batch: usize,
    pub max_wait: Duration,
    pub exec_threads: usize,
}

/// Dispatcher thread body: drain the lanes into micro-batches until the
/// lanes are closed and empty.
pub(crate) fn dispatch_loop(
    engine: &Mr3Engine<'_, '_>,
    lanes: &Lanes,
    policy: BatchPolicy,
    stats: &ServeStats,
    slow: &SlowQueryLog,
    rec: &dyn Recorder,
) {
    while let Some(mut first) = lanes.pop() {
        first.recv_at = Instant::now();
        let mut jobs = vec![first];
        let linger_until = Instant::now() + policy.max_wait;
        while jobs.len() < policy.max_batch {
            match lanes.try_pop() {
                Some(mut job) => {
                    job.recv_at = Instant::now();
                    jobs.push(job);
                }
                None => {
                    if Instant::now() >= linger_until {
                        break;
                    }
                    match lanes.pop_until(linger_until) {
                        Some(mut job) => {
                            job.recv_at = Instant::now();
                            jobs.push(job);
                        }
                        None => break,
                    }
                }
            }
        }
        run_batch(engine, jobs, policy, stats, slow, rec);
    }
}

/// Per-op engine output, paired back with its job after the batch runs.
/// Lives only for the duration of one batch; boxing the ranked result to
/// even out variant sizes would cost an allocation per query.
#[allow(clippy::large_enum_variant)]
enum OpOut {
    /// `Query` and `Exec`: a full ranked result.
    Ranked(Result<QueryResult, QueryError>),
    /// `Seeds`: local `(2D distance, id, point)` seeds, canonical order.
    Seeds(Vec<(f64, u32, SurfacePoint)>),
    /// `Range`: local in-range objects, ascending by id.
    Range(Vec<(u32, SurfacePoint)>),
    /// `Radius`: the estimated search radius.
    Radius(Result<f64, QueryError>),
}

fn wire_object(id: u32, p: &SurfacePoint) -> WireObject {
    WireObject { id, tri: p.tri, x: p.pos.x, y: p.pos.y, z: p.pos.z }
}

fn micros_u64(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

fn micros_u32(d: Duration) -> u32 {
    d.as_micros().min(u32::MAX as u128) as u32
}

fn run_batch(
    engine: &Mr3Engine<'_, '_>,
    jobs: Vec<Job>,
    policy: BatchPolicy,
    stats: &ServeStats,
    slow: &SlowQueryLog,
    rec: &dyn Recorder,
) {
    // Dequeue-time bookkeeping and deadline enforcement: a request whose
    // budget burned away in the queue is answered immediately instead of
    // occupying an engine slot to produce a reply nobody wants.
    let dequeued = Instant::now();
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs {
        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        stats.queue_us.record(micros_u64(job.recv_at.duration_since(job.enqueued)));
        if job.deadline.is_some_and(|d| dequeued >= d) {
            stats.expired.inc();
            let total_us = micros_u64(dequeued.duration_since(job.enqueued));
            if slow.wants(total_us, SlowOutcome::Expired) {
                stats.slow_captured.inc();
                slow.push(SlowEntry {
                    trace_id: job.trace_id,
                    req_id: job.req_id,
                    total_us,
                    timing: ServerTiming {
                        queue_us: micros_u32(job.recv_at.duration_since(job.enqueued)),
                        ..Default::default()
                    },
                    outcome: SlowOutcome::Expired,
                });
            }
            job.writer.send(
                stats,
                &Frame::Error(ErrorFrame {
                    req_id: job.req_id,
                    code: ErrorCode::DeadlineExpired,
                    detail: "deadline expired while queued".to_string(),
                }),
                job.wire_version,
            );
            continue;
        }
        live.push(job);
    }
    if live.is_empty() {
        return;
    }

    let stall_before_ns = engine.pager().stall_ns();
    let exec_start = Instant::now();
    // Per-element dispatch on the op keeps the bit-identity contract of
    // `try_query_batch_traced`: each element is an independent engine
    // call, so results do not depend on what rode along in the batch.
    let results: Vec<OpOut> =
        sknn_exec::par_map(policy.exec_threads, &live, |_, job| match &job.op {
            JobOp::Query { point, k } => {
                OpOut::Ranked(engine.try_query_traced(*point, *k, job.deadline, job.trace_id))
            }
            JobOp::Exec { point, k, seeds, cands } => OpOut::Ranked(engine.exec_ranked(
                *point,
                *k,
                seeds,
                cands,
                job.deadline,
                job.trace_id,
            )),
            JobOp::Seeds { xy, k } => OpOut::Seeds(engine.seeds2d(*xy, *k)),
            JobOp::Range { xy, radius } => OpOut::Range(engine.range2d(*xy, *radius)),
            JobOp::Radius { point, seeds } => {
                OpOut::Radius(engine.estimate_radius_for(*point, seeds, job.deadline, job.trace_id))
            }
        });
    let exec_us = micros_u32(exec_start.elapsed());
    // The pager's stall clock is cumulative; the difference across the
    // engine call is this batch's stall wall time. Stalls of concurrent
    // batch members overlap, so this is attributed per batch, not split
    // per request.
    let stall_us = ((engine.pager().stall_ns().saturating_sub(stall_before_ns)) / 1_000)
        .min(u32::MAX as u64) as u32;

    let size = live.len();
    let batch_id = stats.batches.get();
    stats.batches.inc();
    stats.batched_requests.add(size as u64);
    stats.batch_size.record(size as u64);
    stats.stall_us.record(stall_us as u64);
    if rec.enabled() {
        rec.event(
            "serve_batch",
            batch_id,
            vec![
                field("size", size),
                field("exec_us", exec_us as u64),
                field("stall_us", stall_us as u64),
                field("queue_depth", stats.queue_depth.load(Ordering::Relaxed)),
            ],
        );
    }

    for (job, result) in live.into_iter().zip(results) {
        let latency = micros_u64(Instant::now().duration_since(job.enqueued));
        stats.latency_us.record(latency);
        let queue_us = micros_u32(job.recv_at.duration_since(job.enqueued));
        let linger_us = micros_u32(exec_start.duration_since(job.recv_at));
        stats.linger_us.record(linger_us as u64);
        stats.exec_us.record(exec_us as u64);
        let mut timing = ServerTiming {
            queue_us,
            linger_us,
            exec_us,
            stall_us,
            batch: size.min(u16::MAX as usize) as u16,
            ..Default::default()
        };
        let frame = match result {
            OpOut::Seeds(seeds) => {
                stats.completed.inc();
                Frame::Seeds(SeedsFrame {
                    req_id: job.req_id,
                    trace_id: job.trace_id,
                    seeds: seeds.iter().map(|(d, id, p)| (*d, wire_object(*id, p))).collect(),
                })
            }
            OpOut::Range(objs) => {
                stats.completed.inc();
                Frame::Range(RangeFrame {
                    req_id: job.req_id,
                    trace_id: job.trace_id,
                    objects: objs.iter().map(|(id, p)| wire_object(*id, p)).collect(),
                })
            }
            OpOut::Radius(Ok(radius)) => {
                stats.completed.inc();
                Frame::Radius(RadiusFrame { req_id: job.req_id, trace_id: job.trace_id, radius })
            }
            OpOut::Radius(Err(e)) => {
                stats.query_errors.inc();
                Frame::Error(ErrorFrame {
                    req_id: job.req_id,
                    code: ErrorCode::FaultBudgetExceeded,
                    detail: e.to_string(),
                })
            }
            OpOut::Ranked(Ok(mut res)) => {
                stats.completed.inc();
                let stages = res.stats.stages;
                timing.knn2d_us = stages.knn2d_us.min(u32::MAX as u64) as u32;
                timing.radius_us = stages.radius_us.min(u32::MAX as u64) as u32;
                timing.range_us = stages.range_us.min(u32::MAX as u64) as u32;
                timing.rank_us = stages.rank_us.min(u32::MAX as u64) as u32;
                stats.stage_knn2d_us.record(stages.knn2d_us);
                stats.stage_radius_us.record(stages.radius_us);
                stats.stage_range_us.record(stages.range_us);
                stats.stage_rank_us.record(stages.rank_us);
                stats.dijkstra_pushes.add(res.stats.queue_pushes);
                stats.dijkstra_pops.add(res.stats.queue_pops);
                stats.dijkstra_stale_pops.add(res.stats.stale_pops);
                stats.dijkstra_settled.add(res.stats.settled as u64);
                if res.degraded.is_some() {
                    stats.degraded.inc();
                }
                // Fold the engine's per-query trace (records stamped with
                // the trace id) into the server's ring, so one drain tells
                // the whole request-scoped story.
                if rec.enabled() {
                    if let Some(trace) = res.trace.take() {
                        rec.absorb(trace);
                    }
                }
                let outcome =
                    if res.degraded.is_some() { SlowOutcome::Degraded } else { SlowOutcome::Ok };
                if slow.wants(latency, outcome) {
                    stats.slow_captured.inc();
                    slow.push(SlowEntry {
                        trace_id: job.trace_id,
                        req_id: job.req_id,
                        total_us: latency,
                        timing,
                        outcome,
                    });
                }
                Frame::Response(ResponseFrame {
                    req_id: job.req_id,
                    trace_id: job.trace_id,
                    timing,
                    degraded: res.degraded.as_ref().map(|d| d.reason.clone()),
                    neighbors: res
                        .neighbors
                        .iter()
                        .map(|n| WireNeighbor { id: n.id, lb: n.range.lb, ub: n.range.ub })
                        .collect(),
                    radius: res.radius,
                })
            }
            OpOut::Ranked(Err(e @ QueryError::FaultBudgetExceeded { .. })) => {
                stats.query_errors.inc();
                if slow.wants(latency, SlowOutcome::Error) {
                    stats.slow_captured.inc();
                    slow.push(SlowEntry {
                        trace_id: job.trace_id,
                        req_id: job.req_id,
                        total_us: latency,
                        timing,
                        outcome: SlowOutcome::Error,
                    });
                }
                Frame::Error(ErrorFrame {
                    req_id: job.req_id,
                    code: ErrorCode::FaultBudgetExceeded,
                    detail: e.to_string(),
                })
            }
        };
        if rec.enabled() {
            rec.span(
                "serve_request",
                job.trace_id,
                vec![
                    field("dur_us", latency),
                    field("req_id", job.req_id),
                    field("queue_us", queue_us as u64),
                    field("linger_us", linger_us as u64),
                    field("batch", size),
                ],
            );
        }
        job.writer.send(stats, &frame, job.wire_version);
    }
}
