//! A deliberately tiny metrics endpoint: std-only HTTP/1.1, GET-only,
//! two routes.
//!
//! * `GET /metrics` — Prometheus text exposition rendered from an
//!   [`sknn_obs::Registry`] at request time (pull model: reading the
//!   counters costs nothing until someone scrapes).
//! * `GET /healthz` — `200` with `{"status":"serving"}` while the query
//!   port accepts work, `503` with `{"status":"draining"}` once graceful
//!   drain has begun. Load balancers poll this to stop routing before
//!   the query port actually closes.
//!
//! The listener is nonblocking and single-threaded: a scrape is a few
//! hundred microseconds of rendering, and metrics traffic is one poller,
//! not a fleet. Requests are read with a short timeout and a bounded
//! buffer; anything that is not a well-formed `GET` line gets a 400 and
//! a hangup, because this endpoint's threat model is "curl and a
//! scraper", not the open internet.

use sknn_obs::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Serves `/metrics` and `/healthz` until `stop` is set. `draining`
/// flips the health answer; it is independent of `stop` so the endpoint
/// keeps answering (as draining) for the whole drain window.
pub fn metrics_loop(
    listener: &TcpListener,
    registry: &Registry<'_>,
    draining: &AtomicBool,
    stop: &AtomicBool,
) {
    listener.set_nonblocking(true).expect("metrics listener nonblocking");
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // One request per connection, served inline: losing a
                // scrape interval to a slow client is acceptable, leaking
                // a thread per scrape is not.
                let _ = serve_one(stream, registry, draining);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn serve_one(
    mut stream: TcpStream,
    registry: &Registry<'_>,
    draining: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_nodelay(true).ok();
    let path = match read_request_path(&mut stream) {
        Some(p) => p,
        None => {
            return write_response(&mut stream, 400, "text/plain; charset=utf-8", "bad request\n")
        }
    };
    match path.as_str() {
        "/metrics" => {
            let body = registry.render();
            write_response(&mut stream, 200, "text/plain; version=0.0.4; charset=utf-8", &body)
        }
        "/healthz" => {
            if draining.load(Ordering::Relaxed) {
                write_response(&mut stream, 503, "application/json", "{\"status\":\"draining\"}\n")
            } else {
                write_response(&mut stream, 200, "application/json", "{\"status\":\"serving\"}\n")
            }
        }
        _ => write_response(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Reads up to the end of the request head and returns the GET path, or
/// `None` for anything malformed, non-GET, or oversized.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 2048];
    let mut filled = 0;
    loop {
        // The request line alone is enough; stop as soon as it is complete.
        if let Some(line_end) = buf[..filled].windows(2).position(|w| w == b"\r\n") {
            let line = std::str::from_utf8(&buf[..line_end]).ok()?;
            let mut parts = line.split(' ');
            let method = parts.next()?;
            let path = parts.next()?;
            let version = parts.next()?;
            if method != "GET" || !version.starts_with("HTTP/1.") {
                return None;
            }
            return Some(path.to_string());
        }
        if filled == buf.len() {
            return None;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return None,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Binds the metrics listener (port 0 for ephemeral) and returns it with
/// its resolved address.
pub fn bind_metrics(addr: &str) -> io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    Ok((listener, local))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let status: u16 = out.split(' ').nth(1).and_then(|c| c.parse().ok()).expect("status code");
        let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn routes_metrics_healthz_and_404() {
        let (listener, addr) = bind_metrics("127.0.0.1:0").unwrap();
        let registry = Registry::new();
        registry.counter_fn("test_hits_total", "Test counter", || 42);
        let draining = AtomicBool::new(false);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| metrics_loop(&listener, &registry, &draining, &stop));
            let (status, body) = get(addr, "/metrics");
            assert_eq!(status, 200);
            assert!(body.contains("test_hits_total 42"), "{body}");
            let (status, body) = get(addr, "/healthz");
            assert_eq!(status, 200);
            assert!(body.contains("serving"), "{body}");
            draining.store(true, Ordering::Relaxed);
            let (status, body) = get(addr, "/healthz");
            assert_eq!(status, 503);
            assert!(body.contains("draining"), "{body}");
            let (status, _) = get(addr, "/nope");
            assert_eq!(status, 404);
            stop.store(true, Ordering::Relaxed);
        });
    }
}
