//! Wavefront OBJ export.
//!
//! The paper's Fig. 1 shows the same terrain at two resolutions; this
//! module lets any front of the DMTM (or the original mesh) be inspected
//! in standard mesh viewers. Meshes export as `v`/`f` records; resolution
//! fronts — which are graphs, not triangulations — export as `v`/`l`
//! polyline records.

use crate::mesh::TerrainMesh;
use sknn_geom::Point3;
use std::io::{self, Write};

/// Write a triangulated terrain as OBJ (`v` + `f`).
pub fn write_mesh_obj(mesh: &TerrainMesh, out: &mut impl Write) -> io::Result<()> {
    writeln!(
        out,
        "# surface-knn terrain: {} vertices, {} facets",
        mesh.num_vertices(),
        mesh.num_triangles()
    )?;
    for v in mesh.vertices() {
        writeln!(out, "v {} {} {}", v.x, v.y, v.z)?;
    }
    for t in mesh.triangles() {
        // OBJ indices are 1-based.
        writeln!(out, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1)?;
    }
    Ok(())
}

/// Write a graph (node positions + edges) as OBJ line elements (`v` + `l`).
/// Used for DMTM fronts and shortest-path polylines.
pub fn write_graph_obj(
    positions: &[Point3],
    edges: &[(u32, u32)],
    out: &mut impl Write,
) -> io::Result<()> {
    writeln!(out, "# surface-knn graph: {} nodes, {} edges", positions.len(), edges.len())?;
    for v in positions {
        writeln!(out, "v {} {} {}", v.x, v.y, v.z)?;
    }
    for &(a, b) in edges {
        writeln!(out, "l {} {}", a + 1, b + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::TerrainConfig;

    #[test]
    fn mesh_obj_roundtrip_counts() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(1);
        let mut buf = Vec::new();
        write_mesh_obj(&mesh, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let nv = text.lines().filter(|l| l.starts_with("v ")).count();
        let nf = text.lines().filter(|l| l.starts_with("f ")).count();
        assert_eq!(nv, mesh.num_vertices());
        assert_eq!(nf, mesh.num_triangles());
        // Face indices are valid 1-based references.
        for line in text.lines().filter(|l| l.starts_with("f ")) {
            for idx in line.split_whitespace().skip(1) {
                let i: usize = idx.parse().unwrap();
                assert!(i >= 1 && i <= nv);
            }
        }
    }

    #[test]
    fn graph_obj_lines() {
        let pos = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 2.0),
            Point3::new(1.0, 1.0, 1.0),
        ];
        let edges = vec![(0u32, 1u32), (1, 2)];
        let mut buf = Vec::new();
        write_graph_obj(&pos, &edges, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("l ")).count(), 2);
        assert!(text.contains("l 1 2"));
        assert!(text.contains("l 2 3"));
    }
}
