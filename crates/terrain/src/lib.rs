#![warn(missing_docs)]
//! Terrain substrate: synthetic digital elevation models and triangulated
//! terrain meshes.
//!
//! The paper evaluates on two USGS DEMs (Bearhead Mountain, WA — rugged; and
//! Eagle Peak, WY — smoother) that are no longer distributable. This crate
//! generates *synthetic* DEMs with the same controllable statistics
//! (roughness/relief via fractional-Brownian diamond–square synthesis) and
//! triangulates them into [`mesh::TerrainMesh`] — the "original surface
//! model" every other structure (DMTM, MSDN, pathnet) is derived from.
//!
//! ```
//! use sknn_terrain::{TerrainConfig, MeshStats};
//!
//! // Deterministic rugged terrain, 33x33 samples at 10 m spacing.
//! let mesh = TerrainConfig::bh().with_grid(33).build_mesh(7);
//! assert_eq!(mesh.num_vertices(), 33 * 33);
//! let stats = MeshStats::compute(&mesh);
//! assert!(stats.rugosity > 1.0); // rugged: more surface than footprint
//! ```

pub mod ascii_grid;
pub mod builder;
pub mod dem;
pub mod locate;
pub mod mesh;
pub mod obj;
pub mod stats;

pub use ascii_grid::parse_ascii_grid;
pub use dem::{Dem, TerrainConfig, TerrainKind};
pub use locate::TriangleLocator;
pub use mesh::TerrainMesh;
pub use stats::MeshStats;
