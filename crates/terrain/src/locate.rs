//! Point location: which facet contains a horizontal position?
//!
//! Query and object points arrive as (x, y) positions (or as off-mesh 3-D
//! points); embedding them into the surface model (paper §3.2) needs the
//! containing triangle. A uniform bucket grid over triangle MBRs gives O(1)
//! expected lookup for any mesh, not just grid TINs.

use crate::mesh::{TerrainMesh, TriId};
use sknn_geom::{Point2, Point3, Rect2};

/// Uniform-grid triangle locator.
pub struct TriangleLocator {
    extent: Rect2,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
    buckets: Vec<Vec<TriId>>,
}

impl TriangleLocator {
    /// Build a locator with roughly one triangle per bucket.
    pub fn build(mesh: &TerrainMesh) -> Self {
        let extent = mesh.extent();
        let n_tri = mesh.num_triangles().max(1);
        let aspect = (extent.height() / extent.width().max(1e-12)).max(1e-6);
        let nx = ((n_tri as f64 / (2.0 * aspect)).sqrt().ceil() as usize).max(1);
        let ny = ((nx as f64 * aspect).ceil() as usize).max(1);
        let cell_w = extent.width() / nx as f64;
        let cell_h = extent.height() / ny as f64;
        let mut buckets = vec![Vec::new(); nx * ny];
        for t in 0..mesh.num_triangles() as TriId {
            let mbr = mesh.triangle(t).mbr_xy();
            let (c0, r0) = clamp_cell(extent, nx, ny, cell_w, cell_h, mbr.lo);
            let (c1, r1) = clamp_cell(extent, nx, ny, cell_w, cell_h, mbr.hi);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    buckets[r * nx + c].push(t);
                }
            }
        }
        Self { extent, nx, ny, cell_w, cell_h, buckets }
    }

    /// Triangle whose projection contains `p`, if any. Points on shared
    /// edges may match either incident facet.
    pub fn locate(&self, mesh: &TerrainMesh, p: Point2) -> Option<TriId> {
        if !self.extent.contains_point(p) {
            return None;
        }
        let (c, r) = clamp_cell(self.extent, self.nx, self.ny, self.cell_w, self.cell_h, p);
        self.buckets[r * self.nx + c].iter().copied().find(|&t| mesh.triangle(t).contains_xy(p))
    }

    /// Lift a horizontal position onto the surface (barycentric elevation).
    pub fn lift(&self, mesh: &TerrainMesh, p: Point2) -> Option<Point3> {
        let t = self.locate(mesh, p)?;
        mesh.triangle(t).lift_xy(p)
    }
}

fn clamp_cell(
    extent: Rect2,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
    p: Point2,
) -> (usize, usize) {
    let cx = if cell_w <= 0.0 {
        0
    } else {
        (((p.x - extent.lo.x) / cell_w) as isize).clamp(0, nx as isize - 1) as usize
    };
    let cy = if cell_h <= 0.0 {
        0
    } else {
        (((p.y - extent.lo.y) / cell_h) as isize).clamp(0, ny as isize - 1) as usize
    };
    (cx, cy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::TerrainConfig;

    #[test]
    fn locates_every_grid_cell_center() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(7);
        let loc = TriangleLocator::build(&mesh);
        let e = mesh.extent();
        // Probe a lattice of interior points.
        for i in 1..20 {
            for j in 1..20 {
                let p = Point2::new(
                    e.lo.x + e.width() * i as f64 / 20.0,
                    e.lo.y + e.height() * j as f64 / 20.0,
                );
                let t = loc.locate(&mesh, p).expect("interior point must be inside a facet");
                assert!(mesh.triangle(t).contains_xy(p));
            }
        }
    }

    #[test]
    fn outside_extent_is_none() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(1);
        let loc = TriangleLocator::build(&mesh);
        assert!(loc.locate(&mesh, Point2::new(-1.0, 0.0)).is_none());
        assert!(loc.locate(&mesh, Point2::new(1e9, 1e9)).is_none());
    }

    #[test]
    fn lift_interpolates_grid_heights() {
        let mesh = TerrainConfig::ep().with_grid(9).build_mesh(2);
        let loc = TriangleLocator::build(&mesh);
        // At an exact vertex position the lift must equal the vertex.
        let v = mesh.vertex(12);
        let lifted = loc.lift(&mesh, v.xy()).unwrap();
        assert!((lifted.z - v.z).abs() < 1e-9);
    }

    #[test]
    fn corners_are_locatable() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(3);
        let loc = TriangleLocator::build(&mesh);
        let e = mesh.extent();
        for p in [e.lo, e.hi, Point2::new(e.lo.x, e.hi.y), Point2::new(e.hi.x, e.lo.y)] {
            assert!(loc.locate(&mesh, p).is_some(), "corner {p:?}");
        }
    }
}
