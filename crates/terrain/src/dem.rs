//! Synthetic digital elevation models.
//!
//! The generator is seeded diamond–square with a Hurst-exponent roughness
//! control (amplitude halves by `2^-H` per octave), optionally followed by
//! smoothing passes. Two presets mirror the paper's datasets:
//!
//! * [`TerrainConfig::bh`] — "Bearhead Mountain"-like: rugged, high relief.
//!   The paper reports surface/Euclidean distance ratios of 200–300 % in
//!   such areas.
//! * [`TerrainConfig::ep`] — "Eagle Peak"-like: noticeably smoother.
//!
//! Everything is deterministic given (config, seed), so every figure in the
//! benchmark suite is reproducible bit-for-bit.

use crate::mesh::TerrainMesh;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which real-world dataset a config imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerrainKind {
    /// Rugged mountain terrain (Bearhead Mountain, WA analogue).
    Bearhead,
    /// Milder terrain (Eagle Peak, WY analogue).
    EaglePeak,
    /// Fully custom parameters.
    Custom,
}

/// Parameters of a synthetic DEM.
#[derive(Debug, Clone)]
pub struct TerrainConfig {
    /// The kind.
    pub kind: TerrainKind,
    /// Grid points per side. Rounded up to `2^k + 1` internally.
    pub grid: usize,
    /// Horizontal spacing between grid samples, metres (USGS DEMs: 10 m).
    pub cell_size_m: f64,
    /// Peak-to-peak relief of the base octave, metres.
    pub relief_m: f64,
    /// Hurst exponent in `(0, 1]`: smaller is rougher.
    pub hurst: f64,
    /// Post-synthesis 3x3 smoothing passes (EP uses more).
    pub smoothing_passes: usize,
}

impl TerrainConfig {
    /// Rugged preset ("more mountains than Eagle Peak", §5.1). Tuned so the
    /// local slope statistics resemble a 10 m mountain DEM: relief ~35 % of
    /// the extent, per-cell slopes around 0.4–0.8.
    pub fn bh() -> Self {
        Self {
            kind: TerrainKind::Bearhead,
            grid: 129,
            cell_size_m: 10.0,
            relief_m: 450.0,
            hurst: 0.55,
            smoothing_passes: 0,
        }
    }

    /// Smoother preset: rolling terrain with per-cell slopes around 0.1.
    pub fn ep() -> Self {
        Self {
            kind: TerrainKind::EaglePeak,
            grid: 129,
            cell_size_m: 10.0,
            relief_m: 200.0,
            hurst: 0.9,
            smoothing_passes: 1,
        }
    }

    /// Override the grid resolution (points per side).
    pub fn with_grid(mut self, grid: usize) -> Self {
        self.grid = grid;
        self
    }

    /// Override the relief amplitude.
    pub fn with_relief(mut self, relief_m: f64) -> Self {
        self.relief_m = relief_m;
        self
    }

    /// Override the Hurst exponent.
    pub fn with_hurst(mut self, hurst: f64) -> Self {
        self.hurst = hurst;
        self.kind = TerrainKind::Custom;
        self
    }

    /// Synthesize the DEM with the given RNG seed.
    pub fn build(&self, seed: u64) -> Dem {
        Dem::generate(self, seed)
    }

    /// Synthesize and triangulate in one step.
    pub fn build_mesh(&self, seed: u64) -> TerrainMesh {
        crate::builder::triangulate(&self.build(seed))
    }
}

/// A regular elevation grid.
#[derive(Debug, Clone)]
pub struct Dem {
    /// Points per side (always `2^k + 1`).
    pub n: usize,
    /// The cell size m.
    pub cell_size_m: f64,
    /// Row-major elevations, `heights[row * n + col]`.
    pub heights: Vec<f64>,
}

impl Dem {
    /// Diamond–square synthesis.
    ///
    /// `relief_m` is specified for the presets' reference extent (1.28 km,
    /// the 129-point grid at 10 m spacing) and scales linearly with the
    /// actual extent, so slope statistics — which drive every surface-
    /// distance effect — are invariant under grid scaling.
    pub fn generate(config: &TerrainConfig, seed: u64) -> Dem {
        let n = round_up_pow2_plus1(config.grid.max(3));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = vec![0.0f64; n * n];
        let idx = |r: usize, c: usize| r * n + c;

        let extent_scale = ((n - 1) as f64 * config.cell_size_m) / 1280.0;
        let mut amp = config.relief_m * 0.5 * extent_scale;
        // Seed the corners.
        for (r, c) in [(0, 0), (0, n - 1), (n - 1, 0), (n - 1, n - 1)] {
            h[idx(r, c)] = rng.gen_range(-amp..=amp);
        }

        let mut step = n - 1;
        let decay = 0.5f64.powf(config.hurst);
        while step > 1 {
            let half = step / 2;
            // Diamond step: centres of squares.
            for r in (half..n).step_by(step) {
                for c in (half..n).step_by(step) {
                    let avg = (h[idx(r - half, c - half)]
                        + h[idx(r - half, c + half)]
                        + h[idx(r + half, c - half)]
                        + h[idx(r + half, c + half)])
                        / 4.0;
                    h[idx(r, c)] = avg + rng.gen_range(-amp..=amp);
                }
            }
            // Square step: edge midpoints, wrapping contributions dropped at
            // the boundary.
            for r in (0..n).step_by(half) {
                let c0 = if (r / half).is_multiple_of(2) { half } else { 0 };
                for c in (c0..n).step_by(step) {
                    let mut sum = 0.0;
                    let mut cnt = 0.0;
                    if r >= half {
                        sum += h[idx(r - half, c)];
                        cnt += 1.0;
                    }
                    if r + half < n {
                        sum += h[idx(r + half, c)];
                        cnt += 1.0;
                    }
                    if c >= half {
                        sum += h[idx(r, c - half)];
                        cnt += 1.0;
                    }
                    if c + half < n {
                        sum += h[idx(r, c + half)];
                        cnt += 1.0;
                    }
                    h[idx(r, c)] = sum / cnt + rng.gen_range(-amp..=amp);
                }
            }
            amp *= decay;
            step = half;
        }

        let mut dem = Dem { n, cell_size_m: config.cell_size_m, heights: h };
        for _ in 0..config.smoothing_passes {
            dem.smooth();
        }
        dem
    }

    /// One 3x3 box-blur pass (boundary cells use the available neighbours).
    pub fn smooth(&mut self) {
        let n = self.n;
        let src = self.heights.clone();
        for r in 0..n {
            for c in 0..n {
                let mut sum = 0.0;
                let mut cnt = 0.0;
                for dr in -1i64..=1 {
                    for dc in -1i64..=1 {
                        let rr = r as i64 + dr;
                        let cc = c as i64 + dc;
                        if rr >= 0 && rr < n as i64 && cc >= 0 && cc < n as i64 {
                            sum += src[rr as usize * n + cc as usize];
                            cnt += 1.0;
                        }
                    }
                }
                self.heights[r * n + c] = sum / cnt;
            }
        }
    }

    /// Extent along y.
    pub fn height(&self, row: usize, col: usize) -> f64 {
        self.heights[row * self.n + col]
    }

    /// Side length of the covered square, metres.
    pub fn extent_m(&self) -> f64 {
        (self.n - 1) as f64 * self.cell_size_m
    }

    /// Covered area in km².
    pub fn area_km2(&self) -> f64 {
        let e = self.extent_m() / 1000.0;
        e * e
    }

    /// Min max.
    pub fn min_max(&self) -> (f64, f64) {
        self.heights
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &z| (lo.min(z), hi.max(z)))
    }
}

fn round_up_pow2_plus1(n: usize) -> usize {
    let mut p = 2usize;
    while p + 1 < n {
        p *= 2;
    }
    p + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rounding() {
        assert_eq!(round_up_pow2_plus1(3), 3);
        assert_eq!(round_up_pow2_plus1(4), 5);
        assert_eq!(round_up_pow2_plus1(5), 5);
        assert_eq!(round_up_pow2_plus1(100), 129);
        assert_eq!(round_up_pow2_plus1(129), 129);
        assert_eq!(round_up_pow2_plus1(130), 257);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TerrainConfig::bh().with_grid(33);
        let a = cfg.build(9);
        let b = cfg.build(9);
        assert_eq!(a.heights, b.heights);
        let c = cfg.build(10);
        assert_ne!(a.heights, c.heights);
    }

    #[test]
    fn relief_is_bounded_by_geometric_series() {
        let cfg = TerrainConfig::bh().with_grid(65);
        let dem = cfg.build(1);
        let (lo, hi) = dem.min_max();
        // Sum of displacement amplitudes is a geometric series; the total
        // range is comfortably below 4x the base relief.
        assert!(hi - lo <= 4.0 * cfg.relief_m, "range {}", hi - lo);
        assert!(hi - lo > 0.0);
    }

    #[test]
    fn smoothing_reduces_roughness() {
        let cfg = TerrainConfig::bh().with_grid(65);
        let rough = cfg.build(5);
        let mut smooth = rough.clone();
        smooth.smooth();
        let tv = |d: &Dem| -> f64 {
            let n = d.n;
            let mut sum = 0.0;
            for r in 0..n {
                for c in 1..n {
                    sum += (d.height(r, c) - d.height(r, c - 1)).abs();
                }
            }
            sum
        };
        assert!(tv(&smooth) < tv(&rough));
    }

    #[test]
    fn bh_is_rougher_than_ep() {
        let bh = TerrainConfig::bh().with_grid(65).build(3);
        let ep = TerrainConfig::ep().with_grid(65).build(3);
        let grad = |d: &Dem| -> f64 {
            let n = d.n;
            let mut sum = 0.0;
            let mut cnt = 0.0;
            for r in 0..n {
                for c in 1..n {
                    sum += ((d.height(r, c) - d.height(r, c - 1)) / d.cell_size_m).abs();
                    cnt += 1.0;
                }
            }
            sum / cnt
        };
        assert!(grad(&bh) > 2.0 * grad(&ep), "bh {} ep {}", grad(&bh), grad(&ep));
    }

    #[test]
    fn extent_and_area() {
        let dem = TerrainConfig::bh().with_grid(129).build(0);
        assert_eq!(dem.extent_m(), 1280.0);
        assert!((dem.area_km2() - 1.6384).abs() < 1e-12);
    }
}
