//! Terrain roughness statistics.
//!
//! The paper's motivation (§1) leans on the observation that the
//! surface/Euclidean distance ratio varies wildly with terrain roughness
//! (200–300 % in rugged areas vs 20–40 % elsewhere — i.e. ratios of
//! ~1.2–3.0). These statistics characterise a mesh so benchmark output can
//! report which regime a synthetic terrain is in, and so MSDN plane spacing
//! can adapt to roughness.

use crate::mesh::TerrainMesh;

/// Summary statistics of a terrain mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshStats {
    /// The num vertices.
    pub num_vertices: usize,
    /// The num triangles.
    pub num_triangles: usize,
    /// The num edges.
    pub num_edges: usize,
    /// Total facet area / projected area; 1.0 for a flat plane.
    pub rugosity: f64,
    /// The mean edge length.
    pub mean_edge_length: f64,
    /// The min elevation.
    pub min_elevation: f64,
    /// The max elevation.
    pub max_elevation: f64,
    /// Mean absolute facet slope (rise over run of facet normals).
    pub mean_slope: f64,
}

impl MeshStats {
    /// Compute.
    pub fn compute(mesh: &TerrainMesh) -> Self {
        let surface = mesh.surface_area();
        let planar = mesh.planar_area().max(1e-12);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in mesh.vertices() {
            lo = lo.min(v.z);
            hi = hi.max(v.z);
        }
        let mut slope_sum = 0.0;
        for t in 0..mesh.num_triangles() as u32 {
            let n = mesh.triangle(t).normal().normalized();
            let horiz = (n.x * n.x + n.y * n.y).sqrt();
            let vert = n.z.abs().max(1e-12);
            slope_sum += horiz / vert;
        }
        Self {
            num_vertices: mesh.num_vertices(),
            num_triangles: mesh.num_triangles(),
            num_edges: mesh.num_edges(),
            rugosity: surface / planar,
            mean_edge_length: mesh.mean_edge_length(),
            min_elevation: lo,
            max_elevation: hi,
            mean_slope: slope_sum / mesh.num_triangles().max(1) as f64,
        }
    }

    /// Elevation relief (max − min).
    pub fn relief(&self) -> f64 {
        self.max_elevation - self.min_elevation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::TerrainConfig;

    #[test]
    fn flat_plane_has_unit_rugosity() {
        use sknn_geom::Point3;
        let vs = vec![
            Point3::new(0.0, 0.0, 5.0),
            Point3::new(1.0, 0.0, 5.0),
            Point3::new(1.0, 1.0, 5.0),
            Point3::new(0.0, 1.0, 5.0),
        ];
        let m = TerrainMesh::new(vs, vec![[0, 1, 2], [0, 2, 3]]);
        let s = MeshStats::compute(&m);
        assert!((s.rugosity - 1.0).abs() < 1e-12);
        assert_eq!(s.relief(), 0.0);
        assert!(s.mean_slope.abs() < 1e-9);
    }

    #[test]
    fn bh_rugosity_exceeds_ep() {
        let bh = MeshStats::compute(&TerrainConfig::bh().with_grid(65).build_mesh(11));
        let ep = MeshStats::compute(&TerrainConfig::ep().with_grid(65).build_mesh(11));
        assert!(bh.rugosity > ep.rugosity, "bh {} ep {}", bh.rugosity, ep.rugosity);
        assert!(bh.mean_slope > ep.mean_slope);
        // The BH preset should be genuinely rugged.
        assert!(bh.rugosity > 1.15, "bh rugosity {}", bh.rugosity);
    }

    #[test]
    fn counts_passthrough() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(0);
        let s = MeshStats::compute(&mesh);
        assert_eq!(s.num_vertices, mesh.num_vertices());
        assert_eq!(s.num_triangles, mesh.num_triangles());
        assert_eq!(s.num_edges, mesh.num_edges());
        assert!(s.mean_edge_length > 0.0);
    }
}
