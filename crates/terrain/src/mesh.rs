//! Indexed triangle meshes with full adjacency.
//!
//! [`TerrainMesh`] is the "original surface model" of the paper: the leaf
//! level of the DMTM, the graph Dijkstra upper bounds run on, the surface
//! the MSDN sweep planes cut, and the domain of the exact geodesic engine.

use sknn_geom::{Point2, Point3, Rect2, Triangle3};

/// Index of a vertex in a [`TerrainMesh`].
pub type VertexId = u32;
/// Index of a triangle in a [`TerrainMesh`].
pub type TriId = u32;

/// An indexed triangle mesh with vertex and facet adjacency.
///
/// Invariants (checked by [`TerrainMesh::validate`]):
/// * every triangle is counter-clockwise in (x, y) projection,
/// * every edge is shared by at most two triangles,
/// * adjacency lists are consistent with the triangle list.
#[derive(Debug, Clone)]
pub struct TerrainMesh {
    vertices: Vec<Point3>,
    triangles: Vec<[VertexId; 3]>,
    /// Sorted neighbour vertex ids, per vertex.
    vertex_neighbors: Vec<Vec<VertexId>>,
    /// Incident triangle ids, per vertex.
    vertex_triangles: Vec<Vec<TriId>>,
    /// For triangle `t`, `tri_neighbors[t][i]` is the triangle across edge
    /// `(v[i], v[(i+1)%3])`, if any.
    tri_neighbors: Vec<[Option<TriId>; 3]>,
    extent: Rect2,
}

impl TerrainMesh {
    /// Build a mesh from raw vertices and triangles, computing adjacency.
    ///
    /// # Panics
    /// Panics when a triangle references a missing vertex or an edge is
    /// shared by more than two triangles (non-manifold input).
    pub fn new(vertices: Vec<Point3>, triangles: Vec<[VertexId; 3]>) -> Self {
        let nv = vertices.len();
        let mut vertex_neighbors: Vec<Vec<VertexId>> = vec![Vec::new(); nv];
        let mut vertex_triangles: Vec<Vec<TriId>> = vec![Vec::new(); nv];
        let mut tri_neighbors: Vec<[Option<TriId>; 3]> = vec![[None; 3]; triangles.len()];

        // Edge map: (lo, hi) -> (tri, local edge index).
        let mut edge_map: std::collections::HashMap<(VertexId, VertexId), (TriId, usize)> =
            std::collections::HashMap::with_capacity(triangles.len() * 2);

        for (t, tri) in triangles.iter().enumerate() {
            for &v in tri {
                assert!((v as usize) < nv, "triangle {t} references missing vertex {v}");
            }
            for i in 0..3 {
                let a = tri[i];
                let b = tri[(i + 1) % 3];
                assert_ne!(a, b, "degenerate triangle {t}");
                vertex_triangles[a as usize].push(t as TriId);
                let key = (a.min(b), a.max(b));
                match edge_map.get(&key) {
                    None => {
                        edge_map.insert(key, (t as TriId, i));
                    }
                    Some(&(other, oi)) => {
                        assert!(
                            tri_neighbors[other as usize][oi].is_none(),
                            "edge {key:?} shared by more than two triangles"
                        );
                        tri_neighbors[t][i] = Some(other);
                        tri_neighbors[other as usize][oi] = Some(t as TriId);
                    }
                }
            }
        }
        for ((a, b), _) in edge_map {
            vertex_neighbors[a as usize].push(b);
            vertex_neighbors[b as usize].push(a);
        }
        for nb in &mut vertex_neighbors {
            nb.sort_unstable();
            nb.dedup();
        }
        let extent = Rect2::from_points(vertices.iter().map(|p| p.xy()));
        Self { vertices, triangles, vertex_neighbors, vertex_triangles, tri_neighbors, extent }
    }

    /// Num vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Num triangles.
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.vertex_neighbors.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Vertex.
    pub fn vertex(&self, v: VertexId) -> Point3 {
        self.vertices[v as usize]
    }

    /// The vertices.
    pub fn vertices(&self) -> &[Point3] {
        &self.vertices
    }

    /// Triangle ids.
    pub fn triangle_ids(&self, t: TriId) -> [VertexId; 3] {
        self.triangles[t as usize]
    }

    /// Triangles.
    pub fn triangles(&self) -> &[[VertexId; 3]] {
        &self.triangles
    }

    /// Triangle.
    pub fn triangle(&self, t: TriId) -> Triangle3 {
        let [a, b, c] = self.triangles[t as usize];
        Triangle3::new(self.vertex(a), self.vertex(b), self.vertex(c))
    }

    /// Neighbors.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.vertex_neighbors[v as usize]
    }

    /// Vertex triangles.
    pub fn vertex_triangles(&self, v: VertexId) -> &[TriId] {
        &self.vertex_triangles[v as usize]
    }

    /// Triangle across edge `i` of triangle `t` (edge `i` joins local
    /// vertices `i` and `(i+1) % 3`).
    pub fn tri_neighbor(&self, t: TriId, i: usize) -> Option<TriId> {
        self.tri_neighbors[t as usize][i]
    }

    /// 3-D length of the edge between adjacent vertices.
    pub fn edge_length(&self, a: VertexId, b: VertexId) -> f64 {
        self.vertex(a).dist(self.vertex(b))
    }

    /// Bounding rectangle of the (x, y) projection.
    pub fn extent(&self) -> Rect2 {
        self.extent
    }

    /// Average 3-D edge length. The paper places the densest MSDN planes at
    /// this spacing (§3.3).
    pub fn mean_edge_length(&self) -> f64 {
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for (v, nbs) in self.vertex_neighbors.iter().enumerate() {
            for &w in nbs {
                if (v as VertexId) < w {
                    sum += self.edge_length(v as VertexId, w);
                    cnt += 1;
                }
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum / cnt as f64
        }
    }

    /// Exhaustive structural validation; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        for (t, tri) in self.triangles.iter().enumerate() {
            let tr = self.triangle(t as TriId);
            if tr.signed_area_xy() <= 0.0 {
                return Err(format!("triangle {t} not CCW in projection"));
            }
            for i in 0..3 {
                if let Some(nb) = self.tri_neighbors[t][i] {
                    let back = &self.tri_neighbors[nb as usize];
                    if !back.contains(&Some(t as TriId)) {
                        return Err(format!("asymmetric adjacency {t} <-> {nb}"));
                    }
                    // The shared edge must consist of the same two vertices.
                    let a = tri[i];
                    let b = tri[(i + 1) % 3];
                    let other = self.triangles[nb as usize];
                    if !(other.contains(&a) && other.contains(&b)) {
                        return Err(format!("edge mismatch between {t} and {nb}"));
                    }
                }
            }
        }
        for (v, nbs) in self.vertex_neighbors.iter().enumerate() {
            for &w in nbs {
                if !self.vertex_neighbors[w as usize].contains(&(v as VertexId)) {
                    return Err(format!("asymmetric vertex adjacency {v} <-> {w}"));
                }
            }
        }
        Ok(())
    }

    /// Iterate all undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertex_neighbors.iter().enumerate().flat_map(|(v, nbs)| {
            let v = v as VertexId;
            nbs.iter().copied().filter_map(move |w| (v < w).then_some((v, w)))
        })
    }

    /// Total surface area (sum of facet areas).
    pub fn surface_area(&self) -> f64 {
        (0..self.num_triangles() as TriId).map(|t| self.triangle(t).area()).sum()
    }

    /// Planar (projected) area.
    pub fn planar_area(&self) -> f64 {
        (0..self.num_triangles() as TriId).map(|t| self.triangle(t).signed_area_xy()).sum()
    }

    /// Nearest mesh vertex to a horizontal position (linear scan; used only
    /// in tests and one-off embeddings — queries use [`crate::locate`]).
    pub fn nearest_vertex_xy(&self, p: Point2) -> VertexId {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, v) in self.vertices.iter().enumerate() {
            let d = v.xy().dist_sq(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best as VertexId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles forming a unit square split along the main diagonal.
    fn square() -> TerrainMesh {
        let vs = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(1.0, 1.0, 1.0),
            Point3::new(0.0, 1.0, 0.0),
        ];
        let ts = vec![[0, 1, 2], [0, 2, 3]];
        TerrainMesh::new(vs, ts)
    }

    #[test]
    fn adjacency_of_square() {
        let m = square();
        assert_eq!(m.num_vertices(), 4);
        assert_eq!(m.num_triangles(), 2);
        assert_eq!(m.num_edges(), 5);
        assert_eq!(m.neighbors(0), &[1, 2, 3]);
        assert_eq!(m.neighbors(1), &[0, 2]);
        // Triangle 0 and 1 share the diagonal (0, 2).
        assert_eq!(m.tri_neighbor(0, 2), Some(1)); // edge (2,0) of tri 0
        assert_eq!(m.tri_neighbor(1, 0), Some(0)); // edge (0,2) of tri 1
        assert_eq!(m.tri_neighbor(0, 0), None);
        m.validate().unwrap();
    }

    #[test]
    fn vertex_triangle_incidence() {
        let m = square();
        assert_eq!(m.vertex_triangles(0), &[0, 1]);
        assert_eq!(m.vertex_triangles(1), &[0]);
        assert_eq!(m.vertex_triangles(3), &[1]);
    }

    #[test]
    fn edge_length_3d() {
        let m = square();
        assert!((m.edge_length(0, 2) - 3f64.sqrt()).abs() < 1e-12);
        assert_eq!(m.edge_length(0, 1), 1.0);
    }

    #[test]
    fn areas() {
        let m = square();
        assert!((m.planar_area() - 1.0).abs() < 1e-12);
        assert!(m.surface_area() > m.planar_area());
    }

    #[test]
    fn edges_iterator_matches_count() {
        let m = square();
        let edges: Vec<_> = m.edges().collect();
        assert_eq!(edges.len(), m.num_edges());
        for (a, b) in edges {
            assert!(a < b);
        }
    }

    #[test]
    #[should_panic(expected = "missing vertex")]
    fn rejects_out_of_range_index() {
        TerrainMesh::new(vec![Point3::new(0.0, 0.0, 0.0)], vec![[0, 1, 2]]);
    }

    #[test]
    #[should_panic(expected = "more than two triangles")]
    fn rejects_non_manifold_edge() {
        let vs = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(1.0, 1.0, 0.0),
            Point3::new(-1.0, 1.0, 0.0),
        ];
        // Edge (0,1) used by three triangles.
        TerrainMesh::new(vs, vec![[0, 1, 2], [0, 1, 3], [0, 1, 4]]);
    }

    #[test]
    fn validate_catches_cw_triangle() {
        let vs = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
        ];
        let m = TerrainMesh::new(vs, vec![[0, 2, 1]]); // clockwise
        assert!(m.validate().is_err());
    }

    #[test]
    fn nearest_vertex() {
        let m = square();
        assert_eq!(m.nearest_vertex_xy(Point2::new(0.9, 0.1)), 1);
        assert_eq!(m.nearest_vertex_xy(Point2::new(0.1, 0.9)), 3);
    }
}
