//! DEM → TIN triangulation.
//!
//! Each grid cell becomes two triangles. The diagonal alternates in a
//! checkerboard pattern so the triangulation has no global directional bias
//! (a uniform diagonal skews surface-distance anisotropy measurably).

use crate::dem::Dem;
use crate::mesh::TerrainMesh;
use sknn_geom::Point3;

/// Triangulate a DEM into a counter-clockwise TIN.
pub fn triangulate(dem: &Dem) -> TerrainMesh {
    let n = dem.n;
    let s = dem.cell_size_m;
    let mut vertices = Vec::with_capacity(n * n);
    for r in 0..n {
        for c in 0..n {
            vertices.push(Point3::new(c as f64 * s, r as f64 * s, dem.height(r, c)));
        }
    }
    let v = |r: usize, c: usize| (r * n + c) as u32;
    let mut triangles = Vec::with_capacity(2 * (n - 1) * (n - 1));
    for r in 0..n - 1 {
        for c in 0..n - 1 {
            // Corners: sw, se, ne, nw (CCW when y grows north).
            let sw = v(r, c);
            let se = v(r, c + 1);
            let ne = v(r + 1, c + 1);
            let nw = v(r + 1, c);
            if (r + c) % 2 == 0 {
                // Diagonal sw-ne.
                triangles.push([sw, se, ne]);
                triangles.push([sw, ne, nw]);
            } else {
                // Diagonal se-nw.
                triangles.push([sw, se, nw]);
                triangles.push([se, ne, nw]);
            }
        }
    }
    TerrainMesh::new(vertices, triangles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::TerrainConfig;

    #[test]
    fn counts_match_grid() {
        let dem = TerrainConfig::bh().with_grid(17).build(1);
        let m = triangulate(&dem);
        let n = dem.n;
        assert_eq!(m.num_vertices(), n * n);
        assert_eq!(m.num_triangles(), 2 * (n - 1) * (n - 1));
        // Euler-style edge count for this triangulation:
        // grid edges + diagonals = 2n(n-1) + (n-1)^2
        assert_eq!(m.num_edges(), 2 * n * (n - 1) + (n - 1) * (n - 1));
    }

    #[test]
    fn mesh_is_valid_and_ccw() {
        let dem = TerrainConfig::ep().with_grid(17).build(2);
        let m = triangulate(&dem);
        m.validate().unwrap();
    }

    #[test]
    fn planar_area_equals_extent_square() {
        let dem = TerrainConfig::bh().with_grid(9).build(3);
        let m = triangulate(&dem);
        let e = dem.extent_m();
        assert!((m.planar_area() - e * e).abs() < 1e-6 * e * e);
    }

    #[test]
    fn interior_vertex_degree() {
        let dem = TerrainConfig::bh().with_grid(9).build(4);
        let m = triangulate(&dem);
        let n = dem.n;
        // An interior vertex touches 4 axis edges + 2..4 diagonals
        // (checkerboard alternation gives every interior vertex exactly
        // degree 6 or 8? count: each interior vertex has 4 orthogonal
        // neighbours and diagonals from adjacent cells whose split passes
        // through it).
        let center = (n / 2) * n + n / 2;
        let deg = m.neighbors(center as u32).len();
        assert!((5..=8).contains(&deg), "degree {deg}");
    }
}
