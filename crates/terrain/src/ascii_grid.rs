//! ESRI ASCII grid (`.asc`) import.
//!
//! The paper's datasets were USGS DEMs; the classic interchange format for
//! those is the ESRI ASCII grid, which every GIS tool can export:
//!
//! ```text
//! ncols        4
//! nrows        3
//! xllcorner    0.0
//! yllcorner    0.0
//! cellsize     10.0
//! NODATA_value -9999
//! 1.0 2.0 3.0 4.0
//! ...
//! ```
//!
//! Rows are listed north-to-south; we flip them so row 0 is the southern
//! edge, matching [`crate::dem::Dem`]'s convention. Non-square grids are
//! cropped to their largest top-left square (the TIN builder assumes a
//! square sample grid), and NODATA cells are filled with the mean of their
//! valid 8-neighbours (iterated until the hole closes).

use crate::dem::Dem;
use std::io::{self, BufRead};

/// Parse an ESRI ASCII grid into a [`Dem`].
///
/// Returns `io::ErrorKind::InvalidData` errors for malformed headers,
/// short grids, or rows with the wrong arity.
pub fn parse_ascii_grid(reader: impl BufRead) -> io::Result<Dem> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut ncols: Option<usize> = None;
    let mut nrows: Option<usize> = None;
    let mut cellsize: Option<f64> = None;
    let mut nodata: f64 = -9999.0;
    let mut rows: Vec<Vec<f64>> = Vec::new();

    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let first = parts.next().unwrap();
        // Header keys are case-insensitive; data rows start with a number.
        let key = first.to_ascii_lowercase();
        let is_header = matches!(
            key.as_str(),
            "ncols"
                | "nrows"
                | "xllcorner"
                | "yllcorner"
                | "xllcenter"
                | "yllcenter"
                | "cellsize"
                | "nodata_value"
        );
        if is_header {
            let value = parts.next().ok_or_else(|| bad("header missing value"))?;
            match key.as_str() {
                "ncols" => ncols = Some(value.parse().map_err(|_| bad("bad ncols"))?),
                "nrows" => nrows = Some(value.parse().map_err(|_| bad("bad nrows"))?),
                "cellsize" => cellsize = Some(value.parse().map_err(|_| bad("bad cellsize"))?),
                "nodata_value" => nodata = value.parse().map_err(|_| bad("bad NODATA_value"))?,
                _ => {} // corner coordinates are irrelevant to a local model
            }
        } else {
            let row: Result<Vec<f64>, _> =
                std::iter::once(first).chain(parts).map(|t| t.parse::<f64>()).collect();
            rows.push(row.map_err(|_| bad("non-numeric grid value"))?);
        }
    }

    let ncols = ncols.ok_or_else(|| bad("missing ncols"))?;
    let nrows = nrows.ok_or_else(|| bad("missing nrows"))?;
    let cellsize = cellsize.ok_or_else(|| bad("missing cellsize"))?;
    if cellsize <= 0.0 {
        return Err(bad("cellsize must be positive"));
    }
    if rows.len() != nrows {
        return Err(bad("row count does not match nrows"));
    }
    if rows.iter().any(|r| r.len() != ncols) {
        return Err(bad("row width does not match ncols"));
    }

    // Crop to the largest square and flip to south-up.
    let n = ncols.min(nrows);
    if n < 2 {
        return Err(bad("grid too small (need at least 2x2)"));
    }
    let mut heights = vec![f64::NAN; n * n];
    for r in 0..n {
        for c in 0..n {
            let v = rows[nrows - 1 - r][c];
            heights[r * n + c] = if v == nodata { f64::NAN } else { v };
        }
    }
    fill_nodata(&mut heights, n)?;
    Ok(Dem { n, cell_size_m: cellsize, heights })
}

/// Fill NaN holes with the mean of valid 8-neighbours, iterating inward.
fn fill_nodata(h: &mut [f64], n: usize) -> io::Result<()> {
    if !h.iter().any(|v| v.is_nan()) {
        return Ok(());
    }
    if h.iter().all(|v| v.is_nan()) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "grid contains no valid samples"));
    }
    loop {
        let mut fills: Vec<(usize, f64)> = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if !h[r * n + c].is_nan() {
                    continue;
                }
                let mut sum = 0.0;
                let mut cnt = 0.0;
                for dr in -1i64..=1 {
                    for dc in -1i64..=1 {
                        let (rr, cc) = (r as i64 + dr, c as i64 + dc);
                        if rr >= 0 && rr < n as i64 && cc >= 0 && cc < n as i64 {
                            let v = h[rr as usize * n + cc as usize];
                            if !v.is_nan() {
                                sum += v;
                                cnt += 1.0;
                            }
                        }
                    }
                }
                if cnt > 0.0 {
                    fills.push((r * n + c, sum / cnt));
                }
            }
        }
        if fills.is_empty() {
            return Ok(()); // no NaNs reachable -> none left (checked below)
        }
        for (i, v) in fills {
            h[i] = v;
        }
        if !h.iter().any(|v| v.is_nan()) {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const SAMPLE: &str = "\
ncols 4
nrows 4
xllcorner 100.0
yllcorner 200.0
cellsize 10.0
NODATA_value -9999
1 2 3 4
5 6 7 8
9 10 11 12
13 14 15 16
";

    #[test]
    fn parses_and_flips_rows() {
        let dem = parse_ascii_grid(BufReader::new(SAMPLE.as_bytes())).unwrap();
        assert_eq!(dem.n, 4);
        assert_eq!(dem.cell_size_m, 10.0);
        // First file row is the northern edge -> highest row index.
        assert_eq!(dem.height(3, 0), 1.0);
        assert_eq!(dem.height(0, 0), 13.0);
        assert_eq!(dem.height(0, 3), 16.0);
    }

    #[test]
    fn triangulates_after_import() {
        let dem = parse_ascii_grid(BufReader::new(SAMPLE.as_bytes())).unwrap();
        let mesh = crate::builder::triangulate(&dem);
        assert_eq!(mesh.num_vertices(), 16);
        mesh.validate().unwrap();
    }

    #[test]
    fn fills_nodata_holes() {
        let text = SAMPLE.replace("5 6 7 8", "5 -9999 7 8");
        let dem = parse_ascii_grid(BufReader::new(text.as_bytes())).unwrap();
        let v = dem.height(2, 1); // the filled cell (row flipped)
        assert!(v.is_finite());
        // Mean of the valid neighbours of that position.
        assert!(v > 1.0 && v < 12.0, "{v}");
    }

    #[test]
    fn crops_rectangular_grids() {
        let text = "ncols 5\nnrows 3\ncellsize 1.0\n1 2 3 4 5\n6 7 8 9 10\n11 12 13 14 15\n";
        let dem = parse_ascii_grid(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(dem.n, 3);
        assert_eq!(dem.height(2, 0), 1.0); // northern row
        assert_eq!(dem.height(0, 2), 13.0);
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "nrows 2\ncellsize 1.0\n1 2\n3 4\n",          // missing ncols
            "ncols 2\nnrows 2\ncellsize 1.0\n1 2\n",      // short grid
            "ncols 2\nnrows 2\ncellsize 1.0\n1 2\n3 x\n", // non-numeric
            "ncols 2\nnrows 2\ncellsize 0.0\n1 2\n3 4\n", // bad cellsize
            "ncols 1\nnrows 1\ncellsize 1.0\n7\n",        // too small
        ] {
            assert!(parse_ascii_grid(BufReader::new(text.as_bytes())).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn all_nodata_rejected() {
        let text = "ncols 2\nnrows 2\ncellsize 1.0\nNODATA_value -1\n-1 -1\n-1 -1\n";
        assert!(parse_ascii_grid(BufReader::new(text.as_bytes())).is_err());
    }
}
