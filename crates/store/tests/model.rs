//! Model-based property tests: the paged structures must agree with their
//! obvious in-memory models under arbitrary workloads, and page accounting
//! must obey its own invariants.

use proptest::prelude::*;
use sknn_store::{BPlusTree, HeapFile, Pager, PAGE_SIZE};
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// B+-tree point lookups and range scans agree with a BTreeMap across
    /// arbitrary key/value distributions (including values that force
    /// overflow chains).
    #[test]
    fn bptree_agrees_with_btreemap(
        entries in proptest::collection::btree_map(
            any::<u64>(),
            (0usize..3000).prop_map(|n| vec![0xA5u8; n]),
            0..200,
        ),
        probes in proptest::collection::vec(any::<u64>(), 1..40),
        range in (any::<u64>(), any::<u64>()),
    ) {
        let pager = Pager::new(64);
        let model: BTreeMap<u64, Vec<u8>> = entries;
        let records: Vec<(u64, Vec<u8>)> =
            model.iter().map(|(&k, v)| (k, v.clone())).collect();
        let tree = BPlusTree::bulk_build(&pager, &records);
        prop_assert_eq!(tree.len(), model.len());
        // Point lookups: members and non-members.
        for k in probes.iter().copied().chain(model.keys().copied().take(10)) {
            prop_assert_eq!(tree.get(&pager, k).unwrap(), model.get(&k).cloned());
        }
        // Range scan.
        let (lo, hi) = (range.0.min(range.1), range.0.max(range.1));
        let mut got = Vec::new();
        tree.scan_range(&pager, lo, hi, |k, v| got.push((k, v))).unwrap();
        let want: Vec<(u64, Vec<u8>)> = model
            .range(lo..=hi)
            .map(|(&k, v)| (k, v.clone()))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Heap files return exactly what was appended, in order, and every
    /// record is retrievable by its id.
    #[test]
    fn heapfile_agrees_with_vec(
        recs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..500),
            1..120,
        ),
    ) {
        let pager = Pager::new(32);
        let mut hf = HeapFile::new();
        let rids: Vec<_> = recs.iter().map(|r| hf.append(&pager, r)).collect();
        prop_assert_eq!(hf.len(), recs.len());
        for (rid, want) in rids.iter().zip(&recs) {
            let got = hf.get(&pager, *rid).unwrap();
            prop_assert_eq!(got.as_deref(), Some(want.as_slice()));
        }
        let mut scanned = Vec::new();
        hf.scan(&pager, |_, bytes| scanned.push(bytes.to_vec())).unwrap();
        prop_assert_eq!(scanned, recs);
    }

    /// Buffer-pool accounting: physical <= logical, hits + physical ==
    /// logical, and a pool large enough to hold everything makes repeated
    /// reads free.
    #[test]
    fn pool_accounting_invariants(
        n_pages in 1usize..30,
        accesses in proptest::collection::vec(0usize..30, 1..200),
        pool in 1usize..40,
    ) {
        let pager = Pager::new(pool);
        let ids: Vec<_> = (0..n_pages).map(|_| pager.alloc()).collect();
        pager.reset_stats();
        for &a in &accesses {
            pager.with_page(ids[a % n_pages], |_| ()).unwrap();
        }
        let s = pager.stats();
        prop_assert_eq!(s.logical_reads as usize, accesses.len());
        prop_assert!(s.physical_reads <= s.logical_reads);
        prop_assert_eq!(s.hits() + s.physical_reads, s.logical_reads);
        if pool >= n_pages {
            // Every page faults at most once.
            prop_assert!(s.physical_reads as usize <= n_pages);
        }
    }

    /// Writes never corrupt neighbouring bytes.
    #[test]
    fn page_writes_are_isolated(
        off1 in 0usize..PAGE_SIZE - 64,
        off2 in 0usize..PAGE_SIZE - 64,
        data1 in proptest::collection::vec(any::<u8>(), 1..64),
        data2 in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        prop_assume!(off1 + data1.len() <= off2 || off2 + data2.len() <= off1);
        let pager = Pager::new(4);
        let p = pager.alloc();
        pager.write(p, off1, &data1);
        pager.write(p, off2, &data2);
        let page = pager.read_page(p).unwrap();
        prop_assert_eq!(&page[off1..off1 + data1.len()], data1.as_slice());
        prop_assert_eq!(&page[off2..off2 + data2.len()], data2.as_slice());
    }
}
