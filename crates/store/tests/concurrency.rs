//! Concurrency semantics of the sharded single-flight buffer pool.
//!
//! Three guarantees are pinned down here:
//!
//! 1. **Single-flight**: N threads missing the same cold page pay exactly
//!    one physical read and one stall between them; the N-1 losers block on
//!    the in-flight latch instead of issuing duplicate reads.
//! 2. **Eviction at capacity**: the pool never holds more pages than its
//!    configured capacity, for any shard count and any interleaving of
//!    single-page and batched reads (eviction happens *before* insert).
//! 3. **Batched reads**: `BPlusTree::get_many` returns exactly what a loop
//!    of `get` calls returns — including values spanning overflow chains —
//!    while never charging more physical reads.

use proptest::prelude::*;
use sknn_store::{BPlusTree, Pager, PAGE_SIZE};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Four threads miss the same cold page at once: one leader pays the stall
/// and the physical read, the other three wait on the in-flight latch and
/// are recorded as coalesced misses.
#[test]
fn concurrent_misses_pay_one_stall_and_one_physical_read() {
    const THREADS: usize = 4;
    const STALL: Duration = Duration::from_millis(200);

    let pager = Pager::new(8);
    let page = pager.alloc();
    pager.set_read_stall(STALL);
    pager.clear_pool();
    pager.reset_stats();

    let barrier = Barrier::new(THREADS);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                barrier.wait();
                pager.with_page(page, |_| ()).unwrap();
            });
        }
    });
    let elapsed = start.elapsed();

    let io = pager.stats();
    let conc = pager.concurrency_stats();
    assert_eq!(io.logical_reads, THREADS as u64);
    assert_eq!(io.physical_reads, 1, "only the leader performs the read");
    assert_eq!(io.hits(), (THREADS - 1) as u64);
    assert_eq!(
        conc.singleflight_waits,
        (THREADS - 1) as u64,
        "every non-leader blocks on the in-flight latch"
    );
    assert_eq!(conc.coalesced_misses, (THREADS - 1) as u64);
    // The stalls overlapped: total wall time is ~one stall, not N stalls.
    assert!(
        elapsed < STALL * 3,
        "stalls were serialised: {elapsed:?} for {THREADS} threads at {STALL:?} each"
    );
}

/// A cold `with_pages` batch pays one stall for the whole run, not one per
/// page, and every member beyond the first counts as a coalesced miss.
#[test]
fn batched_cold_read_pays_a_single_stall() {
    const STALL: Duration = Duration::from_millis(50);

    let pager = Pager::new(16);
    let ids: Vec<_> = (0..5).map(|_| pager.alloc()).collect();
    pager.set_read_stall(STALL);
    pager.clear_pool();
    pager.reset_stats();

    let start = Instant::now();
    let mut seen = 0usize;
    pager.with_pages(&ids, |_, _| seen += 1).unwrap();
    let elapsed = start.elapsed();

    assert_eq!(seen, ids.len());
    let io = pager.stats();
    let conc = pager.concurrency_stats();
    assert_eq!(io.physical_reads, ids.len() as u64);
    assert_eq!(conc.coalesced_misses, (ids.len() - 1) as u64);
    assert!(elapsed < STALL * 2, "batch paid per-page stalls: {elapsed:?} for {} pages", ids.len());
}

/// `get_many` on values long enough to force overflow chains agrees with a
/// loop of `get` calls and never reads more pages.
#[test]
fn get_many_matches_get_loop_on_overflow_values() {
    let pager = Pager::new(256);
    // Values > MAX_INLINE spill to overflow chains; make them span two
    // full overflow pages each so chain-following is actually exercised.
    let records: Vec<(u64, Vec<u8>)> =
        (0..40u64).map(|k| (k * 3, vec![(k & 0xff) as u8; PAGE_SIZE * 2 + 123])).collect();
    let tree = BPlusTree::bulk_build(&pager, &records);

    // Mix of present (multiples of 3) and absent keys, strictly increasing.
    let keys: Vec<u64> = (0..90u64).collect();

    pager.clear_pool();
    pager.reset_stats();
    let looped: Vec<Option<Vec<u8>>> = keys.iter().map(|&k| tree.get(&pager, k).unwrap()).collect();
    let loop_io = pager.stats();

    pager.clear_pool();
    pager.reset_stats();
    let mut batched: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
    let found = tree.get_many(&pager, &keys, |k, v| batched[k as usize] = Some(v)).unwrap();
    let batch_io = pager.stats();

    assert_eq!(batched, looped);
    assert_eq!(found, looped.iter().filter(|v| v.is_some()).count());
    assert!(
        batch_io.physical_reads <= loop_io.physical_reads,
        "batched descent re-read pages: {} > {}",
        batch_io.physical_reads,
        loop_io.physical_reads
    );
    assert!(
        batch_io.logical_reads < loop_io.logical_reads,
        "batched descent should skip repeated inner-node reads"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pool never exceeds its capacity — across shard counts, for any
    /// interleaving of single-page reads and sorted batch reads.
    #[test]
    fn pool_never_exceeds_capacity(
        shards in 1usize..9,
        cap in 1usize..20,
        ops in proptest::collection::vec((any::<u64>(), 0usize..6), 1..120),
    ) {
        const N_PAGES: usize = 40;
        let pager = Pager::with_shards(cap, shards);
        let ids: Vec<_> = (0..N_PAGES).map(|_| pager.alloc()).collect();
        pager.reset_stats();

        for &(seed, batch) in &ops {
            if batch == 0 {
                pager.with_page(ids[(seed as usize) % N_PAGES], |_| ()).unwrap();
            } else {
                // Build a sorted, deduplicated batch from the seed.
                let mut picks: Vec<_> = (0..batch)
                    .map(|j| {
                        let x = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(j as u64 * 1442695040888963407);
                        ids[(x as usize) % N_PAGES]
                    })
                    .collect();
                picks.sort();
                picks.dedup();
                pager.with_pages(&picks, |_, _| ()).unwrap();
            }
            prop_assert!(
                pager.cached_pages() <= cap,
                "pool holds {} pages with capacity {} ({} shards)",
                pager.cached_pages(), cap, shards,
            );
        }
        let io = pager.stats();
        prop_assert_eq!(io.hits() + io.physical_reads, io.logical_reads);
        prop_assert_eq!(pager.num_shards(), shards.min(cap));
    }
}
