//! Deterministic fault-injection suite for the physical read path.
//!
//! Every scenario runs under a watchdog so a regression in single-flight
//! wakeup can only *fail* the suite, never hang it. The scripted
//! [`FaultInjector`] rules make each scenario exact: the same attempts
//! fault on every run, at any thread count.

use sknn_store::{FaultInjector, FaultKind, Pager, RetryPolicy, StoreError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Barrier;
use std::time::Duration;

/// Run `f` on its own thread and fail — don't hang — if it is not done
/// within the deadline. A scenario panic propagates through the join.
fn bounded(name: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        f();
        tx.send(()).ok();
    });
    match rx.recv_timeout(Duration::from_secs(30)) {
        Err(RecvTimeoutError::Timeout) => panic!("fault scenario {name:?} hung past the watchdog"),
        _ => handle.join().unwrap(),
    }
}

/// A pager with no retry backoff (tests should not sleep) and one
/// allocated page holding a known pattern.
fn pager_with_page() -> (Pager, sknn_store::PageId) {
    let pager = Pager::new(8);
    pager.set_retry_policy(RetryPolicy { max_retries: 3, backoff: Duration::ZERO });
    let id = pager.alloc();
    pager.write(id, 0, &[0xAB; 64]);
    pager.clear_pool();
    pager.reset_stats();
    (pager, id)
}

/// A transient fault scripted to fire twice is retried exactly twice and
/// the third attempt serves the correct bytes; the retry budget is not
/// exhausted and the paper's physical-read metric charges one read.
#[test]
fn transient_fault_retried_then_succeeds() {
    let (pager, id) = pager_with_page();
    pager.set_fault_injector(Some(FaultInjector::script().fail_page(
        id.0,
        FaultKind::Transient,
        Some(2),
    )));

    let first = pager.with_page(id, |b| b[..64].to_vec()).unwrap();
    assert_eq!(first, vec![0xAB; 64], "retried read must serve the stored bytes");

    let fs = pager.fault_stats();
    assert_eq!(fs.injected, 2, "exactly the two scripted faults fire");
    assert_eq!(fs.retries, 2, "one retry per scripted fault");
    assert_eq!(fs.exhausted, 0);
    assert_eq!(pager.stats().physical_reads, 1, "failed attempts are not charged");
}

/// A transient fault that never clears exhausts the retry budget and
/// surfaces a typed error carrying the true attempt count.
#[test]
fn transient_fault_exhausts_retry_budget() {
    let (pager, id) = pager_with_page();
    pager.set_fault_injector(Some(FaultInjector::script().fail_page(
        id.0,
        FaultKind::Transient,
        None,
    )));

    let err = pager.with_page(id, |_| ()).unwrap_err();
    assert_eq!(err, StoreError::TransientRead { page: id.0, attempts: 4 }, "1 initial + 3 retries");
    assert!(err.is_transient());

    let fs = pager.fault_stats();
    assert_eq!(fs.injected, 4);
    assert_eq!(fs.retries, 3);
    assert_eq!(fs.exhausted, 1);
    assert_eq!(pager.stats().physical_reads, 0, "nothing was served");
}

/// Latent corruption of the stored bytes is detected by the checksum
/// sidecar *before* the page is admitted: the caller sees a typed error
/// and the corrupt bytes are never handed to a callback.
#[test]
fn latent_corruption_is_detected_before_serve() {
    let (pager, id) = pager_with_page();
    // Warm read proves the page is fine, then corrupt one stored byte.
    assert_eq!(pager.with_page(id, |b| b[3]).unwrap(), 0xAB);
    pager.corrupt_byte(id, 3);
    pager.clear_pool();

    let mut served = false;
    let err = pager.with_page(id, |_| served = true).unwrap_err();
    match err {
        StoreError::Checksum { page, stored, computed } => {
            assert_eq!(page, id.0);
            assert_ne!(stored, computed);
        }
        other => panic!("expected a checksum error, got {other:?}"),
    }
    assert!(!served, "corrupt bytes must never reach the caller");
    assert_eq!(pager.fault_stats().checksum_failures, 1);
    // Rereading identical corrupt bytes cannot help: no retries burned.
    assert_eq!(pager.fault_stats().retries, 0);
}

/// A wire-level bit flip (bad read, good stored bytes) is caught by the
/// same checksum and retried like a transient fault: the next attempt
/// serves the correct bytes.
#[test]
fn bit_flip_caught_and_retried() {
    let (pager, id) = pager_with_page();
    pager.set_fault_injector(Some(FaultInjector::script().fail_page(
        id.0,
        FaultKind::BitFlip,
        Some(1),
    )));

    let byte = pager.with_page(id, |b| b[0]).unwrap();
    assert_eq!(byte, 0xAB);
    let fs = pager.fault_stats();
    assert_eq!(fs.checksum_failures, 1, "the flip was detected");
    assert_eq!(fs.retries, 1, "and recovered on the retry");
}

/// Four threads coalesce on one permanently failing page: every reader —
/// leader and waiters alike — gets the typed error instead of hanging on
/// the single-flight latch or seeing stale bytes.
#[test]
fn permanent_failure_surfaces_to_all_coalesced_readers() {
    bounded("permanent-coalesced", || {
        const THREADS: usize = 4;
        let (pager, id) = pager_with_page();
        pager.set_fault_injector(Some(FaultInjector::script().fail_page(
            id.0,
            FaultKind::Permanent,
            None,
        )));

        let barrier = Barrier::new(THREADS);
        let errs: Vec<StoreError> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        pager.with_page(id, |_| ()).unwrap_err()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for e in &errs {
            assert_eq!(*e, StoreError::PermanentRead { page: id.0 });
        }
        assert_eq!(pager.fault_stats().permanent_failures, THREADS as u64);
        assert_eq!(pager.stats().physical_reads, 0);
    });
}

/// A leader whose read fails must wake its waiters and release the claim
/// so one of them can lead the next attempt. Scripted so only the very
/// first physical attempt faults: exactly one thread observes the error,
/// the rest re-claim and are served.
#[test]
fn failed_leader_wakes_waiters_who_reclaim() {
    bounded("failed-leader", || {
        const THREADS: usize = 4;
        let (pager, id) = pager_with_page();
        // Permanent is never retried, so the first leader fails fast and
        // the recovery is entirely the waiters' re-claim.
        let inj = FaultInjector::script().fail_nth_read(1, FaultKind::Permanent);
        pager.set_fault_injector(Some(inj));

        let barrier = Barrier::new(THREADS);
        let results: Vec<Result<u8, StoreError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        pager.with_page(id, |b| b[0])
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let failed = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(failed, 1, "exactly the first leader fails: {results:?}");
        for r in results.iter().filter(|r| r.is_ok()) {
            assert_eq!(*r.as_ref().unwrap(), 0xAB);
        }
        assert_eq!(
            results.iter().find(|r| r.is_err()).unwrap().as_ref().unwrap_err(),
            &StoreError::PermanentRead { page: id.0 }
        );
    });
}

/// A leader that *panics* inside the flight critical section must not
/// strand its waiters: the lease's unwind guard releases the claim, a
/// waiter re-leads, and every other thread is served.
#[test]
fn panicking_leader_does_not_strand_waiters() {
    bounded("panicking-leader", || {
        const THREADS: usize = 4;
        let (pager, id) = pager_with_page();
        pager.set_fault_injector(Some(FaultInjector::script().fail_nth_read(1, FaultKind::Panic)));

        let barrier = Barrier::new(THREADS);
        let results: Vec<Result<u8, ()>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        catch_unwind(AssertUnwindSafe(|| pager.with_page(id, |b| b[0]).unwrap()))
                            .map_err(|_| ())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let panicked = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(panicked, 1, "exactly the first leader panics: {results:?}");
        assert_eq!(results.iter().filter(|r| matches!(r, Ok(0xAB))).count(), THREADS - 1);
    });
}

/// A batched read whose run contains a permanently failing member
/// surfaces that member's error instead of serving a partial batch.
#[test]
fn batched_read_surfaces_member_failure() {
    let pager = Pager::new(16);
    pager.set_retry_policy(RetryPolicy { max_retries: 3, backoff: Duration::ZERO });
    let ids: Vec<_> = (0..5).map(|_| pager.alloc()).collect();
    pager.clear_pool();
    pager.set_fault_injector(Some(FaultInjector::script().fail_page(
        ids[2].0,
        FaultKind::Permanent,
        None,
    )));

    let err = pager.with_pages(&ids, |_, _| ()).unwrap_err();
    assert_eq!(err, StoreError::PermanentRead { page: ids[2].0 });
    // The same batch with the fault cleared serves every member.
    pager.set_fault_injector(None);
    let mut seen = 0;
    pager.with_pages(&ids, |_, _| seen += 1).unwrap();
    assert_eq!(seen, ids.len());
}

/// Rate-driven transient profiles — the CLI's `--fault-profile` — always
/// recover within the default retry budget, for any page and seed: this
/// is the contract that makes query results bit-identical under
/// transient fault injection.
#[test]
fn rate_driven_transient_profile_never_exhausts_default_budget() {
    for seed in [1u64, 7, 42, 1234] {
        let pager = Pager::new(32);
        pager.set_retry_policy(RetryPolicy { max_retries: 3, backoff: Duration::ZERO });
        let ids: Vec<_> = (0..24).map(|_| pager.alloc()).collect();
        pager.clear_pool();
        pager.reset_stats();
        pager.set_fault_injector(Some(FaultInjector::seeded(seed, 1.0, FaultKind::Transient)));
        for (i, &id) in ids.iter().enumerate() {
            pager.write(id, 0, &[i as u8; 16]);
            let got = pager.with_page(id, |b| b[0]).unwrap();
            assert_eq!(got, i as u8, "seed {seed} page {i}");
        }
        assert_eq!(pager.fault_stats().exhausted, 0, "seed {seed}");
    }
}
