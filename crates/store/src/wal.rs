//! Page-level redo write-ahead log.
//!
//! The write path's durability contract: every mutation appends its
//! physical effects (page allocations + page writes) and one logical
//! [`WalRecord::Op`] record to the log, then a [`WalRecord::Commit`], and
//! only *after* the commit record is fsynced may any of the dirty pages
//! reach the durable image (`flush ordering`: no page hits disk before its
//! log record — see [`Pager::flush_page`](crate::Pager::flush_page)).
//! Recovery is redo-only, ARIES-lite: scan the durable log, find the last
//! [`WalRecord::Checkpoint`], replay the physical records of *committed*
//! transactions from there, and ignore everything else. There is no undo —
//! the pager never flushes a page carrying uncommitted bytes (no-steal),
//! so an uncommitted transaction leaves no trace on disk.
//!
//! # Record framing
//!
//! ```text
//! [len u32][lsn u64][txn u64][kind u8][payload ...][crc u64]
//!          |<------------- body (len bytes) ----->|
//! ```
//!
//! `crc` is FNV-1a over the body. The torn-tolerant scanner
//! ([`Wal::scan`]) stops at the first record whose frame is incomplete or
//! whose checksum disagrees — a crash mid-append tears only the tail, and
//! the torn tail is exactly the part that never committed.
//!
//! # Simulated disk
//!
//! Like the pager, the log is in memory: `durable` models bytes that have
//! survived an fsync, `pending` models bytes still in the OS write cache.
//! A simulated crash keeps `durable` and drops everything else. The
//! [`FaultInjector`](crate::FaultInjector) can fail an fsync
//! (`decide_fsync`), forcing the committing operation to abort and
//! withdraw its pending records via [`Wal::truncate_pending`].

use std::collections::HashSet;

use crate::error::{StoreError, StoreResult};
use crate::fault::FaultInjector;
use crate::pager::page_checksum;

/// Log sequence number. Strictly increasing from 1; `0` means "none".
pub type Lsn = u64;

/// Fixed framing overhead around a record body: `len` prefix + `crc`
/// suffix.
const FRAME: usize = 4 + 8;
/// Body bytes before the payload: `lsn` + `txn` + `kind`.
const BODY_HDR: usize = 8 + 8 + 1;

/// Logical content of one WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A page was allocated (redo re-allocates it with the same id/tag).
    Alloc {
        /// Allocated page id.
        page: u64,
        /// [`StructureTag`](crate::StructureTag) index of the allocation.
        tag: u8,
    },
    /// Physical redo: `bytes` were written to `page` at `offset`.
    PageWrite {
        /// Target page id.
        page: u64,
        /// Byte offset within the page.
        offset: u32,
        /// The bytes written.
        bytes: Vec<u8>,
    },
    /// Logical description of the mutation (opaque to the log; the object
    /// store uses it to rebuild in-memory indexes in LSN order).
    Op {
        /// Encoded logical operation.
        payload: Vec<u8>,
    },
    /// The transaction's effects are complete; fsync-on-commit makes this
    /// record the transaction's durability point.
    Commit,
    /// All committed effects up to this point are reflected in the durable
    /// page image; redo may start after the last one.
    Checkpoint,
}

impl WalRecord {
    fn kind_byte(&self) -> u8 {
        match self {
            WalRecord::Alloc { .. } => 1,
            WalRecord::PageWrite { .. } => 2,
            WalRecord::Op { .. } => 3,
            WalRecord::Commit => 4,
            WalRecord::Checkpoint => 5,
        }
    }

    /// Stable lower-case name (trace fields, test output).
    pub fn kind_name(&self) -> &'static str {
        match self {
            WalRecord::Alloc { .. } => "alloc",
            WalRecord::PageWrite { .. } => "page_write",
            WalRecord::Op { .. } => "op",
            WalRecord::Commit => "commit",
            WalRecord::Checkpoint => "checkpoint",
        }
    }

    fn payload_len(&self) -> usize {
        match self {
            WalRecord::Alloc { .. } => 9,
            WalRecord::PageWrite { bytes, .. } => 8 + 4 + 4 + bytes.len(),
            WalRecord::Op { payload } => payload.len(),
            WalRecord::Commit | WalRecord::Checkpoint => 0,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Alloc { page, tag } => {
                out.extend_from_slice(&page.to_le_bytes());
                out.push(*tag);
            }
            WalRecord::PageWrite { page, offset, bytes } => {
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            WalRecord::Op { payload } => out.extend_from_slice(payload),
            WalRecord::Commit | WalRecord::Checkpoint => {}
        }
    }

    fn decode_payload(kind: u8, payload: &[u8]) -> Option<Self> {
        let u64_at = |off: usize| -> Option<u64> {
            payload.get(off..off + 8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        };
        let u32_at = |off: usize| -> Option<u32> {
            payload.get(off..off + 4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        };
        match kind {
            1 => {
                if payload.len() != 9 {
                    return None;
                }
                Some(WalRecord::Alloc { page: u64_at(0)?, tag: payload[8] })
            }
            2 => {
                let page = u64_at(0)?;
                let offset = u32_at(8)?;
                let len = u32_at(12)? as usize;
                let bytes = payload.get(16..)?;
                if bytes.len() != len {
                    return None;
                }
                Some(WalRecord::PageWrite { page, offset, bytes: bytes.to_vec() })
            }
            3 => Some(WalRecord::Op { payload: payload.to_vec() }),
            4 if payload.is_empty() => Some(WalRecord::Commit),
            5 if payload.is_empty() => Some(WalRecord::Checkpoint),
            _ => None,
        }
    }
}

/// One decoded record from a log scan, with its frame position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// Transaction the record belongs to.
    pub txn: u64,
    /// The decoded record.
    pub record: WalRecord,
    /// Byte offset just past this record's frame — a valid truncation
    /// point for "crash exactly after this record became durable".
    pub end: usize,
}

/// Cumulative WAL counters (the `sknn_wal_*` metric families).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (pending or durable).
    pub appends: u64,
    /// Successful fsyncs.
    pub fsyncs: u64,
    /// Fsyncs failed by the fault injector.
    pub failed_fsyncs: u64,
    /// Records withdrawn by [`Wal::truncate_pending`] (aborted ops).
    pub truncated: u64,
}

/// A position in the pending buffer, taken before an operation starts so
/// an abort can withdraw exactly that operation's records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalMark {
    bytes: usize,
    lsn: Lsn,
    appends: u64,
}

/// The redo plan recovery executes: the valid prefix's entries, where to
/// start, and which transactions committed.
#[derive(Debug)]
pub struct RedoPlan {
    /// All entries decoded from the valid prefix, in LSN order.
    pub entries: Vec<WalEntry>,
    /// Index into `entries` of the first record to redo (just past the
    /// last checkpoint).
    pub start: usize,
    /// Transactions with a durable commit record.
    pub committed: HashSet<u64>,
    /// Bytes of the valid prefix (everything past it is a torn tail).
    pub valid_len: usize,
}

/// The redo write-ahead log. See the module docs for the protocol.
#[derive(Debug, Default)]
pub struct Wal {
    /// Bytes that survived an fsync — what a crash preserves.
    durable: Vec<u8>,
    /// Appended but not yet fsynced — what a crash drops.
    pending: Vec<u8>,
    next_lsn: Lsn,
    durable_lsn: Lsn,
    durable_commit_lsn: Lsn,
    /// Highest lsn / commit-lsn in `pending`, promoted on sync.
    pending_lsn: Lsn,
    pending_commit_lsn: Lsn,
    stats: WalStats,
}

impl Wal {
    /// Fresh, empty log. The first record gets LSN 1.
    pub fn new() -> Self {
        Self { next_lsn: 1, ..Self::default() }
    }

    /// Reopen a log from the bytes a crash preserved: the valid prefix
    /// becomes the durable buffer, a torn tail is discarded, and LSN
    /// assignment resumes after the last valid record.
    pub fn from_durable(bytes: &[u8]) -> Self {
        let (entries, valid_len) = Self::scan(bytes);
        let mut wal = Self::new();
        wal.durable = bytes[..valid_len].to_vec();
        for e in &entries {
            wal.durable_lsn = e.lsn;
            if matches!(e.record, WalRecord::Commit) {
                wal.durable_commit_lsn = e.lsn;
            }
        }
        wal.next_lsn = wal.durable_lsn + 1;
        wal.pending_lsn = wal.durable_lsn;
        wal.pending_commit_lsn = wal.durable_commit_lsn;
        wal
    }

    /// Append one record for transaction `txn` to the pending buffer and
    /// return its LSN. Not durable until [`sync`](Self::sync) succeeds.
    pub fn append(&mut self, txn: u64, rec: &WalRecord) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let body_len = BODY_HDR + rec.payload_len();
        self.pending.reserve(FRAME + body_len);
        self.pending.extend_from_slice(&(body_len as u32).to_le_bytes());
        let body_start = self.pending.len();
        self.pending.extend_from_slice(&lsn.to_le_bytes());
        self.pending.extend_from_slice(&txn.to_le_bytes());
        self.pending.push(rec.kind_byte());
        rec.encode_payload(&mut self.pending);
        let crc = page_checksum(&self.pending[body_start..]);
        self.pending.extend_from_slice(&crc.to_le_bytes());
        self.stats.appends += 1;
        self.pending_lsn = lsn;
        if matches!(rec, WalRecord::Commit) {
            self.pending_commit_lsn = lsn;
        }
        lsn
    }

    /// Snapshot the pending position before an operation appends its
    /// records, so a failed commit can withdraw them exactly.
    pub fn mark(&self) -> WalMark {
        WalMark { bytes: self.pending.len(), lsn: self.next_lsn, appends: self.stats.appends }
    }

    /// Withdraw every record appended after `mark` (none of them was ever
    /// durable — [`sync`](Self::sync) either takes all pending bytes or
    /// none). Used when a commit's fsync fails: the operation aborts and
    /// its records must never become durable.
    pub fn truncate_pending(&mut self, mark: WalMark) {
        assert!(mark.bytes <= self.pending.len(), "mark does not address the pending buffer");
        self.stats.truncated += self.stats.appends - mark.appends;
        self.pending.truncate(mark.bytes);
        self.next_lsn = mark.lsn;
        // Recompute the pending high-water marks from what remains.
        self.pending_lsn = self.durable_lsn;
        self.pending_commit_lsn = self.durable_commit_lsn;
        let (entries, _) = Self::scan(&self.pending);
        for e in &entries {
            self.pending_lsn = e.lsn;
            if matches!(e.record, WalRecord::Commit) {
                self.pending_commit_lsn = e.lsn;
            }
        }
    }

    /// Fsync: promote every pending byte to durable. The fault injector
    /// may fail the fsync, in which case *nothing* becomes durable, the
    /// pending buffer is left for the caller to truncate, and the error
    /// names the LSN whose commit was lost.
    pub fn sync(&mut self, fault: Option<&FaultInjector>) -> StoreResult<Lsn> {
        if self.pending.is_empty() {
            return Ok(self.durable_lsn);
        }
        if let Some(inj) = fault {
            if inj.decide_fsync() {
                self.stats.failed_fsyncs += 1;
                return Err(StoreError::FsyncFailed { lsn: self.pending_lsn });
            }
        }
        self.durable.append(&mut self.pending);
        self.durable_lsn = self.pending_lsn;
        self.durable_commit_lsn = self.pending_commit_lsn;
        self.stats.fsyncs += 1;
        if let Some(inj) = fault {
            inj.observe_lsn(self.durable_lsn);
        }
        Ok(self.durable_lsn)
    }

    /// The bytes a crash preserves (every fsynced record, nothing else).
    pub fn durable_bytes(&self) -> &[u8] {
        &self.durable
    }

    /// Highest durable LSN (0 = empty log).
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_lsn
    }

    /// Highest durable *commit* LSN — the flush-ordering bound: a dirty
    /// page may reach the durable image only if the commit covering its
    /// last write has LSN ≤ this.
    pub fn durable_commit_lsn(&self) -> Lsn {
        self.durable_commit_lsn
    }

    /// LSN the next appended record will get.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// Whether any appended record is still pending (not fsynced).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Torn-tolerant scan: decode records until the first incomplete
    /// frame, bad checksum, or malformed payload. Returns the decoded
    /// entries and the byte length of the valid prefix.
    pub fn scan(bytes: &[u8]) -> (Vec<WalEntry>, usize) {
        let mut entries = Vec::new();
        let mut off = 0usize;
        while off + 4 <= bytes.len() {
            let body_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            let body_start = off + 4;
            let crc_start = body_start + body_len;
            if body_len < BODY_HDR || crc_start + 8 > bytes.len() {
                break; // torn tail
            }
            let body = &bytes[body_start..crc_start];
            let stored_crc =
                u64::from_le_bytes(bytes[crc_start..crc_start + 8].try_into().unwrap());
            if page_checksum(body) != stored_crc {
                break; // corrupt tail
            }
            let lsn = u64::from_le_bytes(body[0..8].try_into().unwrap());
            let txn = u64::from_le_bytes(body[8..16].try_into().unwrap());
            let Some(record) = WalRecord::decode_payload(body[16], &body[BODY_HDR..]) else {
                break;
            };
            off = crc_start + 8;
            entries.push(WalEntry { lsn, txn, record, end: off });
        }
        (entries, off)
    }

    /// Build the redo plan for `bytes` (the durable log a crash
    /// preserved): decode the valid prefix, locate the last checkpoint,
    /// and collect the committed transaction set. Redo = for every entry
    /// in `entries[start..]` whose `txn` is in `committed`, reapply its
    /// physical records in order.
    pub fn redo_plan(bytes: &[u8]) -> RedoPlan {
        let (entries, valid_len) = Self::scan(bytes);
        let mut start = 0usize;
        let mut committed = HashSet::new();
        for (i, e) in entries.iter().enumerate() {
            match e.record {
                WalRecord::Checkpoint => start = i + 1,
                WalRecord::Commit => {
                    committed.insert(e.txn);
                }
                _ => {}
            }
        }
        RedoPlan { entries, start, committed, valid_len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjector;

    fn sample_records() -> Vec<(u64, WalRecord)> {
        vec![
            (1, WalRecord::Alloc { page: 7, tag: 3 }),
            (1, WalRecord::PageWrite { page: 7, offset: 16, bytes: vec![1, 2, 3, 4] }),
            (1, WalRecord::Op { payload: b"ins:42".to_vec() }),
            (1, WalRecord::Commit),
            (0, WalRecord::Checkpoint),
            (2, WalRecord::PageWrite { page: 9, offset: 0, bytes: vec![9; 64] }),
            (2, WalRecord::Op { payload: b"del:11".to_vec() }),
            (2, WalRecord::Commit),
        ]
    }

    #[test]
    fn append_sync_scan_roundtrip() {
        let mut wal = Wal::new();
        for (txn, rec) in sample_records() {
            wal.append(txn, &rec);
        }
        assert!(wal.has_pending());
        assert_eq!(wal.durable_bytes().len(), 0, "nothing durable before sync");
        let lsn = wal.sync(None).unwrap();
        assert_eq!(lsn, 8);
        assert!(!wal.has_pending());
        let (entries, consumed) = Wal::scan(wal.durable_bytes());
        assert_eq!(consumed, wal.durable_bytes().len());
        assert_eq!(entries.len(), 8);
        for (i, ((txn, rec), e)) in sample_records().iter().zip(&entries).enumerate() {
            assert_eq!(e.lsn, i as u64 + 1);
            assert_eq!(e.txn, *txn);
            assert_eq!(&e.record, rec);
        }
        // `end` offsets partition the log exactly.
        assert_eq!(entries.last().unwrap().end, consumed);
        assert_eq!(wal.durable_commit_lsn(), 8);
        assert_eq!(wal.stats().appends, 8);
        assert_eq!(wal.stats().fsyncs, 1);
    }

    #[test]
    fn torn_and_corrupt_tails_are_dropped() {
        let mut wal = Wal::new();
        for (txn, rec) in sample_records() {
            wal.append(txn, &rec);
        }
        wal.sync(None).unwrap();
        let full = wal.durable_bytes().to_vec();
        let (entries, _) = Wal::scan(&full);

        // Truncating anywhere strictly inside a record drops that record
        // and everything after, but keeps every record before it.
        for cut in [entries[0].end + 1, entries[3].end - 1, full.len() - 1] {
            let (got, consumed) = Wal::scan(&full[..cut]);
            assert!(consumed <= cut);
            let expect = entries.iter().filter(|e| e.end <= cut).count();
            assert_eq!(got.len(), expect, "cut at {cut}");
        }

        // A flipped byte in a record's body invalidates it and the tail.
        let mut corrupt = full.clone();
        let mid = entries[4].end + 6; // inside record 6's frame
        corrupt[mid] ^= 0x40;
        let (got, consumed) = Wal::scan(&corrupt);
        assert_eq!(got.len(), 5);
        assert_eq!(consumed, entries[4].end);
    }

    #[test]
    fn reopen_resumes_lsns_after_valid_prefix() {
        let mut wal = Wal::new();
        for (txn, rec) in sample_records() {
            wal.append(txn, &rec);
        }
        wal.sync(None).unwrap();
        let full = wal.durable_bytes().to_vec();

        let reopened = Wal::from_durable(&full);
        assert_eq!(reopened.durable_lsn(), 8);
        assert_eq!(reopened.durable_commit_lsn(), 8);
        assert_eq!(reopened.next_lsn(), 9);

        // A torn tail: reopen keeps only the valid prefix.
        let (entries, _) = Wal::scan(&full);
        let cut = entries[5].end + 3;
        let reopened = Wal::from_durable(&full[..cut]);
        assert_eq!(reopened.durable_lsn(), 6);
        assert_eq!(reopened.durable_commit_lsn(), 4);
        assert_eq!(reopened.next_lsn(), 7);
        assert_eq!(reopened.durable_bytes(), &full[..entries[5].end]);
    }

    #[test]
    fn failed_fsync_keeps_log_clean_after_truncate() {
        let inj = FaultInjector::script().fail_nth_fsync(1);
        let mut wal = Wal::new();
        wal.append(1, &WalRecord::Op { payload: b"a".to_vec() });
        wal.sync(None).unwrap_or_else(|_| unreachable!());
        let before = wal.durable_bytes().to_vec();

        let mark = wal.mark();
        wal.append(2, &WalRecord::Op { payload: b"b".to_vec() });
        let commit_lsn = wal.append(2, &WalRecord::Commit);
        let err = wal.sync(Some(&inj)).unwrap_err();
        assert_eq!(err, StoreError::FsyncFailed { lsn: commit_lsn });
        assert_eq!(wal.durable_bytes(), &before[..], "failed fsync made nothing durable");

        wal.truncate_pending(mark);
        assert!(!wal.has_pending());
        assert_eq!(wal.next_lsn(), mark.lsn, "aborted lsns are reused");
        assert_eq!(wal.stats().truncated, 2);

        // The next operation proceeds as if the aborted one never was.
        wal.append(3, &WalRecord::Op { payload: b"c".to_vec() });
        wal.append(3, &WalRecord::Commit);
        wal.sync(Some(&inj)).unwrap();
        let (entries, _) = Wal::scan(wal.durable_bytes());
        let txns: Vec<u64> = entries.iter().map(|e| e.txn).collect();
        assert_eq!(txns, vec![1, 3, 3], "txn 2 left no trace");
    }

    #[test]
    fn redo_plan_starts_after_checkpoint_and_tracks_commits() {
        let mut wal = Wal::new();
        for (txn, rec) in sample_records() {
            wal.append(txn, &rec);
        }
        // An uncommitted trailing transaction: its records must be
        // scanned but never redone.
        wal.append(3, &WalRecord::PageWrite { page: 4, offset: 0, bytes: vec![1] });
        wal.sync(None).unwrap();

        let plan = Wal::redo_plan(wal.durable_bytes());
        assert_eq!(plan.entries.len(), 9);
        assert_eq!(plan.start, 5, "redo starts just past the checkpoint");
        assert!(plan.committed.contains(&1));
        assert!(plan.committed.contains(&2));
        assert!(!plan.committed.contains(&3), "txn 3 never committed");
        assert_eq!(plan.valid_len, wal.durable_bytes().len());
    }

    #[test]
    fn observe_lsn_reaches_injector_on_sync() {
        let inj = FaultInjector::script().kill_at_lsn(2);
        let mut wal = Wal::new();
        wal.append(1, &WalRecord::Op { payload: vec![] });
        wal.sync(Some(&inj)).unwrap();
        assert!(!inj.kill_requested(), "lsn 1 < kill point");
        wal.append(1, &WalRecord::Commit);
        wal.sync(Some(&inj)).unwrap();
        assert!(inj.kill_requested(), "lsn 2 reached the kill point");
    }
}
