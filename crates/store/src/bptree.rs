//! A clustering B+-tree over `u64` keys with variable-length values.
//!
//! The paper stores DMTM nodes in Oracle under "a clustering B+ tree index"
//! (§5.1). This implementation is bulk-built from key-sorted records into
//! ~90 %-full leaf pages chained left-to-right, with a static internal
//! index above them. Values larger than a page spill into overflow chains.
//! Every page touched during a lookup or scan is charged through the
//! [`Pager`]'s buffer pool, so tree descent cost shows up in the "pages
//! accessed" metric exactly as it did in the paper's setup.

use crate::error::StoreResult;
use crate::page::codec::*;
use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Pager;

const LEAF_TAG: u8 = 1;
const INNER_TAG: u8 = 0;

// Leaf layout:  [tag u8][count u16][next u64] + entries
//   entry: key u64, flag u8 (0 inline, 1 overflow), len u32, payload
//          inline: payload = value bytes
//          overflow: payload = first overflow PageId u64
const LEAF_HDR: usize = 1 + 2 + 8;
// Inner layout: [tag u8][count u16] + entries (min_key u64, child u64)
const INNER_HDR: usize = 1 + 2;
const INNER_ENTRY: usize = 16;
// Overflow page: [next u64][len u16][bytes]
const OVF_HDR: usize = 8 + 2;

/// Maximum bytes of a value stored inline in a leaf.
pub const MAX_INLINE: usize = PAGE_SIZE / 4;

/// A read-only, bulk-built clustering B+-tree.
#[derive(Debug)]
pub struct BPlusTree {
    root: PageId,
    first_leaf: PageId,
    height: usize,
    len: usize,
}

impl BPlusTree {
    /// Bulk-build from records sorted by strictly increasing key.
    ///
    /// # Panics
    /// Panics when keys are not strictly increasing.
    pub fn bulk_build(pager: &Pager, records: &[(u64, Vec<u8>)]) -> Self {
        for w in records.windows(2) {
            assert!(w[0].0 < w[1].0, "keys must be strictly increasing");
        }
        // Build leaves.
        let mut leaves: Vec<(u64, PageId)> = Vec::new(); // (min key, page)
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut used = LEAF_HDR;
        let mut count: u16 = 0;
        let mut min_key = 0u64;
        let target = PAGE_SIZE * 9 / 10;

        let flush = |buf: &mut Vec<u8>, used: &mut usize, count: &mut u16, min_key: u64| {
            if *count == 0 {
                return None;
            }
            buf[0] = LEAF_TAG;
            put_u16(buf, 1, *count);
            put_u64(buf, 3, PageId::INVALID.0); // next patched later
            let page = pager.alloc();
            pager.write(page, 0, &buf[..*used]);
            buf.iter_mut().for_each(|b| *b = 0);
            *used = LEAF_HDR;
            *count = 0;
            Some((min_key, page))
        };

        for (key, value) in records {
            let (flag, payload_len) =
                if value.len() > MAX_INLINE { (1u8, 8usize) } else { (0u8, value.len()) };
            let entry_len = 8 + 1 + 4 + payload_len;
            if used + entry_len > target && count > 0 {
                if let Some(leaf) = flush(&mut buf, &mut used, &mut count, min_key) {
                    leaves.push(leaf);
                }
            }
            if count == 0 {
                min_key = *key;
            }
            put_u64(&mut buf, used, *key);
            buf[used + 8] = flag;
            put_u32(&mut buf, used + 9, value.len() as u32);
            if flag == 0 {
                buf[used + 13..used + 13 + value.len()].copy_from_slice(value);
            } else {
                let head = write_overflow(pager, value);
                put_u64(&mut buf, used + 13, head.0);
            }
            used += entry_len;
            count += 1;
        }
        if let Some(leaf) = flush(&mut buf, &mut used, &mut count, min_key) {
            leaves.push(leaf);
        }
        if leaves.is_empty() {
            // Persist a single empty leaf so lookups have somewhere to land.
            let mut empty = vec![0u8; LEAF_HDR];
            empty[0] = LEAF_TAG;
            put_u64(&mut empty, 3, PageId::INVALID.0);
            let page = pager.alloc();
            pager.write(page, 0, &empty);
            leaves.push((0, page));
        }

        // Chain the leaves.
        for w in leaves.windows(2) {
            let mut next = [0u8; 8];
            next.copy_from_slice(&w[1].1 .0.to_le_bytes());
            pager.write(w[0].1, 3, &next);
        }
        let first_leaf = leaves[0].1;

        // Build internal levels.
        let per_inner = (PAGE_SIZE - INNER_HDR) / INNER_ENTRY;
        let mut level = leaves;
        let mut height = 1;
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for group in level.chunks(per_inner) {
                let mut page_buf = vec![0u8; INNER_HDR + group.len() * INNER_ENTRY];
                page_buf[0] = INNER_TAG;
                put_u16(&mut page_buf, 1, group.len() as u16);
                for (i, (k, child)) in group.iter().enumerate() {
                    put_u64(&mut page_buf, INNER_HDR + i * INNER_ENTRY, *k);
                    put_u64(&mut page_buf, INNER_HDR + i * INNER_ENTRY + 8, child.0);
                }
                let page = pager.alloc();
                pager.write(page, 0, &page_buf);
                next_level.push((group[0].0, page));
            }
            level = next_level;
            height += 1;
        }

        Self { root: level[0].1, first_leaf, height, len: records.len() }
    }

    /// Number of contained items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether it holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Extent along y.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Fetch the value stored under `key`, charging page reads.
    ///
    /// Costs exactly one page read per tree level (plus overflow pages):
    /// a single-key [`BPlusTree::get_many`]. Read failures surface as
    /// [`StoreError`](crate::StoreError).
    pub fn get(&self, pager: &Pager, key: u64) -> StoreResult<Option<Vec<u8>>> {
        let mut out = None;
        self.get_many(pager, std::slice::from_ref(&key), |_, v| out = Some(v))?;
        Ok(out)
    }

    /// Descend the internal levels towards `key` *without* reading the
    /// leaf. Returns the leaf page together with the exclusive upper
    /// bound of its key range (the next leaf's minimum key, `u64::MAX`
    /// for the rightmost leaf) — every key below the bound lives in this
    /// leaf if it exists at all, which is what lets [`Self::get_many`]
    /// split sorted keys into leaf runs before touching any leaf.
    fn locate_leaf(&self, pager: &Pager, key: u64) -> StoreResult<(PageId, u64)> {
        let mut page = self.root;
        let mut bound = u64::MAX;
        for _ in 1..self.height {
            let (child, next_min) = pager.with_page(page, |buf| {
                debug_assert_eq!(buf[0], INNER_TAG);
                let count = get_u16(buf, 1) as usize;
                // Last child whose min key <= key.
                let mut child = get_u64(buf, INNER_HDR + 8);
                let mut next_min = None;
                for i in 0..count {
                    let k = get_u64(buf, INNER_HDR + i * INNER_ENTRY);
                    if k <= key {
                        child = get_u64(buf, INNER_HDR + i * INNER_ENTRY + 8);
                    } else {
                        next_min = Some(k);
                        break;
                    }
                }
                (PageId(child), next_min)
            })?;
            page = child;
            if let Some(b) = next_min {
                bound = bound.min(b);
            }
        }
        Ok((page, bound))
    }

    /// Batched point lookups: fetch the values of `keys` (strictly
    /// increasing; asserted), handing each found `(key, value)` to
    /// `visit` in key order. Absent keys are skipped. Returns how many
    /// keys were found.
    ///
    /// Keys that share a leaf pay **one** descent for the whole run
    /// instead of one per key, so the page-access count is equal to or
    /// deterministically lower than a `get` loop — never higher. The
    /// leaves of all runs are then read through [`Pager::with_pages`],
    /// which overlaps their simulated stalls.
    pub fn get_many(
        &self,
        pager: &Pager,
        keys: &[u64],
        mut visit: impl FnMut(u64, Vec<u8>),
    ) -> StoreResult<usize> {
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "keys must be strictly increasing");
        }
        if keys.is_empty() {
            return Ok(0);
        }
        // Phase 1: one inner-only descent per leaf run. The bound from
        // the descent tells us how many of the following keys land in the
        // same leaf without reading it.
        let mut runs: Vec<(PageId, usize, usize)> = Vec::new(); // (leaf, start, end)
        let mut i = 0;
        while i < keys.len() {
            let (leaf, bound) = self.locate_leaf(pager, keys[i])?;
            let end = i + keys[i..].partition_point(|&k| k < bound);
            debug_assert!(end > i, "descent bound must cover the descended key");
            // A key below the tree's minimum resolves to the leftmost leaf
            // with its bound at that leaf's own min key, so the following
            // run can land on the same leaf again — extend the previous
            // run instead of duplicating its page in the batch read.
            match runs.last_mut() {
                Some(prev) if prev.0 == leaf => prev.2 = end,
                _ => runs.push((leaf, i, end)),
            }
            i = end;
        }
        // Phase 2: batch-read the run leaves (runs are maximal and keys
        // sorted, so the leaf pages are distinct and ascending) and
        // collect the hits of each run.
        let leaf_ids: Vec<PageId> = runs.iter().map(|&(leaf, _, _)| leaf).collect();
        let mut hits: Vec<(u64, LeafHit)> = Vec::new();
        let mut run = 0;
        pager.with_pages(&leaf_ids, |page, buf| {
            let (leaf, start, end) = runs[run];
            run += 1;
            debug_assert_eq!(page, leaf);
            collect_run_hits(buf, &keys[start..end], &mut hits);
        })?;
        // Phase 3: resolve overflow chains and emit, still in key order.
        let found = hits.len();
        for (k, hit) in hits {
            match hit {
                LeafHit::Inline(v) => visit(k, v),
                LeafHit::Overflow(head, len) => visit(k, read_overflow(pager, head, len)?),
            }
        }
        Ok(found)
    }

    /// Visit all `(key, value)` pairs with `start <= key <= end`, in key
    /// order, charging page reads along the leaf chain.
    pub fn scan_range(
        &self,
        pager: &Pager,
        start: u64,
        end: u64,
        mut visit: impl FnMut(u64, Vec<u8>),
    ) -> StoreResult<()> {
        if start > end {
            return Ok(());
        }
        // Descend to the leaf that may contain `start`.
        let mut page = self.root;
        loop {
            let next = pager.with_page(page, |buf| {
                if buf[0] == INNER_TAG {
                    let count = get_u16(buf, 1) as usize;
                    let mut child = get_u64(buf, INNER_HDR + 8);
                    for i in 0..count {
                        let k = get_u64(buf, INNER_HDR + i * INNER_ENTRY);
                        if k <= start {
                            child = get_u64(buf, INNER_HDR + i * INNER_ENTRY + 8);
                        } else {
                            break;
                        }
                    }
                    Some(PageId(child))
                } else {
                    None
                }
            })?;
            match next {
                Some(p) => page = p,
                None => break,
            }
        }
        // Walk the leaf chain.
        loop {
            let mut done = false;
            let mut hits: Vec<(u64, LeafHit)> = Vec::new();
            let next = pager.with_page(page, |buf| {
                let count = get_u16(buf, 1) as usize;
                let mut off = LEAF_HDR;
                for _ in 0..count {
                    let k = get_u64(buf, off);
                    let flag = buf[off + 8];
                    let len = get_u32(buf, off + 9) as usize;
                    let payload = off + 13;
                    if k > end {
                        done = true;
                        break;
                    }
                    if k >= start {
                        let hit = if flag == 0 {
                            LeafHit::Inline(buf[payload..payload + len].to_vec())
                        } else {
                            LeafHit::Overflow(PageId(get_u64(buf, payload)), len)
                        };
                        hits.push((k, hit));
                    }
                    off = payload + if flag == 0 { len } else { 8 };
                }
                PageId(get_u64(buf, 3))
            })?;
            for (k, hit) in hits {
                match hit {
                    LeafHit::Inline(v) => visit(k, v),
                    LeafHit::Overflow(head, len) => visit(k, read_overflow(pager, head, len)?),
                }
            }
            if done || !next.is_valid() {
                break;
            }
            page = next;
        }
        let _ = self.first_leaf;
        Ok(())
    }
}

enum LeafHit {
    Inline(Vec<u8>),
    Overflow(PageId, usize),
}

/// Merge-walk a leaf's entries against a sorted run of wanted keys,
/// appending the found ones to `hits`. Wanted keys the leaf skips past
/// are absent from the tree (the run bound guarantees they could only
/// have lived here).
fn collect_run_hits(buf: &[u8], keys: &[u64], hits: &mut Vec<(u64, LeafHit)>) {
    let count = get_u16(buf, 1) as usize;
    let mut off = LEAF_HDR;
    let mut ki = 0;
    for _ in 0..count {
        if ki >= keys.len() {
            break;
        }
        let k = get_u64(buf, off);
        let flag = buf[off + 8];
        let len = get_u32(buf, off + 9) as usize;
        let payload = off + 13;
        while ki < keys.len() && keys[ki] < k {
            ki += 1; // absent key
        }
        if ki < keys.len() && keys[ki] == k {
            let hit = if flag == 0 {
                LeafHit::Inline(buf[payload..payload + len].to_vec())
            } else {
                LeafHit::Overflow(PageId(get_u64(buf, payload)), len)
            };
            hits.push((k, hit));
            ki += 1;
        }
        off = payload + if flag == 0 { len } else { 8 };
    }
}

fn write_overflow(pager: &Pager, value: &[u8]) -> PageId {
    let chunk = PAGE_SIZE - OVF_HDR;
    let mut head = PageId::INVALID;
    let mut prev: Option<PageId> = None;
    for part in value.chunks(chunk) {
        let page = pager.alloc();
        let mut buf = vec![0u8; OVF_HDR + part.len()];
        put_u64(&mut buf, 0, PageId::INVALID.0);
        put_u16(&mut buf, 8, part.len() as u16);
        buf[OVF_HDR..].copy_from_slice(part);
        pager.write(page, 0, &buf);
        if let Some(p) = prev {
            pager.write(p, 0, &page.0.to_le_bytes());
        } else {
            head = page;
        }
        prev = Some(page);
    }
    head
}

fn read_overflow(pager: &Pager, head: PageId, total_len: usize) -> StoreResult<Vec<u8>> {
    let mut out = Vec::with_capacity(total_len);
    let mut page = head;
    while page.is_valid() && out.len() < total_len {
        page = pager.with_page(page, |buf| {
            let len = get_u16(buf, 8) as usize;
            out.extend_from_slice(&buf[OVF_HDR..OVF_HDR + len]);
            PageId(get_u64(buf, 0))
        })?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64, stride: u64) -> Vec<(u64, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let k = i * stride;
                (k, format!("value-{k}").into_bytes())
            })
            .collect()
    }

    #[test]
    fn get_existing_and_missing() {
        let pager = Pager::new(64);
        let recs = records(5000, 3);
        let tree = BPlusTree::bulk_build(&pager, &recs);
        assert_eq!(tree.len(), 5000);
        assert!(tree.height() >= 2);
        assert_eq!(tree.get(&pager, 0).unwrap().unwrap(), b"value-0");
        assert_eq!(tree.get(&pager, 2997).unwrap().unwrap(), b"value-2997");
        assert_eq!(tree.get(&pager, 14997).unwrap().unwrap(), b"value-14997");
        assert!(tree.get(&pager, 1).unwrap().is_none());
        assert!(tree.get(&pager, 15000).unwrap().is_none());
    }

    #[test]
    fn scan_range_matches_filter() {
        let pager = Pager::new(64);
        let recs = records(2000, 2);
        let tree = BPlusTree::bulk_build(&pager, &recs);
        let mut got = Vec::new();
        tree.scan_range(&pager, 101, 499, |k, v| got.push((k, v))).unwrap();
        let want: Vec<_> = recs.iter().filter(|(k, _)| (101..=499).contains(k)).cloned().collect();
        assert_eq!(got, want);
        // Degenerate ranges.
        let mut n = 0;
        tree.scan_range(&pager, 10, 5, |_, _| n += 1).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn overflow_values_roundtrip() {
        let pager = Pager::new(64);
        let big = vec![0xABu8; PAGE_SIZE * 3 + 17];
        let small = b"tiny".to_vec();
        let recs = vec![(1u64, small.clone()), (2, big.clone()), (3, small.clone())];
        let tree = BPlusTree::bulk_build(&pager, &recs);
        assert_eq!(tree.get(&pager, 2).unwrap().unwrap(), big);
        assert_eq!(tree.get(&pager, 3).unwrap().unwrap(), small);
        // Overflow reads charge extra pages.
        pager.clear_pool();
        pager.reset_stats();
        let _ = tree.get(&pager, 2).unwrap();
        assert!(pager.stats().physical_reads >= 4); // leaf + 4 overflow-ish
    }

    #[test]
    fn empty_tree() {
        let pager = Pager::new(8);
        let tree = BPlusTree::bulk_build(&pager, &[]);
        assert!(tree.is_empty());
        assert!(tree.get(&pager, 42).unwrap().is_none());
        let mut n = 0;
        tree.scan_range(&pager, 0, u64::MAX, |_, _| n += 1).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_keys() {
        let pager = Pager::new(8);
        BPlusTree::bulk_build(&pager, &[(2, vec![]), (1, vec![])]);
    }

    #[test]
    fn get_many_matches_gets_and_reads_fewer_pages() {
        let pager = Pager::new(4096);
        let recs = records(20000, 3);
        let tree = BPlusTree::bulk_build(&pager, &recs);
        // Mix of present keys (clustered and spread) and absent ones.
        let keys: Vec<u64> =
            vec![0, 3, 6, 7, 300, 303, 9000, 9003, 9004, 30000, 30003, 59994, 59997, 60001];

        pager.clear_pool();
        pager.reset_stats();
        let mut looped = Vec::new();
        for &k in &keys {
            if let Some(v) = tree.get(&pager, k).unwrap() {
                looped.push((k, v));
            }
        }
        let loop_stats = pager.stats();

        pager.clear_pool();
        pager.reset_stats();
        let mut batched = Vec::new();
        let found = tree.get_many(&pager, &keys, |k, v| batched.push((k, v))).unwrap();
        let batch_stats = pager.stats();

        assert_eq!(batched, looped);
        assert_eq!(found, batched.len());
        assert!(
            batch_stats.physical_reads <= loop_stats.physical_reads,
            "batched lookups must never read more pages ({} > {})",
            batch_stats.physical_reads,
            loop_stats.physical_reads
        );
        assert!(batch_stats.logical_reads < loop_stats.logical_reads);
    }

    #[test]
    fn get_many_of_every_key_walks_each_leaf_once() {
        let pager = Pager::new(4096);
        let recs = records(5000, 1);
        let tree = BPlusTree::bulk_build(&pager, &recs);
        let keys: Vec<u64> = recs.iter().map(|&(k, _)| k).collect();
        pager.clear_pool();
        pager.reset_stats();
        let mut n = 0;
        let found = tree
            .get_many(&pager, &keys, |k, v| {
                assert_eq!(v, format!("value-{k}").into_bytes());
                n += 1;
            })
            .unwrap();
        assert_eq!((n, found), (5000, 5000));
        // One descent per leaf run: far fewer pages than per-key descents.
        assert!(pager.stats().logical_reads < keys.len() as u64);
    }

    #[test]
    fn get_many_handles_keys_below_tree_minimum() {
        let pager = Pager::new(64);
        // Tree keys start at 10: everything below is absent and resolves
        // to the leftmost leaf with a bound at that leaf's own min key,
        // which used to duplicate the leaf in the batch read.
        let recs: Vec<(u64, Vec<u8>)> =
            (0..2000u64).map(|i| (10 + i * 10, format!("v{i}").into_bytes())).collect();
        let tree = BPlusTree::bulk_build(&pager, &recs);
        let keys = vec![0, 5, 10, 15, 20, 30, 19_990];
        let mut got = Vec::new();
        let found = tree.get_many(&pager, &keys, |k, v| got.push((k, v))).unwrap();
        assert_eq!(found, 4);
        assert_eq!(
            got,
            vec![
                (10, b"v0".to_vec()),
                (20, b"v1".to_vec()),
                (30, b"v2".to_vec()),
                (19_990, b"v1998".to_vec()),
            ]
        );
        // All-absent batches below the minimum work too.
        let mut n = 0;
        assert_eq!(tree.get_many(&pager, &[1, 2, 3], |_, _| n += 1).unwrap(), 0);
        assert_eq!(n, 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn get_many_rejects_unsorted_keys() {
        let pager = Pager::new(8);
        let tree = BPlusTree::bulk_build(&pager, &records(10, 1));
        let _ = tree.get_many(&pager, &[5, 3], |_, _| ());
    }

    #[test]
    fn lookups_charge_height_pages_when_cold() {
        let pager = Pager::new(4096);
        let recs = records(20000, 1);
        let tree = BPlusTree::bulk_build(&pager, &recs);
        pager.clear_pool();
        pager.reset_stats();
        let _ = tree.get(&pager, 12345).unwrap().unwrap();
        assert_eq!(pager.stats().physical_reads as usize, tree.height());
    }
}
