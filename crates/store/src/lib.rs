#![warn(missing_docs)]
//! Simulated disk storage with page-level I/O accounting.
//!
//! The paper's evaluation (§5) reports *disk page accesses* as a primary
//! cost metric: terrain structures (DMTM, MSDN) live in an Oracle database
//! used purely as a page store, with all indexes "implemented by us" and a
//! clustering B+-tree over DMTM nodes. This crate reproduces that setup
//! deterministically:
//!
//! * [`page`] — 8 KiB pages addressed by [`page::PageId`];
//! * [`pager`] — the page store plus a sharded, single-flight buffer pool
//!   with CLOCK eviction; every cache miss is a *physical read* (the
//!   paper's "page accessed"), hits are free, and batched reads
//!   ([`pager::Pager::with_pages`], [`bptree::BPlusTree::get_many`])
//!   overlap their simulated stalls without changing the page counts;
//! * [`error`] / [`fault`] — the failure model: the physical read path
//!   returns typed [`StoreError`]s instead of panicking, every page is
//!   checksummed (FNV-1a, verified on each physical read), and a seeded
//!   deterministic [`FaultInjector`] can fail, corrupt, delay, or panic
//!   reads for resilience testing, with transient faults absorbed by a
//!   bounded [`RetryPolicy`];
//! * [`bptree`] — a clustering B+-tree (bulk-built, variable-length values
//!   with overflow chains) used to store DMTM nodes keyed by node id;
//! * [`heapfile`] — slotted-page heap files for SDN segments and objects;
//! * [`latency`] — a disk-latency model so "response time = CPU + I/O" can
//!   be reported the way the paper does.
//!
//! All structures are in memory; "disk" is an accounting fiction — which is
//! exactly what makes page counts reproducible across runs and machines.

//! ```
//! use sknn_store::{BPlusTree, Pager};
//!
//! let pager = Pager::new(16); // 16-page sharded buffer pool
//! let records: Vec<(u64, Vec<u8>)> =
//!     (0..1000).map(|k| (k, format!("row-{k}").into_bytes())).collect();
//! let tree = BPlusTree::bulk_build(&pager, &records);
//!
//! pager.clear_pool();
//! pager.reset_stats();
//! assert_eq!(tree.get(&pager, 42).unwrap().unwrap(), b"row-42");
//! // The lookup paid exactly one page per tree level (cold cache).
//! assert_eq!(pager.stats().physical_reads as usize, tree.height());
//! ```

pub mod bptree;
pub mod cache;
pub mod error;
pub mod fault;
pub mod heapfile;
pub mod latency;
pub mod page;
pub mod pager;
pub mod wal;

pub use bptree::BPlusTree;
pub use cache::{CacheGauges, CacheOutcome, CacheStats, SingleFlightCache, CACHE_SHARDS};
pub use error::{StoreError, StoreResult};
pub use fault::{FaultInjector, FaultKind, FaultProfile, FaultStats, RetryPolicy};
pub use heapfile::{HeapFile, RecordId};
pub use latency::DiskModel;
pub use page::{PageId, PAGE_SIZE};
pub use pager::{
    page_checksum, ConcurrencyStats, CrashImage, ImagePage, IoStats, Pager, StructureTag, TagScope,
    POOL_SHARDS,
};
pub use wal::{Lsn, RedoPlan, Wal, WalEntry, WalMark, WalRecord, WalStats};
