//! Slotted-page heap files.
//!
//! SDN crossing-line segments and the object table are stored in heap files:
//! records are appended into slotted pages and addressed by a stable
//! [`RecordId`]. Consecutive appends land on the same page, so data written
//! in a spatially coherent order (the SDN writes per plane, in line order)
//! exhibits the locality the paper's integrated-I/O-region optimisation
//! exploits.

use crate::error::StoreResult;
use crate::page::codec::*;
use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Pager;

// Page layout: [count u16] then per record: [len u16][bytes].
const HDR: usize = 2;

/// Stable address of a heap-file record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page the record lives on.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// An append-only slotted-page heap file.
#[derive(Debug)]
pub struct HeapFile {
    pages: Vec<PageId>,
    /// Bytes used in the last page.
    tail_used: usize,
    tail_count: u16,
    len: usize,
    /// In-memory mirror of the tail page (flushed on every append; kept to
    /// avoid read-modify-write charging during builds).
    tail_buf: Vec<u8>,
}

impl HeapFile {
    /// Creates the value from its parts.
    pub fn new() -> Self {
        Self {
            pages: Vec::new(),
            tail_used: HDR,
            tail_count: 0,
            len: 0,
            tail_buf: vec![0u8; PAGE_SIZE],
        }
    }

    /// Number of contained items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether it holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Num pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Append a record; returns its address.
    ///
    /// # Panics
    /// Panics when the record cannot fit in one page.
    pub fn append(&mut self, pager: &Pager, record: &[u8]) -> RecordId {
        let need = 2 + record.len();
        assert!(need + HDR <= PAGE_SIZE, "record larger than a page");
        if self.pages.is_empty() || self.tail_used + need > PAGE_SIZE {
            self.pages.push(pager.alloc());
            self.tail_used = HDR;
            self.tail_count = 0;
            self.tail_buf.iter_mut().for_each(|b| *b = 0);
        }
        let page = *self.pages.last().unwrap();
        put_u16(&mut self.tail_buf, self.tail_used, record.len() as u16);
        self.tail_buf[self.tail_used + 2..self.tail_used + 2 + record.len()]
            .copy_from_slice(record);
        self.tail_used += need;
        self.tail_count += 1;
        put_u16(&mut self.tail_buf, 0, self.tail_count);
        pager.write(page, 0, &self.tail_buf[..self.tail_used]);
        self.len += 1;
        RecordId { page, slot: self.tail_count - 1 }
    }

    /// Fetch one record, charging the page read. Read failures surface as
    /// [`StoreError`](crate::StoreError).
    pub fn get(&self, pager: &Pager, rid: RecordId) -> StoreResult<Option<Vec<u8>>> {
        if !self.pages.contains(&rid.page) {
            return Ok(None);
        }
        pager.with_page(rid.page, |buf| {
            let count = get_u16(buf, 0);
            if rid.slot >= count {
                return None;
            }
            let mut off = HDR;
            for s in 0..count {
                let len = get_u16(buf, off) as usize;
                if s == rid.slot {
                    return Some(buf[off + 2..off + 2 + len].to_vec());
                }
                off += 2 + len;
            }
            None
        })
    }

    /// Visit every record on `page` with a single page read. Batch access
    /// is what the integrated-I/O-region optimisation buys: candidates whose
    /// regions merged read each shared page once.
    pub fn visit_page(
        &self,
        pager: &Pager,
        page: PageId,
        mut visit: impl FnMut(RecordId, &[u8]),
    ) -> StoreResult<()> {
        pager.with_page(page, |buf| {
            let count = get_u16(buf, 0);
            let mut off = HDR;
            for s in 0..count {
                let len = get_u16(buf, off) as usize;
                visit(RecordId { page, slot: s }, &buf[off + 2..off + 2 + len]);
                off += 2 + len;
            }
        })
    }

    /// Visit every record of a batch of pages (sorted ascending, no
    /// duplicates) through [`Pager::with_pages`]: each page is one
    /// logical read as with [`HeapFile::visit_page`], but the misses of
    /// the whole batch pay a single overlapped stall — the integrated
    /// I/O region read as one clustered disk request.
    pub fn visit_pages(
        &self,
        pager: &Pager,
        pages: &[PageId],
        mut visit: impl FnMut(RecordId, &[u8]),
    ) -> StoreResult<()> {
        pager.with_pages(pages, |page, buf| {
            let count = get_u16(buf, 0);
            let mut off = HDR;
            for s in 0..count {
                let len = get_u16(buf, off) as usize;
                visit(RecordId { page, slot: s }, &buf[off + 2..off + 2 + len]);
                off += 2 + len;
            }
        })
    }

    /// Visit every record in the file in append order.
    pub fn scan(&self, pager: &Pager, mut visit: impl FnMut(RecordId, &[u8])) -> StoreResult<()> {
        for &page in &self.pages {
            self.visit_page(pager, page, |rid, rec| visit(rid, rec))?;
        }
        Ok(())
    }

    /// Pages backing this file, in order.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }
}

impl Default for HeapFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_get_roundtrip() {
        let pager = Pager::new(16);
        let mut hf = HeapFile::new();
        let mut rids = Vec::new();
        for i in 0..1000u32 {
            let rec = format!("record-{i}-{}", "x".repeat((i % 50) as usize));
            rids.push((hf.append(&pager, rec.as_bytes()), rec));
        }
        assert_eq!(hf.len(), 1000);
        assert!(hf.num_pages() > 1);
        for (rid, want) in &rids {
            assert_eq!(hf.get(&pager, *rid).unwrap().unwrap(), want.as_bytes());
        }
    }

    #[test]
    fn get_missing_slot_or_page() {
        let pager = Pager::new(4);
        let mut hf = HeapFile::new();
        let rid = hf.append(&pager, b"a");
        assert!(hf.get(&pager, RecordId { page: rid.page, slot: 99 }).unwrap().is_none());
        assert!(hf.get(&pager, RecordId { page: PageId(9999), slot: 0 }).unwrap().is_none());
    }

    #[test]
    fn scan_order_matches_append_order() {
        let pager = Pager::new(16);
        let mut hf = HeapFile::new();
        for i in 0..500u32 {
            hf.append(&pager, &i.to_le_bytes());
        }
        let mut seen = Vec::new();
        hf.scan(&pager, |_, rec| {
            seen.push(u32::from_le_bytes(rec.try_into().unwrap()));
        })
        .unwrap();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn batch_page_visit_charges_one_read() {
        let pager = Pager::new(16);
        let mut hf = HeapFile::new();
        let mut first_page = None;
        for i in 0..100u32 {
            let rid = hf.append(&pager, &i.to_le_bytes());
            first_page.get_or_insert(rid.page);
        }
        pager.clear_pool();
        pager.reset_stats();
        let mut n = 0;
        hf.visit_page(&pager, first_page.unwrap(), |_, _| n += 1).unwrap();
        assert!(n > 1);
        assert_eq!(pager.stats().physical_reads, 1);
    }

    #[test]
    fn visit_pages_matches_per_page_visits() {
        let pager = Pager::new(64);
        let mut hf = HeapFile::new();
        for i in 0..800u32 {
            hf.append(&pager, &i.to_le_bytes());
        }
        let pages: Vec<_> = hf.pages().to_vec();
        pager.clear_pool();
        pager.reset_stats();
        let mut one_by_one = Vec::new();
        for &p in &pages {
            hf.visit_page(&pager, p, |rid, rec| one_by_one.push((rid, rec.to_vec()))).unwrap();
        }
        let loop_stats = pager.stats();
        pager.clear_pool();
        pager.reset_stats();
        let mut batched = Vec::new();
        hf.visit_pages(&pager, &pages, |rid, rec| batched.push((rid, rec.to_vec()))).unwrap();
        let batch_stats = pager.stats();
        assert_eq!(batched, one_by_one);
        assert_eq!(batch_stats.logical_reads, loop_stats.logical_reads);
        assert_eq!(batch_stats.physical_reads, loop_stats.physical_reads);
    }

    #[test]
    #[should_panic(expected = "larger than a page")]
    fn oversized_record_panics() {
        let pager = Pager::new(4);
        let mut hf = HeapFile::new();
        hf.append(&pager, &vec![0u8; PAGE_SIZE]);
    }
}
