//! Slotted-page heap files.
//!
//! SDN crossing-line segments and the object table are stored in heap files:
//! records are appended into slotted pages and addressed by a stable
//! [`RecordId`]. Consecutive appends land on the same page, so data written
//! in a spatially coherent order (the SDN writes per plane, in line order)
//! exhibits the locality the paper's integrated-I/O-region optimisation
//! exploits.

use crate::error::StoreResult;
use crate::page::codec::*;
use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Pager;
use crate::wal::{Wal, WalRecord};

// Page layout: [count u16] then per record: [len u16][bytes].
const HDR: usize = 2;

/// Stable address of a heap-file record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page the record lives on.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// An append-only slotted-page heap file.
#[derive(Debug)]
pub struct HeapFile {
    pages: Vec<PageId>,
    /// Bytes used in the last page.
    tail_used: usize,
    tail_count: u16,
    len: usize,
    /// In-memory mirror of the tail page (flushed on every append; kept to
    /// avoid read-modify-write charging during builds).
    tail_buf: Vec<u8>,
}

impl HeapFile {
    /// Creates the value from its parts.
    pub fn new() -> Self {
        Self {
            pages: Vec::new(),
            tail_used: HDR,
            tail_count: 0,
            len: 0,
            tail_buf: vec![0u8; PAGE_SIZE],
        }
    }

    /// Number of contained items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether it holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Num pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Append a record; returns its address.
    ///
    /// # Panics
    /// Panics when the record cannot fit in one page.
    pub fn append(&mut self, pager: &Pager, record: &[u8]) -> RecordId {
        let need = 2 + record.len();
        assert!(need + HDR <= PAGE_SIZE, "record larger than a page");
        if self.pages.is_empty() || self.tail_used + need > PAGE_SIZE {
            self.pages.push(pager.alloc());
            self.tail_used = HDR;
            self.tail_count = 0;
            self.tail_buf.iter_mut().for_each(|b| *b = 0);
        }
        let page = *self.pages.last().unwrap();
        put_u16(&mut self.tail_buf, self.tail_used, record.len() as u16);
        self.tail_buf[self.tail_used + 2..self.tail_used + 2 + record.len()]
            .copy_from_slice(record);
        self.tail_used += need;
        self.tail_count += 1;
        put_u16(&mut self.tail_buf, 0, self.tail_count);
        pager.write(page, 0, &self.tail_buf[..self.tail_used]);
        self.len += 1;
        RecordId { page, slot: self.tail_count - 1 }
    }

    /// Fetch one record, charging the page read. Read failures surface as
    /// [`StoreError`](crate::StoreError).
    pub fn get(&self, pager: &Pager, rid: RecordId) -> StoreResult<Option<Vec<u8>>> {
        if !self.pages.contains(&rid.page) {
            return Ok(None);
        }
        pager.with_page(rid.page, |buf| {
            let count = get_u16(buf, 0);
            if rid.slot >= count {
                return None;
            }
            let mut off = HDR;
            for s in 0..count {
                let len = get_u16(buf, off) as usize;
                if s == rid.slot {
                    return Some(buf[off + 2..off + 2 + len].to_vec());
                }
                off += 2 + len;
            }
            None
        })
    }

    /// Visit every record on `page` with a single page read. Batch access
    /// is what the integrated-I/O-region optimisation buys: candidates whose
    /// regions merged read each shared page once.
    pub fn visit_page(
        &self,
        pager: &Pager,
        page: PageId,
        mut visit: impl FnMut(RecordId, &[u8]),
    ) -> StoreResult<()> {
        pager.with_page(page, |buf| {
            let count = get_u16(buf, 0);
            let mut off = HDR;
            for s in 0..count {
                let len = get_u16(buf, off) as usize;
                visit(RecordId { page, slot: s }, &buf[off + 2..off + 2 + len]);
                off += 2 + len;
            }
        })
    }

    /// Visit every record of a batch of pages (sorted ascending, no
    /// duplicates) through [`Pager::with_pages`]: each page is one
    /// logical read as with [`HeapFile::visit_page`], but the misses of
    /// the whole batch pay a single overlapped stall — the integrated
    /// I/O region read as one clustered disk request.
    pub fn visit_pages(
        &self,
        pager: &Pager,
        pages: &[PageId],
        mut visit: impl FnMut(RecordId, &[u8]),
    ) -> StoreResult<()> {
        pager.with_pages(pages, |page, buf| {
            let count = get_u16(buf, 0);
            let mut off = HDR;
            for s in 0..count {
                let len = get_u16(buf, off) as usize;
                visit(RecordId { page, slot: s }, &buf[off + 2..off + 2 + len]);
                off += 2 + len;
            }
        })
    }

    /// Visit every record in the file in append order.
    pub fn scan(&self, pager: &Pager, mut visit: impl FnMut(RecordId, &[u8])) -> StoreResult<()> {
        for &page in &self.pages {
            self.visit_page(pager, page, |rid, rec| visit(rid, rec))?;
        }
        Ok(())
    }

    /// Pages backing this file, in order.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Append a record under WAL protection: the page allocation (if the
    /// tail spills) and the full rewritten page prefix are logged as
    /// pending records of transaction `txn` *before* the volatile page is
    /// touched, and the page is marked dirty at the `PageWrite` record's
    /// LSN. Because every append rewrites the whole used prefix, redoing
    /// the last committed `PageWrite` of a page reconstructs it entirely —
    /// a torn flush of the page is repaired by redo alone.
    pub fn append_logged(
        &mut self,
        pager: &Pager,
        wal: &mut Wal,
        txn: u64,
        record: &[u8],
    ) -> RecordId {
        let need = 2 + record.len();
        assert!(need + HDR <= PAGE_SIZE, "record larger than a page");
        if self.pages.is_empty() || self.tail_used + need > PAGE_SIZE {
            let page = pager.alloc();
            wal.append(txn, &WalRecord::Alloc { page: page.0, tag: pager.tag_of(page).as_idx() });
            self.pages.push(page);
            self.tail_used = HDR;
            self.tail_count = 0;
            self.tail_buf.iter_mut().for_each(|b| *b = 0);
        }
        let page = *self.pages.last().unwrap();
        put_u16(&mut self.tail_buf, self.tail_used, record.len() as u16);
        self.tail_buf[self.tail_used + 2..self.tail_used + 2 + record.len()]
            .copy_from_slice(record);
        self.tail_used += need;
        self.tail_count += 1;
        put_u16(&mut self.tail_buf, 0, self.tail_count);
        let lsn = wal.append(
            txn,
            &WalRecord::PageWrite {
                page: page.0,
                offset: 0,
                bytes: self.tail_buf[..self.tail_used].to_vec(),
            },
        );
        pager.write_logged(page, 0, &self.tail_buf[..self.tail_used], lsn);
        self.len += 1;
        RecordId { page, slot: self.tail_count - 1 }
    }

    /// Snapshot the file's volatile state before an operation, so a
    /// failed commit can roll the heap back to exactly this point with
    /// [`rollback_to`](Self::rollback_to).
    pub fn state_mark(&self, pager: &Pager) -> HeapMark {
        HeapMark {
            pages_len: self.pages.len(),
            tail_used: self.tail_used,
            tail_count: self.tail_count,
            len: self.len,
            tail_buf: self.tail_buf.clone(),
            tail_dirty_lsn: self.pages.last().and_then(|p| pager.dirty_lsn_of(p.0)),
        }
    }

    /// Undo every volatile effect of an aborted operation: pages the op
    /// allocated are zeroed, marked clean, and dropped from the file (the
    /// pager slot is leaked — recovery gap-fills it), and the pre-op tail
    /// page's bytes *and dirty LSN* are restored exactly. Must be paired
    /// with [`Wal::truncate_pending`] so the op's log records are
    /// withdrawn too.
    pub fn rollback_to(&mut self, pager: &Pager, mark: HeapMark) {
        for &p in &self.pages[mark.pages_len..] {
            pager.rollback_page(p, None, None);
        }
        self.pages.truncate(mark.pages_len);
        if let Some(&tail) = self.pages.last() {
            pager.rollback_page(tail, Some(&mark.tail_buf), mark.tail_dirty_lsn);
        }
        self.tail_used = mark.tail_used;
        self.tail_count = mark.tail_count;
        self.len = mark.len;
        self.tail_buf = mark.tail_buf;
    }

    /// Rebuild a heap file's volatile bookkeeping from its pages after a
    /// restart: record counts come from each page's slot directory, and
    /// the last page's contents become the tail buffer.
    pub fn reopen(pager: &Pager, pages: Vec<PageId>) -> StoreResult<Self> {
        let mut hf = Self::new();
        if pages.is_empty() {
            return Ok(hf);
        }
        let mut total = 0usize;
        for &p in &pages[..pages.len() - 1] {
            total += pager.with_page(p, |buf| get_u16(buf, 0) as usize)?;
        }
        let last = *pages.last().unwrap();
        let (count, used, buf) = pager.with_page(last, |buf| {
            let count = get_u16(buf, 0);
            let mut off = HDR;
            for _ in 0..count {
                off += 2 + get_u16(buf, off) as usize;
            }
            (count, off, buf.to_vec())
        })?;
        hf.pages = pages;
        hf.len = total + count as usize;
        hf.tail_count = count;
        hf.tail_used = used;
        hf.tail_buf = buf;
        Ok(hf)
    }
}

/// Pre-operation snapshot of a heap file's volatile state (see
/// [`HeapFile::state_mark`]).
#[derive(Debug, Clone)]
pub struct HeapMark {
    pages_len: usize,
    tail_used: usize,
    tail_count: u16,
    len: usize,
    tail_buf: Vec<u8>,
    tail_dirty_lsn: Option<u64>,
}

impl Default for HeapFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_get_roundtrip() {
        let pager = Pager::new(16);
        let mut hf = HeapFile::new();
        let mut rids = Vec::new();
        for i in 0..1000u32 {
            let rec = format!("record-{i}-{}", "x".repeat((i % 50) as usize));
            rids.push((hf.append(&pager, rec.as_bytes()), rec));
        }
        assert_eq!(hf.len(), 1000);
        assert!(hf.num_pages() > 1);
        for (rid, want) in &rids {
            assert_eq!(hf.get(&pager, *rid).unwrap().unwrap(), want.as_bytes());
        }
    }

    #[test]
    fn get_missing_slot_or_page() {
        let pager = Pager::new(4);
        let mut hf = HeapFile::new();
        let rid = hf.append(&pager, b"a");
        assert!(hf.get(&pager, RecordId { page: rid.page, slot: 99 }).unwrap().is_none());
        assert!(hf.get(&pager, RecordId { page: PageId(9999), slot: 0 }).unwrap().is_none());
    }

    #[test]
    fn scan_order_matches_append_order() {
        let pager = Pager::new(16);
        let mut hf = HeapFile::new();
        for i in 0..500u32 {
            hf.append(&pager, &i.to_le_bytes());
        }
        let mut seen = Vec::new();
        hf.scan(&pager, |_, rec| {
            seen.push(u32::from_le_bytes(rec.try_into().unwrap()));
        })
        .unwrap();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn batch_page_visit_charges_one_read() {
        let pager = Pager::new(16);
        let mut hf = HeapFile::new();
        let mut first_page = None;
        for i in 0..100u32 {
            let rid = hf.append(&pager, &i.to_le_bytes());
            first_page.get_or_insert(rid.page);
        }
        pager.clear_pool();
        pager.reset_stats();
        let mut n = 0;
        hf.visit_page(&pager, first_page.unwrap(), |_, _| n += 1).unwrap();
        assert!(n > 1);
        assert_eq!(pager.stats().physical_reads, 1);
    }

    #[test]
    fn visit_pages_matches_per_page_visits() {
        let pager = Pager::new(64);
        let mut hf = HeapFile::new();
        for i in 0..800u32 {
            hf.append(&pager, &i.to_le_bytes());
        }
        let pages: Vec<_> = hf.pages().to_vec();
        pager.clear_pool();
        pager.reset_stats();
        let mut one_by_one = Vec::new();
        for &p in &pages {
            hf.visit_page(&pager, p, |rid, rec| one_by_one.push((rid, rec.to_vec()))).unwrap();
        }
        let loop_stats = pager.stats();
        pager.clear_pool();
        pager.reset_stats();
        let mut batched = Vec::new();
        hf.visit_pages(&pager, &pages, |rid, rec| batched.push((rid, rec.to_vec()))).unwrap();
        let batch_stats = pager.stats();
        assert_eq!(batched, one_by_one);
        assert_eq!(batch_stats.logical_reads, loop_stats.logical_reads);
        assert_eq!(batch_stats.physical_reads, loop_stats.physical_reads);
    }

    #[test]
    #[should_panic(expected = "larger than a page")]
    fn oversized_record_panics() {
        let pager = Pager::new(4);
        let mut hf = HeapFile::new();
        hf.append(&pager, &vec![0u8; PAGE_SIZE]);
    }

    #[test]
    fn logged_appends_match_plain_appends_and_log_allocs() {
        let plain_pager = Pager::new(32);
        let mut plain = HeapFile::new();
        let logged_pager = Pager::new(32);
        let mut logged = HeapFile::new();
        let mut wal = Wal::new();
        for i in 0..700u32 {
            let rec = format!("r{i}");
            let a = plain.append(&plain_pager, rec.as_bytes());
            let b = logged.append_logged(&logged_pager, &mut wal, u64::from(i), rec.as_bytes());
            assert_eq!(a, b, "logged and plain appends assign the same record ids");
        }
        assert_eq!(plain.pages(), logged.pages());
        // Every page got one Alloc record; every append one PageWrite.
        wal.sync(None).unwrap();
        let (entries, _) = Wal::scan(wal.durable_bytes());
        let allocs = entries.iter().filter(|e| matches!(e.record, WalRecord::Alloc { .. }));
        let writes = entries.iter().filter(|e| matches!(e.record, WalRecord::PageWrite { .. }));
        assert_eq!(allocs.count(), logged.num_pages());
        assert_eq!(writes.count(), 700);
        // The pages are dirty at their last write's LSN until writeback.
        assert_eq!(logged_pager.dirty_pages().len(), logged.num_pages());
        logged_pager.observe_wal_lsn(u64::MAX);
        logged_pager.flush_dirty(None).unwrap();
        assert!(logged_pager.dirty_pages().is_empty());
    }

    #[test]
    fn rollback_erases_an_aborted_append_exactly() {
        let pager = Pager::new(16);
        let mut hf = HeapFile::new();
        let mut wal = Wal::new();
        for i in 0..10u32 {
            hf.append_logged(&pager, &mut wal, u64::from(i), &i.to_le_bytes());
        }
        wal.sync(None).unwrap();
        let tail = *hf.pages().last().unwrap();
        let before_bytes = {
            let mut store_copy = Vec::new();
            hf.scan(&pager, |_, rec| store_copy.push(rec.to_vec())).unwrap();
            store_copy
        };
        let before_dirty = pager.dirty_lsn_of(tail.0);

        // An append whose commit will fail...
        let wal_mark = wal.mark();
        let heap_mark = hf.state_mark(&pager);
        hf.append_logged(&pager, &mut wal, 99, b"aborted");
        assert_eq!(hf.len(), 11);
        // ...is rolled back without a trace.
        wal.truncate_pending(wal_mark);
        hf.rollback_to(&pager, heap_mark);
        assert_eq!(hf.len(), 10);
        let mut after_bytes = Vec::new();
        hf.scan(&pager, |_, rec| after_bytes.push(rec.to_vec())).unwrap();
        assert_eq!(after_bytes, before_bytes);
        assert_eq!(pager.dirty_lsn_of(tail.0), before_dirty, "dirty LSN restored");

        // The next append behaves as if the aborted one never happened.
        let rid = hf.append_logged(&pager, &mut wal, 100, b"next");
        assert_eq!(hf.get(&pager, rid).unwrap().unwrap(), b"next");
        assert_eq!(hf.len(), 11);
    }

    #[test]
    fn rollback_cleans_a_page_the_aborted_op_allocated() {
        let pager = Pager::new(16);
        let mut hf = HeapFile::new();
        let mut wal = Wal::new();
        // Fill the tail page so the next append must allocate.
        let big = vec![7u8; PAGE_SIZE - HDR - 2];
        hf.append_logged(&pager, &mut wal, 1, &big[..PAGE_SIZE - HDR - 2]);
        wal.sync(None).unwrap();
        assert_eq!(hf.num_pages(), 1);

        let wal_mark = wal.mark();
        let heap_mark = hf.state_mark(&pager);
        hf.append_logged(&pager, &mut wal, 2, b"spills");
        assert_eq!(hf.num_pages(), 2);
        let leaked = *hf.pages().last().unwrap();

        wal.truncate_pending(wal_mark);
        hf.rollback_to(&pager, heap_mark);
        assert_eq!(hf.num_pages(), 1);
        // The leaked page is zeroed and clean: no uncommitted byte can
        // ever reach the durable image through it.
        assert_eq!(pager.dirty_lsn_of(leaked.0), None);
        assert!(pager.read_page(leaked).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn reopen_restores_bookkeeping_and_appends_continue() {
        let pager = Pager::new(32);
        let mut hf = HeapFile::new();
        let mut wal = Wal::new();
        for i in 0..333u32 {
            hf.append_logged(&pager, &mut wal, u64::from(i), &i.to_le_bytes());
        }
        let reopened = HeapFile::reopen(&pager, hf.pages().to_vec()).unwrap();
        assert_eq!(reopened.len(), hf.len());
        assert_eq!(reopened.num_pages(), hf.num_pages());
        assert_eq!(reopened.tail_used, hf.tail_used);
        assert_eq!(reopened.tail_count, hf.tail_count);
        assert_eq!(reopened.tail_buf, hf.tail_buf);

        // Appends through the reopened file continue the same layout the
        // original would have used, and every old record stays readable.
        let mut b = reopened;
        let rid = b.append_logged(&pager, &mut wal, 1000, b"cont");
        assert_eq!(rid.page, *b.pages().last().unwrap());
        assert_eq!(b.get(&pager, rid).unwrap().unwrap(), b"cont");
        let mut seen = Vec::new();
        b.scan(&pager, |_, rec| seen.push(rec.to_vec())).unwrap();
        assert_eq!(seen.len(), 334);
        assert_eq!(seen[17], 17u32.to_le_bytes().to_vec());
    }
}
