//! Deterministic fault injection for the physical read *and* write paths.
//!
//! A [`FaultInjector`] is installed on a [`Pager`](crate::Pager) and
//! consulted once per physical read *attempt* (initial read or retry),
//! once per durable page write (a dirty-page flush), and once per WAL
//! fsync. Every decision is a pure function of the injector's seed, the
//! page id, and the operation's cumulative attempt number — never of
//! wall-clock time or thread scheduling — so a failing run is reproducible
//! from its `seed:rate:kind` profile alone, at any thread count.
//!
//! Two ways to drive it:
//!
//! * **Profiles** ([`FaultProfile`], parsed from `seed:rate:kind`): every
//!   attempt faults with probability `rate`, decided by a seeded hash.
//!   Rate-driven *transient* and *bit-flip* read faults are guaranteed to
//!   clear by a page's next attempt-multiple-of-three, so any read
//!   sequence succeeds within three attempts — a fault that never clears
//!   is not transient. Use `permanent` to model faults that stick. Write
//!   kinds (`write`, `fsync`, `torn`) fire on the write side only.
//! * **Scripts** ([`FaultInjector::script`] plus `fail_nth_read` /
//!   `fail_page` / `fail_nth_write` / `fail_nth_fsync` / `kill_at_lsn`
//!   rules): exact schedules for deterministic tests — *these* can exhaust
//!   the retry budget or schedule a crash at an exact WAL position.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an injected fault does to the attempt it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The read fails but a retry may succeed (dropped request, timeout).
    Transient,
    /// The read fails and always will (media error). Never retried.
    Permanent,
    /// The read "succeeds" but one byte of the returned data is flipped;
    /// the page checksum catches it and the read is retried like a
    /// transient fault. Corrupt bytes are never served.
    BitFlip,
    /// The read succeeds but takes extra wall-clock time (slow sector).
    Latency,
    /// The reading thread panics mid-read — exercises the single-flight
    /// lease's panic guard. Only sensible from test scripts.
    Panic,
    /// A durable page write fails cleanly: nothing reaches the disk, the
    /// page stays dirty, and the flush surfaces a typed error.
    WriteFault,
    /// A WAL fsync fails: no pending log byte becomes durable and the
    /// committing operation must abort (the commit record is withdrawn).
    FsyncFault,
    /// A durable page write tears mid-page: a prefix of the page reaches
    /// the disk, the rest keeps its pre-write content, and the stored
    /// checksum no longer matches — the torn state only ever becomes
    /// visible through a crash, so deciding this kind also raises the
    /// injector's kill flag (see [`FaultInjector::kill_requested`]).
    TornWrite,
}

impl FaultKind {
    /// Stable lower-case name (profile syntax, trace fields).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Permanent => "permanent",
            FaultKind::BitFlip => "bitflip",
            FaultKind::Latency => "latency",
            FaultKind::Panic => "panic",
            FaultKind::WriteFault => "write",
            FaultKind::FsyncFault => "fsync",
            FaultKind::TornWrite => "torn",
        }
    }

    /// Parse a profile kind name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "transient" => Ok(FaultKind::Transient),
            "permanent" => Ok(FaultKind::Permanent),
            "bitflip" => Ok(FaultKind::BitFlip),
            "latency" => Ok(FaultKind::Latency),
            "panic" => Ok(FaultKind::Panic),
            "write" => Ok(FaultKind::WriteFault),
            "fsync" => Ok(FaultKind::FsyncFault),
            "torn" => Ok(FaultKind::TornWrite),
            other => Err(format!(
                "unknown fault kind {other:?} (expected \
                 transient|permanent|bitflip|latency|panic|write|fsync|torn)"
            )),
        }
    }

    /// Whether this kind fires on the write side (durable page writes and
    /// WAL fsyncs) rather than the read side.
    pub fn is_write_side(self) -> bool {
        matches!(self, FaultKind::WriteFault | FaultKind::FsyncFault | FaultKind::TornWrite)
    }
}

/// A parsed `seed:rate:kind` fault profile (the CLI's `--fault-profile`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Seed of the per-attempt fault decisions.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given read attempt faults.
    pub rate: f64,
    /// What the injected faults do.
    pub kind: FaultKind,
}

impl FaultProfile {
    /// Parse `seed:rate:kind`, e.g. `42:0.05:transient`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut it = s.split(':');
        let (seed, rate, kind) = match (it.next(), it.next(), it.next(), it.next()) {
            (Some(seed), Some(rate), Some(kind), None) => (seed, rate, kind),
            _ => return Err(format!("fault profile {s:?} is not of the form seed:rate:kind")),
        };
        let seed = seed.parse::<u64>().map_err(|e| format!("bad fault seed {seed:?}: {e}"))?;
        let rate = rate.parse::<f64>().map_err(|e| format!("bad fault rate {rate:?}: {e}"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} outside [0, 1]"));
        }
        Ok(Self { seed, rate, kind: FaultKind::parse(kind)? })
    }
}

/// How the pager retries transient faults: up to `max_retries` extra
/// attempts, sleeping `backoff * attempt` between them (linear backoff,
/// zero to disable sleeping in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt before giving up.
    pub max_retries: u32,
    /// Base sleep between attempts (scaled by the attempt number).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 3, backoff: Duration::from_micros(100) }
    }
}

/// Counters describing injected faults and how the pager absorbed them.
/// Cumulative since the injector was installed — *not* cleared by
/// [`Pager::reset_stats`](crate::Pager::reset_stats), so a per-query
/// stats reset does not erase the run's fault history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults the injector fired (all kinds).
    pub injected: u64,
    /// Read attempts beyond a read's first (the retry traffic).
    pub retries: u64,
    /// Reads that exhausted the retry budget and surfaced an error.
    pub exhausted: u64,
    /// Checksum verification failures (latent corruption + bit flips).
    pub checksum_failures: u64,
    /// Permanent media errors surfaced.
    pub permanent_failures: u64,
}

/// An explicit scripted fault rule (exact, unlike rate-driven faults).
#[derive(Debug)]
enum FaultRule {
    /// Fire on the `n`-th physical read attempt the pager makes, globally
    /// (1-based).
    NthRead { n: u64, kind: FaultKind },
    /// Fire on reads of one page: the next `remaining` attempts
    /// (`None` = every attempt, forever).
    Page { page: u64, kind: FaultKind, remaining: Option<u32> },
    /// Fire on the `n`-th durable page write (dirty-page flush), globally
    /// (1-based).
    NthWrite { n: u64, kind: FaultKind },
    /// Fire on the `n`-th WAL fsync, globally (1-based).
    NthFsync { n: u64 },
    /// Raise the kill flag once a WAL record with `lsn` or beyond becomes
    /// durable — the crash harness's "stop here" marker.
    KillAtLsn { lsn: u64 },
}

/// SplitMix64: the attempt-decision hash. Full-period, well mixed, and
/// dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic fault source consulted on every physical read attempt.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    rate: f64,
    kind: FaultKind,
    /// Extra wall-clock charged by `Latency` faults.
    latency: Duration,
    rules: Mutex<Vec<FaultRule>>,
    /// Cumulative read attempts per page — the deterministic "time" axis
    /// of rate decisions. Interleaving cannot reorder one page's attempts.
    attempts: Mutex<HashMap<u64, u64>>,
    /// Global attempt counter driving `NthRead` rules.
    reads: Mutex<u64>,
    /// Global durable-write counter driving `NthWrite` rules.
    writes: Mutex<u64>,
    /// Global fsync counter driving `NthFsync` rules.
    fsyncs: Mutex<u64>,
    /// Set by `KillAtLsn` rules and `TornWrite` decisions: the harness
    /// should simulate a crash at its next poll point.
    kill: AtomicBool,
}

impl FaultInjector {
    /// Rate-driven injector from a profile.
    pub fn from_profile(p: &FaultProfile) -> Self {
        Self::seeded(p.seed, p.rate, p.kind)
    }

    /// Rate-driven injector: each attempt faults with probability `rate`,
    /// decided by `splitmix64(seed, page, attempt)`.
    pub fn seeded(seed: u64, rate: f64, kind: FaultKind) -> Self {
        Self {
            seed,
            rate: rate.clamp(0.0, 1.0),
            kind,
            latency: Duration::from_micros(500),
            rules: Mutex::new(Vec::new()),
            attempts: Mutex::new(HashMap::new()),
            reads: Mutex::new(0),
            writes: Mutex::new(0),
            fsyncs: Mutex::new(0),
            kill: AtomicBool::new(false),
        }
    }

    /// Script-only injector: faults exactly where rules say, nowhere else.
    pub fn script() -> Self {
        Self::seeded(0, 0.0, FaultKind::Transient)
    }

    /// Add a rule: fault the `n`-th physical read attempt (1-based,
    /// counted globally across all pages).
    pub fn fail_nth_read(self, n: u64, kind: FaultKind) -> Self {
        self.rules.lock().unwrap_or_else(|e| e.into_inner()).push(FaultRule::NthRead { n, kind });
        self
    }

    /// Add a rule: fault reads of `page` — the next `times` attempts, or
    /// every attempt forever when `times` is `None`.
    pub fn fail_page(self, page: u64, kind: FaultKind, times: Option<u32>) -> Self {
        self.rules.lock().unwrap_or_else(|e| e.into_inner()).push(FaultRule::Page {
            page,
            kind,
            remaining: times,
        });
        self
    }

    /// Add a rule: fault the `n`-th durable page write (1-based, counted
    /// globally). `kind` must be a write-side kind.
    pub fn fail_nth_write(self, n: u64, kind: FaultKind) -> Self {
        assert!(kind.is_write_side(), "fail_nth_write needs a write-side kind, got {kind:?}");
        self.rules.lock().unwrap_or_else(|e| e.into_inner()).push(FaultRule::NthWrite { n, kind });
        self
    }

    /// Add a rule: fail the `n`-th WAL fsync (1-based, counted globally).
    pub fn fail_nth_fsync(self, n: u64) -> Self {
        self.rules.lock().unwrap_or_else(|e| e.into_inner()).push(FaultRule::NthFsync { n });
        self
    }

    /// Add a rule: raise the kill flag once a WAL record at `lsn` or
    /// beyond becomes durable (the recovery harness polls
    /// [`kill_requested`](Self::kill_requested) and simulates a crash).
    pub fn kill_at_lsn(self, lsn: u64) -> Self {
        self.rules.lock().unwrap_or_else(|e| e.into_inner()).push(FaultRule::KillAtLsn { lsn });
        self
    }

    /// Set the extra delay charged by `Latency` faults.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// The delay a `Latency` fault charges.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Decide the fate of one physical read attempt of `page`. Advances
    /// the page's attempt counter; `None` means the attempt succeeds.
    pub fn decide(&self, page: u64) -> Option<FaultKind> {
        let read_no = {
            let mut reads = self.reads.lock().unwrap_or_else(|e| e.into_inner());
            *reads += 1;
            *reads
        };
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
            let a = attempts.entry(page).or_insert(0);
            *a += 1;
            *a
        };
        // Scripted rules fire first and are exact. Write-side kinds never
        // fire on the read path.
        {
            let mut rules = self.rules.lock().unwrap_or_else(|e| e.into_inner());
            for rule in rules.iter_mut() {
                match rule {
                    FaultRule::NthRead { n, kind } if *n == read_no && !kind.is_write_side() => {
                        return Some(*kind);
                    }
                    FaultRule::Page { page: p, kind, remaining }
                        if *p == page && !kind.is_write_side() =>
                    {
                        match remaining {
                            None => return Some(*kind),
                            Some(0) => {}
                            Some(r) => {
                                *r -= 1;
                                return Some(*kind);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        if self.rate <= 0.0 || self.kind.is_write_side() {
            return None;
        }
        // Rate-driven transient faults always clear on a page's
        // attempt-multiples-of-three, bounding any run of consecutive
        // faults at two — so a read under the default retry budget (3)
        // always succeeds eventually. Permanent faults have no such
        // escape: they model errors that stick.
        let recoverable = matches!(self.kind, FaultKind::Transient | FaultKind::BitFlip);
        if recoverable && attempt % 3 == 0 {
            return None;
        }
        let h =
            splitmix64(self.seed ^ splitmix64(page.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ attempt));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        (unit < self.rate).then_some(self.kind)
    }

    /// Deterministically pick the byte a `BitFlip` fault corrupts.
    pub fn flip_offset(&self, page: u64, modulus: usize) -> usize {
        (splitmix64(self.seed ^ page.wrapping_mul(0xD134_2543_DE82_EF95)) % modulus as u64) as usize
    }

    /// Decide the fate of one durable page write (a dirty-page flush) of
    /// `page`. Advances the global write counter; `None` means the write
    /// lands intact. A `TornWrite` decision also raises the kill flag: a
    /// torn page is only ever observable through a crash.
    pub fn decide_write(&self, page: u64) -> Option<FaultKind> {
        let write_no = {
            let mut writes = self.writes.lock().unwrap_or_else(|e| e.into_inner());
            *writes += 1;
            *writes
        };
        let mut decision = None;
        {
            let rules = self.rules.lock().unwrap_or_else(|e| e.into_inner());
            for rule in rules.iter() {
                if let FaultRule::NthWrite { n, kind } = rule {
                    if *n == write_no {
                        decision = Some(*kind);
                        break;
                    }
                }
            }
        }
        if decision.is_none()
            && self.rate > 0.0
            && matches!(self.kind, FaultKind::WriteFault | FaultKind::TornWrite)
        {
            let h = splitmix64(
                self.seed
                    ^ splitmix64(page.wrapping_mul(0xA24B_AED4_963E_E407) ^ write_no ^ 0x77C6_1B1F),
            );
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            if unit < self.rate {
                decision = Some(self.kind);
            }
        }
        if decision == Some(FaultKind::TornWrite) {
            self.kill.store(true, Ordering::SeqCst);
        }
        decision
    }

    /// Deterministically pick how many bytes of a torn write reach the
    /// durable image: somewhere in `[1, page_len)`, so a torn page is
    /// always partially but never fully written.
    pub fn torn_prefix(&self, page: u64, page_len: usize) -> usize {
        if page_len <= 1 {
            return page_len;
        }
        let h = splitmix64(self.seed ^ page.wrapping_mul(0x2545_F491_4F6C_DD1D));
        1 + (h % (page_len as u64 - 1)) as usize
    }

    /// Decide the fate of one WAL fsync. Advances the global fsync
    /// counter; `true` means the fsync fails (no pending byte became
    /// durable) and the committing operation must abort.
    pub fn decide_fsync(&self) -> bool {
        let fsync_no = {
            let mut fsyncs = self.fsyncs.lock().unwrap_or_else(|e| e.into_inner());
            *fsyncs += 1;
            *fsyncs
        };
        {
            let rules = self.rules.lock().unwrap_or_else(|e| e.into_inner());
            for rule in rules.iter() {
                if let FaultRule::NthFsync { n } = rule {
                    if *n == fsync_no {
                        return true;
                    }
                }
            }
        }
        if self.rate > 0.0 && self.kind == FaultKind::FsyncFault {
            let h = splitmix64(self.seed ^ splitmix64(fsync_no ^ 0x5851_F42D_4C95_7F2D));
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            return unit < self.rate;
        }
        false
    }

    /// Observe that the WAL record at `lsn` just became durable; raises
    /// the kill flag when any `KillAtLsn` rule's target is reached.
    pub fn observe_lsn(&self, lsn: u64) {
        let rules = self.rules.lock().unwrap_or_else(|e| e.into_inner());
        for rule in rules.iter() {
            if let FaultRule::KillAtLsn { lsn: target } = rule {
                if lsn >= *target {
                    self.kill.store(true, Ordering::SeqCst);
                }
            }
        }
    }

    /// Whether a scripted crash point has been reached. The crash harness
    /// polls this after each mutation and simulates a kill when set.
    pub fn kill_requested(&self) -> bool {
        self.kill.load(Ordering::SeqCst)
    }

    /// Clear the kill flag (a restarted incarnation reuses the injector).
    pub fn clear_kill(&self) {
        self.kill.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parses_and_rejects() {
        let p = FaultProfile::parse("42:0.05:transient").unwrap();
        assert_eq!(p, FaultProfile { seed: 42, rate: 0.05, kind: FaultKind::Transient });
        assert_eq!(FaultProfile::parse("7:1.0:permanent").unwrap().kind, FaultKind::Permanent);
        for bad in [
            "",
            "1:2",
            "x:0.1:transient",
            "1:nope:transient",
            "1:1.5:transient",
            "1:0.1:weird",
            "1:0.1:transient:extra",
        ] {
            assert!(FaultProfile::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let roll = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::seeded(seed, 0.5, FaultKind::Transient);
            (0..64).map(|p| inj.decide(p % 8).is_some()).collect()
        };
        assert_eq!(roll(1), roll(1), "same seed, same schedule");
        assert_ne!(roll(1), roll(2), "different seeds diverge");
    }

    #[test]
    fn transient_rate_faults_always_clear_within_three_attempts() {
        // Even at rate 1.0 a page's read sequence must reach a clean
        // attempt within three tries.
        let inj = FaultInjector::seeded(9, 1.0, FaultKind::Transient);
        for page in 0..32u64 {
            let mut cleared = false;
            for _ in 0..3 {
                if inj.decide(page).is_none() {
                    cleared = true;
                    break;
                }
            }
            assert!(cleared, "page {page} never cleared");
        }
        // Permanent faults at rate 1.0 never clear.
        let inj = FaultInjector::seeded(9, 1.0, FaultKind::Permanent);
        for _ in 0..8 {
            assert_eq!(inj.decide(3), Some(FaultKind::Permanent));
        }
    }

    #[test]
    fn scripted_rules_fire_exactly() {
        let inj = FaultInjector::script().fail_nth_read(2, FaultKind::Permanent).fail_page(
            5,
            FaultKind::Transient,
            Some(2),
        );
        assert_eq!(inj.decide(0), None); // read 1
        assert_eq!(inj.decide(0), Some(FaultKind::Permanent)); // read 2
        assert_eq!(inj.decide(5), Some(FaultKind::Transient)); // page rule 1/2
        assert_eq!(inj.decide(5), Some(FaultKind::Transient)); // page rule 2/2
        assert_eq!(inj.decide(5), None); // exhausted
    }

    #[test]
    fn write_side_profile_kinds_parse() {
        assert_eq!(FaultProfile::parse("3:0.1:write").unwrap().kind, FaultKind::WriteFault);
        assert_eq!(FaultProfile::parse("3:0.1:fsync").unwrap().kind, FaultKind::FsyncFault);
        assert_eq!(FaultProfile::parse("3:0.1:torn").unwrap().kind, FaultKind::TornWrite);
        assert!(FaultKind::WriteFault.is_write_side());
        assert!(!FaultKind::Transient.is_write_side());
    }

    #[test]
    fn write_side_kinds_never_fire_on_reads() {
        // A write-kind profile at rate 1.0 must leave every read clean.
        let inj = FaultInjector::seeded(4, 1.0, FaultKind::WriteFault);
        for page in 0..16u64 {
            assert_eq!(inj.decide(page), None);
        }
        // ...and a scripted write rule never leaks into the read path.
        let inj = FaultInjector::script().fail_nth_write(1, FaultKind::WriteFault);
        assert_eq!(inj.decide(0), None);
        assert_eq!(inj.decide_write(0), Some(FaultKind::WriteFault));
    }

    #[test]
    fn scripted_write_and_fsync_rules_fire_exactly() {
        let inj =
            FaultInjector::script().fail_nth_write(2, FaultKind::WriteFault).fail_nth_fsync(3);
        assert_eq!(inj.decide_write(7), None); // write 1
        assert_eq!(inj.decide_write(7), Some(FaultKind::WriteFault)); // write 2
        assert_eq!(inj.decide_write(7), None); // write 3
        assert!(!inj.decide_fsync()); // fsync 1
        assert!(!inj.decide_fsync()); // fsync 2
        assert!(inj.decide_fsync()); // fsync 3
        assert!(!inj.decide_fsync()); // fsync 4
    }

    #[test]
    fn torn_write_raises_kill_flag_and_tears_partially() {
        let inj = FaultInjector::script().fail_nth_write(1, FaultKind::TornWrite);
        assert!(!inj.kill_requested());
        assert_eq!(inj.decide_write(9), Some(FaultKind::TornWrite));
        assert!(inj.kill_requested());
        inj.clear_kill();
        assert!(!inj.kill_requested());
        for page in 0..32u64 {
            let cut = inj.torn_prefix(page, 8192);
            assert!((1..8192).contains(&cut), "torn prefix {cut} out of range");
        }
    }

    #[test]
    fn kill_at_lsn_triggers_once_reached() {
        let inj = FaultInjector::script().kill_at_lsn(5);
        inj.observe_lsn(3);
        assert!(!inj.kill_requested());
        inj.observe_lsn(4);
        assert!(!inj.kill_requested());
        inj.observe_lsn(5);
        assert!(inj.kill_requested());
    }

    #[test]
    fn rate_driven_write_faults_are_deterministic() {
        let roll = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::seeded(seed, 0.5, FaultKind::WriteFault);
            (0..64).map(|p| inj.decide_write(p % 8).is_some()).collect()
        };
        assert_eq!(roll(1), roll(1), "same seed, same schedule");
        assert_ne!(roll(1), roll(2), "different seeds diverge");
        assert!(roll(1).iter().any(|&f| f), "rate 0.5 should fire sometimes");
        assert!(roll(1).iter().any(|&f| !f), "rate 0.5 should miss sometimes");
    }
}
