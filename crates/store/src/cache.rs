//! A generic process-wide single-flight object cache.
//!
//! This is the storage-layer core of the shared LOD cut cache: a sharded
//! map from a key (a canonicalized region + resolution step, in the
//! callers) to an immutable, `Arc`-shared value, with the same
//! concurrency discipline as the buffer pool in [`pager`](crate::pager):
//!
//! * **Entry state machine** — every key is *Absent* (not in the map),
//!   *Loading* (one thread is materializing it), *Warm* (resident,
//!   recently used) or *Cooling* (resident, reference bit cleared by the
//!   CLOCK hand; next sweep evicts it). A hit on a Cooling entry warms it
//!   back up.
//! * **Single-flight loading** — the first thread to miss a key becomes
//!   its leader and runs the load closure; concurrent requests for the
//!   same key wait on the shard's condvar (latch + condvar, exactly the
//!   buffer pool's in-flight protocol) and are served the leader's value.
//!   A failing or panicking leader removes its *Loading* entry through a
//!   drop guard before waking waiters, so no poisoned entry survives and
//!   nobody is stranded: waiters re-check and lead the load themselves.
//! * **Bounded weight with CLOCK eviction** — each shard carries a weight
//!   budget (the callers pass approximate byte sizes). Inserting over
//!   budget sweeps the shard's clock ring: Warm entries cool, Cooling
//!   entries are evicted. *Loading* entries are never on the ring and
//!   never evicted.
//! * **Extraction budget** — an optional token bucket refilled per tick
//!   bounds how many loads may *start* per tick, admitting queued loads
//!   in priority order of caller-declared demand (how many candidates a
//!   query resolves from the cut). Zero budget (the default) disables
//!   admission control entirely.
//!
//! Values are immutable once published: a load must be deterministic for
//! a given key, which is what lets the query layer keep results
//! bit-identical whether it hits the cache or re-extracts.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Number of cache shards — fixed (like [`POOL_SHARDS`]
/// (crate::pager::POOL_SHARDS)) so behaviour does not depend on the host.
pub const CACHE_SHARDS: usize = 8;

/// See `pager::lock_recover`: every critical section here leaves the data
/// consistent, so a panicking holder must not poison the whole cache.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Resident-entry payload plus its CLOCK reference bit: `warm == true` is
/// the *Warm* state, `warm == false` is *Cooling*.
enum Entry<V> {
    /// A leader is materializing the value; wait on the shard condvar.
    Loading,
    /// Materialized and served from memory.
    Resident { value: Arc<V>, weight: usize, warm: bool },
}

struct ShardState<K, V> {
    map: HashMap<K, Entry<V>>,
    /// Resident keys in insertion order — the CLOCK ring (Loading entries
    /// are never on it).
    ring: Vec<K>,
    hand: usize,
    /// Sum of resident weights.
    weight: usize,
}

struct CacheShard<K, V> {
    state: Mutex<ShardState<K, V>>,
    /// Wakes waiters when a load completes (or fails).
    done: Condvar,
}

/// Counter snapshot of a [`SingleFlightCache`]; cumulative since
/// construction (or the last [`SingleFlightCache::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a resident entry (including single-flight
    /// waiters served by their leader's load).
    pub hits: u64,
    /// Loads actually performed (cold keys).
    pub misses: u64,
    /// Times a thread waited for another thread's in-flight load of the
    /// same key instead of running its own.
    pub singleflight_waits: u64,
    /// Cooled entries pushed out by the CLOCK sweep.
    pub evictions: u64,
    /// Loads that returned an error (their *Loading* entry was removed —
    /// never published).
    pub failed_loads: u64,
    /// Loads that had to queue behind the per-tick extraction budget.
    pub budget_deferrals: u64,
}

/// Occupancy snapshot of a [`SingleFlightCache`], read by locking every
/// shard (gauge-scrape cost, not hot-path cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheGauges {
    /// Resident entries in the Warm state.
    pub warm: u64,
    /// Resident entries in the Cooling state (next sweep evicts them).
    pub cooling: u64,
    /// Keys currently being materialized.
    pub loading: u64,
    /// Total weight of resident entries (approximate bytes).
    pub resident_weight: u64,
}

/// What a [`SingleFlightCache::get_or_load`] returned and how.
pub struct CacheOutcome<V> {
    /// The shared value.
    pub value: Arc<V>,
    /// `true` when served without running a load (resident entry or a
    /// single-flight wait on another thread's load).
    pub hit: bool,
}

/// One queued load admission: max-heap by demand, FIFO among equals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ticket {
    demand: usize,
    seq: u64,
}

impl Ord for Ticket {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.demand.cmp(&other.demand).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Ticket {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct BudgetState {
    tick_start: Instant,
    used: usize,
    seq: u64,
    queue: BinaryHeap<Ticket>,
}

/// Token-bucket admission for loads: at most `per_tick` loads may start
/// per `tick`, admitted in descending demand order. `per_tick == 0`
/// disables the budget.
struct ExtractionBudget {
    per_tick: usize,
    tick: Duration,
    state: Mutex<BudgetState>,
    cv: Condvar,
}

impl ExtractionBudget {
    fn new(per_tick: usize, tick: Duration) -> Self {
        Self {
            per_tick,
            tick: tick.max(Duration::from_millis(1)),
            state: Mutex::new(BudgetState {
                tick_start: Instant::now(),
                used: 0,
                seq: 0,
                queue: BinaryHeap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until this load is admitted. Returns whether it had to queue
    /// (a budget deferral). Highest demand goes first within a tick;
    /// equal demand is FIFO, so admission is starvation-free as long as
    /// arrival demand is bounded.
    fn acquire(&self, demand: usize) -> bool {
        if self.per_tick == 0 {
            return false;
        }
        let mut st = lock_recover(&self.state);
        st.seq += 1;
        let me = Ticket { demand, seq: st.seq };
        st.queue.push(me);
        let mut deferred = false;
        loop {
            let now = Instant::now();
            if now.duration_since(st.tick_start) >= self.tick {
                st.tick_start = now;
                st.used = 0;
            }
            if st.used < self.per_tick && st.queue.peek() == Some(&me) {
                st.queue.pop();
                st.used += 1;
                drop(st);
                self.cv.notify_all();
                return deferred;
            }
            deferred = true;
            let elapsed = now.duration_since(st.tick_start);
            let wait = self.tick.saturating_sub(elapsed).max(Duration::from_millis(1));
            let (guard, _) = self.cv.wait_timeout(st, wait).unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }
}

/// Removes a key's *Loading* entry (waking waiters) unless disarmed, so a
/// failing — or panicking — leader can never leave a latched entry behind:
/// waiters wake, find the key Absent, and lead the load themselves.
struct LoadGuard<'c, K: Hash + Eq + Clone, V> {
    cache: &'c SingleFlightCache<K, V>,
    key: K,
    armed: bool,
}

impl<K: Hash + Eq + Clone, V> LoadGuard<'_, K, V> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl<K: Hash + Eq + Clone, V> Drop for LoadGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let shard = self.cache.shard(&self.key);
        let mut st = lock_recover(&shard.state);
        // Remove only a Loading latch — never a Resident entry another
        // (post-clear) leader may have published meanwhile.
        if matches!(st.map.get(&self.key), Some(Entry::Loading)) {
            st.map.remove(&self.key);
        }
        drop(st);
        shard.done.notify_all();
    }
}

/// The cache. `K` is the canonical identity of a materialized object
/// (loads must be deterministic per key); `V` is immutable once published.
pub struct SingleFlightCache<K, V> {
    shards: Vec<CacheShard<K, V>>,
    /// Weight budget per shard (total capacity split evenly).
    shard_capacity: usize,
    budget: ExtractionBudget,
    hits: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
    evictions: AtomicU64,
    failed_loads: AtomicU64,
    deferrals: AtomicU64,
    in_flight: AtomicU64,
}

impl<K: Hash + Eq + Clone, V> SingleFlightCache<K, V> {
    /// A cache bounded by `capacity_weight` (split over [`CACHE_SHARDS`]),
    /// admitting at most `budget_per_tick` loads per `tick`
    /// (`0` = unlimited).
    pub fn new(capacity_weight: usize, budget_per_tick: usize, tick: Duration) -> Self {
        let shard_capacity = (capacity_weight / CACHE_SHARDS).max(1);
        let shards = (0..CACHE_SHARDS)
            .map(|_| CacheShard {
                state: Mutex::new(ShardState {
                    map: HashMap::new(),
                    ring: Vec::new(),
                    hand: 0,
                    weight: 0,
                }),
                done: Condvar::new(),
            })
            .collect();
        Self {
            shards,
            shard_capacity,
            budget: ExtractionBudget::new(budget_per_tick, tick),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            failed_loads: AtomicU64::new(0),
            deferrals: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &CacheShard<K, V> {
        // A fixed-key hasher (not the per-map randomized one) so shard
        // placement is stable across runs and machines.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Fetch `key`, running `load` under single-flight if it is Absent.
    /// `load` returns the value and its weight; it runs with no cache
    /// locks held. `demand` prioritizes budget admission (see
    /// [`ExtractionBudget`]); pass the number of consumers this load
    /// unblocks. On `Err` the latch is released and nothing is published.
    pub fn get_or_load<E>(
        &self,
        key: K,
        demand: usize,
        load: impl FnOnce() -> Result<(V, usize), E>,
    ) -> Result<CacheOutcome<V>, E> {
        let shard = self.shard(&key);
        let mut counted_wait = false;
        loop {
            let mut st = lock_recover(&shard.state);
            match st.map.get_mut(&key) {
                Some(Entry::Resident { value, warm, .. }) => {
                    *warm = true; // Cooling -> Warm (and Warm stays Warm)
                    self.hits.fetch_add(1, Relaxed);
                    return Ok(CacheOutcome { value: value.clone(), hit: true });
                }
                Some(Entry::Loading) => {
                    if !counted_wait {
                        self.waits.fetch_add(1, Relaxed);
                        counted_wait = true;
                    }
                    // Bounded wait so a lost notification degrades to a
                    // re-check instead of a hang; state is re-examined on
                    // every wake-up either way.
                    let (guard, _) = shard
                        .done
                        .wait_timeout(st, Duration::from_millis(50))
                        .unwrap_or_else(|e| e.into_inner());
                    drop(guard);
                    continue;
                }
                None => {
                    st.map.insert(key.clone(), Entry::Loading);
                    break;
                }
            }
        }
        // We lead the load. The guard unlatches on every exit path that
        // does not publish (error or panic).
        if self.budget.acquire(demand) {
            self.deferrals.fetch_add(1, Relaxed);
        }
        let guard = LoadGuard { cache: self, key: key.clone(), armed: true };
        self.in_flight.fetch_add(1, Relaxed);
        let result = load();
        self.in_flight.fetch_sub(1, Relaxed);
        match result {
            Ok((value, weight)) => {
                let value = Arc::new(value);
                let mut st = lock_recover(&shard.state);
                self.evict_for(&mut st, weight);
                st.map.insert(
                    key.clone(),
                    Entry::Resident { value: value.clone(), weight, warm: true },
                );
                st.ring.push(key);
                st.weight += weight;
                drop(st);
                shard.done.notify_all();
                guard.disarm();
                self.misses.fetch_add(1, Relaxed);
                Ok(CacheOutcome { value, hit: false })
            }
            Err(e) => {
                self.failed_loads.fetch_add(1, Relaxed);
                drop(guard); // unlatch + notify: waiters re-claim
                Err(e)
            }
        }
    }

    /// CLOCK sweep making room for `incoming` weight: Warm entries cool,
    /// Cooling entries leave. Terminates because every full revolution
    /// either evicts an entry or cools at least one Warm entry, and the
    /// ring holds only resident entries.
    fn evict_for(&self, st: &mut ShardState<K, V>, incoming: usize) {
        while st.weight + incoming > self.shard_capacity && !st.ring.is_empty() {
            if st.hand >= st.ring.len() {
                st.hand = 0;
            }
            let key = st.ring[st.hand].clone();
            match st.map.get_mut(&key) {
                Some(Entry::Resident { warm: warm @ true, .. }) => {
                    *warm = false; // Warm -> Cooling
                    st.hand += 1;
                }
                Some(Entry::Resident { weight, .. }) => {
                    let w = *weight;
                    st.map.remove(&key);
                    st.ring.remove(st.hand);
                    st.weight -= w;
                    self.evictions.fetch_add(1, Relaxed);
                }
                // Ring slots always reference resident entries; a stale
                // slot would be a bookkeeping bug — drop it defensively.
                _ => {
                    st.ring.remove(st.hand);
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            singleflight_waits: self.waits.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            failed_loads: self.failed_loads.load(Relaxed),
            budget_deferrals: self.deferrals.load(Relaxed),
        }
    }

    /// Zero the counters (occupancy is untouched).
    pub fn reset_stats(&self) {
        self.hits.store(0, Relaxed);
        self.misses.store(0, Relaxed);
        self.waits.store(0, Relaxed);
        self.evictions.store(0, Relaxed);
        self.failed_loads.store(0, Relaxed);
        self.deferrals.store(0, Relaxed);
    }

    /// Loads currently running (a gauge; moves fast under load).
    pub fn loads_in_flight(&self) -> u64 {
        self.in_flight.load(Relaxed)
    }

    /// Occupancy snapshot across all shards.
    pub fn gauges(&self) -> CacheGauges {
        let mut g = CacheGauges::default();
        for shard in &self.shards {
            let st = lock_recover(&shard.state);
            for entry in st.map.values() {
                match entry {
                    Entry::Loading => g.loading += 1,
                    Entry::Resident { warm: true, weight, .. } => {
                        g.warm += 1;
                        g.resident_weight += *weight as u64;
                    }
                    Entry::Resident { weight, .. } => {
                        g.cooling += 1;
                        g.resident_weight += *weight as u64;
                    }
                }
            }
        }
        g
    }

    /// Resident entries (Warm + Cooling).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let st = lock_recover(&s.state);
                st.ring.len()
            })
            .sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every resident entry. In-flight loads are left latched — their
    /// leaders publish into the emptied shard as usual — so clearing
    /// during traffic cannot strand a waiter or double-lead a key.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut st = lock_recover(&shard.state);
            st.map.retain(|_, e| matches!(e, Entry::Loading));
            st.ring.clear();
            st.hand = 0;
            st.weight = 0;
        }
    }

    /// Total weight capacity.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> SingleFlightCache<u64, u64> {
        SingleFlightCache::new(capacity, 0, Duration::from_millis(10))
    }

    #[test]
    fn miss_then_hit() {
        let c = cache(1024);
        let out = c.get_or_load::<()>(7, 1, || Ok((70, 8))).unwrap();
        assert!(!out.hit);
        assert_eq!(*out.value, 70);
        let out = c.get_or_load::<()>(7, 1, || panic!("must not reload")).unwrap();
        assert!(out.hit);
        assert_eq!(*out.value, 70);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn failed_load_leaves_no_entry() {
        let c = cache(1024);
        let r = c.get_or_load(3, 1, || Err::<(u64, usize), &str>("boom"));
        assert_eq!(r.err(), Some("boom"));
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().failed_loads, 1);
        // The key is loadable again — no poisoned latch.
        let out = c.get_or_load::<()>(3, 1, || Ok((30, 8))).unwrap();
        assert!(!out.hit);
        assert_eq!(c.gauges().loading, 0);
    }

    #[test]
    fn eviction_keeps_weight_bounded() {
        // One shard's worth of budget: capacity 8 * CACHE_SHARDS with
        // weight-8 entries means each shard holds at most one entry.
        let c = cache(8 * CACHE_SHARDS);
        for k in 0..64u64 {
            let _ = c.get_or_load::<()>(k, 1, || Ok((k, 8))).unwrap();
        }
        let g = c.gauges();
        assert!(g.resident_weight <= c.capacity() as u64, "{g:?}");
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn clock_prefers_cooling_victims() {
        // Capacity for exactly two weight-1 entries per shard; keys chosen
        // on one shard via probing.
        let c: SingleFlightCache<u64, u64> =
            SingleFlightCache::new(2 * CACHE_SHARDS, 0, Duration::from_millis(10));
        // Find three keys on the same shard.
        let mut same = Vec::new();
        let mut h0 = None;
        for k in 0..1024u64 {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            let s = h.finish() % CACHE_SHARDS as u64;
            match h0 {
                None => {
                    h0 = Some(s);
                    same.push(k);
                }
                Some(s0) if s == s0 => same.push(k),
                _ => {}
            }
            if same.len() == 4 {
                break;
            }
        }
        let (a, b, x, y) = (same[0], same[1], same[2], same[3]);
        let _ = c.get_or_load::<()>(a, 1, || Ok((a, 1))).unwrap();
        let _ = c.get_or_load::<()>(b, 1, || Ok((b, 1))).unwrap();
        // Inserting `x` over budget sweeps: both Warm entries cool, the
        // hand wraps and evicts `a`; `b` is left *Cooling*, `x` Warm.
        let _ = c.get_or_load::<()>(x, 1, || Ok((x, 1))).unwrap();
        // Inserting `y` must now take the Cooling `b`, not the Warm `x`.
        let _ = c.get_or_load::<()>(y, 1, || Ok((y, 1))).unwrap();
        let out = c.get_or_load::<()>(x, 1, || Ok((999, 1))).unwrap();
        assert_eq!(*out.value, x, "warm entry must survive the sweep");
        let out = c.get_or_load::<()>(b, 1, || Ok((999, 1))).unwrap();
        assert_eq!(*out.value, 999, "cooling entry must have been evicted");
    }

    #[test]
    fn single_flight_under_threads() {
        let c = Arc::new(cache(4096));
        let loads = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let loads = Arc::clone(&loads);
                s.spawn(move || {
                    let out = c
                        .get_or_load::<()>(42, 1, || {
                            loads.fetch_add(1, Relaxed);
                            // Stretch the flight window so peers really wait.
                            std::thread::sleep(Duration::from_millis(30));
                            Ok((420, 8))
                        })
                        .unwrap();
                    assert_eq!(*out.value, 420);
                });
            }
        });
        assert_eq!(loads.load(Relaxed), 1, "exactly one load across 4 threads");
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn budget_admits_in_demand_order() {
        // Budget 1/tick with a long tick: the first load takes the slot,
        // the rest queue; the highest-demand queued load is admitted next
        // tick. We only assert that deferrals happen and everyone finishes.
        let c: Arc<SingleFlightCache<u64, u64>> =
            Arc::new(SingleFlightCache::new(4096, 1, Duration::from_millis(5)));
        std::thread::scope(|s| {
            for k in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let out = c.get_or_load::<()>(k, k as usize, || Ok((k, 8))).unwrap();
                    assert_eq!(*out.value, k);
                });
            }
        });
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn clear_empties_residents() {
        let c = cache(4096);
        for k in 0..5u64 {
            let _ = c.get_or_load::<()>(k, 1, || Ok((k, 8))).unwrap();
        }
        assert_eq!(c.len(), 5);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.gauges().resident_weight, 0);
        // Reload works.
        let out = c.get_or_load::<()>(1, 1, || Ok((11, 8))).unwrap();
        assert!(!out.hit);
        assert_eq!(*out.value, 11);
    }
}
