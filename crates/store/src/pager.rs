//! The page store and its LRU buffer pool.
//!
//! A [`Pager`] owns every page of the simulated database. Reads go through
//! a fixed-capacity LRU buffer pool: a miss counts as one *physical read*
//! (the paper's "disk pages accessed"), a hit is free. Writes happen at
//! structure-build time and are tracked separately — the evaluation only
//! ever measures read traffic of queries.
//!
//! The pager is internally synchronised (a single `parking_lot::Mutex`);
//! query processing is single-threaded in the paper, so lock contention is
//! not a concern, but benches may build scenes on multiple threads.

use crate::page::{PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Read/write traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer-pool misses: pages fetched from "disk".
    pub physical_reads: u64,
    /// All page read requests, hit or miss.
    pub logical_reads: u64,
    /// Pages written (build time).
    pub writes: u64,
}

impl IoStats {
    /// Buffer-pool hits.
    pub fn hits(&self) -> u64 {
        self.logical_reads - self.physical_reads
    }
}

#[derive(Debug)]
struct PagerInner {
    pages: Vec<Box<[u8]>>,
    /// page -> LRU stamp; presence means cached.
    pool: HashMap<u64, u64>,
    pool_capacity: usize,
    clock: u64,
    stats: IoStats,
}

/// The simulated disk: a page allocator, page contents, buffer pool, and
/// I/O statistics.
#[derive(Debug)]
pub struct Pager {
    inner: Mutex<PagerInner>,
}

impl Pager {
    /// Create a pager whose buffer pool holds `pool_pages` pages.
    ///
    /// The paper's machine had 1.3 GB of RAM but the datasets are orders of
    /// magnitude larger; a pool of a few hundred pages reproduces the
    /// "mostly cold" regime the page-access numbers imply.
    pub fn new(pool_pages: usize) -> Self {
        Self {
            inner: Mutex::new(PagerInner {
                pages: Vec::new(),
                pool: HashMap::new(),
                pool_capacity: pool_pages.max(1),
                clock: 0,
                stats: IoStats::default(),
            }),
        }
    }

    /// Allocate a fresh zeroed page.
    pub fn alloc(&self) -> PageId {
        let mut g = self.inner.lock();
        g.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        PageId(g.pages.len() as u64 - 1)
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Overwrite bytes within a page. Counts one write. Not routed through
    /// the buffer pool: structures are built once, then queried.
    pub fn write(&self, id: PageId, offset: usize, bytes: &[u8]) {
        let mut g = self.inner.lock();
        assert!(offset + bytes.len() <= PAGE_SIZE, "write past page end");
        g.pages[id.0 as usize][offset..offset + bytes.len()].copy_from_slice(bytes);
        g.stats.writes += 1;
    }

    /// Read a page through the buffer pool, handing its bytes to `f`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        let mut g = self.inner.lock();
        g.stats.logical_reads += 1;
        g.clock += 1;
        let clock = g.clock;
        if g.pool.insert(id.0, clock).is_none() {
            g.stats.physical_reads += 1;
            if g.pool.len() > g.pool_capacity {
                // Evict the least-recently-used page (linear scan; pools are
                // small and misses already model a ~ms disk access).
                if let Some((&victim, _)) = g.pool.iter().min_by_key(|(_, &stamp)| stamp) {
                    if victim != id.0 {
                        g.pool.remove(&victim);
                    }
                }
            }
        }
        f(&g.pages[id.0 as usize])
    }

    /// Copy a whole page out (convenience for tests).
    pub fn read_page(&self, id: PageId) -> Vec<u8> {
        self.with_page(id, |b| b.to_vec())
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Zero the counters (e.g. before timing a query). The pool contents
    /// are kept: a warm cache across queries is realistic.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = IoStats::default();
    }

    /// Drop every cached page (cold-start a query).
    pub fn clear_pool(&self) {
        self.inner.lock().pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_roundtrip() {
        let p = Pager::new(8);
        let a = p.alloc();
        let b = p.alloc();
        assert_ne!(a, b);
        p.write(a, 100, b"hello");
        p.write(b, 0, b"world");
        assert_eq!(&p.read_page(a)[100..105], b"hello");
        assert_eq!(&p.read_page(b)[..5], b"world");
    }

    #[test]
    fn hits_are_free_misses_are_charged() {
        let p = Pager::new(4);
        let ids: Vec<_> = (0..3).map(|_| p.alloc()).collect();
        p.reset_stats();
        for &id in &ids {
            p.with_page(id, |_| ());
        }
        assert_eq!(p.stats().physical_reads, 3);
        // Re-reading cached pages adds logical but not physical reads.
        for &id in &ids {
            p.with_page(id, |_| ());
        }
        let s = p.stats();
        assert_eq!(s.physical_reads, 3);
        assert_eq!(s.logical_reads, 6);
        assert_eq!(s.hits(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        let p = Pager::new(2);
        let a = p.alloc();
        let b = p.alloc();
        let c = p.alloc();
        p.reset_stats();
        p.with_page(a, |_| ()); // miss
        p.with_page(b, |_| ()); // miss
        p.with_page(a, |_| ()); // hit, refreshes a
        p.with_page(c, |_| ()); // miss, evicts b (LRU)
        p.with_page(a, |_| ()); // hit (still cached)
        p.with_page(b, |_| ()); // miss (was evicted)
        assert_eq!(p.stats().physical_reads, 4);
    }

    #[test]
    fn clear_pool_forces_cold_reads() {
        let p = Pager::new(8);
        let a = p.alloc();
        p.with_page(a, |_| ());
        p.clear_pool();
        p.reset_stats();
        p.with_page(a, |_| ());
        assert_eq!(p.stats().physical_reads, 1);
    }

    #[test]
    #[should_panic(expected = "past page end")]
    fn write_past_end_panics() {
        let p = Pager::new(1);
        let a = p.alloc();
        p.write(a, PAGE_SIZE - 2, b"abc");
    }
}
