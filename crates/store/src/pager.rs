//! The page store and its concurrent buffer pool.
//!
//! A [`Pager`] owns every page of the simulated database. Reads go through
//! a fixed-capacity buffer pool: a miss counts as one *physical read*
//! (the paper's "disk pages accessed"), a hit is free. Writes happen at
//! structure-build time and are tracked separately — the evaluation only
//! ever measures read traffic of queries.
//!
//! Every page carries a [`StructureTag`] assigned at allocation time (see
//! [`Pager::tag_scope`]), so read traffic is attributable per on-disk
//! structure — the DMTM B+-tree, the MSDN heap files, and so on — both
//! globally and per query (reset the stats between queries).
//!
//! # Concurrency architecture
//!
//! The pool is built for parallel query batches (`Mr3Engine::query_batch`):
//!
//! * **Sharding** — the pool is split into [`POOL_SHARDS`] CLOCK rings,
//!   selected by `page_id % shards`. Hits on different shards never touch
//!   the same lock. The shard count is a fixed constant (not derived from
//!   the host CPU count) so per-query eviction behaviour — and therefore
//!   the paper's page-access metric — is deterministic across machines.
//! * **O(1) CLOCK eviction** — each shard keeps a ring of (page, ref-bit)
//!   slots plus a page→slot map. A hit sets the ref bit; a full insert
//!   sweeps the hand, clearing ref bits until it finds a victim. Eviction
//!   happens *before* the insert reuses the victim's slot, so a shard
//!   never exceeds its capacity (asserted in debug builds).
//! * **Single-flight misses** — a per-page in-flight latch. The first
//!   thread to miss a page becomes its *leader*: it pays the physical read
//!   and the simulated stall. Threads that miss the same page while the
//!   read is in flight wait on a condvar instead of issuing their own read
//!   (`singleflight_waits`), and on wake-up count a free hit
//!   (`coalesced_misses`). Misses on *other* pages proceed in parallel.
//! * **Batched reads** — [`Pager::with_pages`] takes a sorted page set,
//!   claims every miss up front and pays **one** stall for the whole
//!   batch, modelling overlapped disk requests (the per-page
//!   `physical_reads` are still charged individually, so the page-access
//!   metric is unchanged; only wall-clock time improves).
//!
//! # Failure model
//!
//! The physical read path returns [`StoreResult`] instead of panicking:
//!
//! * every page keeps an FNV-1a checksum in a pager-maintained frame
//!   sidecar, recomputed on write and verified on every physical read —
//!   corrupt bytes are never admitted to the pool or served to a caller;
//! * an optional, seeded [`FaultInjector`] decides per read *attempt*
//!   whether it faults (transient, permanent, bit flip, latency, panic);
//! * transient faults (including checksum failures from injected bit
//!   flips) are retried with bounded backoff per [`RetryPolicy`]; when
//!   the budget is exhausted a typed [`StoreError`] surfaces;
//! * a failed or panicking single-flight *leader* releases its claim
//!   without publishing the page (the lease is a drop guard), so waiters
//!   wake, re-run the claim, and either lead the read themselves or
//!   surface their own error — they are never stranded.
//!
//! Failed attempts are **not** physical reads: the paper's page-access
//! metric counts only successfully served pages, so a fault-free and a
//! transiently-faulty run report identical page counts. Retry traffic is
//! tracked separately in [`FaultStats`].
//!
//! Metric parity: on a single thread the flight registry is always empty
//! and the counters reduce exactly to the classic hit/miss bookkeeping, so
//! per-query `logical_reads` / `physical_reads` stay deterministic and
//! comparable across runs.

use crate::error::{StoreError, StoreResult};
use crate::fault::{FaultInjector, FaultKind, FaultStats, RetryPolicy};
use crate::page::{PageId, PAGE_SIZE};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Number of buffer-pool shards (capped by the pool capacity so every
/// shard holds at least one page). A fixed constant keeps eviction — and
/// with it the paper's disk-page metric — machine-independent.
pub const POOL_SHARDS: usize = 8;

/// FNV-1a 64-bit checksum over a page's bytes. Dependency-free, fast
/// enough for 8 KiB frames, and sensitive to any single-byte change —
/// exactly what the torn/bit-rot detection here needs.
pub fn page_checksum(bytes: &[u8]) -> u64 {
    fnv1a(bytes, usize::MAX)
}

/// FNV-1a with one byte XOR-flipped at `flip` (out-of-range = no flip):
/// computes the checksum a bit-flipped wire read would observe without
/// copying the page.
fn fnv1a(bytes: &[u8], flip: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, &b) in bytes.iter().enumerate() {
        let b = if i == flip { b ^ 0x01 } else { b };
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Which on-disk structure a page belongs to. Assigned when the page is
/// allocated (inside a [`Pager::tag_scope`]) and fixed for the page's
/// lifetime; all subsequent traffic on the page is attributed to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum StructureTag {
    /// The multi-resolution terrain model's B+-tree of front payloads.
    Dmtm,
    /// The surface-distance network's per-(axis, level) heap files.
    Msdn,
    /// A generic heap file not owned by a named structure.
    Heap,
    /// The Dxy R-tree (kept for attribution symmetry: the in-memory
    /// R-tree counts its own node accesses rather than paging through
    /// the pool, but traces report it under this tag).
    Rtree,
    /// The dynamic object heap — pages mutated by the write path and
    /// covered by the WAL.
    Objects,
    /// Pages allocated outside any tag scope.
    #[default]
    Other,
}

impl StructureTag {
    /// Number of distinct tags (array-index domain).
    pub const COUNT: usize = 6;

    /// All tags, in index order.
    pub const ALL: [StructureTag; Self::COUNT] = [
        StructureTag::Dmtm,
        StructureTag::Msdn,
        StructureTag::Heap,
        StructureTag::Rtree,
        StructureTag::Objects,
        StructureTag::Other,
    ];

    /// Stable lower-case name (used as the `structure` field of trace
    /// `io` events).
    pub fn name(self) -> &'static str {
        match self {
            StructureTag::Dmtm => "dmtm",
            StructureTag::Msdn => "msdn",
            StructureTag::Heap => "heap",
            StructureTag::Rtree => "rtree",
            StructureTag::Objects => "objects",
            StructureTag::Other => "other",
        }
    }

    fn idx(self) -> usize {
        match self {
            StructureTag::Dmtm => 0,
            StructureTag::Msdn => 1,
            StructureTag::Heap => 2,
            StructureTag::Rtree => 3,
            StructureTag::Objects => 4,
            StructureTag::Other => 5,
        }
    }

    /// Inverse of [`idx`](Self::idx) — decodes the tag byte of a WAL
    /// `Alloc` record at recovery. Unknown bytes map to `Other`.
    pub fn from_idx(i: u8) -> StructureTag {
        *Self::ALL.get(i as usize).unwrap_or(&StructureTag::Other)
    }

    /// The tag byte a WAL `Alloc` record carries.
    pub fn as_idx(self) -> u8 {
        self.idx() as u8
    }
}

/// Read/write traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer-pool misses: pages fetched from "disk".
    pub physical_reads: u64,
    /// All page read requests, hit or miss.
    pub logical_reads: u64,
    /// Pages written (build time).
    pub writes: u64,
}

impl IoStats {
    /// Buffer-pool hits.
    pub fn hits(&self) -> u64 {
        self.logical_reads - self.physical_reads
    }
}

/// Counters describing how much the concurrent pool machinery did since
/// the last [`Pager::reset_stats`]. All zero on a single thread outside
/// of [`Pager::with_pages`] batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcurrencyStats {
    /// Times a thread waited for another thread's in-flight read of the
    /// same page instead of issuing its own.
    pub singleflight_waits: u64,
    /// Misses that did not pay their own stall: single-flight waiters
    /// served by the leader's read, plus batch members beyond the first
    /// in a [`Pager::with_pages`] call.
    pub coalesced_misses: u64,
    /// Shard-lock acquisitions that found the lock held (a `try_lock`
    /// that would block). Measures hit-path contention.
    pub shard_contention: u64,
}

/// Page contents and allocation metadata. Mutated only at build time
/// (alloc / write / tag scopes); queries take the read side.
#[derive(Debug)]
struct PageStore {
    pages: Vec<Box<[u8]>>,
    /// FNV-1a checksum per page (the pager-maintained frame sidecar),
    /// parallel to `pages`. Recomputed on write, verified on every
    /// physical read.
    sums: Vec<u64>,
    /// Structure tag per page, parallel to `pages`.
    tags: Vec<StructureTag>,
    /// Tag applied to new allocations (see [`Pager::tag_scope`]).
    alloc_tag: StructureTag,
    /// The durable page image — what a crash preserves. `None` = the page
    /// was never flushed. Each entry is `(bytes, checksum)` as of the last
    /// flush; a torn flush leaves the checksum disagreeing with the
    /// bytes, exactly like a real torn sector.
    durable: Vec<Option<(Box<[u8]>, u64)>>,
    /// Dirty pages: volatile bytes differ from the durable image. Maps
    /// page id → LSN of the WAL record covering its latest logged write
    /// (the flush-ordering bound).
    dirty: HashMap<u64, u64>,
}

/// One CLOCK ring: `slots` holds (page, referenced) pairs, `map` finds a
/// page's slot in O(1). The ring grows up to `cap` slots and then evicts.
#[derive(Debug)]
struct ShardPool {
    cap: usize,
    slots: Vec<(u64, bool)>,
    map: HashMap<u64, usize>,
    hand: usize,
}

impl ShardPool {
    fn new(cap: usize) -> Self {
        debug_assert!(cap >= 1);
        Self { cap, slots: Vec::with_capacity(cap), map: HashMap::new(), hand: 0 }
    }

    /// Mark `page` referenced if cached. Returns whether it was a hit.
    fn touch(&mut self, page: u64) -> bool {
        if let Some(&slot) = self.map.get(&page) {
            self.slots[slot].1 = true;
            true
        } else {
            false
        }
    }

    /// Insert `page`, evicting first if the shard is at capacity, and
    /// return the victim (if any). The pool never exceeds `cap`.
    fn insert(&mut self, page: u64) -> Option<u64> {
        if self.touch(page) {
            return None; // already cached (racing leader completed first)
        }
        let victim = if self.slots.len() < self.cap {
            self.map.insert(page, self.slots.len());
            self.slots.push((page, true));
            None
        } else {
            // CLOCK sweep: clear ref bits until an unreferenced victim
            // turns up (terminates within two passes), then reuse its slot.
            loop {
                let (cached, referenced) = &mut self.slots[self.hand];
                if *referenced {
                    *referenced = false;
                    self.hand = (self.hand + 1) % self.slots.len();
                } else {
                    let victim = *cached;
                    self.map.remove(&victim);
                    self.slots[self.hand] = (page, true);
                    self.map.insert(page, self.hand);
                    self.hand = (self.hand + 1) % self.slots.len();
                    break Some(victim);
                }
            }
        };
        debug_assert!(
            self.map.len() <= self.cap && self.slots.len() <= self.cap,
            "shard pool exceeded its capacity"
        );
        victim
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.map.clear();
        self.hand = 0;
    }
}

#[derive(Debug)]
struct Shard {
    pool: Mutex<ShardPool>,
    /// Lock acquisitions that would have blocked.
    contention: AtomicU64,
}

/// Per-tag atomic counter block (global totals are derived by summing).
#[derive(Debug, Default)]
struct TagCounters {
    logical: [AtomicU64; StructureTag::COUNT],
    physical: [AtomicU64; StructureTag::COUNT],
    writes: [AtomicU64; StructureTag::COUNT],
    evictions: [AtomicU64; StructureTag::COUNT],
}

/// Atomic backing of [`FaultStats`].
#[derive(Debug, Default)]
struct FaultCounters {
    injected: AtomicU64,
    retries: AtomicU64,
    exhausted: AtomicU64,
    checksum: AtomicU64,
    permanent: AtomicU64,
}

/// The simulated disk: a page allocator, page contents, a sharded
/// single-flight buffer pool, and I/O statistics.
#[derive(Debug)]
pub struct Pager {
    store: RwLock<PageStore>,
    shards: Vec<Shard>,
    /// Pages with a read in flight. Guarded by its own mutex; the condvar
    /// wakes waiters when any in-flight read completes. Lock order: the
    /// flight mutex and a shard lock are never held at the same time.
    flight: Mutex<HashSet<u64>>,
    flight_done: Condvar,
    counters: TagCounters,
    singleflight_waits: AtomicU64,
    coalesced_misses: AtomicU64,
    /// Wall-clock penalty per physical read, in nanoseconds (zero by
    /// default). Slept with *no* pager locks held so concurrent reads
    /// overlap their stalls — the I/O-bound regime the paper's disk
    /// numbers imply.
    read_stall_ns: AtomicU64,
    /// Cumulative wall-clock nanoseconds threads spent stalled in this
    /// pager: simulated disk stalls, injected read latency, retry
    /// backoff, and single-flight waits. Monotonic over the pager's
    /// lifetime (like the fault counters, deliberately *not* cleared by
    /// [`Pager::reset_stats`]), so callers attribute stall time to a
    /// window by differencing [`Pager::stall_ns`] around it.
    stall_ns: AtomicU64,
    /// Optional deterministic fault source, consulted per read attempt.
    fault: RwLock<Option<FaultInjector>>,
    /// Retry budget for transient faults.
    retry: Mutex<RetryPolicy>,
    fault_counters: FaultCounters,
    /// Highest WAL commit LSN known durable (set by
    /// [`Pager::observe_wal_lsn`]) — the flush-ordering bound: a dirty
    /// page may be flushed only once the commit covering its last logged
    /// write is at or below this.
    wal_commit_lsn: AtomicU64,
    /// Dirty pages flushed to the durable image (the
    /// `sknn_wal_flushed_pages_total` metric).
    flushed_pages: AtomicU64,
}

/// Recover a mutex guard even when a holder panicked: every critical
/// section in this module leaves the guarded data consistent at all times
/// (single field updates), so lock poisoning carries no information here
/// and must not take the whole pager down with the panicking thread.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Pager {
    fn store_read(&self) -> RwLockReadGuard<'_, PageStore> {
        self.store.read().unwrap_or_else(|e| e.into_inner())
    }

    fn store_write(&self) -> RwLockWriteGuard<'_, PageStore> {
        self.store.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Restores the pager's allocation tag when dropped; see
/// [`Pager::tag_scope`].
#[derive(Debug)]
pub struct TagScope<'p> {
    pager: &'p Pager,
    previous: StructureTag,
}

impl Drop for TagScope<'_> {
    fn drop(&mut self) {
        self.pager.store_write().alloc_tag = self.previous;
    }
}

/// Removes a page from the flight registry (waking waiters) when dropped,
/// so a failing — or panicking — leader cannot strand its waiters on the
/// condvar: they wake, find the page absent, and re-run the claim.
struct FlightLease<'p> {
    pager: &'p Pager,
    page: u64,
}

impl Drop for FlightLease<'_> {
    fn drop(&mut self) {
        let mut flight = lock_recover(&self.pager.flight);
        flight.remove(&self.page);
        drop(flight);
        self.pager.flight_done.notify_all();
    }
}

/// Outcome of a [`Pager::claim_flight`] attempt.
enum FlightClaim<'p> {
    /// We won the claim: pay the physical read, then drop the lease.
    Led(FlightLease<'p>),
    /// Another thread already holds the page's claim — wait for its read
    /// to complete instead of issuing our own.
    Lost,
    /// The page became resident while we were claiming; nothing to do.
    Resident,
}

impl Pager {
    /// Create a pager whose buffer pool holds `pool_pages` pages, split
    /// over [`POOL_SHARDS`] shards (fewer if the pool is tiny).
    ///
    /// The paper's machine had 1.3 GB of RAM but the datasets are orders of
    /// magnitude larger; a pool of a few hundred pages reproduces the
    /// "mostly cold" regime the page-access numbers imply.
    pub fn new(pool_pages: usize) -> Self {
        Self::with_shards(pool_pages, POOL_SHARDS)
    }

    /// Like [`Pager::new`] but with an explicit shard count (capped by the
    /// pool capacity; mainly for tests that pin eviction behaviour).
    pub fn with_shards(pool_pages: usize, shards: usize) -> Self {
        let capacity = pool_pages.max(1);
        let shards = shards.clamp(1, capacity);
        // Split the capacity so the shard capacities sum exactly to the
        // pool capacity and every shard holds at least one page.
        let (base, extra) = (capacity / shards, capacity % shards);
        let shards = (0..shards)
            .map(|i| Shard {
                pool: Mutex::new(ShardPool::new(base + usize::from(i < extra))),
                contention: AtomicU64::new(0),
            })
            .collect();
        Self {
            store: RwLock::new(PageStore {
                pages: Vec::new(),
                sums: Vec::new(),
                tags: Vec::new(),
                alloc_tag: StructureTag::Other,
                durable: Vec::new(),
                dirty: HashMap::new(),
            }),
            shards,
            flight: Mutex::new(HashSet::new()),
            flight_done: Condvar::new(),
            counters: TagCounters::default(),
            singleflight_waits: AtomicU64::new(0),
            coalesced_misses: AtomicU64::new(0),
            read_stall_ns: AtomicU64::new(0),
            stall_ns: AtomicU64::new(0),
            fault: RwLock::new(None),
            retry: Mutex::new(RetryPolicy::default()),
            fault_counters: FaultCounters::default(),
            wal_commit_lsn: AtomicU64::new(0),
            flushed_pages: AtomicU64::new(0),
        }
    }

    /// Make every buffer-pool miss cost `stall` of real wall-clock time,
    /// simulating the seek+transfer latency of the disk the paper models.
    /// The sleep happens with no pager locks held, so reads on other
    /// threads (and their stalls) overlap exactly as overlapping disk
    /// requests would. `Duration::ZERO` (the default) disables it.
    pub fn set_read_stall(&self, stall: Duration) {
        self.read_stall_ns.store(stall.as_nanos().min(u128::from(u64::MAX)) as u64, Relaxed);
    }

    fn read_stall(&self) -> Duration {
        Duration::from_nanos(self.read_stall_ns.load(Relaxed))
    }

    /// Add a stalled wall-clock interval to the cumulative stall counter.
    fn charge_stall(&self, d: Duration) {
        self.stall_ns.fetch_add(d.as_nanos().min(u128::from(u64::MAX)) as u64, Relaxed);
    }

    /// Cumulative wall-clock nanoseconds spent stalled in the pager —
    /// simulated disk stalls, injected latency, retry backoff, and
    /// single-flight waits — since construction. Monotonic: a per-query
    /// [`Pager::reset_stats`] does not clear it, so a serving batch
    /// attributes its stall share by differencing around the engine call.
    pub fn stall_ns(&self) -> u64 {
        self.stall_ns.load(Relaxed)
    }

    /// Install (or with `None` remove) the deterministic fault source
    /// consulted on every physical read attempt.
    pub fn set_fault_injector(&self, injector: Option<FaultInjector>) {
        *self.fault.write().unwrap_or_else(|e| e.into_inner()) = injector;
    }

    /// Set the retry budget for transient read faults.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *lock_recover(&self.retry) = policy;
    }

    /// The retry budget in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        *lock_recover(&self.retry)
    }

    /// Fault and retry counters, cumulative since construction (a
    /// per-query [`Pager::reset_stats`] does not clear them).
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            injected: self.fault_counters.injected.load(Relaxed),
            retries: self.fault_counters.retries.load(Relaxed),
            exhausted: self.fault_counters.exhausted.load(Relaxed),
            checksum_failures: self.fault_counters.checksum.load(Relaxed),
            permanent_failures: self.fault_counters.permanent.load(Relaxed),
        }
    }

    /// Attribute allocations to `tag` until the returned guard is dropped
    /// (the previous tag is then restored, so scopes nest):
    ///
    /// ```
    /// # use sknn_store::{Pager, StructureTag};
    /// let pager = Pager::new(8);
    /// let dmtm_page = {
    ///     let _scope = pager.tag_scope(StructureTag::Dmtm);
    ///     pager.alloc() // tagged Dmtm
    /// };
    /// assert_eq!(pager.tag_of(dmtm_page), StructureTag::Dmtm);
    /// ```
    pub fn tag_scope(&self, tag: StructureTag) -> TagScope<'_> {
        let previous = std::mem::replace(&mut self.store_write().alloc_tag, tag);
        TagScope { pager: self, previous }
    }

    /// Allocate a fresh zeroed page, tagged with the active scope's tag.
    pub fn alloc(&self) -> PageId {
        let mut store = self.store_write();
        let tag = store.alloc_tag;
        let page: Box<[u8]> = vec![0u8; PAGE_SIZE].into_boxed_slice();
        store.sums.push(page_checksum(&page));
        store.pages.push(page);
        store.tags.push(tag);
        store.durable.push(None);
        PageId(store.pages.len() as u64 - 1)
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.store_read().pages.len()
    }

    /// The structure a page was allocated under.
    pub fn tag_of(&self, id: PageId) -> StructureTag {
        self.store_read().tags[id.0 as usize]
    }

    fn tag_idx(&self, page: u64) -> usize {
        self.store_read().tags[page as usize].idx()
    }

    /// Overwrite bytes within a page. Counts one write and refreshes the
    /// page's checksum. Not routed through the buffer pool: structures
    /// are built once, then queried.
    pub fn write(&self, id: PageId, offset: usize, bytes: &[u8]) {
        assert!(offset + bytes.len() <= PAGE_SIZE, "write past page end");
        let mut store = self.store_write();
        store.pages[id.0 as usize][offset..offset + bytes.len()].copy_from_slice(bytes);
        store.sums[id.0 as usize] = page_checksum(&store.pages[id.0 as usize]);
        let t = store.tags[id.0 as usize].idx();
        drop(store);
        self.counters.writes[t].fetch_add(1, Relaxed);
    }

    /// Flip one bit of a page *without* refreshing its checksum — latent
    /// media corruption, for fault drills and tests. The next physical
    /// read of the page fails verification with
    /// [`StoreError::Checksum`]; a still-buffered copy keeps serving hits
    /// (the cached frame was verified when it was admitted).
    pub fn corrupt_byte(&self, id: PageId, offset: usize) {
        assert!(offset < PAGE_SIZE, "corrupt_byte past page end");
        self.store_write().pages[id.0 as usize][offset] ^= 0x01;
    }

    fn shard_of(&self, page: u64) -> usize {
        (page % self.shards.len() as u64) as usize
    }

    /// Lock a shard, counting acquisitions that would have blocked.
    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, ShardPool> {
        let shard = &self.shards[idx];
        match shard.pool.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                shard.contention.fetch_add(1, Relaxed);
                lock_recover(&shard.pool)
            }
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        }
    }

    /// Hit check: mark `page` referenced in its shard if cached.
    fn pool_touch(&self, page: u64) -> bool {
        self.lock_shard(self.shard_of(page)).touch(page)
    }

    /// Insert `page` into its shard (evicting first if full) and account
    /// the eviction. The shard lock is dropped before the victim's tag
    /// lookup so the shard and store locks never nest.
    fn pool_insert(&self, page: u64) {
        let victim = self.lock_shard(self.shard_of(page)).insert(page);
        if let Some(victim) = victim {
            let vt = self.tag_idx(victim);
            self.counters.evictions[vt].fetch_add(1, Relaxed);
        }
    }

    /// Try to claim leadership of `page`'s read. The claim is atomic: a
    /// single flight-lock critical section does the contains-check *and*
    /// the insert (`HashSet::insert` returning `false` means another
    /// leader holds the claim), so exactly one thread can ever hold a
    /// page's lease — losers get [`FlightClaim::Lost`] and must wait.
    fn claim_flight(&self, page: u64) -> FlightClaim<'_> {
        if !lock_recover(&self.flight).insert(page) {
            return FlightClaim::Lost;
        }
        let lease = FlightLease { pager: self, page };
        // Double-check under our claim: between our miss and the claim, a
        // previous leader may have inserted the page and left the flight.
        // Holding the claim excludes any new leader, so this is race-free.
        if self.pool_touch(page) {
            drop(lease); // deregister + notify
            FlightClaim::Resident
        } else {
            FlightClaim::Led(lease)
        }
    }

    /// Batch variant of [`claim_flight`](Self::claim_flight): claim
    /// leadership of every miss in `misses` inside **one** flight-lock
    /// critical section. The per-page loop used to take the flight mutex
    /// once per miss, which under concurrent batches made that mutex a
    /// measurable contention point; one critical section claims the whole
    /// batch at the cost of a single acquisition. Returns the claims won
    /// (to lead) and the pages another thread is already reading (to
    /// defer). The resident double-check of `claim_flight` runs after the
    /// lock is released — dropping a lease deregisters the claim, so
    /// pages published meanwhile are simply dropped from the led set.
    #[allow(clippy::type_complexity)]
    fn claim_flight_batch(
        &self,
        misses: Vec<(u64, usize)>,
    ) -> (Vec<(u64, usize, FlightLease<'_>)>, Vec<(u64, usize)>) {
        let mut led = Vec::new();
        let mut deferred = Vec::new();
        {
            let mut flight = lock_recover(&self.flight);
            for (page, t) in misses {
                if flight.insert(page) {
                    led.push((page, t, FlightLease { pager: self, page }));
                } else {
                    deferred.push((page, t));
                }
            }
        }
        // Double-check under our claims (see `claim_flight`): between the
        // miss and the claim a previous leader may have published the
        // page. Holding the claim excludes any new leader, so this is
        // race-free; `retain` drops the lease of each resident page.
        led.retain(|&(page, _, _)| !self.pool_touch(page));
        (led, deferred)
    }

    /// Verify a page's bytes against its checksum sidecar. Failure means
    /// the stored bytes themselves are corrupt — rereading cannot help,
    /// so the error is surfaced without retry.
    fn verify_page(&self, page: u64) -> StoreResult<()> {
        let store = self.store_read();
        let stored = store.sums[page as usize];
        let computed = page_checksum(&store.pages[page as usize]);
        drop(store);
        if computed == stored {
            Ok(())
        } else {
            Err(StoreError::Checksum { page, stored, computed })
        }
    }

    /// A single-flight leader's read of `page`: consult the fault
    /// injector, verify the checksum, and retry transient failures within
    /// the [`RetryPolicy`]. On success the physical read is charged; the
    /// caller pays the stall and publishes the page. The caller holds the
    /// flight lease throughout and drops it afterwards (also on error or
    /// unwind), so waiters always wake.
    fn read_attempts(&self, page: u64, tag_idx: usize) -> StoreResult<()> {
        let policy = self.retry_policy();
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            if attempt > 1 {
                self.fault_counters.retries.fetch_add(1, Relaxed);
                if policy.backoff > Duration::ZERO {
                    // Linear backoff, slept with no pager locks held.
                    let pause = policy.backoff * (attempt - 1);
                    std::thread::sleep(pause);
                    self.charge_stall(pause);
                }
            }
            let (fault, latency) = {
                let guard = self.fault.read().unwrap_or_else(|e| e.into_inner());
                match guard.as_ref() {
                    None => (None, Duration::ZERO),
                    Some(inj) => (inj.decide(page), inj.latency()),
                }
            };
            if fault.is_some() {
                self.fault_counters.injected.fetch_add(1, Relaxed);
            }
            let outcome = match fault {
                None => self.verify_page(page),
                Some(FaultKind::Latency) => {
                    // A slow read, not a failed one.
                    std::thread::sleep(latency);
                    self.charge_stall(latency);
                    self.verify_page(page)
                }
                Some(FaultKind::BitFlip) => {
                    // The wire flipped a byte: the checksum the reader
                    // computes disagrees with the sidecar. Detected before
                    // the page is admitted; retried like a transient fault.
                    let store = self.store_read();
                    let flip = {
                        let guard = self.fault.read().unwrap_or_else(|e| e.into_inner());
                        guard.as_ref().map_or(0, |inj| inj.flip_offset(page, PAGE_SIZE))
                    };
                    let stored = store.sums[page as usize];
                    let computed = fnv1a(&store.pages[page as usize], flip);
                    Err(StoreError::Checksum { page, stored, computed })
                }
                Some(FaultKind::Transient) => {
                    Err(StoreError::TransientRead { page, attempts: attempt })
                }
                Some(FaultKind::Permanent) => Err(StoreError::PermanentRead { page }),
                Some(FaultKind::Panic) => {
                    panic!("injected fault: panic while leading the read of page {page}")
                }
                // Write-side kinds never reach the read path (the injector
                // filters them out of `decide`); treat them as clean reads.
                Some(FaultKind::WriteFault | FaultKind::FsyncFault | FaultKind::TornWrite) => {
                    self.verify_page(page)
                }
            };
            match outcome {
                Ok(()) => {
                    // Charged only on success: failed attempts are not
                    // pages served, and the paper metric must not drift
                    // under injected faults.
                    self.counters.physical[tag_idx].fetch_add(1, Relaxed);
                    return Ok(());
                }
                Err(e @ StoreError::PermanentRead { .. }) => {
                    self.fault_counters.permanent.fetch_add(1, Relaxed);
                    return Err(e);
                }
                Err(e @ StoreError::Checksum { .. }) if fault.is_none() => {
                    // Latent corruption of the stored bytes: rereading
                    // returns the same bytes, so retrying is useless.
                    self.fault_counters.checksum.fetch_add(1, Relaxed);
                    return Err(e);
                }
                Err(e) => {
                    if matches!(e, StoreError::Checksum { .. }) {
                        self.fault_counters.checksum.fetch_add(1, Relaxed);
                    }
                    if attempt > policy.max_retries {
                        self.fault_counters.exhausted.fetch_add(1, Relaxed);
                        return Err(match e {
                            StoreError::TransientRead { page, .. } => {
                                StoreError::TransientRead { page, attempts: attempt }
                            }
                            other => other,
                        });
                    }
                }
            }
        }
    }

    /// Block until `page` is resident, observing single-flight: wait for
    /// an in-flight read, or become the leader and pay the physical read
    /// plus its stall. `logical_reads` are *not* counted here. On error
    /// the claim is released before returning, so a failed leader's
    /// waiters re-run the claim and surface their own error.
    fn wait_resident(&self, page: u64, tag_idx: usize) -> StoreResult<()> {
        loop {
            if self.pool_touch(page) {
                return Ok(());
            }
            match self.claim_flight(page) {
                FlightClaim::Resident => return Ok(()),
                FlightClaim::Led(lease) => {
                    let read = self.read_attempts(page, tag_idx);
                    if read.is_ok() {
                        let stall = self.read_stall();
                        if stall > Duration::ZERO {
                            // Pay the simulated disk latency with no locks
                            // held so other threads' reads (and their
                            // stalls) proceed in parallel.
                            std::thread::sleep(stall);
                            self.charge_stall(stall);
                        }
                        self.pool_insert(page);
                    }
                    drop(lease);
                    return read;
                }
                FlightClaim::Lost => {
                    let mut flight = lock_recover(&self.flight);
                    if flight.contains(&page) {
                        self.singleflight_waits.fetch_add(1, Relaxed);
                        let waited = Instant::now();
                        while flight.contains(&page) {
                            flight =
                                self.flight_done.wait(flight).unwrap_or_else(|e| e.into_inner());
                        }
                        self.charge_stall(waited.elapsed());
                    }
                    drop(flight);
                    // Count the coalesced miss only once the pool confirms
                    // the leader's read served us; if the leader failed or
                    // the page was already evicted, loop around and lead
                    // it ourselves.
                    if self.pool_touch(page) {
                        self.coalesced_misses.fetch_add(1, Relaxed);
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Read a page through the buffer pool, handing its bytes to `f`.
    ///
    /// `f` runs under the store's read lock; it must not allocate or
    /// write pages. Errors surface as [`StoreError`] without running `f`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> StoreResult<R> {
        let t = self.tag_idx(id.0);
        self.counters.logical[t].fetch_add(1, Relaxed);
        self.wait_resident(id.0, t)?;
        let store = self.store_read();
        Ok(f(&store.pages[id.0 as usize]))
    }

    /// Read a batch of pages through the buffer pool, handing each page's
    /// bytes to `f` in the given order.
    ///
    /// `ids` must be sorted ascending with no duplicates (asserted) — the
    /// callers coalesce and sort their page sets, which also makes the
    /// access order, and with it the eviction sequence, deterministic.
    ///
    /// Every page still costs one `logical_read`, and every served miss
    /// one `physical_read` — the paper's page-access metric is identical
    /// to a `with_page` loop. What changes is wall-clock time: all misses
    /// of the batch are claimed up front and pay a **single** overlapped
    /// stall (like a queued batch of disk requests), with the extra
    /// misses counted as `coalesced_misses`. Pages another thread is
    /// already reading are not waited on until our own claims are
    /// published, so two overlapping batches cannot deadlock.
    ///
    /// On a read failure the first error is returned, every healthy claim
    /// of the batch is still published (waiters are never stranded), and
    /// `f` is not called for any page.
    pub fn with_pages(&self, ids: &[PageId], mut f: impl FnMut(PageId, &[u8])) -> StoreResult<()> {
        assert!(
            ids.windows(2).all(|w| w[0].0 < w[1].0),
            "with_pages requires sorted, de-duplicated page ids"
        );
        // Phase 1: account logical reads; claim every miss we can lead —
        // all claims in one flight-lock critical section
        // ([`claim_flight_batch`](Self::claim_flight_batch)). Pages in
        // flight elsewhere are deferred, not waited on — waiting while
        // holding unpublished claims could deadlock two batches.
        let mut misses: Vec<(u64, usize)> = Vec::new();
        for &id in ids {
            let t = self.tag_idx(id.0);
            self.counters.logical[t].fetch_add(1, Relaxed);
            if !self.pool_touch(id.0) {
                misses.push((id.0, t));
            }
        }
        let (led, deferred) = self.claim_flight_batch(misses);
        // Phase 2: attempt every claimed read (faults and retries are
        // per page), then pay one stall covering all served misses — the
        // overlapped-I/O model. Only then publish the pages and release
        // the claims so our waiters (and deferred peers) can proceed;
        // failed claims release without publishing.
        let mut first_err: Option<StoreError> = None;
        let mut served: Vec<(u64, FlightLease<'_>)> = Vec::new();
        for (page, t, lease) in led {
            match self.read_attempts(page, t) {
                Ok(()) => served.push((page, lease)),
                Err(e) => {
                    first_err.get_or_insert(e);
                    drop(lease); // wake waiters: they re-claim and fail themselves
                }
            }
        }
        if !served.is_empty() {
            self.coalesced_misses.fetch_add(served.len() as u64 - 1, Relaxed);
            let stall = self.read_stall();
            if stall > Duration::ZERO {
                std::thread::sleep(stall);
                self.charge_stall(stall);
            }
            for &(page, _) in &served {
                self.pool_insert(page);
            }
            served.clear(); // drop the leases: deregister + notify
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        // Phase 3: wait for pages another thread was already reading
        // (re-leading them ourselves if they were evicted meanwhile).
        for &(page, t) in &deferred {
            self.wait_resident(page, t)?;
        }
        // Phase 4: visit in caller order under the store read lock.
        let store = self.store_read();
        for &id in ids {
            f(id, &store.pages[id.0 as usize]);
        }
        Ok(())
    }

    /// Copy a whole page out (convenience for tests).
    pub fn read_page(&self, id: PageId) -> StoreResult<Vec<u8>> {
        self.with_page(id, |b| b.to_vec())
    }

    /// Current statistics snapshot (all structures combined).
    pub fn stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for t in 0..StructureTag::COUNT {
            total.physical_reads += self.counters.physical[t].load(Relaxed);
            total.logical_reads += self.counters.logical[t].load(Relaxed);
            total.writes += self.counters.writes[t].load(Relaxed);
        }
        total
    }

    /// Statistics for one structure's pages.
    pub fn stats_for(&self, tag: StructureTag) -> IoStats {
        let t = tag.idx();
        IoStats {
            physical_reads: self.counters.physical[t].load(Relaxed),
            logical_reads: self.counters.logical[t].load(Relaxed),
            writes: self.counters.writes[t].load(Relaxed),
        }
    }

    /// Per-structure statistics for every tag with any traffic, in
    /// [`StructureTag::ALL`] order.
    pub fn io_by_structure(&self) -> Vec<(StructureTag, IoStats)> {
        StructureTag::ALL
            .into_iter()
            .map(|t| (t, self.stats_for(t)))
            .filter(|(_, s)| *s != IoStats::default())
            .collect()
    }

    /// Pages pushed out of the buffer pool since the last reset.
    pub fn evictions(&self) -> u64 {
        (0..StructureTag::COUNT).map(|t| self.counters.evictions[t].load(Relaxed)).sum()
    }

    /// Evictions of one structure's pages since the last reset.
    pub fn evictions_for(&self, tag: StructureTag) -> u64 {
        self.counters.evictions[tag.idx()].load(Relaxed)
    }

    /// Buffer-pool hit rate since the last reset (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let s = self.stats();
        if s.logical_reads == 0 {
            0.0
        } else {
            s.hits() as f64 / s.logical_reads as f64
        }
    }

    /// Concurrency counters since the last reset: single-flight waits,
    /// coalesced misses, and total shard-lock contention.
    pub fn concurrency_stats(&self) -> ConcurrencyStats {
        ConcurrencyStats {
            singleflight_waits: self.singleflight_waits.load(Relaxed),
            coalesced_misses: self.coalesced_misses.load(Relaxed),
            shard_contention: self.shards.iter().map(|s| s.contention.load(Relaxed)).sum(),
        }
    }

    /// Per-shard lock-contention counts, in shard order.
    pub fn contention_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.contention.load(Relaxed)).collect()
    }

    /// Number of buffer-pool shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Pages currently cached across all shards (never exceeds the pool
    /// capacity — the eviction invariant the property tests pin).
    pub fn cached_pages(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock_shard(i).map.len()).sum()
    }

    /// Zero the counters (e.g. before timing a query), including the
    /// per-structure breakdown, eviction counts, and concurrency
    /// counters. The pool contents are kept: a warm cache across queries
    /// is realistic. Page tags persist — they describe what a page *is*,
    /// not traffic. Fault counters persist too: they describe the run,
    /// not one query (see [`Pager::fault_stats`]).
    pub fn reset_stats(&self) {
        for t in 0..StructureTag::COUNT {
            self.counters.logical[t].store(0, Relaxed);
            self.counters.physical[t].store(0, Relaxed);
            self.counters.writes[t].store(0, Relaxed);
            self.counters.evictions[t].store(0, Relaxed);
        }
        self.singleflight_waits.store(0, Relaxed);
        self.coalesced_misses.store(0, Relaxed);
        for s in &self.shards {
            s.contention.store(0, Relaxed);
        }
    }

    /// Drop every cached page (cold-start a query).
    pub fn clear_pool(&self) {
        for i in 0..self.shards.len() {
            self.lock_shard(i).clear();
        }
    }

    // ---- write path: dirty tracking, writeback, durable image ----

    /// Overwrite bytes within a page *and* mark it dirty under WAL
    /// protection: `lsn` is the WAL record covering this write, and the
    /// page cannot be flushed until that record's commit is durable
    /// (see [`Pager::flush_page`]). The volatile page and its checksum
    /// update immediately — readers through the buffer pool see the new
    /// bytes; the durable image does not change until writeback.
    pub fn write_logged(&self, id: PageId, offset: usize, bytes: &[u8], lsn: u64) {
        assert!(offset + bytes.len() <= PAGE_SIZE, "write past page end");
        let mut store = self.store_write();
        store.pages[id.0 as usize][offset..offset + bytes.len()].copy_from_slice(bytes);
        store.sums[id.0 as usize] = page_checksum(&store.pages[id.0 as usize]);
        let t = store.tags[id.0 as usize].idx();
        let entry = store.dirty.entry(id.0).or_insert(0);
        *entry = (*entry).max(lsn);
        drop(store);
        self.counters.writes[t].fetch_add(1, Relaxed);
    }

    /// Record that every WAL byte up to commit LSN `lsn` is durable. Sets
    /// the flush-ordering bound monotonically.
    pub fn observe_wal_lsn(&self, lsn: u64) {
        self.wal_commit_lsn.fetch_max(lsn, Relaxed);
    }

    /// The flush-ordering bound last observed.
    pub fn wal_commit_lsn(&self) -> u64 {
        self.wal_commit_lsn.load(Relaxed)
    }

    /// Write one dirty page back to the durable image.
    ///
    /// Enforces write-ahead ordering by assertion: flushing a page whose
    /// last logged write's LSN exceeds the durable commit bound is a
    /// protocol bug (the page would hit disk before its log record), not
    /// a runtime condition.
    ///
    /// The fault injector may interfere: a `WriteFault` leaves the durable
    /// image untouched and the page dirty, surfacing
    /// [`StoreError::WriteFault`]; a `TornWrite` writes only a prefix of
    /// the page over the old durable bytes while recording the *new*
    /// checksum — the OS believes the write landed (the page is marked
    /// clean, `Ok` is returned) and the tear is only discoverable after
    /// the crash the injector's kill flag now requests.
    pub fn flush_page(&self, page: u64, fault: Option<&FaultInjector>) -> StoreResult<()> {
        let mut store = self.store_write();
        let Some(&page_lsn) = store.dirty.get(&page) else {
            return Ok(()); // clean — nothing to write back
        };
        let bound = self.wal_commit_lsn.load(Relaxed);
        assert!(
            page_lsn <= bound,
            "WAL ordering violated: flushing page {page} at lsn {page_lsn} \
             but only commits ≤ {bound} are durable"
        );
        let decision = fault.and_then(|inj| inj.decide_write(page));
        if decision.is_some() {
            self.fault_counters.injected.fetch_add(1, Relaxed);
        }
        match decision {
            Some(FaultKind::TornWrite) => {
                let cut = fault.map_or(1, |inj| inj.torn_prefix(page, PAGE_SIZE));
                let new_sum = store.sums[page as usize];
                let fresh = store.pages[page as usize].clone();
                let slot = &mut store.durable[page as usize];
                let mut torn = match slot.take() {
                    Some((old, _)) => old,
                    None => vec![0u8; PAGE_SIZE].into_boxed_slice(),
                };
                torn[..cut].copy_from_slice(&fresh[..cut]);
                *slot = Some((torn, new_sum));
                store.dirty.remove(&page);
                drop(store);
                self.flushed_pages.fetch_add(1, Relaxed);
                Ok(())
            }
            // Any other write-side decision fails the flush cleanly:
            // nothing reaches the durable image, the page stays dirty.
            Some(_) => Err(StoreError::WriteFault { page }),
            None => {
                let bytes = store.pages[page as usize].clone();
                let sum = store.sums[page as usize];
                store.durable[page as usize] = Some((bytes, sum));
                store.dirty.remove(&page);
                drop(store);
                self.flushed_pages.fetch_add(1, Relaxed);
                Ok(())
            }
        }
    }

    /// Write back every dirty page whose covering commit is durable, in
    /// ascending page order (deterministic writeback schedule). Pages
    /// dirtied by an in-progress (uncommitted) operation are skipped —
    /// no-steal. Returns the number of pages flushed; stops at the first
    /// flush error, leaving the rest dirty.
    pub fn flush_dirty(&self, fault: Option<&FaultInjector>) -> StoreResult<u64> {
        let bound = self.wal_commit_lsn.load(Relaxed);
        let mut eligible: Vec<u64> = {
            let store = self.store_read();
            store.dirty.iter().filter(|&(_, &lsn)| lsn <= bound).map(|(&p, _)| p).collect()
        };
        eligible.sort_unstable();
        let mut flushed = 0u64;
        for page in eligible {
            self.flush_page(page, fault)?;
            flushed += 1;
        }
        Ok(flushed)
    }

    /// Seal the current volatile contents of every page as the durable
    /// base image and mark everything clean. Called once after genesis
    /// (the initial build + checkpoint): the freshly built structures are
    /// the recovery baseline.
    pub fn seal_base_image(&self) {
        let mut store = self.store_write();
        for i in 0..store.pages.len() {
            let bytes = store.pages[i].clone();
            let sum = store.sums[i];
            store.durable[i] = Some((bytes, sum));
        }
        store.dirty.clear();
    }

    /// Snapshot the durable image — the pages a crash preserves, with the
    /// checksums recorded at flush time (a torn page's checksum disagrees
    /// with its bytes, exactly as it would on disk).
    pub fn durable_image(&self) -> Vec<ImagePage> {
        let store = self.store_read();
        store
            .durable
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref().map(|(bytes, sum)| ImagePage {
                    id: i as u64,
                    tag: store.tags[i],
                    bytes: bytes.clone(),
                    sum: *sum,
                })
            })
            .collect()
    }

    /// Make sure pages `0..=page` exist (recovery gap-fill: a crashed
    /// incarnation may have allocated pages whose records never
    /// committed; redo of a later `Alloc` must land on the same id).
    /// Newly created pages are zeroed, clean, and tagged `tag`.
    pub fn ensure_allocated(&self, page: u64, tag: StructureTag) {
        let mut store = self.store_write();
        while store.pages.len() <= page as usize {
            let fresh: Box<[u8]> = vec![0u8; PAGE_SIZE].into_boxed_slice();
            store.sums.push(page_checksum(&fresh));
            store.pages.push(fresh);
            store.tags.push(tag);
            store.durable.push(None);
        }
        store.tags[page as usize] = tag;
    }

    /// Load a crash-preserved page into the volatile store during
    /// recovery, recomputing the checksum from the bytes (a torn page
    /// becomes self-consistent again; redo then overwrites the torn
    /// region from committed WAL records). The durable slot is restored
    /// verbatim.
    pub fn restore_page(&self, img: &ImagePage) {
        self.ensure_allocated(img.id, img.tag);
        let mut store = self.store_write();
        store.pages[img.id as usize] = img.bytes.clone();
        store.sums[img.id as usize] = page_checksum(&img.bytes);
        store.durable[img.id as usize] = Some((img.bytes.clone(), img.sum));
        store.dirty.remove(&img.id);
    }

    /// The dirty-entry LSN of one page (`None` = clean).
    pub fn dirty_lsn_of(&self, page: u64) -> Option<u64> {
        self.store_read().dirty.get(&page).copied()
    }

    /// Restore a page's full volatile image during an *abort*: overwrite
    /// the whole page with `bytes` (`None` = zeros), recompute the
    /// checksum, and set the dirty entry to exactly `dirty_lsn` (`None` =
    /// clean). Unlike [`write_logged`](Self::write_logged) this can lower
    /// or clear the dirty LSN — required because a failed commit's LSNs
    /// are reused, so an aborted page left dirty at such an LSN would
    /// become flush-eligible once an unrelated later commit reaches it,
    /// leaking uncommitted bytes into the durable image.
    pub fn rollback_page(&self, id: PageId, bytes: Option<&[u8]>, dirty_lsn: Option<u64>) {
        let mut store = self.store_write();
        match bytes {
            Some(b) => {
                assert!(b.len() == PAGE_SIZE, "rollback_page needs a full page image");
                store.pages[id.0 as usize].copy_from_slice(b);
            }
            None => store.pages[id.0 as usize].iter_mut().for_each(|x| *x = 0),
        }
        store.sums[id.0 as usize] = page_checksum(&store.pages[id.0 as usize]);
        match dirty_lsn {
            Some(lsn) => {
                store.dirty.insert(id.0, lsn);
            }
            None => {
                store.dirty.remove(&id.0);
            }
        }
    }

    /// Dirty pages and the LSN bound of each, in ascending page order.
    pub fn dirty_pages(&self) -> Vec<(u64, u64)> {
        let store = self.store_read();
        let mut v: Vec<(u64, u64)> = store.dirty.iter().map(|(&p, &l)| (p, l)).collect();
        v.sort_unstable();
        v
    }

    /// Dirty pages written back since construction (cumulative, like the
    /// fault counters — `reset_stats` does not clear it).
    pub fn flushed_pages(&self) -> u64 {
        self.flushed_pages.load(Relaxed)
    }
}

/// One page of the durable image: what a crash preserves.
#[derive(Debug, Clone)]
pub struct ImagePage {
    /// Page id (stable across incarnations).
    pub id: u64,
    /// Structure the page belongs to.
    pub tag: StructureTag,
    /// The durable bytes.
    pub bytes: Box<[u8]>,
    /// Checksum recorded at flush time. Disagrees with `bytes` for a
    /// torn page.
    pub sum: u64,
}

/// Everything a simulated crash preserves: the durable WAL prefix and the
/// durable page image. Recovery rebuilds a working store from this alone.
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// The fsynced WAL bytes (possibly with a torn tail).
    pub wal: Vec<u8>,
    /// The durable page image.
    pub pages: Vec<ImagePage>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_roundtrip() {
        let p = Pager::new(8);
        let a = p.alloc();
        let b = p.alloc();
        assert_ne!(a, b);
        p.write(a, 100, b"hello");
        p.write(b, 0, b"world");
        assert_eq!(&p.read_page(a).unwrap()[100..105], b"hello");
        assert_eq!(&p.read_page(b).unwrap()[..5], b"world");
    }

    #[test]
    fn hits_are_free_misses_are_charged() {
        let p = Pager::new(4);
        let ids: Vec<_> = (0..3).map(|_| p.alloc()).collect();
        p.reset_stats();
        for &id in &ids {
            p.with_page(id, |_| ()).unwrap();
        }
        assert_eq!(p.stats().physical_reads, 3);
        // Re-reading cached pages adds logical but not physical reads.
        for &id in &ids {
            p.with_page(id, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.physical_reads, 3);
        assert_eq!(s.logical_reads, 6);
        assert_eq!(s.hits(), 3);
        assert_eq!(s.hits(), s.logical_reads - s.physical_reads);
    }

    #[test]
    fn clock_eviction_recycles_cold_pages() {
        // Pool of 2 → 2 shards of capacity 1; pages 0 and 2 share shard 0.
        let p = Pager::new(2);
        let a = p.alloc();
        let b = p.alloc();
        let c = p.alloc();
        p.reset_stats();
        p.with_page(a, |_| ()).unwrap(); // miss
        p.with_page(b, |_| ()).unwrap(); // miss (other shard)
        p.with_page(a, |_| ()).unwrap(); // hit
        p.with_page(c, |_| ()).unwrap(); // miss, evicts a from their shared shard
        p.with_page(a, |_| ()).unwrap(); // miss (was evicted)
        p.with_page(b, |_| ()).unwrap(); // hit (own shard untouched)
        assert_eq!(p.stats().physical_reads, 4);
        assert!(p.cached_pages() <= 2);
    }

    #[test]
    fn clear_pool_forces_cold_reads() {
        let p = Pager::new(8);
        let a = p.alloc();
        p.with_page(a, |_| ()).unwrap();
        p.clear_pool();
        p.reset_stats();
        p.with_page(a, |_| ()).unwrap();
        assert_eq!(p.stats().physical_reads, 1);
    }

    #[test]
    #[should_panic(expected = "past page end")]
    fn write_past_end_panics() {
        let p = Pager::new(1);
        let a = p.alloc();
        p.write(a, PAGE_SIZE - 2, b"abc");
    }

    #[test]
    fn tag_scopes_nest_and_restore() {
        let p = Pager::new(8);
        let outside = p.alloc();
        let (dmtm_page, msdn_page) = {
            let _dmtm = p.tag_scope(StructureTag::Dmtm);
            let d = p.alloc();
            let m = {
                let _msdn = p.tag_scope(StructureTag::Msdn);
                p.alloc()
            };
            // Inner scope dropped: back to Dmtm.
            assert_eq!(p.tag_of(p.alloc()), StructureTag::Dmtm);
            (d, m)
        };
        assert_eq!(p.tag_of(outside), StructureTag::Other);
        assert_eq!(p.tag_of(dmtm_page), StructureTag::Dmtm);
        assert_eq!(p.tag_of(msdn_page), StructureTag::Msdn);
        // Scope fully unwound.
        assert_eq!(p.tag_of(p.alloc()), StructureTag::Other);
    }

    #[test]
    fn logged_writes_flush_only_behind_the_wal() {
        let p = Pager::new(8);
        let a = p.alloc();
        p.write_logged(a, 0, b"committed", 3);
        assert_eq!(p.dirty_pages(), vec![(a.0, 3)]);
        assert!(p.durable_image().is_empty(), "nothing flushed yet");

        // Commit lsn 2 < page lsn 3: the page is not eligible.
        p.observe_wal_lsn(2);
        assert_eq!(p.flush_dirty(None).unwrap(), 0);
        assert_eq!(p.dirty_pages().len(), 1);

        // Commit lsn 3: now it flushes, and the image matches.
        p.observe_wal_lsn(3);
        assert_eq!(p.flush_dirty(None).unwrap(), 1);
        assert!(p.dirty_pages().is_empty());
        let img = p.durable_image();
        assert_eq!(img.len(), 1);
        assert_eq!(&img[0].bytes[..9], b"committed");
        assert_eq!(img[0].sum, page_checksum(&img[0].bytes));
        assert_eq!(p.flushed_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "WAL ordering violated")]
    fn flushing_ahead_of_the_wal_panics() {
        let p = Pager::new(4);
        let a = p.alloc();
        p.write_logged(a, 0, b"x", 5);
        p.flush_page(a.0, None).unwrap(); // commit 5 not durable
    }

    #[test]
    fn write_fault_leaves_page_dirty_and_image_untouched() {
        let p = Pager::new(4);
        let a = p.alloc();
        p.write_logged(a, 0, b"v1", 1);
        p.observe_wal_lsn(1);
        p.flush_dirty(None).unwrap();

        p.write_logged(a, 0, b"v2", 2);
        p.observe_wal_lsn(2);
        let inj = FaultInjector::script().fail_nth_write(1, FaultKind::WriteFault);
        assert_eq!(p.flush_page(a.0, Some(&inj)), Err(StoreError::WriteFault { page: a.0 }));
        assert_eq!(p.dirty_pages(), vec![(a.0, 2)], "failed flush keeps the page dirty");
        assert_eq!(&p.durable_image()[0].bytes[..2], b"v1", "old image intact");
        // The retry (no rule left) succeeds.
        p.flush_page(a.0, Some(&inj)).unwrap();
        assert_eq!(&p.durable_image()[0].bytes[..2], b"v2");
    }

    #[test]
    fn torn_write_is_detectable_in_the_durable_image() {
        let p = Pager::new(4);
        let a = p.alloc();
        p.write_logged(a, 0, &[0xAA; PAGE_SIZE], 1);
        p.observe_wal_lsn(1);
        p.flush_dirty(None).unwrap();

        p.write_logged(a, 0, &[0xBB; PAGE_SIZE], 2);
        p.observe_wal_lsn(2);
        let inj = FaultInjector::script().fail_nth_write(1, FaultKind::TornWrite);
        p.flush_page(a.0, Some(&inj)).unwrap(); // the OS thinks it landed
        assert!(inj.kill_requested(), "a torn write schedules the crash");
        assert!(p.dirty_pages().is_empty(), "page looks clean until the crash");
        let img = p.durable_image();
        let torn = &img[0];
        assert!(torn.bytes.contains(&0xBB) && torn.bytes.contains(&0xAA), "partial write");
        assert_ne!(torn.sum, page_checksum(&torn.bytes), "checksum exposes the tear");
    }

    #[test]
    fn seal_restore_roundtrip_rebuilds_the_store() {
        let p = Pager::new(8);
        let a = {
            let _s = p.tag_scope(StructureTag::Objects);
            p.alloc()
        };
        let b = p.alloc();
        p.write(a, 0, b"alpha");
        p.write(b, 10, b"beta");
        p.seal_base_image();
        let image = p.durable_image();
        assert_eq!(image.len(), 2);

        let q = Pager::new(8);
        for img in &image {
            q.restore_page(img);
        }
        assert_eq!(q.num_pages(), 2);
        assert_eq!(q.tag_of(a), StructureTag::Objects);
        assert_eq!(&q.read_page(a).unwrap()[..5], b"alpha");
        assert_eq!(&q.read_page(b).unwrap()[10..14], b"beta");
        assert!(q.dirty_pages().is_empty());
    }

    #[test]
    fn ensure_allocated_gap_fills() {
        let p = Pager::new(4);
        p.ensure_allocated(3, StructureTag::Objects);
        assert_eq!(p.num_pages(), 4);
        assert_eq!(p.tag_of(PageId(3)), StructureTag::Objects);
        // Pre-existing pages are untouched by a smaller bound.
        p.ensure_allocated(1, StructureTag::Objects);
        assert_eq!(p.num_pages(), 4);
    }

    #[test]
    fn per_structure_attribution_sums_to_global() {
        let p = Pager::new(4);
        let dmtm: Vec<_> = {
            let _s = p.tag_scope(StructureTag::Dmtm);
            (0..3).map(|_| p.alloc()).collect()
        };
        let msdn: Vec<_> = {
            let _s = p.tag_scope(StructureTag::Msdn);
            (0..2).map(|_| p.alloc()).collect()
        };
        p.reset_stats();
        for &id in dmtm.iter().chain(&msdn).chain(&dmtm) {
            p.with_page(id, |_| ()).unwrap();
        }
        let global = p.stats();
        let per: Vec<_> = p.io_by_structure();
        let sum_phys: u64 = per.iter().map(|(_, s)| s.physical_reads).sum();
        let sum_logical: u64 = per.iter().map(|(_, s)| s.logical_reads).sum();
        assert_eq!(sum_phys, global.physical_reads);
        assert_eq!(sum_logical, global.logical_reads);
        // Each tag's own identity also holds.
        for (_, s) in &per {
            assert_eq!(s.hits(), s.logical_reads - s.physical_reads);
        }
        // 3 dmtm pages read twice (whether the second round hits depends
        // on eviction) — just pin the logical split, which is
        // deterministic.
        assert_eq!(p.stats_for(StructureTag::Dmtm).logical_reads, 6);
        assert_eq!(p.stats_for(StructureTag::Msdn).logical_reads, 2);
        assert_eq!(p.stats_for(StructureTag::Other), IoStats::default());
    }

    #[test]
    fn evictions_counted_at_pool_capacity() {
        let p = Pager::new(2);
        let pages: Vec<_> = {
            let _s = p.tag_scope(StructureTag::Dmtm);
            (0..3).map(|_| p.alloc()).collect()
        };
        p.reset_stats();
        p.with_page(pages[0], |_| ()).unwrap(); // miss, shard 0 = {0}
        p.with_page(pages[1], |_| ()).unwrap(); // miss, shard 1 = {1}
        assert_eq!(p.evictions(), 0, "no eviction below capacity");
        p.with_page(pages[2], |_| ()).unwrap(); // miss, evicts page 0 (same shard)
        assert_eq!(p.evictions(), 1);
        assert_eq!(p.evictions_for(StructureTag::Dmtm), 1);
        assert_eq!(p.evictions_for(StructureTag::Msdn), 0);
        // Victim really is gone: re-reading it is a physical read.
        let before = p.stats().physical_reads;
        p.with_page(pages[0], |_| ()).unwrap();
        assert_eq!(p.stats().physical_reads, before + 1);
    }

    #[test]
    fn hit_rate_tracks_stats() {
        let p = Pager::new(4);
        let a = p.alloc();
        p.reset_stats();
        assert_eq!(p.hit_rate(), 0.0);
        p.with_page(a, |_| ()).unwrap(); // miss
        p.with_page(a, |_| ()).unwrap(); // hit
        p.with_page(a, |_| ()).unwrap(); // hit
        assert!((p.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn with_pages_matches_with_page_loop_counters() {
        let p = Pager::new(16);
        let ids: Vec<_> = (0..6).map(|_| p.alloc()).collect();
        p.clear_pool();
        p.reset_stats();
        p.with_pages(&ids, |_, _| ()).unwrap();
        let s = p.stats();
        assert_eq!(s.logical_reads, 6);
        assert_eq!(s.physical_reads, 6, "every cold page is still one physical read");
        // The 5 misses beyond the first shared the batch's single stall.
        assert_eq!(p.concurrency_stats().coalesced_misses, 5);
        // Warm re-batch: all hits, nothing coalesced.
        p.reset_stats();
        let mut seen = Vec::new();
        p.with_pages(&ids, |id, _| seen.push(id)).unwrap();
        assert_eq!(seen, ids, "pages visited in caller order");
        let s = p.stats();
        assert_eq!((s.logical_reads, s.physical_reads), (6, 0));
        assert_eq!(p.concurrency_stats().coalesced_misses, 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn with_pages_rejects_unsorted_ids() {
        let p = Pager::new(4);
        let a = p.alloc();
        let b = p.alloc();
        let _ = p.with_pages(&[b, a], |_, _| ());
    }

    #[test]
    fn read_stall_sleeps_on_miss_only() {
        use std::time::{Duration, Instant};
        let p = Pager::new(4);
        let a = p.alloc();
        p.clear_pool();
        p.set_read_stall(Duration::from_millis(20));
        let t = Instant::now();
        p.with_page(a, |_| ()).unwrap(); // miss: pays the stall
        assert!(t.elapsed() >= Duration::from_millis(20));
        let t = Instant::now();
        p.with_page(a, |_| ()).unwrap(); // hit: must not sleep
        assert!(t.elapsed() < Duration::from_millis(20));
    }

    /// The stall is slept outside the pool locks: a second thread must be
    /// able to get a hit while the first is mid-stall.
    #[test]
    fn read_stall_does_not_hold_the_lock() {
        use std::time::{Duration, Instant};
        let p = Pager::new(4);
        let a = p.alloc();
        let b = p.alloc();
        p.with_page(b, |_| ()).unwrap(); // b resident
        p.set_read_stall(Duration::from_millis(50));
        std::thread::scope(|s| {
            s.spawn(|| p.with_page(a, |_| ()).unwrap()); // miss: stalls 50 ms
            std::thread::sleep(Duration::from_millis(10)); // let it enter the stall
            let t = Instant::now();
            p.with_page(b, |_| ()).unwrap(); // hit on another page
            assert!(t.elapsed() < Duration::from_millis(40), "hit blocked behind a stalling miss");
        });
    }

    #[test]
    fn checksum_tracks_writes() {
        let p = Pager::new(4);
        let a = p.alloc();
        p.write(a, 0, b"first");
        assert_eq!(&p.read_page(a).unwrap()[..5], b"first");
        p.write(a, 0, b"newer");
        p.clear_pool();
        // Re-verified on the cold read; the refreshed checksum matches.
        assert_eq!(&p.read_page(a).unwrap()[..5], b"newer");
    }

    #[test]
    fn latent_corruption_fails_cold_read_but_not_cached_hit() {
        let p = Pager::new(4);
        let a = p.alloc();
        p.write(a, 10, b"payload");
        p.with_page(a, |_| ()).unwrap(); // admitted while healthy
        p.corrupt_byte(a, 11);
        // The buffered frame was verified at admission: hits still serve.
        p.with_page(a, |_| ()).unwrap();
        // A cold read re-verifies and refuses to serve corrupt bytes.
        p.clear_pool();
        match p.with_page(a, |_| ()) {
            Err(StoreError::Checksum { page, stored, computed }) => {
                assert_eq!(page, a.0);
                assert_ne!(stored, computed);
            }
            other => panic!("expected checksum error, got {other:?}"),
        }
        // Failed attempts are not physical reads.
        p.reset_stats();
        let _ = p.with_page(a, |_| ());
        assert_eq!(p.stats().physical_reads, 0);
        assert_eq!(p.stats().logical_reads, 1);
    }
}
