//! The page store and its LRU buffer pool.
//!
//! A [`Pager`] owns every page of the simulated database. Reads go through
//! a fixed-capacity LRU buffer pool: a miss counts as one *physical read*
//! (the paper's "disk pages accessed"), a hit is free. Writes happen at
//! structure-build time and are tracked separately — the evaluation only
//! ever measures read traffic of queries.
//!
//! Every page carries a [`StructureTag`] assigned at allocation time (see
//! [`Pager::tag_scope`]), so read traffic is attributable per on-disk
//! structure — the DMTM B+-tree, the MSDN heap files, and so on — both
//! globally and per query (reset the stats between queries).
//!
//! The pager is internally synchronised (a single `parking_lot::Mutex`);
//! query processing is single-threaded in the paper, so lock contention is
//! not a concern, but benches may build scenes on multiple threads.

use crate::page::{PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Which on-disk structure a page belongs to. Assigned when the page is
/// allocated (inside a [`Pager::tag_scope`]) and fixed for the page's
/// lifetime; all subsequent traffic on the page is attributed to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum StructureTag {
    /// The multi-resolution terrain model's B+-tree of front payloads.
    Dmtm,
    /// The surface-distance network's per-(axis, level) heap files.
    Msdn,
    /// A generic heap file not owned by a named structure.
    Heap,
    /// The Dxy R-tree (kept for attribution symmetry: the in-memory
    /// R-tree counts its own node accesses rather than paging through
    /// the pool, but traces report it under this tag).
    Rtree,
    /// Pages allocated outside any tag scope.
    #[default]
    Other,
}

impl StructureTag {
    /// Number of distinct tags (array-index domain).
    pub const COUNT: usize = 5;

    /// All tags, in index order.
    pub const ALL: [StructureTag; Self::COUNT] = [
        StructureTag::Dmtm,
        StructureTag::Msdn,
        StructureTag::Heap,
        StructureTag::Rtree,
        StructureTag::Other,
    ];

    /// Stable lower-case name (used as the `structure` field of trace
    /// `io` events).
    pub fn name(self) -> &'static str {
        match self {
            StructureTag::Dmtm => "dmtm",
            StructureTag::Msdn => "msdn",
            StructureTag::Heap => "heap",
            StructureTag::Rtree => "rtree",
            StructureTag::Other => "other",
        }
    }

    fn idx(self) -> usize {
        match self {
            StructureTag::Dmtm => 0,
            StructureTag::Msdn => 1,
            StructureTag::Heap => 2,
            StructureTag::Rtree => 3,
            StructureTag::Other => 4,
        }
    }
}

/// Read/write traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer-pool misses: pages fetched from "disk".
    pub physical_reads: u64,
    /// All page read requests, hit or miss.
    pub logical_reads: u64,
    /// Pages written (build time).
    pub writes: u64,
}

impl IoStats {
    /// Buffer-pool hits.
    pub fn hits(&self) -> u64 {
        self.logical_reads - self.physical_reads
    }
}

#[derive(Debug)]
struct PagerInner {
    pages: Vec<Box<[u8]>>,
    /// Structure tag per page, parallel to `pages`.
    tags: Vec<StructureTag>,
    /// Tag applied to new allocations (see [`Pager::tag_scope`]).
    alloc_tag: StructureTag,
    /// page -> LRU stamp; presence means cached.
    pool: HashMap<u64, u64>,
    pool_capacity: usize,
    clock: u64,
    stats: IoStats,
    by_tag: [IoStats; StructureTag::COUNT],
    evictions: u64,
    evictions_by_tag: [u64; StructureTag::COUNT],
    /// Wall-clock penalty per physical read (zero by default). Slept
    /// *outside* the pager lock so concurrent queries overlap their
    /// stalls — the I/O-bound regime the paper's disk numbers imply.
    read_stall: Duration,
}

/// The simulated disk: a page allocator, page contents, buffer pool, and
/// I/O statistics.
#[derive(Debug)]
pub struct Pager {
    inner: Mutex<PagerInner>,
}

/// Restores the pager's allocation tag when dropped; see
/// [`Pager::tag_scope`].
#[derive(Debug)]
pub struct TagScope<'p> {
    pager: &'p Pager,
    previous: StructureTag,
}

impl Drop for TagScope<'_> {
    fn drop(&mut self) {
        self.pager.inner.lock().alloc_tag = self.previous;
    }
}

impl Pager {
    /// Create a pager whose buffer pool holds `pool_pages` pages.
    ///
    /// The paper's machine had 1.3 GB of RAM but the datasets are orders of
    /// magnitude larger; a pool of a few hundred pages reproduces the
    /// "mostly cold" regime the page-access numbers imply.
    pub fn new(pool_pages: usize) -> Self {
        Self {
            inner: Mutex::new(PagerInner {
                pages: Vec::new(),
                tags: Vec::new(),
                alloc_tag: StructureTag::Other,
                pool: HashMap::new(),
                pool_capacity: pool_pages.max(1),
                clock: 0,
                stats: IoStats::default(),
                by_tag: [IoStats::default(); StructureTag::COUNT],
                evictions: 0,
                evictions_by_tag: [0; StructureTag::COUNT],
                read_stall: Duration::ZERO,
            }),
        }
    }

    /// Make every buffer-pool miss cost `stall` of real wall-clock time,
    /// simulating the seek+transfer latency of the disk the paper models.
    /// The sleep happens with the pager lock *released*, so queries running
    /// on different threads overlap their stalls exactly as overlapping
    /// disk requests would. `Duration::ZERO` (the default) disables it.
    pub fn set_read_stall(&self, stall: Duration) {
        self.inner.lock().read_stall = stall;
    }

    /// Attribute allocations to `tag` until the returned guard is dropped
    /// (the previous tag is then restored, so scopes nest):
    ///
    /// ```
    /// # use sknn_store::{Pager, StructureTag};
    /// let pager = Pager::new(8);
    /// let dmtm_page = {
    ///     let _scope = pager.tag_scope(StructureTag::Dmtm);
    ///     pager.alloc() // tagged Dmtm
    /// };
    /// assert_eq!(pager.tag_of(dmtm_page), StructureTag::Dmtm);
    /// ```
    pub fn tag_scope(&self, tag: StructureTag) -> TagScope<'_> {
        let mut g = self.inner.lock();
        let previous = std::mem::replace(&mut g.alloc_tag, tag);
        drop(g);
        TagScope { pager: self, previous }
    }

    /// Allocate a fresh zeroed page, tagged with the active scope's tag.
    pub fn alloc(&self) -> PageId {
        let mut g = self.inner.lock();
        let tag = g.alloc_tag;
        g.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        g.tags.push(tag);
        PageId(g.pages.len() as u64 - 1)
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// The structure a page was allocated under.
    pub fn tag_of(&self, id: PageId) -> StructureTag {
        self.inner.lock().tags[id.0 as usize]
    }

    /// Overwrite bytes within a page. Counts one write. Not routed through
    /// the buffer pool: structures are built once, then queried.
    pub fn write(&self, id: PageId, offset: usize, bytes: &[u8]) {
        let mut g = self.inner.lock();
        assert!(offset + bytes.len() <= PAGE_SIZE, "write past page end");
        g.pages[id.0 as usize][offset..offset + bytes.len()].copy_from_slice(bytes);
        g.stats.writes += 1;
        let t = g.tags[id.0 as usize].idx();
        g.by_tag[t].writes += 1;
    }

    /// Read a page through the buffer pool, handing its bytes to `f`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        let mut g = self.inner.lock();
        let t = g.tags[id.0 as usize].idx();
        g.stats.logical_reads += 1;
        g.by_tag[t].logical_reads += 1;
        g.clock += 1;
        let clock = g.clock;
        let mut stall = Duration::ZERO;
        if g.pool.insert(id.0, clock).is_none() {
            g.stats.physical_reads += 1;
            g.by_tag[t].physical_reads += 1;
            stall = g.read_stall;
            if g.pool.len() > g.pool_capacity {
                // Evict the least-recently-used page (linear scan; pools are
                // small and misses already model a ~ms disk access).
                if let Some((&victim, _)) = g.pool.iter().min_by_key(|(_, &stamp)| stamp) {
                    if victim != id.0 {
                        g.pool.remove(&victim);
                        g.evictions += 1;
                        let vt = g.tags[victim as usize].idx();
                        g.evictions_by_tag[vt] += 1;
                    }
                }
            }
        }
        if stall > Duration::ZERO {
            // Pay the simulated disk latency with the lock released so
            // other threads' reads (and their stalls) proceed in parallel.
            drop(g);
            std::thread::sleep(stall);
            g = self.inner.lock();
        }
        f(&g.pages[id.0 as usize])
    }

    /// Copy a whole page out (convenience for tests).
    pub fn read_page(&self, id: PageId) -> Vec<u8> {
        self.with_page(id, |b| b.to_vec())
    }

    /// Current statistics snapshot (all structures combined).
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Statistics for one structure's pages.
    pub fn stats_for(&self, tag: StructureTag) -> IoStats {
        self.inner.lock().by_tag[tag.idx()]
    }

    /// Per-structure statistics for every tag with any traffic, in
    /// [`StructureTag::ALL`] order.
    pub fn io_by_structure(&self) -> Vec<(StructureTag, IoStats)> {
        let g = self.inner.lock();
        StructureTag::ALL
            .into_iter()
            .map(|t| (t, g.by_tag[t.idx()]))
            .filter(|(_, s)| *s != IoStats::default())
            .collect()
    }

    /// Pages pushed out of the buffer pool since the last reset.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// Evictions of one structure's pages since the last reset.
    pub fn evictions_for(&self, tag: StructureTag) -> u64 {
        self.inner.lock().evictions_by_tag[tag.idx()]
    }

    /// Buffer-pool hit rate since the last reset (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let s = self.stats();
        if s.logical_reads == 0 {
            0.0
        } else {
            s.hits() as f64 / s.logical_reads as f64
        }
    }

    /// Zero the counters (e.g. before timing a query), including the
    /// per-structure breakdown and eviction counts. The pool contents are
    /// kept: a warm cache across queries is realistic. Page tags persist —
    /// they describe what a page *is*, not traffic.
    pub fn reset_stats(&self) {
        let mut g = self.inner.lock();
        g.stats = IoStats::default();
        g.by_tag = [IoStats::default(); StructureTag::COUNT];
        g.evictions = 0;
        g.evictions_by_tag = [0; StructureTag::COUNT];
    }

    /// Drop every cached page (cold-start a query).
    pub fn clear_pool(&self) {
        self.inner.lock().pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_roundtrip() {
        let p = Pager::new(8);
        let a = p.alloc();
        let b = p.alloc();
        assert_ne!(a, b);
        p.write(a, 100, b"hello");
        p.write(b, 0, b"world");
        assert_eq!(&p.read_page(a)[100..105], b"hello");
        assert_eq!(&p.read_page(b)[..5], b"world");
    }

    #[test]
    fn hits_are_free_misses_are_charged() {
        let p = Pager::new(4);
        let ids: Vec<_> = (0..3).map(|_| p.alloc()).collect();
        p.reset_stats();
        for &id in &ids {
            p.with_page(id, |_| ());
        }
        assert_eq!(p.stats().physical_reads, 3);
        // Re-reading cached pages adds logical but not physical reads.
        for &id in &ids {
            p.with_page(id, |_| ());
        }
        let s = p.stats();
        assert_eq!(s.physical_reads, 3);
        assert_eq!(s.logical_reads, 6);
        assert_eq!(s.hits(), 3);
        assert_eq!(s.hits(), s.logical_reads - s.physical_reads);
    }

    #[test]
    fn lru_eviction_order() {
        let p = Pager::new(2);
        let a = p.alloc();
        let b = p.alloc();
        let c = p.alloc();
        p.reset_stats();
        p.with_page(a, |_| ()); // miss
        p.with_page(b, |_| ()); // miss
        p.with_page(a, |_| ()); // hit, refreshes a
        p.with_page(c, |_| ()); // miss, evicts b (LRU)
        p.with_page(a, |_| ()); // hit (still cached)
        p.with_page(b, |_| ()); // miss (was evicted)
        assert_eq!(p.stats().physical_reads, 4);
    }

    #[test]
    fn clear_pool_forces_cold_reads() {
        let p = Pager::new(8);
        let a = p.alloc();
        p.with_page(a, |_| ());
        p.clear_pool();
        p.reset_stats();
        p.with_page(a, |_| ());
        assert_eq!(p.stats().physical_reads, 1);
    }

    #[test]
    #[should_panic(expected = "past page end")]
    fn write_past_end_panics() {
        let p = Pager::new(1);
        let a = p.alloc();
        p.write(a, PAGE_SIZE - 2, b"abc");
    }

    #[test]
    fn tag_scopes_nest_and_restore() {
        let p = Pager::new(8);
        let outside = p.alloc();
        let (dmtm_page, msdn_page) = {
            let _dmtm = p.tag_scope(StructureTag::Dmtm);
            let d = p.alloc();
            let m = {
                let _msdn = p.tag_scope(StructureTag::Msdn);
                p.alloc()
            };
            // Inner scope dropped: back to Dmtm.
            assert_eq!(p.tag_of(p.alloc()), StructureTag::Dmtm);
            (d, m)
        };
        assert_eq!(p.tag_of(outside), StructureTag::Other);
        assert_eq!(p.tag_of(dmtm_page), StructureTag::Dmtm);
        assert_eq!(p.tag_of(msdn_page), StructureTag::Msdn);
        // Scope fully unwound.
        assert_eq!(p.tag_of(p.alloc()), StructureTag::Other);
    }

    #[test]
    fn per_structure_attribution_sums_to_global() {
        let p = Pager::new(4);
        let dmtm: Vec<_> = {
            let _s = p.tag_scope(StructureTag::Dmtm);
            (0..3).map(|_| p.alloc()).collect()
        };
        let msdn: Vec<_> = {
            let _s = p.tag_scope(StructureTag::Msdn);
            (0..2).map(|_| p.alloc()).collect()
        };
        p.reset_stats();
        for &id in dmtm.iter().chain(&msdn).chain(&dmtm) {
            p.with_page(id, |_| ());
        }
        let global = p.stats();
        let per: Vec<_> = p.io_by_structure();
        let sum_phys: u64 = per.iter().map(|(_, s)| s.physical_reads).sum();
        let sum_logical: u64 = per.iter().map(|(_, s)| s.logical_reads).sum();
        assert_eq!(sum_phys, global.physical_reads);
        assert_eq!(sum_logical, global.logical_reads);
        // Each tag's own identity also holds.
        for (_, s) in &per {
            assert_eq!(s.hits(), s.logical_reads - s.physical_reads);
        }
        // 3 dmtm pages read twice (second round all hits: pool of 4 kept
        // them... unless msdn reads evicted one) — just pin the logical
        // split, which is deterministic.
        assert_eq!(p.stats_for(StructureTag::Dmtm).logical_reads, 6);
        assert_eq!(p.stats_for(StructureTag::Msdn).logical_reads, 2);
        assert_eq!(p.stats_for(StructureTag::Other), IoStats::default());
    }

    #[test]
    fn evictions_counted_at_pool_capacity() {
        let p = Pager::new(2);
        let pages: Vec<_> = {
            let _s = p.tag_scope(StructureTag::Dmtm);
            (0..3).map(|_| p.alloc()).collect()
        };
        p.reset_stats();
        p.with_page(pages[0], |_| ()); // miss, pool {0}
        p.with_page(pages[1], |_| ()); // miss, pool {0,1}
        assert_eq!(p.evictions(), 0, "no eviction below capacity");
        p.with_page(pages[2], |_| ()); // miss, evicts page 0
        assert_eq!(p.evictions(), 1);
        assert_eq!(p.evictions_for(StructureTag::Dmtm), 1);
        assert_eq!(p.evictions_for(StructureTag::Msdn), 0);
        // Victim really is gone: re-reading it is a physical read.
        let before = p.stats().physical_reads;
        p.with_page(pages[0], |_| ());
        assert_eq!(p.stats().physical_reads, before + 1);
    }

    #[test]
    fn hit_rate_tracks_stats() {
        let p = Pager::new(4);
        let a = p.alloc();
        p.reset_stats();
        assert_eq!(p.hit_rate(), 0.0);
        p.with_page(a, |_| ()); // miss
        p.with_page(a, |_| ()); // hit
        p.with_page(a, |_| ()); // hit
        assert!((p.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn read_stall_sleeps_on_miss_only() {
        use std::time::{Duration, Instant};
        let p = Pager::new(4);
        let a = p.alloc();
        p.clear_pool();
        p.set_read_stall(Duration::from_millis(20));
        let t = Instant::now();
        p.with_page(a, |_| ()); // miss: pays the stall
        assert!(t.elapsed() >= Duration::from_millis(20));
        let t = Instant::now();
        p.with_page(a, |_| ()); // hit: must not sleep
        assert!(t.elapsed() < Duration::from_millis(20));
    }

    /// The stall is slept outside the pool mutex: a second thread must be
    /// able to get a hit while the first is mid-stall.
    #[test]
    fn read_stall_does_not_hold_the_lock() {
        use std::time::{Duration, Instant};
        let p = Pager::new(4);
        let a = p.alloc();
        let b = p.alloc();
        p.with_page(b, |_| ()); // b resident
        p.set_read_stall(Duration::from_millis(50));
        std::thread::scope(|s| {
            s.spawn(|| p.with_page(a, |_| ())); // miss: stalls 50 ms
            std::thread::sleep(Duration::from_millis(10)); // let it enter the stall
            let t = Instant::now();
            p.with_page(b, |_| ()); // hit on another page
            assert!(t.elapsed() < Duration::from_millis(40), "hit blocked behind a stalling miss");
        });
    }
}
