//! Disk latency model.
//!
//! The paper reports *response time = CPU time + I/O time* measured against
//! a 2002-era IDE disk through Oracle. We report the same decomposition by
//! costing each physical page read with a configurable latency. The default
//! approximates that hardware (average ~8 ms positioning + transfer for an
//! 8 KiB block); benches can pick other models without touching query code.

use crate::pager::IoStats;
use std::time::Duration;

/// Cost model for physical page reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Cost of one random page read.
    pub per_read_ms: f64,
}

impl DiskModel {
    /// ~2002 commodity IDE disk behind a database server.
    pub fn vintage_2002() -> Self {
        Self { per_read_ms: 8.0 }
    }

    /// A modern NVMe-ish device, for sensitivity studies.
    pub fn modern_ssd() -> Self {
        Self { per_read_ms: 0.08 }
    }

    /// Free I/O (isolates CPU cost).
    pub fn free() -> Self {
        Self { per_read_ms: 0.0 }
    }

    /// Simulated I/O time for a traffic snapshot.
    pub fn io_time(&self, stats: &IoStats) -> Duration {
        Duration::from_secs_f64(stats.physical_reads as f64 * self.per_read_ms / 1000.0)
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::vintage_2002()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_time_scales_with_reads() {
        let m = DiskModel::vintage_2002();
        let s = IoStats { physical_reads: 1000, logical_reads: 5000, writes: 0 };
        assert_eq!(m.io_time(&s), Duration::from_secs(8));
        assert_eq!(DiskModel::free().io_time(&s), Duration::ZERO);
    }

    #[test]
    fn hits_do_not_cost() {
        let m = DiskModel::default();
        let s = IoStats { physical_reads: 0, logical_reads: 10_000, writes: 0 };
        assert_eq!(m.io_time(&s), Duration::ZERO);
    }
}
