//! Pages and page identifiers.

/// Size of a disk page in bytes (Oracle's default block size in the paper's
/// era was 8 KiB).
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within a [`crate::Pager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// The invalid.
    pub const INVALID: PageId = PageId(u64::MAX);

    /// Is valid.
    pub fn is_valid(&self) -> bool {
        *self != Self::INVALID
    }
}

/// Little-endian integer codecs used by every on-page layout in this crate.
pub mod codec {
    /// Put u16.
    pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
        buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Get u16.
    pub fn get_u16(buf: &[u8], off: usize) -> u16 {
        u16::from_le_bytes(buf[off..off + 2].try_into().unwrap())
    }

    /// Put u32.
    pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
        buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Get u32.
    pub fn get_u32(buf: &[u8], off: usize) -> u32 {
        u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
    }

    /// Put u64.
    pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
        buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Get u64.
    pub fn get_u64(buf: &[u8], off: usize) -> u64 {
        u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
    }

    /// Put f64.
    pub fn put_f64(buf: &mut [u8], off: usize, v: f64) {
        buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Get f64.
    pub fn get_f64(buf: &[u8], off: usize) -> f64 {
        f64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::codec::*;
    use super::*;

    #[test]
    fn invalid_page_id() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
    }

    #[test]
    fn codec_roundtrip() {
        let mut buf = vec![0u8; 64];
        put_u16(&mut buf, 0, 0xBEEF);
        put_u32(&mut buf, 2, 0xDEADBEEF);
        put_u64(&mut buf, 6, u64::MAX - 3);
        put_f64(&mut buf, 14, -1234.5678);
        assert_eq!(get_u16(&buf, 0), 0xBEEF);
        assert_eq!(get_u32(&buf, 2), 0xDEADBEEF);
        assert_eq!(get_u64(&buf, 6), u64::MAX - 3);
        assert_eq!(get_f64(&buf, 14), -1234.5678);
    }
}
