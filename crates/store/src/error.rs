//! Typed storage errors.
//!
//! Every failure the physical read path can produce is enumerated here, so
//! callers (the MR3 engine above all) can decide *per kind* whether to
//! retry, degrade to coarser-resolution bounds, or give up with a typed
//! error — instead of the process dying in an `unwrap()`.

use std::fmt;

/// `Result` specialised to storage failures.
pub type StoreResult<T> = Result<T, StoreError>;

/// A failure on the physical read path.
///
/// The variants carry the page so errors stay attributable; they are
/// `Clone + Eq` so a single-flight leader's error can be compared and
/// reported by every coalesced reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The page read back does not match the checksum recorded when it was
    /// written: the bytes served by the "disk" are not the bytes stored.
    /// Detected before the page is admitted to the buffer pool, so corrupt
    /// data is never served to a caller.
    Checksum {
        /// Page whose verification failed.
        page: u64,
        /// Checksum recorded at write time.
        stored: u64,
        /// Checksum computed over the bytes read back.
        computed: u64,
    },
    /// A transient read fault persisted through the whole retry budget.
    TransientRead {
        /// Page whose read kept failing.
        page: u64,
        /// Read attempts performed (1 initial + retries).
        attempts: u32,
    },
    /// A permanent, non-retryable media error: retrying cannot help.
    PermanentRead {
        /// Page whose read failed.
        page: u64,
    },
    /// A durable page write (dirty-page flush) failed: nothing reached the
    /// disk and the page stays dirty.
    WriteFault {
        /// Page whose flush failed.
        page: u64,
    },
    /// A WAL fsync failed: no pending log byte became durable, so the
    /// committing operation must abort and withdraw its records.
    FsyncFailed {
        /// LSN of the commit record whose fsync failed.
        lsn: u64,
    },
}

impl StoreError {
    /// Page the failure is attributed to. [`StoreError::FsyncFailed`] is
    /// not page-scoped and reports `u64::MAX`.
    pub fn page(&self) -> u64 {
        match *self {
            StoreError::Checksum { page, .. }
            | StoreError::TransientRead { page, .. }
            | StoreError::PermanentRead { page }
            | StoreError::WriteFault { page } => page,
            StoreError::FsyncFailed { .. } => u64::MAX,
        }
    }

    /// Whether retrying the read could plausibly succeed. `false` means
    /// the caller should degrade or fail, not spin.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::TransientRead { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StoreError::Checksum { page, stored, computed } => write!(
                f,
                "checksum mismatch on page {page}: stored {stored:#018x}, read back {computed:#018x}"
            ),
            StoreError::TransientRead { page, attempts } => {
                write!(f, "transient read fault on page {page} persisted through {attempts} attempts")
            }
            StoreError::PermanentRead { page } => {
                write!(f, "permanent read failure on page {page}")
            }
            StoreError::WriteFault { page } => {
                write!(f, "durable write of page {page} failed; page stays dirty")
            }
            StoreError::FsyncFailed { lsn } => {
                write!(f, "WAL fsync for commit lsn {lsn} failed; operation aborted")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_page() {
        let errs = [
            StoreError::Checksum { page: 7, stored: 1, computed: 2 },
            StoreError::TransientRead { page: 7, attempts: 4 },
            StoreError::PermanentRead { page: 7 },
        ];
        for e in errs {
            assert!(e.to_string().contains('7'), "{e}");
            assert_eq!(e.page(), 7);
        }
        assert!(errs[1].is_transient());
        assert!(!errs[0].is_transient());
        assert!(!errs[2].is_transient());
    }
}
