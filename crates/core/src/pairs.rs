//! Surface closest-pair queries (paper §6: the multiresolution framework
//! supports "other distance comparison based queries, such as range
//! queries and closest pair queries").
//!
//! Finds the pair of scene objects with the smallest *surface* distance
//! without computing any exact surface distance: pairs are pruned by the
//! Euclidean lower bound, then surviving pairs' distance ranges are
//! tightened level by level until one pair's upper bound undercuts every
//! other pair's lower bound.

use crate::bounds::DistRange;
use crate::metrics::{CpuTimer, QueryStats};
use crate::mr3::Mr3Engine;
use crate::ranking::RankingContext;

/// Result of a closest-pair query.
#[derive(Debug, Clone)]
pub struct ClosestPair {
    /// The winning object ids, `a < b`.
    pub a: u32,
    /// Second endpoint.
    pub b: u32,
    /// Bracketing range of the winning pair's surface distance.
    pub range: DistRange,
    /// Whether the winner provably beats every other pair (false only when
    /// the schedule ended with overlapping ranges; the midpoint-closest
    /// pair is then returned).
    pub proven: bool,
    /// Cost counters of the whole pair search.
    pub stats: QueryStats,
}

struct PairState {
    a: u32,
    b: u32,
    range: DistRange,
    alive: bool,
}

impl<'s, 'm> Mr3Engine<'s, 'm> {
    /// Find the two objects closest by surface distance.
    pub fn closest_pair(&self) -> Option<ClosestPair> {
        let scene = self.scene();
        let n = scene.num_objects();
        if n < 2 {
            return None;
        }
        let mut stats = QueryStats::default();
        if self.cold_cache {
            self.pager().clear_pool();
        }
        self.pager().reset_stats();
        let timer = CpuTimer::start();
        let ctx: RankingContext<'_, 'm> = self.ranking_context();

        // All pairs, seeded with the Euclidean lower bound.
        let mut pairs: Vec<PairState> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n as u32 {
            for j in i + 1..n as u32 {
                let d = scene.object(i).point.pos.dist(scene.object(j).point.pos);
                let mut range = DistRange::unbounded();
                range.tighten_lb(d);
                if scene.object(i).point.tri == scene.object(j).point.tri {
                    range.tighten_ub(d);
                }
                pairs.push(PairState { a: i, b: j, range, alive: true });
            }
        }
        stats.candidates = pairs.len();

        let schedule = &self.config().schedule;
        let mut best_ub = f64::INFINITY;
        for iter in 0..schedule.len() {
            // Prune: a pair whose lower bound exceeds the best upper bound
            // can never win.
            for p in pairs.iter_mut() {
                if p.alive && p.range.lb > best_ub + 1e-9 {
                    p.alive = false;
                }
            }
            // Termination: one pair's ub at or below every other's lb.
            if self.pair_winner(&pairs).is_some() {
                break;
            }
            let frac = schedule.dmtm[iter];
            let lvl = schedule.msdn_level(iter);
            for p in pairs.iter_mut() {
                if !p.alive || p.range.width() <= 1e-9 {
                    continue;
                }
                // Only refine pairs that could still win.
                if p.range.lb > best_ub + 1e-9 {
                    continue;
                }
                let est = ctx.estimate_pair(
                    &scene.object(p.a).point,
                    &scene.object(p.b).point,
                    frac,
                    lvl,
                    &mut stats,
                );
                p.range.tighten_lb(est.lb);
                p.range.tighten_ub(est.ub);
                best_ub = best_ub.min(p.range.ub);
            }
            stats.iterations += 1;
        }

        // Pick the winner (proven or by midpoint).
        let proven = self.pair_winner(&pairs);
        let winner = proven.unwrap_or_else(|| {
            pairs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.alive)
                .min_by(|(_, x), (_, y)| {
                    x.range.estimate().partial_cmp(&y.range.estimate()).unwrap()
                })
                .map(|(i, _)| i)
                .expect("at least one pair alive")
        });
        let w = &pairs[winner];
        timer.stop_into(&mut stats.cpu);
        stats.pages = self.pager().stats().physical_reads;
        Some(ClosestPair { a: w.a, b: w.b, range: w.range, proven: proven.is_some(), stats })
    }

    /// Index of a pair whose ub is at or below every other alive pair's lb.
    fn pair_winner(&self, pairs: &[PairState]) -> Option<usize> {
        let (mut best, mut best_ub) = (None, f64::INFINITY);
        for (i, p) in pairs.iter().enumerate() {
            if p.alive && p.range.ub < best_ub {
                best_ub = p.range.ub;
                best = Some(i);
            }
        }
        let bi = best?;
        let ok = pairs
            .iter()
            .enumerate()
            .all(|(i, p)| i == bi || !p.alive || p.range.lb >= best_ub - 1e-9);
        ok.then_some(bi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ch::ChEngine;
    use crate::config::Mr3Config;
    use crate::workload::SceneBuilder;
    use sknn_terrain::dem::TerrainConfig;

    #[test]
    fn closest_pair_matches_brute_force() {
        let mesh = TerrainConfig::ep().with_grid(17).build_mesh(321);
        let scene = SceneBuilder::new(&mesh).object_count(16).seed(6).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let got = engine.closest_pair().unwrap();

        // Brute force with the exact engine.
        let exact = ChEngine::new(&scene);
        let mut best = (f64::INFINITY, 0u32, 0u32);
        for i in 0..scene.num_objects() as u32 {
            for j in i + 1..scene.num_objects() as u32 {
                let d = exact.pair_distance(scene.object(i).point, scene.object(j).point);
                if d < best.0 {
                    best = (d, i, j);
                }
            }
        }
        let got_exact = exact.pair_distance(scene.object(got.a).point, scene.object(got.b).point);
        assert!(
            got_exact <= best.0 * 1.05 + 1e-6,
            "returned pair at {got_exact}, true best {}",
            best.0
        );
        // The reported range must bracket the returned pair's distance.
        assert!(got.range.lb <= got_exact + 1e-6 && got_exact <= got.range.ub + 1e-6);
    }

    #[test]
    fn closest_pair_trivial_cases() {
        let mesh = TerrainConfig::ep().with_grid(9).build_mesh(11);
        let single = SceneBuilder::new(&mesh).object_count(1).seed(1).build();
        let engine = Mr3Engine::build(&mesh, &single, &Mr3Config::default());
        assert!(engine.closest_pair().is_none());

        let two = SceneBuilder::new(&mesh).object_count(2).seed(1).build();
        let engine = Mr3Engine::build(&mesh, &two, &Mr3Config::default());
        let cp = engine.closest_pair().unwrap();
        assert_eq!((cp.a, cp.b), (0, 1));
    }

    #[test]
    fn closest_pair_prunes_most_pairs() {
        let mesh = TerrainConfig::ep().with_grid(17).build_mesh(7);
        let scene = SceneBuilder::new(&mesh).object_count(20).seed(3).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let cp = engine.closest_pair().unwrap();
        // 190 pairs exist; the Euclidean + range pruning should keep the
        // estimator from refining anywhere near all of them every level.
        assert!(cp.stats.candidates == 190);
        assert!(
            (cp.stats.ub_estimations as f64) < 190.0 * 3.0,
            "too many estimations: {}",
            cp.stats.ub_estimations
        );
    }
}
