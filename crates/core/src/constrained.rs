//! Obstacle-constrained surface k-NN — the paper's stated next step (§6):
//! "an efficient sk-NN query with obstacle constraints, which can be found
//! in many real-life sk-NN applications, such as energy consumption and
//! vehicle stability considerations for rovers, and general traversability
//! constraints."
//!
//! An [`ObstacleMask`] marks facets as untraversable (too steep for the
//! vehicle, water, restricted areas). The constrained surface distance is
//! the shortest surface path avoiding those facets. The range-ranking
//! framework carries over with one twist in each direction:
//!
//! * **lower bounds stay valid unchanged**: the constrained distance is at
//!   least the unconstrained one, so the MSDN bound (and the Euclidean
//!   one) still bracket from below;
//! * **upper bounds must respect the mask**: DMTM fronts cannot (their
//!   recorded paths may cross obstacles), so upper bounds come from
//!   Dijkstra over an obstacle-filtered pathnet — every path in that graph
//!   stays on traversable facets by construction.
//!
//! Ranking then terminates with the usual `ub(p_k) <= lb(p_{k+1})` test.

use crate::bounds::DistRange;
use crate::metrics::{CpuTimer, Neighbor, QueryResult, QueryStats};
use crate::workload::{Scene, SurfacePoint};
use sknn_geodesic::graph::Dijkstra;
use sknn_geodesic::pathnet::Pathnet;
use sknn_multires::{build_dmtm, PagedDmtm};
use sknn_sdn::{Msdn, MsdnConfig, PagedMsdn};
use sknn_store::Pager;
use sknn_terrain::mesh::{TerrainMesh, TriId};

/// Per-facet traversability flags.
#[derive(Debug, Clone)]
pub struct ObstacleMask {
    blocked: Vec<bool>,
}

impl ObstacleMask {
    /// Everything traversable.
    pub fn none(mesh: &TerrainMesh) -> Self {
        Self { blocked: vec![false; mesh.num_triangles()] }
    }

    /// Block facets steeper than `max_slope` (rise over run) — the rover
    /// stability constraint from the paper's motivation.
    pub fn from_slope_limit(mesh: &TerrainMesh, max_slope: f64) -> Self {
        let blocked = (0..mesh.num_triangles() as TriId)
            .map(|t| {
                let n = mesh.triangle(t).normal().normalized();
                let horiz = (n.x * n.x + n.y * n.y).sqrt();
                let vert = n.z.abs().max(1e-12);
                horiz / vert > max_slope
            })
            .collect();
        Self { blocked }
    }

    /// Block facets whose projection intersects a rectangle (e.g. a lake or
    /// a restricted zone).
    pub fn from_region(mesh: &TerrainMesh, region: &sknn_geom::Rect2) -> Self {
        let blocked = (0..mesh.num_triangles() as TriId)
            .map(|t| mesh.triangle(t).mbr_xy().intersects(region))
            .collect();
        Self { blocked }
    }

    /// Combine two masks (blocked if blocked in either).
    pub fn union(&self, other: &ObstacleMask) -> ObstacleMask {
        ObstacleMask {
            blocked: self.blocked.iter().zip(&other.blocked).map(|(&a, &b)| a || b).collect(),
        }
    }

    /// Whether facet `t` is untraversable.
    pub fn is_blocked(&self, t: TriId) -> bool {
        self.blocked[t as usize]
    }

    /// Fraction of facets blocked.
    pub fn blocked_fraction(&self) -> f64 {
        if self.blocked.is_empty() {
            return 0.0;
        }
        self.blocked.iter().filter(|&&b| b).count() as f64 / self.blocked.len() as f64
    }
}

/// Obstacle-aware surface k-NN engine.
pub struct ConstrainedEngine<'s, 'm> {
    mesh: &'m TerrainMesh,
    scene: &'s Scene<'m>,
    mask: ObstacleMask,
    pathnet: Pathnet,
    /// Leaf-level terrain store for page accounting of pathnet regions.
    terrain_store: PagedDmtm,
    /// 100 % SDN for (unconstrained, hence still valid) lower bounds.
    msdn: PagedMsdn,
    pager: Pager,
    /// Drop cached pages before each query (cold-cache measurement).
    pub cold_cache: bool,
}

impl<'s, 'm> ConstrainedEngine<'s, 'm> {
    /// Build the engine: obstacle-filtered pathnet + SDN + terrain store.
    pub fn build(
        mesh: &'m TerrainMesh,
        scene: &'s Scene<'m>,
        mask: ObstacleMask,
        pool_pages: usize,
    ) -> Self {
        let pager = Pager::new(pool_pages);
        let terrain_store = PagedDmtm::build(&pager, build_dmtm(mesh));
        let msdn_cfg = MsdnConfig { levels: vec![1.0], plane_spacing: None };
        let msdn = PagedMsdn::build(&pager, &Msdn::build(mesh, &msdn_cfg));
        let mask_ref = &mask;
        let filter = move |t: TriId| !mask_ref.is_blocked(t);
        let pathnet = Pathnet::build(mesh, 1, Some(&filter));
        Self { mesh, scene, mask, pathnet, terrain_store, msdn, pager, cold_cache: true }
    }

    /// The traversability mask in force.
    pub fn mask(&self) -> &ObstacleMask {
        &self.mask
    }

    /// Constrained surface distance upper bounds from `q` to every object,
    /// by one multi-source Dijkstra over the obstacle-filtered pathnet.
    /// `f64::INFINITY` marks unreachable objects (cut off by obstacles).
    fn constrained_dists(&self, q: SurfacePoint, stats: &mut QueryStats) -> Vec<f64> {
        // Page charge: the traversable region's terrain records.
        let _ = self.terrain_store.fetch_front(&self.pager, 0, None);
        if self.mask.is_blocked(q.tri) {
            return vec![f64::INFINITY; self.scene.num_objects()];
        }
        let src = self.pathnet.embedding(self.mesh, q.to_mesh_point());
        let d = Dijkstra::run_multi(self.pathnet.graph(), &src, None);
        stats.settled += d.settled;
        stats.absorb_queue(&d.queue);
        stats.ub_estimations += 1;
        self.scene
            .objects()
            .iter()
            .map(|o| {
                if self.mask.is_blocked(o.point.tri) {
                    return f64::INFINITY;
                }
                self.pathnet
                    .embedding(self.mesh, o.point.to_mesh_point())
                    .iter()
                    .map(|&(v, exit)| d.dist[v as usize] + exit)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    /// Answer an obstacle-constrained surface k-NN query. Objects standing
    /// on blocked facets or unreachable around obstacles are never
    /// returned.
    pub fn query(&self, q: SurfacePoint, k: usize) -> QueryResult {
        let mut stats = QueryStats::default();
        if self.cold_cache {
            self.pager.clear_pool();
        }
        self.pager.reset_stats();
        let timer = CpuTimer::start();

        let ubs = self.constrained_dists(q, &mut stats);
        stats.candidates = self.scene.num_objects();
        let mut order: Vec<(f64, u32)> = ubs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(i, &d)| (d, i as u32))
            .collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        order.truncate(k);

        // Lower bounds for the winners: the unconstrained SDN bound is a
        // valid constrained bound too (obstacles only lengthen paths).
        let neighbors = order
            .into_iter()
            .map(|(ub, id)| {
                let p = self.scene.object(id).point;
                // A failed SDN read degrades to the Euclidean lower bound,
                // which remains valid under obstacles too.
                let sdn_lb = self
                    .msdn
                    .lower_bound(&self.pager, 0, q.pos, p.pos, None)
                    .map(|lb| lb.value)
                    .unwrap_or(0.0);
                let lb = sdn_lb.max(q.pos.dist(p.pos)).min(ub);
                stats.lb_estimations += 1;
                Neighbor { id, range: DistRange::new(lb, ub) }
            })
            .collect();

        timer.stop_into(&mut stats.cpu);
        stats.pages = self.pager.stats().physical_reads;
        QueryResult { neighbors, stats, trace: None, degraded: None, radius: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SceneBuilder;
    use sknn_geom::{Point2, Rect2};
    use sknn_terrain::dem::TerrainConfig;

    fn flatish() -> TerrainMesh {
        TerrainConfig::ep().with_grid(17).build_mesh(808)
    }

    #[test]
    fn no_obstacles_matches_unconstrained_ordering() {
        let mesh = flatish();
        let scene = SceneBuilder::new(&mesh).object_count(15).seed(2).build();
        let engine = ConstrainedEngine::build(&mesh, &scene, ObstacleMask::none(&mesh), 256);
        let q = scene.random_query(1);
        let res = engine.query(q, 4);
        assert_eq!(res.neighbors.len(), 4);
        // Without obstacles the pathnet distance is the usual approximate
        // surface distance; ranges must be ordered and bracketing.
        for w in res.neighbors.windows(2) {
            assert!(w[0].range.ub <= w[1].range.ub + 1e-9);
        }
        for n in &res.neighbors {
            assert!(n.range.lb <= n.range.ub + 1e-9);
            assert!(n.range.lb >= q.pos.dist(scene.object(n.id).point.pos) - 1e-6);
        }
    }

    #[test]
    fn wall_obstacle_forces_detour() {
        let mesh = flatish();
        let scene = SceneBuilder::new(&mesh).object_count(30).seed(5).build();
        let e = mesh.extent();
        // A wall across the middle with a gap at the top edge.
        let wall = Rect2::new(
            Point2::new(e.lo.x + e.width() * 0.48, e.lo.y),
            Point2::new(e.lo.x + e.width() * 0.52, e.lo.y + e.height() * 0.8),
        );
        let mask = ObstacleMask::from_region(&mesh, &wall);
        assert!(mask.blocked_fraction() > 0.0);
        let free = ConstrainedEngine::build(&mesh, &scene, ObstacleMask::none(&mesh), 256);
        let walled = ConstrainedEngine::build(&mesh, &scene, mask, 256);

        // A query on the left; compare distances to objects on the right.
        let q = scene
            .surface_point(Point2::new(e.lo.x + e.width() * 0.2, e.lo.y + e.height() * 0.3))
            .unwrap();
        let free_res = free.query(q, scene.num_objects());
        let wall_res = walled.query(q, scene.num_objects());
        let lookup = |res: &QueryResult, id: u32| {
            res.neighbors.iter().find(|n| n.id == id).map(|n| n.range.ub)
        };
        let mut detours = 0;
        for o in scene.objects() {
            if o.point.pos.x > e.lo.x + e.width() * 0.6 {
                let (Some(df), Some(dw)) = (lookup(&free_res, o.id), lookup(&wall_res, o.id))
                else {
                    continue; // object on the wall itself
                };
                assert!(dw >= df - 1e-6, "wall shortened a path");
                if dw > df * 1.05 {
                    detours += 1;
                }
            }
        }
        assert!(detours > 0, "the wall never forced a detour");
    }

    #[test]
    fn objects_on_obstacles_are_excluded() {
        let mesh = flatish();
        let scene = SceneBuilder::new(&mesh).object_count(20).seed(9).build();
        let e = mesh.extent();
        // Block the half of the terrain containing some objects.
        let half =
            Rect2::new(Point2::new(e.lo.x + e.width() * 0.5, e.lo.y), Point2::new(e.hi.x, e.hi.y));
        let mask = ObstacleMask::from_region(&mesh, &half);
        let engine = ConstrainedEngine::build(&mesh, &scene, mask, 256);
        let q = scene
            .surface_point(Point2::new(e.lo.x + e.width() * 0.2, e.lo.y + e.height() * 0.5))
            .unwrap();
        let res = engine.query(q, scene.num_objects());
        for n in &res.neighbors {
            let o = scene.object(n.id);
            assert!(
                o.point.pos.x < e.lo.x + e.width() * 0.5 + mesh.mean_edge_length(),
                "object {} beyond the blocked half was returned",
                n.id
            );
        }
    }

    #[test]
    fn blocked_query_point_returns_nothing() {
        let mesh = flatish();
        let scene = SceneBuilder::new(&mesh).object_count(5).seed(1).build();
        let mask = ObstacleMask::from_region(&mesh, &mesh.extent());
        let engine = ConstrainedEngine::build(&mesh, &scene, mask, 64);
        let q = scene.random_query(1);
        assert!(engine.query(q, 3).neighbors.is_empty());
    }

    #[test]
    fn slope_mask_blocks_steep_facets_only() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(6);
        let strict = ObstacleMask::from_slope_limit(&mesh, 0.2);
        let lax = ObstacleMask::from_slope_limit(&mesh, 5.0);
        assert!(strict.blocked_fraction() > lax.blocked_fraction());
        assert!(lax.blocked_fraction() < 0.1);
        // Union keeps every blocked facet.
        let u = strict.union(&lax);
        assert_eq!(u.blocked_fraction(), strict.blocked_fraction());
    }
}
