//! Surface-distance clustering — the paper's headline application (§1):
//! "Surface distances are used for grouping fauna and flora location data,
//! and sk-NN queries are performed frequently for clustering new
//! sightings ... validating existing groupings once new location data
//! becomes available."
//!
//! [`surface_dbscan`] is density-based clustering (DBSCAN) whose
//! ε-neighbourhoods are **surface range queries**: two sightings cluster
//! together only when they are close *along the terrain*, so a herd split
//! by a canyon is two clusters even when the canyon is narrow in the air.
//! [`assign_sightings`] is the incremental workload: classify new points
//! against an existing clustering with surface 1-NN queries.

use crate::metrics::QueryStats;
use crate::mr3::Mr3Engine;
use crate::workload::SurfacePoint;

/// DBSCAN parameters: neighbourhood radius in surface metres and the core
/// density threshold (neighbours including the point itself).
#[derive(Debug, Clone, Copy)]
pub struct DbscanConfig {
    /// Neighbourhood radius (surface metres).
    pub eps: f64,
    /// Core-point density threshold.
    pub min_pts: usize,
}

/// A clustering of the scene's objects.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Per object: `Some(cluster id)` or `None` for noise.
    pub labels: Vec<Option<u32>>,
    /// The num clusters.
    pub num_clusters: u32,
    /// Aggregate cost of all the surface range queries issued.
    pub stats: QueryStats,
}

impl Clustering {
    /// Object ids of one cluster.
    pub fn members(&self, cluster: u32) -> Vec<u32> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == Some(cluster)).then_some(i as u32))
            .collect()
    }

    /// Number of noise objects.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }
}

/// Density-based clustering of the engine's scene by surface distance.
pub fn surface_dbscan(engine: &Mr3Engine<'_, '_>, cfg: &DbscanConfig) -> Clustering {
    let scene = engine.scene();
    let n = scene.num_objects();
    let mut labels: Vec<Option<u32>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut stats = QueryStats::default();
    let mut next_cluster = 0u32;

    // ε-neighbourhood via a surface range query (includes the point).
    let neighbourhood = |id: u32, stats: &mut QueryStats| -> Vec<u32> {
        let r = engine.range_query(scene.object(id).point, cfg.eps);
        accumulate(stats, &r.stats);
        r.inside
    };

    for start in 0..n as u32 {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        let seeds = neighbourhood(start, &mut stats);
        if seeds.len() < cfg.min_pts {
            continue; // noise (may be claimed by a cluster later)
        }
        let cluster = next_cluster;
        next_cluster += 1;
        labels[start as usize] = Some(cluster);
        let mut frontier: Vec<u32> = seeds;
        while let Some(p) = frontier.pop() {
            if labels[p as usize].is_none() {
                labels[p as usize] = Some(cluster);
            }
            if visited[p as usize] {
                continue;
            }
            visited[p as usize] = true;
            let nbrs = neighbourhood(p, &mut stats);
            if nbrs.len() >= cfg.min_pts {
                for q in nbrs {
                    if !visited[q as usize] || labels[q as usize].is_none() {
                        frontier.push(q);
                    }
                }
            }
        }
    }
    Clustering { labels, num_clusters: next_cluster, stats }
}

/// Incremental sighting assignment: classify each new point by its surface
/// nearest neighbour's cluster, provided it lies within `eps` (otherwise
/// `None` — a potential new grouping). Returns one label per sighting.
pub fn assign_sightings(
    engine: &Mr3Engine<'_, '_>,
    clustering: &Clustering,
    sightings: &[SurfacePoint],
    eps: f64,
) -> Vec<Option<u32>> {
    sightings
        .iter()
        .map(|&s| {
            let res = engine.query(s, 1);
            match res.neighbors.first() {
                Some(n) if n.range.ub <= eps => clustering.labels[n.id as usize],
                _ => None,
            }
        })
        .collect()
}

fn accumulate(into: &mut QueryStats, from: &QueryStats) {
    into.pages += from.pages;
    into.iterations += from.iterations;
    into.candidates += from.candidates;
    into.settled += from.settled;
    into.queue_pushes += from.queue_pushes;
    into.queue_pops += from.queue_pops;
    into.stale_pops += from.stale_pops;
    into.ub_estimations += from.ub_estimations;
    into.lb_estimations += from.lb_estimations;
    into.dummy_lb_hits += from.dummy_lb_hits;
    into.cpu += from.cpu;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mr3Config;
    use crate::workload::SceneBuilder;
    use sknn_geom::Point2;
    use sknn_terrain::dem::TerrainConfig;
    use sknn_terrain::mesh::TerrainMesh;

    /// Two tight groups far apart on a mild terrain.
    fn two_groups(mesh: &TerrainMesh) -> Vec<Point2> {
        let mut pts = Vec::new();
        for i in 0..5 {
            let o = i as f64 * 4.0;
            pts.push(Point2::new(20.0 + o, 22.0 + o * 0.5));
            pts.push(Point2::new(130.0 + o, 128.0 + o * 0.5));
        }
        let _ = mesh;
        pts
    }

    #[test]
    fn separated_groups_form_two_clusters() {
        let mesh = TerrainConfig::ep().with_grid(17).build_mesh(77);
        let scene = SceneBuilder::new(&mesh).objects_at(two_groups(&mesh)).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let c = surface_dbscan(&engine, &DbscanConfig { eps: 40.0, min_pts: 3 });
        assert_eq!(c.num_clusters, 2, "labels: {:?}", c.labels);
        assert_eq!(c.noise_count(), 0);
        // Every member of a group shares its label.
        let l0 = c.labels[0].unwrap();
        let l1 = c.labels[1].unwrap();
        assert_ne!(l0, l1);
        for i in 0..10usize {
            let expect = if i % 2 == 0 { l0 } else { l1 };
            assert_eq!(c.labels[i], Some(expect), "object {i}");
        }
        assert!(c.stats.pages > 0);
    }

    #[test]
    fn huge_eps_single_cluster_tiny_eps_all_noise() {
        let mesh = TerrainConfig::ep().with_grid(17).build_mesh(3);
        let scene = SceneBuilder::new(&mesh).object_count(12).seed(5).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let all = surface_dbscan(&engine, &DbscanConfig { eps: 1e6, min_pts: 2 });
        assert_eq!(all.num_clusters, 1);
        assert_eq!(all.noise_count(), 0);
        let none = surface_dbscan(&engine, &DbscanConfig { eps: 1e-3, min_pts: 2 });
        assert_eq!(none.num_clusters, 0);
        assert_eq!(none.noise_count(), 12);
    }

    #[test]
    fn isolated_point_is_noise() {
        let mesh = TerrainConfig::ep().with_grid(17).build_mesh(4);
        let mut pts = two_groups(&mesh);
        pts.push(Point2::new(80.0, 20.0)); // loner
        let scene = SceneBuilder::new(&mesh).objects_at(pts).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let c = surface_dbscan(&engine, &DbscanConfig { eps: 40.0, min_pts: 3 });
        assert_eq!(c.labels[10], None, "loner was clustered");
        assert_eq!(c.num_clusters, 2);
    }

    #[test]
    fn sighting_assignment_follows_clusters() {
        let mesh = TerrainConfig::ep().with_grid(17).build_mesh(9);
        let scene = SceneBuilder::new(&mesh).objects_at(two_groups(&mesh)).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let c = surface_dbscan(&engine, &DbscanConfig { eps: 40.0, min_pts: 3 });
        let near_a = scene.surface_point(Point2::new(25.0, 25.0)).unwrap();
        let near_b = scene.surface_point(Point2::new(135.0, 132.0)).unwrap();
        let far = scene.surface_point(Point2::new(80.0, 30.0)).unwrap();
        let labels = assign_sightings(&engine, &c, &[near_a, near_b, far], 40.0);
        assert_eq!(labels[0], c.labels[0]);
        assert_eq!(labels[1], c.labels[1]);
        assert_eq!(labels[2], None);
    }
}
