//! Distance ranges.
//!
//! MR3 never computes a surface distance exactly; every candidate carries
//! a range `[lb, ub]` bracketing its true surface distance. Ranges only
//! ever *tighten*: the engine clamps every new estimate against the best
//! seen, so ranges are monotone even where an individual estimator is not
//! (e.g. across non-nested SDN plane sets).

/// A bracketing interval for an unknown surface distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistRange {
    /// Lower bound.
    pub lb: f64,
    /// Upper bound.
    pub ub: f64,
}

impl DistRange {
    /// The vacuous range.
    pub fn unbounded() -> Self {
        Self { lb: 0.0, ub: f64::INFINITY }
    }

    /// Creates the value from its parts.
    pub fn new(lb: f64, ub: f64) -> Self {
        debug_assert!(lb <= ub + 1e-9, "inverted range [{lb}, {ub}]");
        Self { lb, ub }
    }

    /// Incorporate a new lower-bound estimate (keeps the larger).
    pub fn tighten_lb(&mut self, lb: f64) {
        if lb > self.lb {
            // Never raise lb past ub (floating error in independent
            // estimators); the midpoint of a collapsed range is still a
            // consistent distance estimate.
            self.lb = lb.min(self.ub);
        }
    }

    /// Incorporate a new upper-bound estimate (keeps the smaller).
    pub fn tighten_ub(&mut self, ub: f64) {
        if ub < self.ub {
            self.ub = ub.max(self.lb);
        }
    }

    /// Width of the range.
    pub fn width(&self) -> f64 {
        self.ub - self.lb
    }

    /// The paper's accuracy measure ε = lb/ub (Fig. 8), in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.ub <= 0.0 {
            1.0
        } else {
            (self.lb / self.ub).clamp(0.0, 1.0)
        }
    }

    /// Midpoint, a point estimate of the distance.
    pub fn estimate(&self) -> f64 {
        if self.ub.is_finite() {
            (self.lb + self.ub) * 0.5
        } else {
            self.lb
        }
    }

    /// Is this range certainly smaller than `other` (no overlap)?
    pub fn certainly_before(&self, other: &DistRange) -> bool {
        self.ub <= other.lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighten_is_monotone() {
        let mut r = DistRange::unbounded();
        r.tighten_lb(3.0);
        r.tighten_ub(10.0);
        assert_eq!(r, DistRange::new(3.0, 10.0));
        // Worse estimates are ignored.
        r.tighten_lb(2.0);
        r.tighten_ub(12.0);
        assert_eq!(r, DistRange::new(3.0, 10.0));
        // Better ones are kept.
        r.tighten_lb(5.0);
        r.tighten_ub(8.0);
        assert_eq!(r, DistRange::new(5.0, 8.0));
    }

    #[test]
    fn tighten_never_inverts() {
        let mut r = DistRange::new(4.0, 5.0);
        r.tighten_lb(6.0); // would cross ub
        assert!(r.lb <= r.ub);
        let mut r = DistRange::new(4.0, 5.0);
        r.tighten_ub(3.0);
        assert!(r.lb <= r.ub);
    }

    #[test]
    fn accuracy_and_estimate() {
        let r = DistRange::new(97.0, 100.0);
        assert!((r.accuracy() - 0.97).abs() < 1e-12);
        assert_eq!(r.estimate(), 98.5);
        assert_eq!(DistRange::new(0.0, 0.0).accuracy(), 1.0);
        let u = DistRange::unbounded();
        assert_eq!(u.accuracy(), 0.0);
        assert_eq!(u.estimate(), 0.0);
    }

    #[test]
    fn ordering_test() {
        let a = DistRange::new(1.0, 2.0);
        let b = DistRange::new(2.0, 3.0);
        let c = DistRange::new(1.5, 2.5);
        assert!(a.certainly_before(&b));
        assert!(!a.certainly_before(&c));
        assert!(!c.certainly_before(&a));
    }
}
