//! EA — the Enhanced Approximation benchmark algorithm (paper §5.2).
//!
//! "An alternative approach is to use the Kanai and Suzuki algorithm. This
//! method starts from the original surface model and continues to the
//! pathnet level for ub estimation. The 100 % resolution SDN is used here
//! for lb estimation. ... For fair comparison, the methods used for
//! finding the first global optimal shortest path and selective search
//! region refinement in the benchmark algorithm are the same as those used
//! by MR3. Moreover, ... the benchmark algorithm also applies the same
//! filter techniques as MR3." EA therefore runs the same four-step
//! pipeline but estimates every upper bound at *full* resolution
//! (Kanai–Suzuki with a 3 % error budget) — no coarse levels, no
//! progressive ranges. This is exactly what makes it an order of magnitude
//! slower: each candidate pays a full-resolution shortest-path search.

use crate::bounds::DistRange;
use crate::metrics::{CpuTimer, Neighbor, QueryResult, QueryStats};
use crate::workload::{Scene, SurfacePoint};
use sknn_geodesic::{kanai_suzuki, KanaiConfig};
use sknn_geom::Rect2;
use sknn_multires::{build_dmtm, PagedDmtm};
use sknn_sdn::{Msdn, MsdnConfig, PagedMsdn};
use sknn_store::{DiskModel, Pager};
use sknn_terrain::mesh::TerrainMesh;

/// The EA benchmark engine.
pub struct EaEngine<'s, 'm> {
    mesh: &'m TerrainMesh,
    scene: &'s Scene<'m>,
    /// Leaf-level terrain pages (EA reads the original model).
    terrain_store: PagedDmtm,
    /// 100 % SDN only.
    msdn: PagedMsdn,
    pager: Pager,
    kanai: KanaiConfig,
    /// The cold cache.
    pub cold_cache: bool,
    /// The disk.
    pub disk: DiskModel,
}

impl<'s, 'm> EaEngine<'s, 'm> {
    /// Build the benchmark engine (full-resolution structures only).
    pub fn build(mesh: &'m TerrainMesh, scene: &'s Scene<'m>, pool_pages: usize) -> Self {
        let pager = Pager::new(pool_pages);
        let terrain_store = PagedDmtm::build(&pager, build_dmtm(mesh));
        let msdn_cfg = MsdnConfig { levels: vec![1.0], plane_spacing: None };
        let msdn = PagedMsdn::build(&pager, &Msdn::build(mesh, &msdn_cfg));
        Self {
            mesh,
            scene,
            terrain_store,
            msdn,
            pager,
            // 3 % error budget: "we allow 3% error in shortest surface
            // calculation (i.e., ... terminates once it reaches 97%
            // accuracy)".
            kanai: KanaiConfig { tolerance: 0.03, ..KanaiConfig::default() },
            cold_cache: true,
            disk: DiskModel::default(),
        }
    }

    /// Pager.
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Full-resolution upper bound via Kanai–Suzuki, charging the pages of
    /// the terrain region the search touches: the whole model for the
    /// initial global round, then the prune-ellipse region for refinement.
    fn kanai_ub(&self, q: SurfacePoint, p: SurfacePoint, stats: &mut QueryStats) -> f64 {
        let r = kanai_suzuki(self.mesh, q.to_mesh_point(), p.to_mesh_point(), &self.kanai);
        stats.settled += r.nodes_processed;
        stats.ub_estimations += 1;
        // Charge the refinement region reads (the global round is charged
        // once per query in `query`).
        if r.distance.is_finite() {
            let ell = sknn_geom::Ellipse2::new(q.pos.xy(), p.pos.xy(), r.distance);
            let region = ell.mbr().intersection(&self.mesh.extent());
            let _ = self.terrain_store.fetch_front(&self.pager, 0, Some(&region));
        }
        r.distance
    }

    fn sdn_lb(&self, q: SurfacePoint, p: SurfacePoint, roi: &Rect2, stats: &mut QueryStats) -> f64 {
        stats.lb_estimations += 1;
        // A failed SDN read degrades to the (valid) Euclidean lower bound.
        match self.msdn.lower_bound(&self.pager, 0, q.pos, p.pos, Some(roi)) {
            Ok(lb) => {
                stats.settled += lb.nodes_settled;
                stats.absorb_queue(&lb.queue);
                lb.value.max(q.pos.dist(p.pos))
            }
            Err(_) => q.pos.dist(p.pos),
        }
    }

    /// Answer a surface k-NN query at full resolution.
    pub fn query(&self, q: SurfacePoint, k: usize) -> QueryResult {
        let mut stats = QueryStats::default();
        if self.cold_cache {
            self.pager.clear_pool();
        }
        self.pager.reset_stats();
        self.scene.dxy().reset_accesses();
        let timer = CpuTimer::start();

        let k = k.min(self.scene.num_objects());
        let mut neighbors: Vec<Neighbor> = Vec::new();
        if k > 0 {
            // The first global-optimum search reads the whole model once.
            let _ = self.terrain_store.fetch_front(&self.pager, 0, None);

            // Step 1: 2D k-NN seeds.
            let seeds = self.scene.dxy().knn(q.pos.xy(), k);
            // Step 2: full-resolution upper bounds for the seeds.
            let mut radius = 0.0f64;
            let mut ubs: Vec<(u32, f64)> = Vec::with_capacity(k);
            for &(_, _, id) in &seeds {
                let ub = self.kanai_ub(q, self.scene.object(id).point, &mut stats);
                radius = radius.max(ub);
                ubs.push((id, ub));
            }
            stats.iterations = 1;

            // Step 3: planar range query.
            let in_range: Vec<u32> = if radius.is_finite() {
                self.scene
                    .dxy()
                    .within_distance(q.pos.xy(), radius)
                    .into_iter()
                    .map(|(_, id)| id)
                    .collect()
            } else {
                (0..self.scene.num_objects() as u32).collect()
            };
            stats.candidates = in_range.len();

            // Step 4: rank with lb prefilter, computing expensive ubs in
            // ascending Euclidean order so the k-th bound tightens early.
            let terrain = self.mesh.extent();
            let mut order: Vec<(f64, u32)> = in_range
                .iter()
                .map(|&id| (q.pos.dist(self.scene.object(id).point.pos), id))
                .collect();
            order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut known: Vec<(u32, f64)> = Vec::new();
            for (euclid, id) in order {
                let kth = kth_smallest(&known, k);
                if known.len() >= k {
                    // Cheap filters first: the Euclidean bound, then the
                    // 100 % SDN bound within the prune ellipse.
                    if euclid > kth {
                        continue;
                    }
                    let p = self.scene.object(id).point;
                    let ell = sknn_geom::Ellipse2::new(q.pos.xy(), p.pos.xy(), kth);
                    let roi = ell.mbr().intersection(&terrain);
                    let lb = self.sdn_lb(q, p, &roi, &mut stats);
                    if lb > kth {
                        continue;
                    }
                }
                let ub = match ubs.iter().find(|&&(i, _)| i == id) {
                    Some(&(_, ub)) => ub,
                    None => self.kanai_ub(q, self.scene.object(id).point, &mut stats),
                };
                known.push((id, ub));
            }
            known.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            neighbors = known
                .into_iter()
                .take(k)
                .map(|(id, ub)| Neighbor {
                    id,
                    // EA's range: 97 %-accurate ub.
                    range: DistRange::new(ub * (1.0 - self.kanai.tolerance), ub),
                })
                .collect();
        }

        timer.stop_into(&mut stats.cpu);
        stats.pages = self.pager.stats().physical_reads + self.scene.dxy().accesses();
        QueryResult { neighbors, stats, trace: None, degraded: None, radius: 0.0 }
    }
}

fn kth_smallest(known: &[(u32, f64)], k: usize) -> f64 {
    if known.len() < k {
        return f64::INFINITY;
    }
    let mut v: Vec<f64> = known.iter().map(|&(_, d)| d).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ch::ChEngine;
    use crate::workload::SceneBuilder;
    use sknn_terrain::dem::TerrainConfig;

    #[test]
    fn ea_matches_ground_truth_within_tolerance() {
        let mesh = TerrainConfig::ep().with_grid(17).build_mesh(99);
        let scene = SceneBuilder::new(&mesh).object_count(20).seed(4).build();
        let ea = EaEngine::build(&mesh, &scene, 256);
        let exact = ChEngine::new(&scene);
        let q = scene.random_query(8);
        let k = 4;
        let got = ea.query(q, k);
        let truth = exact.query(q, k);
        assert_eq!(got.neighbors.len(), k);
        let kth = truth.neighbors.last().unwrap().range.ub;
        for n in &got.neighbors {
            let d = exact.pair_distance(q, scene.object(n.id).point);
            assert!(d <= kth * 1.07 + 1e-6, "object {} at {d} vs kth {kth}", n.id);
        }
    }

    #[test]
    fn ea_reads_many_pages() {
        let mesh = TerrainConfig::ep().with_grid(17).build_mesh(99);
        let scene = SceneBuilder::new(&mesh).object_count(15).seed(2).build();
        let ea = EaEngine::build(&mesh, &scene, 256);
        let res = ea.query(scene.random_query(1), 3);
        // EA touches the whole model at least once.
        assert!(res.stats.pages > 10, "pages {}", res.stats.pages);
        assert!(res.stats.ub_estimations >= 3);
    }

    #[test]
    fn k_zero_and_oversized() {
        let mesh = TerrainConfig::ep().with_grid(9).build_mesh(12);
        let scene = SceneBuilder::new(&mesh).object_count(3).seed(1).build();
        let ea = EaEngine::build(&mesh, &scene, 64);
        assert!(ea.query(scene.random_query(1), 0).neighbors.is_empty());
        assert_eq!(ea.query(scene.random_query(1), 9).neighbors.len(), 3);
    }
}
