//! The exact baseline — the role Chen–Han [1] plays in the paper.
//!
//! Computes true surface distances with the exact geodesic engine and
//! answers k-NN queries by ranking them. Exponentially more expensive than
//! MR3 (the point of the paper's Fig. 7), but indispensable as ground
//! truth for correctness tests and for the Fig. 7 regeneration.

use crate::bounds::DistRange;
use crate::metrics::{CpuTimer, Neighbor, QueryResult, QueryStats};
use crate::workload::{Scene, SurfacePoint};
use sknn_geodesic::ExactGeodesic;

/// Brute-force exact surface k-NN.
pub struct ChEngine<'s, 'm> {
    scene: &'s Scene<'m>,
    geo: ExactGeodesic<'m>,
}

impl<'s, 'm> ChEngine<'s, 'm> {
    /// Creates the value from its parts.
    pub fn new(scene: &'s Scene<'m>) -> Self {
        Self { scene, geo: ExactGeodesic::new(scene.mesh()) }
    }

    /// Exact surface distance between two surface points.
    pub fn pair_distance(&self, a: SurfacePoint, b: crate::workload::SurfacePoint) -> f64 {
        self.geo.distance(a.to_mesh_point(), b.to_mesh_point())
    }

    /// Exact surface range query: ids of objects within `radius`.
    pub fn range_query(&self, q: SurfacePoint, radius: f64) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .scene
            .objects()
            .iter()
            .filter(|o| {
                self.geo.distance(q.to_mesh_point(), o.point.to_mesh_point()) <= radius + 1e-9
            })
            .map(|o| o.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Exact k-NN by computing every object's surface distance.
    pub fn query(&self, q: SurfacePoint, k: usize) -> QueryResult {
        let mut stats = QueryStats::default();
        let timer = CpuTimer::start();
        let mut dists: Vec<(f64, u32)> = self
            .scene
            .objects()
            .iter()
            .map(|o| (self.geo.distance(q.to_mesh_point(), o.point.to_mesh_point()), o.id))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let neighbors = dists
            .into_iter()
            .take(k)
            .map(|(d, id)| Neighbor { id, range: DistRange::new(d, d) })
            .collect();
        timer.stop_into(&mut stats.cpu);
        stats.candidates = self.scene.num_objects();
        QueryResult { neighbors, stats, trace: None, degraded: None, radius: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SceneBuilder;
    use sknn_terrain::dem::TerrainConfig;

    #[test]
    fn exact_knn_is_sorted_and_tight() {
        let mesh = TerrainConfig::ep().with_grid(9).build_mesh(42);
        let scene = SceneBuilder::new(&mesh).object_count(12).seed(3).build();
        let ch = ChEngine::new(&scene);
        let q = scene.random_query(1);
        let res = ch.query(q, 5);
        assert_eq!(res.neighbors.len(), 5);
        for n in &res.neighbors {
            assert_eq!(n.range.lb, n.range.ub); // exact
        }
        for w in res.neighbors.windows(2) {
            assert!(w[0].range.ub <= w[1].range.ub);
        }
        // First neighbour's distance must match a direct pair computation.
        let d0 = ch.pair_distance(q, scene.object(res.neighbors[0].id).point);
        assert!((d0 - res.neighbors[0].range.ub).abs() < 1e-9);
    }

    #[test]
    fn symmetric_pair_distance() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(13);
        let scene = SceneBuilder::new(&mesh).object_count(2).seed(1).build();
        let ch = ChEngine::new(&scene);
        let a = scene.object(0).point;
        let b = scene.object(1).point;
        let ab = ch.pair_distance(a, b);
        let ba = ch.pair_distance(b, a);
        assert!((ab - ba).abs() < 1e-6 * (1.0 + ab));
    }
}
