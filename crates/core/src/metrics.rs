//! Query cost accounting.
//!
//! The paper reports three metrics per experiment: total response time,
//! CPU time, and disk pages accessed. We measure CPU time directly and
//! derive I/O time from the physical page-read count and a disk model, so
//! `total = cpu + io` decomposes exactly as in the paper's figures.

use crate::bounds::DistRange;
use sknn_store::DiskModel;
use std::time::{Duration, Instant};

/// Cost counters of one query.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Measured CPU time.
    pub cpu: Duration,
    /// Physical disk pages read (buffer-pool misses + index node visits).
    pub pages: u64,
    /// Resolution iterations executed by the ranking engine.
    pub iterations: usize,
    /// Candidates examined in step 4.
    pub candidates: usize,
    /// Dijkstra nodes settled across all bound estimations (CPU proxy).
    pub settled: usize,
    /// Upper-bound estimations performed.
    pub ub_estimations: usize,
    /// Lower-bound estimations performed (full, not dummy).
    pub lb_estimations: usize,
    /// Dummy (corridor) lower bounds that sufficed without confirmation.
    pub dummy_lb_hits: usize,
}

impl QueryStats {
    /// Simulated I/O time under `model`.
    pub fn io_time(&self, model: &DiskModel) -> Duration {
        Duration::from_secs_f64(self.pages as f64 * model.per_read_ms / 1000.0)
    }

    /// Total response time under `model`.
    pub fn total_time(&self, model: &DiskModel) -> Duration {
        self.cpu + self.io_time(model)
    }
}

/// A scoped CPU timer accumulating into a `Duration`.
pub struct CpuTimer {
    start: Instant,
}

impl CpuTimer {
    /// Start.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Stop into.
    pub fn stop_into(self, acc: &mut Duration) {
        *acc += self.start.elapsed();
    }
}

/// One returned neighbour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Object id within the scene.
    pub id: u32,
    /// Bracketing range of its surface distance from the query point.
    pub range: DistRange,
}

/// Result of an sk-NN query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The k nearest objects, ascending by distance estimate.
    pub neighbors: Vec<Neighbor>,
    /// Cost counters of the query.
    pub stats: QueryStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_decomposition() {
        let stats = QueryStats {
            cpu: Duration::from_millis(100),
            pages: 500,
            ..Default::default()
        };
        let model = DiskModel { per_read_ms: 8.0 };
        assert_eq!(stats.io_time(&model), Duration::from_secs(4));
        assert_eq!(stats.total_time(&model), Duration::from_millis(4100));
    }

    #[test]
    fn timer_accumulates() {
        let mut acc = Duration::ZERO;
        let t = CpuTimer::start();
        std::hint::black_box((0..10_000).sum::<u64>());
        t.stop_into(&mut acc);
        assert!(acc > Duration::ZERO);
        let before = acc;
        let t = CpuTimer::start();
        std::hint::black_box((0..10_000).sum::<u64>());
        t.stop_into(&mut acc);
        assert!(acc > before);
    }
}
