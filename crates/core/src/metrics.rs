//! Query cost accounting.
//!
//! The paper reports three metrics per experiment: total response time,
//! CPU time, and disk pages accessed. We measure CPU time directly and
//! derive I/O time from the physical page-read count and a disk model, so
//! `total = cpu + io` decomposes exactly as in the paper's figures.

use crate::bounds::DistRange;
use sknn_store::DiskModel;
use std::time::Duration;

/// Wall-clock time spent in each MR3 step of one query, in microseconds.
///
/// Measured unconditionally (four `Instant::now()` reads per query —
/// noise next to a Dijkstra pass), so the serving layer can report
/// per-stage latency even with tracing off. The fields mirror the four
/// step spans of the trace (`step1_knn2d` … `step4_rank`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Step 1: 2D k-NN seeding on the projection R-tree.
    pub knn2d_us: u64,
    /// Step 2: ranking the seeds to bound the k-th neighbour's distance.
    pub radius_us: u64,
    /// Step 3: planar range query with the safe radius.
    pub range_us: u64,
    /// Step 4: iterative multi-resolution ranking of the candidate set.
    pub rank_us: u64,
}

impl StageTimes {
    /// Sum of all stage times (≤ the query's wall time: stages exclude
    /// setup, result assembly, and trace drain).
    pub fn total_us(&self) -> u64 {
        self.knn2d_us + self.radius_us + self.range_us + self.rank_us
    }
}

/// Cost counters of one query.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Measured CPU time (see [`CpuTimer`] for exactly what is measured).
    pub cpu: Duration,
    /// Measured wall-clock time of the query, including real pager stalls
    /// and scheduling delays — the per-query latency that batch execution
    /// aggregates into percentiles.
    pub wall: Duration,
    /// Physical disk pages read (buffer-pool misses + index node visits).
    pub pages: u64,
    /// Resolution iterations executed by the ranking engine.
    pub iterations: usize,
    /// Candidates examined in step 4.
    pub candidates: usize,
    /// Dijkstra nodes settled across all bound estimations (CPU proxy).
    pub settled: usize,
    /// Priority-queue pushes across all Dijkstra runs of the query.
    pub queue_pushes: u64,
    /// Priority-queue pops (stale or not) across all Dijkstra runs.
    pub queue_pops: u64,
    /// Pops discarded as stale (lazy deletion) — the gap between pops and
    /// settles that the bucketed queue is designed to keep cheap.
    pub stale_pops: u64,
    /// Upper-bound estimations performed.
    pub ub_estimations: usize,
    /// Lower-bound estimations performed (full, not dummy).
    pub lb_estimations: usize,
    /// Dummy (corridor) lower bounds that sufficed without confirmation.
    pub dummy_lb_hits: usize,
    /// Front-graph fetches answered by the per-query front cache instead
    /// of re-extracting (and re-paging) the DMTM front.
    pub front_cache_hits: usize,
    /// Cut fetches (DMTM fronts + MSDN line bands) served by the shared
    /// process-wide cut cache without running an extraction.
    pub cut_cache_hits: usize,
    /// Cut fetches this query led an extraction for (shared-cache misses).
    pub cut_cache_misses: usize,
    /// Per-step wall-clock breakdown (always measured, tracing or not).
    pub stages: StageTimes,
}

impl QueryStats {
    /// Accumulate one Dijkstra run's queue-operation counters.
    pub fn absorb_queue(&mut self, q: &sknn_geodesic::graph::QueueCounters) {
        self.queue_pushes += q.pushes;
        self.queue_pops += q.pops;
        self.stale_pops += q.stale_pops;
    }

    /// Simulated I/O time under `model`.
    pub fn io_time(&self, model: &DiskModel) -> Duration {
        Duration::from_secs_f64(self.pages as f64 * model.per_read_ms / 1000.0)
    }

    /// Total response time under `model`.
    pub fn total_time(&self, model: &DiskModel) -> Duration {
        self.cpu + self.io_time(model)
    }
}

/// A scoped CPU timer accumulating into a `Duration`.
///
/// On Linux this reads `CLOCK_THREAD_CPUTIME_ID`, i.e. genuine per-thread
/// CPU time: time the querying thread spends descheduled or blocked does
/// not count, which is what makes `total = cpu + io` a sound decomposition
/// when the I/O term comes from a disk model rather than real waits. On
/// other platforms it falls back to a monotonic wall clock, which
/// over-reports CPU under contention.
pub struct CpuTimer {
    start: Duration,
}

impl CpuTimer {
    /// Start.
    pub fn start() -> Self {
        Self { start: thread_cpu_now() }
    }

    /// Stop into.
    pub fn stop_into(self, acc: &mut Duration) {
        *acc += thread_cpu_now().saturating_sub(self.start);
    }
}

/// Current per-thread CPU clock reading (an arbitrary-epoch instant, only
/// differences are meaningful).
#[cfg(target_os = "linux")]
fn thread_cpu_now() -> Duration {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    // Stable Linux syscall ABI (clock id 3 = CLOCK_THREAD_CPUTIME_ID),
    // bound directly so no libc crate dependency is needed.
    extern "C" {
        fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc == 0 {
        Duration::new(ts.tv_sec.max(0) as u64, ts.tv_nsec.clamp(0, 999_999_999) as u32)
    } else {
        Duration::ZERO
    }
}

#[cfg(not(target_os = "linux"))]
fn thread_cpu_now() -> Duration {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed()
}

/// One returned neighbour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Object id within the scene.
    pub id: u32,
    /// Bracketing range of its surface distance from the query point.
    pub range: DistRange,
}

/// Result of an sk-NN query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The k nearest objects, ascending by distance estimate.
    pub neighbors: Vec<Neighbor>,
    /// Cost counters of the query.
    pub stats: QueryStats,
    /// Structured trace of the query's execution, present when the engine
    /// has tracing enabled (see `Mr3Engine::enable_tracing`).
    pub trace: Option<sknn_obs::QueryTrace>,
    /// Set when storage faults were absorbed along the way: the bounds are
    /// still valid, but looser than the schedule would normally deliver.
    pub degraded: Option<crate::resilience::Degraded>,
    /// The MR3 step-2 search radius the answer was computed under (the
    /// 2D range that provably contains every possible top-k member) —
    /// what a sharding router uses to decide whether the query's search
    /// region stayed inside one tile. `0.0` for `k == 0` and for
    /// algorithms without a radius stage; may be `+inf` when estimation
    /// degenerated and the engine ranked every live object.
    pub radius: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_decomposition() {
        let stats =
            QueryStats { cpu: Duration::from_millis(100), pages: 500, ..Default::default() };
        let model = DiskModel { per_read_ms: 8.0 };
        assert_eq!(stats.io_time(&model), Duration::from_secs(4));
        assert_eq!(stats.total_time(&model), Duration::from_millis(4100));
    }

    #[test]
    fn timer_accumulates() {
        let mut acc = Duration::ZERO;
        let t = CpuTimer::start();
        std::hint::black_box((0..10_000_000u64).sum::<u64>());
        t.stop_into(&mut acc);
        assert!(acc > Duration::ZERO);
        let before = acc;
        let t = CpuTimer::start();
        std::hint::black_box((0..10_000_000u64).sum::<u64>());
        t.stop_into(&mut acc);
        assert!(acc > before);
    }

    /// The point of the thread-CPU clock: blocked time is not CPU time.
    #[cfg(target_os = "linux")]
    #[test]
    fn sleeping_costs_no_cpu_time() {
        let mut acc = Duration::ZERO;
        let t = CpuTimer::start();
        std::thread::sleep(Duration::from_millis(60));
        t.stop_into(&mut acc);
        assert!(acc < Duration::from_millis(20), "60 ms sleep billed {acc:?} of CPU");
    }
}
