//! The multi-resolution distance-range ranking engine (paper §4.2).
//!
//! Given a query point and a set of candidate objects, the engine
//! maintains a distance range `[lb, ub]` per candidate and alternates
//! upper-bound estimation (Dijkstra over DMTM fronts, then the pathnet)
//! with lower-bound estimation (MSDN networks), escalating resolution per
//! the configured step schedule until the k-th neighbour separates:
//! `ub(p_k) <= lb(p_{k+1})`. Candidates whose lower bound exceeds the
//! current k-th upper bound are dropped; search regions shrink to prune
//! ellipses as upper bounds tighten; overlapping I/O regions are fetched
//! once (integrated I/O regions); upper-bound searches are restricted to
//! the corridor of the previous round's path; and lower bounds try the
//! corridor-restricted *dummy* bound before paying for a full one.

use crate::bounds::DistRange;
use crate::config::Mr3Config;
use crate::metrics::QueryStats;
use crate::regions::{candidate_region, merge_regions, IoGroup};
use crate::resilience::FaultLog;
use crate::workload::SurfacePoint;
use sknn_geodesic::graph::{Dijkstra, DijkstraScratch, Graph, QueueCounters, QueuePolicy};
use sknn_geodesic::pathnet::Pathnet;
use sknn_geom::Axis;
use sknn_geom::{Aabb3, Ellipse2, Rect2};
use sknn_multires::{CutCache, CutGrid, FetchScratch, FrontGraph, PagedDmtm};
use sknn_obs::{field, Recorder};
use sknn_sdn::network::{corridor_mask, lower_bound_with, LbScratch};
use sknn_sdn::{LineCutCache, Msdn, PagedMsdn, SimplifiedLine};
use sknn_store::{Pager, StoreResult};
use sknn_terrain::mesh::TerrainMesh;
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;

/// Shared immutable state for ranking runs.
///
/// A context belongs to one query on one thread (the engine creates one
/// per query); batch parallelism shares the engine, never a context, which
/// is why the per-query [`RankScratch`] can live here in a `RefCell`.
pub struct RankingContext<'a, 'm> {
    /// The mesh.
    pub mesh: &'m TerrainMesh,
    /// The dmtm.
    pub dmtm: &'a PagedDmtm,
    /// The msdn.
    pub msdn: &'a PagedMsdn,
    /// The pager.
    pub pager: &'a Pager,
    /// The cfg.
    pub cfg: &'a Mr3Config,
    /// Trace sink ([`sknn_obs::NOOP`] when tracing is off).
    pub rec: &'a dyn Recorder,
    /// Query sequence number stamped on emitted records.
    pub query: u64,
    /// Reusable hot-path state (Dijkstra scratch, filtered-graph buffers,
    /// the cached front graph). Per-query, so it never crosses threads.
    pub scratch: RefCell<RankScratch>,
    /// Absorbed storage faults of this query (graceful degradation: a
    /// failed finer-resolution fetch keeps the last resolution's bounds).
    pub faults: FaultLog,
    /// Shared process-wide DMTM cut cache, `None` when disabled. Fetch
    /// regions are canonicalized through [`grid`](Self::grid) *regardless*
    /// of this being set, so results are bit-identical cache on or off.
    pub cuts: Option<&'a CutCache>,
    /// Shared process-wide MSDN line cache, `None` when disabled.
    pub lines: Option<&'a LineCutCache>,
    /// Fetch-region canonicalizer (pad + tile-snap). Always applied, so
    /// extraction inputs — and therefore results — do not depend on
    /// whether the shared caches are consulted.
    pub grid: CutGrid,
    /// Wall-clock deadline of this query, checked between refinement
    /// iterations. `None` runs to convergence.
    pub deadline: Option<Instant>,
    /// Set once the deadline has been observed expired: refinement halted
    /// and the query's bounds are valid but looser than scheduled.
    pub deadline_hit: Cell<bool>,
    /// Engine scratch pool this context returns its [`RankScratch`] to on
    /// drop (after [`RankScratch::reset_for_reuse`]). Pooling removes the
    /// per-query allocation burst of fresh Dijkstra/fetch buffers — a
    /// measurable allocator contention point under multi-threaded batches.
    pub pool: Option<&'a std::sync::Mutex<Vec<RankScratch>>>,
}

/// Upper bound on pooled scratches — enough for any realistic thread
/// count while bounding retained buffer memory.
pub const SCRATCH_POOL_CAP: usize = 32;

impl Drop for RankingContext<'_, '_> {
    fn drop(&mut self) {
        let Some(pool) = self.pool else { return };
        let mut s = std::mem::take(&mut *self.scratch.borrow_mut());
        s.reset_for_reuse();
        let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(s);
        }
    }
}

/// Reusable working state of the ranking hot path. Everything here is an
/// optimisation cache: dropping it between calls changes performance, not
/// results.
#[derive(Debug, Default)]
pub struct RankScratch {
    /// DMTM front graph cached across refinement calls. Hit when the
    /// resolution step matches and the cached fetch region contains the
    /// requested one — a front fetched for an enclosing region is a
    /// superset, and every front-graph path is a real surface path, so a
    /// superset front still yields valid (if anything tighter) upper
    /// bounds. Invalidated by fetching at a different step (resolution
    /// advance) or a region the cached one does not contain.
    front_cache: Option<CachedFront>,
    /// Buffers for per-candidate corridor/ellipse-filtered Dijkstra runs.
    bufs: DijkstraBufs,
    /// Buffers for the per-group shared unrestricted Dijkstra run.
    shared: SharedBufs,
    /// Buffers for DMTM front fetches (key ordering, id→local index,
    /// edge/position vectors), recycled from replaced cached fronts.
    fetch: FetchScratch,
    /// Layered-graph and Dijkstra buffers for SDN lower bounds.
    lb: LbScratch,
    /// Dijkstra state for the per-group shared pathnet run.
    pathnet: DijkstraScratch,
}

#[derive(Debug)]
struct CachedFront {
    step: u32,
    roi: Rect2,
    graph: FrontHandle,
}

/// A front either owned by this query (paged extraction, cache off) or
/// shared out of the process-wide cut cache. Read-only either way.
#[derive(Debug)]
enum FrontHandle {
    Owned(FrontGraph),
    Shared(Arc<FrontGraph>),
}

impl FrontHandle {
    fn get(&self) -> &FrontGraph {
        match self {
            FrontHandle::Owned(g) => g,
            FrontHandle::Shared(g) => g,
        }
    }
}

/// Line sets mirroring [`FrontHandle`] for the lower-bound phase.
#[derive(Debug, Default)]
enum LineSet {
    #[default]
    Empty,
    Owned(Vec<SimplifiedLine>),
    Shared(Arc<Vec<SimplifiedLine>>),
}

impl LineSet {
    fn as_slice(&self) -> &[SimplifiedLine] {
        match self {
            LineSet::Empty => &[],
            LineSet::Owned(v) => v,
            LineSet::Shared(v) => v,
        }
    }
}

impl RankScratch {
    /// Prepare the scratch for reuse by a *different* query (the engine's
    /// scratch pool): the cached front must not carry over — a front
    /// cached under one query's key sequence could satisfy another query's
    /// containment check and make its Dijkstra inputs depend on query
    /// execution order, breaking bit-reproducibility — but its buffers
    /// (and all the Dijkstra/fetch buffers) are worth keeping warm.
    pub fn reset_for_reuse(&mut self) {
        if let Some(old) = self.front_cache.take() {
            if let FrontHandle::Owned(g) = old.graph {
                self.fetch.recycle(g);
            }
        }
    }

    /// Pin every embedded Dijkstra scratch to `policy` (the engine applies
    /// the config knob here when handing a scratch to a query).
    pub fn set_queue_policy(&mut self, policy: QueuePolicy) {
        self.bufs.dij.set_policy(policy);
        self.shared.dij.set_policy(policy);
        self.pathnet.set_policy(policy);
        self.lb.set_queue_policy(policy);
    }
}

/// Mask/edge/source buffers plus a CSR graph and Dijkstra scratch, reused
/// across every filtered bound estimation of a query.
#[derive(Debug, Default)]
struct DijkstraBufs {
    mask: Vec<bool>,
    edges: Vec<(u32, u32, f64)>,
    srcs: Vec<(u32, f64)>,
    graph: Graph,
    dij: DijkstraScratch,
}

/// Separate graph + scratch for the shared unrestricted run, so its
/// distances stay readable while per-candidate filtered runs recycle
/// [`DijkstraBufs`].
#[derive(Debug, Default)]
struct SharedBufs {
    graph: Graph,
    dij: DijkstraScratch,
}

/// Per-iteration deltas of the cost counters, captured before a
/// refinement round so the emitted `iter` event carries this round's
/// work rather than running totals.
struct IterSnapshot {
    ub_estimations: usize,
    lb_estimations: usize,
    dummy_lb_hits: usize,
    settled: usize,
    physical_reads: u64,
}

impl IterSnapshot {
    fn take(stats: &QueryStats, pager: &Pager) -> Self {
        Self {
            ub_estimations: stats.ub_estimations,
            lb_estimations: stats.lb_estimations,
            dummy_lb_hits: stats.dummy_lb_hits,
            settled: stats.settled,
            physical_reads: pager.stats().physical_reads,
        }
    }
}

/// Per-candidate ranking state.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Object identifier.
    pub id: u32,
    /// Position on the surface.
    pub point: SurfacePoint,
    /// The range.
    pub range: DistRange,
    /// Current I/O region (prune-ellipse MBR clipped to the terrain).
    pub region: Rect2,
    /// Witness chain of the last full lower bound (for the dummy bound).
    lb_path: Vec<Aabb3>,
    /// Refined search region: MBRs along the last upper-bound path.
    corridor: Vec<Rect2>,
    /// Permanently eliminated from the top k.
    pub out: bool,
}

impl Candidate {
    /// Creates the value from its parts.
    pub fn new(q: &SurfacePoint, id: u32, point: SurfacePoint, terrain: &Rect2) -> Self {
        let mut range = DistRange::unbounded();
        // "The lower bound for each candidate point is initially set to be
        // the Euclidean distance" (§4.2).
        range.tighten_lb(q.pos.dist(point.pos));
        // Same-facet candidates are exact: the straight segment lies on
        // the facet plane, hence on the surface.
        if q.tri == point.tri {
            range.tighten_ub(q.pos.dist(point.pos));
        }
        Self {
            id,
            point,
            range,
            region: *terrain,
            lb_path: Vec::new(),
            corridor: Vec::new(),
            out: false,
        }
    }
}

impl<'a, 'm> RankingContext<'a, 'm> {
    /// Record one absorbed storage fault: the failed fetch is skipped, the
    /// affected candidates keep the last materialised resolution's (valid,
    /// looser) bounds, and the event lands in the trace when enabled.
    fn absorb_fault(&self, phase: &'static str, err: sknn_store::StoreError) {
        self.faults.absorb(phase, err);
        if self.rec.enabled() {
            let kind = match err {
                sknn_store::StoreError::Checksum { .. } => "checksum",
                sknn_store::StoreError::TransientRead { .. } => "transient",
                sknn_store::StoreError::PermanentRead { .. } => "permanent",
                sknn_store::StoreError::WriteFault { .. } => "write",
                sknn_store::StoreError::FsyncFailed { .. } => "fsync",
            };
            self.rec.event(
                "fault",
                self.query,
                vec![
                    field("phase", phase),
                    field("page", err.page()),
                    field("kind", kind),
                    field("absorbed", self.faults.count()),
                ],
            );
        }
    }

    /// Whether this query's deadline has passed. Evaluated between
    /// refinement iterations only — never inside a bound estimation — so
    /// an expired query always stops at a materialised resolution whose
    /// bounds are valid, just looser than the schedule would deliver.
    /// Latches [`deadline_hit`](Self::deadline_hit) on first expiry so the
    /// engine can mark the result degraded.
    pub fn deadline_expired(&self) -> bool {
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.deadline_hit.set(true);
                true
            }
            _ => false,
        }
    }

    /// Rank `cands` until the top `k` separate or the schedule is
    /// exhausted. Returns whether the ranking fully resolved. On exit the
    /// candidates' ranges hold the final bounds.
    pub fn rank_top_k(
        &self,
        q: &SurfacePoint,
        cands: &mut [Candidate],
        k: usize,
        stats: &mut QueryStats,
    ) -> bool {
        for i in 0..self.cfg.schedule.len() {
            self.mark_out(cands, k);
            if self.is_resolved(cands, k) {
                return true;
            }
            if self.faults.exceeded() || self.deadline_expired() {
                break;
            }
            let snap = IterSnapshot::take(stats, self.pager);
            self.refine_iteration(q, cands, i, true, stats);
            stats.iterations += 1;
            if self.rec.enabled() {
                // Apply this round's eliminations before observing, so the
                // event reflects the post-iteration state. `mark_out` is
                // idempotent — the next loop head repeats it harmlessly.
                self.mark_out(cands, k);
                self.emit_iter("rank", i, k, cands, self.is_resolved(cands, k), &snap, stats);
            }
        }
        self.mark_out(cands, k);
        self.is_resolved(cands, k)
    }

    /// Step-2 variant: tighten upper bounds of the seed set until the k-th
    /// radius stops improving, and return `max ub` — a safe radius that
    /// certainly contains k objects by surface distance. Lower bounds are
    /// not needed to bound a radius, so the MSDN phase is skipped.
    pub fn estimate_radius(
        &self,
        q: &SurfacePoint,
        cands: &mut [Candidate],
        stats: &mut QueryStats,
    ) -> f64 {
        let mut prev = f64::INFINITY;
        for i in 0..self.cfg.schedule.len() {
            // Radius estimation must deliver at least one finite upper
            // bound or step 3 degenerates to ranking the whole scene, so
            // the deadline only halts it after a usable radius exists.
            if self.faults.exceeded() || (prev.is_finite() && self.deadline_expired()) {
                break;
            }
            let snap = IterSnapshot::take(stats, self.pager);
            self.refine_iteration(q, cands, i, false, stats);
            stats.iterations += 1;
            let radius = max_ub(cands);
            let done = radius.is_finite() && radius >= prev * 0.95;
            if self.rec.enabled() {
                self.emit_iter("radius", i, cands.len(), cands, done, &snap, stats);
            }
            if done {
                return radius;
            }
            prev = radius;
        }
        max_ub(cands)
    }

    /// Surface *range query* support (paper §6: the framework "is capable
    /// of supporting other distance comparison based queries, such as
    /// range queries"): decide for each candidate whether its surface
    /// distance is within `radius`. Returns `(inside, undecided)` object
    /// ids; `undecided` is non-empty only when the schedule ends with a
    /// range still straddling the radius (its midpoint then classifies it
    /// in `inside` if ≤ radius).
    pub fn resolve_within(
        &self,
        q: &SurfacePoint,
        cands: &mut [Candidate],
        radius: f64,
        stats: &mut QueryStats,
    ) -> (Vec<u32>, Vec<u32>) {
        let mut inside: Vec<u32> = Vec::new();
        let classify = |cands: &mut [Candidate], inside: &mut Vec<u32>| {
            for c in cands.iter_mut() {
                if c.out {
                    continue;
                }
                if c.range.ub <= radius + 1e-9 {
                    inside.push(c.id);
                    c.out = true; // settled: no more refinement needed
                } else if c.range.lb > radius + 1e-9 {
                    c.out = true; // settled: certainly outside
                }
            }
        };
        classify(cands, &mut inside);
        for i in 0..self.cfg.schedule.len() {
            if cands.iter().all(|c| c.out) || self.faults.exceeded() || self.deadline_expired() {
                break;
            }
            let snap = IterSnapshot::take(stats, self.pager);
            self.refine_iteration(q, cands, i, true, stats);
            stats.iterations += 1;
            classify(cands, &mut inside);
            if self.rec.enabled() {
                let done = cands.iter().all(|c| c.out);
                self.emit_iter("range", i, cands.len(), cands, done, &snap, stats);
            }
        }
        let mut undecided = Vec::new();
        for c in cands.iter() {
            if !c.out {
                if c.range.estimate() <= radius {
                    inside.push(c.id);
                }
                undecided.push(c.id);
            }
        }
        inside.sort_unstable();
        (inside, undecided)
    }

    // ----- termination & elimination ------------------------------------

    /// k-th smallest upper bound among non-eliminated candidates.
    fn kth_ub(&self, cands: &[Candidate], k: usize) -> f64 {
        let mut ubs: Vec<f64> = cands.iter().filter(|c| !c.out).map(|c| c.range.ub).collect();
        if ubs.len() <= k {
            return f64::INFINITY;
        }
        // Only the k-th order statistic is needed, not the full order:
        // quickselect is O(n) against the old sort's O(n log n), and this
        // runs every iteration over every candidate set.
        let (_, kth, _) = ubs.select_nth_unstable_by(k - 1, |a, b| a.partial_cmp(b).unwrap());
        *kth
    }

    /// Drop candidates that can no longer be in the top k.
    fn mark_out(&self, cands: &mut [Candidate], k: usize) {
        let pivot = self.kth_ub(cands, k);
        if !pivot.is_finite() {
            return;
        }
        for c in cands.iter_mut() {
            if !c.out && c.range.lb > pivot + 1e-9 {
                c.out = true;
            }
        }
    }

    /// The VA-file termination test: the k-th upper bound does not exceed
    /// the (k+1)-th lower bound.
    fn is_resolved(&self, cands: &[Candidate], k: usize) -> bool {
        let alive: Vec<&Candidate> = cands.iter().filter(|c| !c.out).collect();
        if alive.len() <= k {
            return true;
        }
        let mut by_ub: Vec<&&Candidate> = alive.iter().collect();
        by_ub.sort_by(|a, b| a.range.ub.partial_cmp(&b.range.ub).unwrap());
        let kth_ub = by_ub[k - 1].range.ub;
        if !kth_ub.is_finite() {
            return false;
        }
        let min_rest_lb = by_ub[k..].iter().map(|c| c.range.lb).fold(f64::INFINITY, f64::min);
        kth_ub <= min_rest_lb + 1e-9
    }

    // ----- trace emission -------------------------------------------------

    /// Emit one `iter` trace event describing the post-iteration state.
    ///
    /// The bound fields are chosen for their convergence guarantees:
    /// `kth_ub` (k-th smallest upper bound among alive candidates) is
    /// non-increasing — upper bounds only tighten, and eliminated
    /// candidates were ranked beyond k; `next_lb` ((k+1)-th smallest lower
    /// bound over *all* candidates, alive or not) is non-decreasing —
    /// lower bounds only tighten over a fixed set. `resolve_lb` is the
    /// actual VA-file termination quantity (minimum lower bound among
    /// alive candidates ranked beyond k by upper bound); it is what
    /// `kth_ub` must drop below, but is not itself monotone because the
    /// set it minimises over shrinks.
    #[allow(clippy::too_many_arguments)]
    fn emit_iter(
        &self,
        phase: &'static str,
        i: usize,
        k: usize,
        cands: &[Candidate],
        resolved: bool,
        snap: &IterSnapshot,
        stats: &QueryStats,
    ) {
        let alive = cands.iter().filter(|c| !c.out).count();
        let mut alive_ubs: Vec<f64> = cands.iter().filter(|c| !c.out).map(|c| c.range.ub).collect();
        alive_ubs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let kth_ub = match alive_ubs.len() {
            0 => f64::INFINITY,
            n => alive_ubs[k.clamp(1, n) - 1],
        };
        let mut all_lbs: Vec<f64> = cands.iter().map(|c| c.range.lb).collect();
        all_lbs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let next_lb = all_lbs.get(k).copied().unwrap_or(f64::INFINITY);
        let resolve_lb = {
            let mut by_ub: Vec<&Candidate> = cands.iter().filter(|c| !c.out).collect();
            by_ub.sort_by(|a, b| a.range.ub.partial_cmp(&b.range.ub).unwrap());
            by_ub.get(k..).unwrap_or(&[]).iter().map(|c| c.range.lb).fold(f64::INFINITY, f64::min)
        };
        self.rec.event(
            "iter",
            self.query,
            vec![
                field("phase", phase),
                field("i", i),
                field("dmtm_frac", self.cfg.schedule.dmtm[i]),
                field("msdn_level", self.cfg.schedule.msdn_level(i) as u64),
                field("alive", alive),
                field("kth_ub", kth_ub),
                field("next_lb", next_lb),
                field("resolve_lb", resolve_lb),
                field("resolved", resolved),
                field("ub_est", stats.ub_estimations - snap.ub_estimations),
                field("lb_est", stats.lb_estimations - snap.lb_estimations),
                field("dummy_lb", stats.dummy_lb_hits - snap.dummy_lb_hits),
                field("settled", stats.settled - snap.settled),
                field("pages", self.pager.stats().physical_reads - snap.physical_reads),
            ],
        );
    }

    // ----- one resolution iteration --------------------------------------

    fn refine_iteration(
        &self,
        q: &SurfacePoint,
        cands: &mut [Candidate],
        iter: usize,
        with_lb: bool,
        stats: &mut QueryStats,
    ) {
        let terrain = self.mesh.extent();
        // Refresh I/O regions from the current upper bounds.
        let active: Vec<usize> = (0..cands.len()).filter(|&i| !cands[i].out).collect();
        if active.is_empty() {
            return;
        }
        for &i in &active {
            cands[i].region = if self.cfg.ellipse_prune {
                candidate_region(q.pos.xy(), cands[i].point.pos.xy(), cands[i].range.ub, &terrain)
            } else {
                terrain
            };
        }

        // Integrated I/O regions.
        let regions: Vec<Rect2> = active.iter().map(|&i| cands[i].region).collect();
        let threshold = if self.cfg.integrated_io {
            self.cfg.io_merge_threshold
        } else {
            2.0 // never merges
        };
        let groups: Vec<IoGroup> = merge_regions(&regions, threshold);

        let frac = self.cfg.schedule.dmtm[iter];
        for group in &groups {
            if self.faults.exceeded() {
                return;
            }
            let members: Vec<usize> = group.members.iter().map(|&gi| active[gi]).collect();
            if frac <= 1.0 {
                self.ub_phase_front(q, cands, &members, group.region, frac, stats);
            } else {
                self.ub_phase_pathnet(q, cands, &members, group.region, stats);
            }
        }

        if with_lb {
            let lvl = self.cfg.schedule.msdn_level(iter);
            // Integrated I/O for SDN data too: one axis-range fetch per
            // group covers every member; per-candidate line subsets are
            // sliced in memory.
            for group in &groups {
                if self.faults.exceeded() {
                    return;
                }
                let members: Vec<usize> = group.members.iter().map(|&gi| active[gi]).collect();
                let mut axis_lines: [LineSet; 2] = [LineSet::Empty, LineSet::Empty];
                // A failed axis fetch degrades: its members skip this
                // round's lower-bound tightening and keep their current
                // (valid) lower bounds.
                let mut axis_ok = [true, true];
                // Canonical fetch region, shared with the cache-off path
                // (see `ub_phase_front`); per-candidate slicing in
                // `lb_phase` keeps the widened band/region transparent to
                // the lower-bound math.
                let roi_c = self.grid.snap(&group.region);
                for (slot, axis) in [(0, Axis::X), (1, Axis::Y)] {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for &ci in &members {
                        if Msdn::axis_for(q.pos, cands[ci].point.pos) == axis {
                            let (ca, cb) = (axis.coord(q.pos), axis.coord(cands[ci].point.pos));
                            lo = lo.min(ca.min(cb));
                            hi = hi.max(ca.max(cb));
                        }
                    }
                    if lo < hi {
                        let (blo, bhi) = self.grid.snap_band(slot, lo, hi);
                        match self.fetch_lines_shared(
                            lvl,
                            axis,
                            blo,
                            bhi,
                            &roi_c,
                            members.len(),
                            stats,
                        ) {
                            Ok(lines) => axis_lines[slot] = lines,
                            Err(e) => {
                                self.absorb_fault("lb", e);
                                axis_ok[slot] = false;
                            }
                        }
                    }
                }
                for &ci in &members {
                    let axis = Msdn::axis_for(q.pos, cands[ci].point.pos);
                    let slot = if axis == Axis::X { 0 } else { 1 };
                    if !axis_ok[slot] {
                        continue;
                    }
                    self.lb_phase(q, cands, ci, &axis_lines, stats);
                }
            }
        }
    }

    /// Upper bounds from a DMTM front at `frac` resolution, one fetch per
    /// group (or none at all when the cached front already covers it).
    fn ub_phase_front(
        &self,
        q: &SurfacePoint,
        cands: &mut [Candidate],
        members: &[usize],
        region: Rect2,
        frac: f64,
        stats: &mut QueryStats,
    ) {
        let m = self.dmtm.tree().step_for_fraction(frac);
        // Canonicalize the fetch region (pad + tile-snap) — done whether
        // or not the shared cache is on, so extraction inputs are
        // identical in both modes and hot neighbourhoods converge onto a
        // small set of reusable keys.
        let region = self.grid.snap(&region);
        let scratch = &mut *self.scratch.borrow_mut();
        let RankScratch { front_cache, bufs, shared, fetch, .. } = scratch;

        // Front cache: rebuilding the front per group per iteration is the
        // dominant redundant work — the step repeats across consecutive
        // schedule levels and regions only shrink, so a previously fetched
        // front frequently covers the request outright.
        let hit = matches!(front_cache.as_ref(),
            Some(c) if c.step == m && c.roi.contains_rect(&region));
        if hit {
            stats.front_cache_hits += 1;
        } else {
            // Recycle the replaced front's buffers into the fetch scratch
            // so steady-state refinement allocates nothing per fetch.
            if let Some(old) = front_cache.take() {
                if let FrontHandle::Owned(g) = old.graph {
                    fetch.recycle(g);
                }
            }
            let graph = if let Some(cache) = self.cuts {
                match cache.get_or_extract(self.dmtm, self.pager, m, Some(&region), members.len()) {
                    Ok(out) => {
                        if out.hit {
                            stats.cut_cache_hits += 1;
                        } else {
                            stats.cut_cache_misses += 1;
                        }
                        FrontHandle::Shared(out.value)
                    }
                    Err(e) => {
                        // Degrade: this group keeps its previous upper
                        // bounds (still valid, just looser) and no front
                        // is cached.
                        self.absorb_fault("ub", e);
                        return;
                    }
                }
            } else {
                match self.dmtm.fetch_front_with(self.pager, m, Some(&region), fetch) {
                    Ok(g) => FrontHandle::Owned(g),
                    Err(e) => {
                        self.absorb_fault("ub", e);
                        return;
                    }
                }
            };
            *front_cache = Some(CachedFront { step: m, roi: region, graph });
        }
        let fg = front_cache.as_ref().expect("front cache populated above").graph.get();
        if fg.num_nodes() == 0 {
            return;
        }
        let q_emb = self.dmtm.embed(fg, self.mesh, q.tri, q.pos);
        if q_emb.is_empty() {
            return;
        }

        // Unrestricted candidates (no finite upper bound yet, no corridor —
        // i.e. everyone on the first iteration) all need the *same*
        // multi-source Dijkstra from the query embedding; run it once per
        // group instead of once per candidate.
        let unrestricted = |c: &Candidate| {
            (!self.cfg.ellipse_prune || !c.range.ub.is_finite())
                && (!self.cfg.corridor_refinement || c.corridor.is_empty())
        };
        let shared_run = if members.iter().any(|&ci| unrestricted(&cands[ci])) {
            shared.graph.rebuild_undirected(fg.num_nodes(), &fg.edges);
            let run = Dijkstra::run_multi_scratch(&shared.graph, &q_emb, None, &mut shared.dij);
            stats.settled += run.settled;
            stats.absorb_queue(&run.queue);
            Some(run)
        } else {
            None
        };

        for &ci in members {
            let exits = self.dmtm.embed(fg, self.mesh, cands[ci].point.tri, cands[ci].point.pos);
            if exits.is_empty() {
                continue;
            }
            stats.ub_estimations += 1;
            let pad = self.mesh.mean_edge_length();
            let ellipse = if self.cfg.ellipse_prune && cands[ci].range.ub.is_finite() {
                Some(Ellipse2::new(q.pos.xy(), cands[ci].point.pos.xy(), cands[ci].range.ub))
            } else {
                None
            };
            let has_corr = self.cfg.corridor_refinement && !cands[ci].corridor.is_empty();

            if ellipse.is_none() && !has_corr {
                // Read this candidate's answer off the shared run.
                let run = shared_run.as_ref().expect("shared run covers unrestricted candidates");
                let mut best = f64::INFINITY;
                let mut best_node = None;
                for &(x, exit_cost) in &exits {
                    let total = run.dist(x) + exit_cost;
                    if total < best {
                        best = total;
                        best_node = Some(x);
                    }
                }
                if best.is_finite() {
                    cands[ci].range.tighten_ub(best);
                    let path = best_node.map(|x| run.path_to(x)).unwrap_or_default();
                    cands[ci].corridor.clear();
                    cands[ci].corridor.extend(path.iter().map(|&local| {
                        self.dmtm.tree().node(fg.ids[local as usize]).mbr.expanded(pad)
                    }));
                } else {
                    // Disconnected even unrestricted (over-tight fetch
                    // region): keep the previous bound; the region
                    // re-derives next round.
                    cands[ci].corridor.clear();
                }
                continue;
            }

            // Try the most restricted region first, then relax.
            let attempts: [(bool, bool); 3] = [(true, true), (false, true), (false, false)];
            let mut done = false;
            for (use_corr, use_ell) in attempts {
                if use_corr && !has_corr {
                    continue;
                }
                let (dist, settled, queue, path) = {
                    // Borrow the corridor only for the duration of the run
                    // (it ends with this block, freeing the candidate for
                    // the mutations below — no clone).
                    let corridor = &cands[ci].corridor;
                    let allowed = |local: usize| -> bool {
                        let p = fg.rep_pos[local].xy();
                        if use_ell {
                            if let Some(e) = &ellipse {
                                if !e.contains(p) {
                                    return false;
                                }
                            }
                        }
                        if use_corr && !corridor.iter().any(|r| r.contains_point(p)) {
                            return false;
                        }
                        true
                    };
                    filtered_dijkstra(fg, &allowed, &q_emb, &exits, bufs)
                };
                stats.settled += settled;
                stats.absorb_queue(&queue);
                if dist.is_finite() {
                    cands[ci].range.tighten_ub(dist);
                    // Record the corridor for the next level: the path
                    // nodes' descendant MBRs, slightly expanded.
                    cands[ci].corridor.clear();
                    cands[ci]
                        .corridor
                        .extend(path.iter().map(|&id| self.dmtm.tree().node(id).mbr.expanded(pad)));
                    done = true;
                    break;
                }
            }
            if !done {
                // Disconnected even unrestricted (over-tight fetch region):
                // keep the previous bound; the region re-derives next round.
                cands[ci].corridor.clear();
            }
        }
    }

    /// Upper bounds from the pathnet (the >100 % level): approximate
    /// surface distances over Steiner-augmented facets within the group
    /// region. Page charges come from fetching the leaf-level terrain
    /// records for the region.
    fn ub_phase_pathnet(
        &self,
        q: &SurfacePoint,
        cands: &mut [Candidate],
        members: &[usize],
        region: Rect2,
        stats: &mut QueryStats,
    ) {
        // Charge the I/O of reading the original-resolution terrain in the
        // (canonical) region — the pathnet is derived from it on the fly.
        // The graph itself is unused, so in owned mode its buffers go
        // straight back to scratch; under the shared cache repeat charges
        // for a hot region are served residently.
        {
            let charge_roi = self.grid.snap(&region);
            if let Some(cache) = self.cuts {
                match cache.get_or_extract(
                    self.dmtm,
                    self.pager,
                    0,
                    Some(&charge_roi),
                    members.len(),
                ) {
                    Ok(out) => {
                        if out.hit {
                            stats.cut_cache_hits += 1;
                        } else {
                            stats.cut_cache_misses += 1;
                        }
                    }
                    // The pathnet itself is derived in memory, so a failed
                    // leaf-page charge degrades the accounting, not the
                    // bound.
                    Err(e) => self.absorb_fault("ub", e),
                }
            } else {
                let fetch = &mut self.scratch.borrow_mut().fetch;
                match self.dmtm.fetch_front_with(self.pager, 0, Some(&charge_roi), fetch) {
                    Ok(leafs) => fetch.recycle(leafs),
                    Err(e) => self.absorb_fault("ub", e),
                }
            }
        }
        let mesh = self.mesh;
        let filter = |t: sknn_terrain::mesh::TriId| -> bool {
            mesh.triangle(t).mbr_xy().intersects(&region)
        };
        let net = Pathnet::build(mesh, self.cfg.pathnet_steiner, Some(&filter));
        // Every member shares the query as source, so one Dijkstra serves
        // the whole group; per-destination distances are embedding
        // read-offs, bit-identical to per-pair `Pathnet::distance` calls.
        let scratch = &mut *self.scratch.borrow_mut();
        let run = net.run_from(mesh, q.to_mesh_point(), &mut scratch.pathnet);
        stats.absorb_queue(&run.queue_counters());
        for &ci in members {
            stats.ub_estimations += 1;
            let d = run.distance_to(mesh, cands[ci].point.to_mesh_point());
            if d.is_finite() {
                cands[ci].range.tighten_ub(d);
            }
            stats.settled += net.num_nodes();
        }
    }

    /// Fetch an axis line band through the shared line cache when enabled,
    /// falling back to paged retrieval. Inputs must already be canonical.
    #[allow(clippy::too_many_arguments)]
    fn fetch_lines_shared(
        &self,
        lvl: usize,
        axis: Axis,
        lo: f64,
        hi: f64,
        roi: &Rect2,
        demand: usize,
        stats: &mut QueryStats,
    ) -> StoreResult<LineSet> {
        if let Some(cache) = self.lines {
            let out =
                cache.get_or_fetch(self.msdn, self.pager, lvl, axis, lo, hi, Some(roi), demand)?;
            if out.hit {
                stats.cut_cache_hits += 1;
            } else {
                stats.cut_cache_misses += 1;
            }
            Ok(LineSet::Shared(out.value))
        } else {
            let lines = self.msdn.fetch_lines_axis(self.pager, lvl, axis, lo, hi, Some(roi))?;
            Ok(LineSet::Owned(lines))
        }
    }

    /// Lower bound for one candidate, slicing its separating lines from
    /// the group's prefetched axis ranges, with the dummy-bound shortcut
    /// of §4.2.2.
    fn lb_phase(
        &self,
        q: &SurfacePoint,
        cands: &mut [Candidate],
        ci: usize,
        axis_lines: &[LineSet; 2],
        stats: &mut QueryStats,
    ) {
        let roi = cands[ci].region;
        let axis = Msdn::axis_for(q.pos, cands[ci].point.pos);
        let slot = if axis == Axis::X { 0 } else { 1 };
        let (ca, cb) = (axis.coord(q.pos), axis.coord(cands[ci].point.pos));
        let (lo, hi) = (ca.min(cb), ca.max(cb));
        // Slice this candidate's exact plane interval out of the group's
        // canonical (widened) band; out-of-band or out-of-region lines
        // contribute nothing to `lower_bound` (their segments fail its ROI
        // filter), so the widening never changes the computed bound.
        let mut lines: Vec<&SimplifiedLine> = axis_lines[slot]
            .as_slice()
            .iter()
            .filter(|l| l.plane.value > lo && l.plane.value < hi)
            .collect();
        if ca > cb {
            lines.reverse();
        }
        let width = self.mesh.mean_edge_length() * 2.0;
        let lb = &mut self.scratch.borrow_mut().lb;

        if self.cfg.dummy_lower_bound && !cands[ci].lb_path.is_empty() {
            let mask = corridor_mask(&lines, &cands[ci].lb_path, width);
            let dummy =
                lower_bound_with(&lines, q.pos, cands[ci].point.pos, Some(&roi), Some(&mask), lb);
            stats.settled += dummy.nodes_settled;
            stats.absorb_queue(&dummy.queue);
            // The dummy bound over-estimates the true lower bound. If even
            // it cannot push this candidate's range above its current lb,
            // the full bound cannot either — skip the full computation.
            if dummy.value <= cands[ci].range.lb + 1e-9 {
                stats.dummy_lb_hits += 1;
                return;
            }
        }
        stats.lb_estimations += 1;
        let full = lower_bound_with(&lines, q.pos, cands[ci].point.pos, Some(&roi), None, lb);
        stats.settled += full.nodes_settled;
        stats.absorb_queue(&full.queue);
        cands[ci].range.tighten_lb(full.value);
        cands[ci].lb_path = full.path_mbrs;
    }

    /// Fig.-8 support: one-shot range estimation of a single pair at fixed
    /// DMTM resolution and MSDN level (no iteration, no pruning).
    pub fn estimate_pair(
        &self,
        a: &SurfacePoint,
        b: &SurfacePoint,
        dmtm_frac: f64,
        msdn_level: usize,
        stats: &mut QueryStats,
    ) -> DistRange {
        let mut range = DistRange::unbounded();
        range.tighten_lb(a.pos.dist(b.pos));
        stats.ub_estimations += 1;
        stats.lb_estimations += 1;
        // Upper bound.
        if dmtm_frac <= 1.0 {
            let m = self.dmtm.tree().step_for_fraction(dmtm_frac);
            let fetched: StoreResult<FrontHandle> = if let Some(cache) = self.cuts {
                cache.get_or_extract(self.dmtm, self.pager, m, None, 1).map(|out| {
                    if out.hit {
                        stats.cut_cache_hits += 1;
                    } else {
                        stats.cut_cache_misses += 1;
                    }
                    FrontHandle::Shared(out.value)
                })
            } else {
                self.dmtm.fetch_front(self.pager, m, None).map(FrontHandle::Owned)
            };
            match fetched {
                Ok(handle) => {
                    let fg = handle.get();
                    let src = self.dmtm.embed(fg, self.mesh, a.tri, a.pos);
                    let dst = self.dmtm.embed(fg, self.mesh, b.tri, b.pos);
                    if !src.is_empty() && !dst.is_empty() {
                        let mut scratch = self.scratch.borrow_mut();
                        let (d, settled, queue, _) =
                            filtered_dijkstra(fg, &|_| true, &src, &dst, &mut scratch.bufs);
                        stats.settled += settled;
                        stats.absorb_queue(&queue);
                        if d.is_finite() {
                            range.tighten_ub(d);
                        }
                    }
                }
                // Degrade: the pair keeps an unbounded (valid) upper bound.
                Err(e) => self.absorb_fault("pair_ub", e),
            }
        } else {
            let net = Pathnet::build(self.mesh, self.cfg.pathnet_steiner, None);
            let d = net.distance(self.mesh, a.to_mesh_point(), b.to_mesh_point());
            if d.is_finite() {
                range.tighten_ub(d);
            }
        }
        // Lower bound.
        match self.msdn.lower_bound(self.pager, msdn_level, a.pos, b.pos, None) {
            Ok(lb) => {
                stats.settled += lb.nodes_settled;
                stats.absorb_queue(&lb.queue);
                range.tighten_lb(lb.value);
            }
            // Degrade: the Euclidean lower bound seeded above stands.
            Err(e) => self.absorb_fault("pair_lb", e),
        }
        range
    }
}

fn max_ub(cands: &[Candidate]) -> f64 {
    cands.iter().map(|c| c.range.ub).fold(f64::NEG_INFINITY, f64::max)
}

/// Dijkstra over a front graph restricted to `allowed` nodes. Returns the
/// best source-to-exit distance, settled count, queue counters, and the
/// tree-node-id path.
///
/// Allocation-free on the hot path: the node mask, filtered edge list,
/// source list, CSR graph and Dijkstra working state all live in `bufs`
/// and are recycled run to run.
fn filtered_dijkstra(
    fg: &FrontGraph,
    allowed: &dyn Fn(usize) -> bool,
    sources: &[(u32, f64)],
    exits: &[(u32, f64)],
    bufs: &mut DijkstraBufs,
) -> (f64, usize, QueueCounters, Vec<u32>) {
    let n = fg.num_nodes();
    let DijkstraBufs { mask, edges, srcs, graph, dij } = bufs;
    mask.clear();
    mask.extend((0..n).map(allowed));
    edges.clear();
    edges.extend(
        fg.edges.iter().filter(|&&(a, b, _)| mask[a as usize] && mask[b as usize]).copied(),
    );
    graph.rebuild_undirected(n, edges);
    srcs.clear();
    srcs.extend(sources.iter().filter(|&&(s, _)| mask[s as usize]).copied());
    if srcs.is_empty() {
        return (f64::INFINITY, 0, QueueCounters::default(), Vec::new());
    }
    let run = Dijkstra::run_multi_scratch(graph, srcs, None, dij);
    let mut best = f64::INFINITY;
    let mut best_node = None;
    for &(x, exit_cost) in exits {
        if !mask[x as usize] {
            continue;
        }
        let total = run.dist(x) + exit_cost;
        if total < best {
            best = total;
            best_node = Some(x);
        }
    }
    let path = best_node
        .map(|x| run.path_to(x).into_iter().map(|local| fg.ids[local as usize]).collect())
        .unwrap_or_default();
    (best, run.settled, run.queue, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SceneBuilder;
    use sknn_multires::build_dmtm;
    use sknn_sdn::{Msdn, MsdnConfig};
    use sknn_terrain::dem::TerrainConfig;

    struct Fixture {
        mesh: &'static TerrainMesh,
        dmtm: PagedDmtm,
        msdn: PagedMsdn,
        pager: Pager,
        cfg: Mr3Config,
    }

    fn fixture() -> Fixture {
        let mesh: &'static TerrainMesh =
            Box::leak(Box::new(TerrainConfig::ep().with_grid(17).build_mesh(77)));
        let pager = Pager::new(256);
        let dmtm = PagedDmtm::build(&pager, build_dmtm(mesh));
        let cfg = Mr3Config::default();
        let msdn_cfg = MsdnConfig { levels: cfg.msdn_levels.clone(), plane_spacing: None };
        let msdn = PagedMsdn::build(&pager, &Msdn::build(mesh, &msdn_cfg));
        Fixture { mesh, dmtm, msdn, pager, cfg }
    }

    fn ctx<'a>(f: &'a Fixture) -> RankingContext<'a, 'static> {
        RankingContext {
            mesh: f.mesh,
            dmtm: &f.dmtm,
            msdn: &f.msdn,
            pager: &f.pager,
            cfg: &f.cfg,
            rec: &sknn_obs::NOOP,
            query: 0,
            scratch: RefCell::new(RankScratch::default()),
            cuts: None,
            lines: None,
            grid: CutGrid::new(f.mesh.extent(), f.cfg.cut_cache.tiles, f.cfg.cut_cache.pad_tiles),
            faults: FaultLog::new(f.cfg.fault_budget),
            deadline: None,
            deadline_hit: Cell::new(false),
            pool: None,
        }
    }

    #[test]
    fn ranking_brackets_exact_distances() {
        let f = fixture();
        let c = ctx(&f);
        let scene = SceneBuilder::new(f.mesh).object_count(12).seed(3).build();
        let q = scene.random_query(5);
        let terrain = f.mesh.extent();
        let mut cands: Vec<Candidate> =
            scene.objects().iter().map(|o| Candidate::new(&q, o.id, o.point, &terrain)).collect();
        let mut stats = QueryStats::default();
        let resolved = c.rank_top_k(&q, &mut cands, 3, &mut stats);
        assert!(stats.iterations >= 1);
        // Bounds must bracket the exact distances.
        let geo = sknn_geodesic::ExactGeodesic::new(f.mesh);
        for cand in &cands {
            let exact = geo.distance(q.to_mesh_point(), cand.point.to_mesh_point());
            assert!(
                cand.range.lb <= exact + 1e-6,
                "cand {}: lb {} > exact {exact}",
                cand.id,
                cand.range.lb
            );
            if cand.range.ub.is_finite() {
                assert!(
                    cand.range.ub >= exact - 1e-6,
                    "cand {}: ub {} < exact {exact}",
                    cand.id,
                    cand.range.ub
                );
            }
        }
        // If the engine reports resolution, the chosen top-3 must be the
        // true top-3 up to bound ties.
        if resolved {
            let mut by_exact: Vec<(f64, u32)> = cands
                .iter()
                .map(|cd| (geo.distance(q.to_mesh_point(), cd.point.to_mesh_point()), cd.id))
                .collect();
            by_exact.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut by_ub: Vec<&Candidate> = cands.iter().filter(|cd| !cd.out).collect();
            by_ub.sort_by(|a, b| a.range.ub.partial_cmp(&b.range.ub).unwrap());
            let kth_exact = by_exact[2].0;
            for chosen in by_ub.iter().take(3) {
                let exact = geo.distance(q.to_mesh_point(), chosen.point.to_mesh_point());
                assert!(
                    exact <= kth_exact + 1e-6,
                    "chosen {} at {exact} vs kth {kth_exact}",
                    chosen.id
                );
            }
        }
    }

    #[test]
    fn radius_estimation_is_safe_and_finite() {
        let f = fixture();
        let c = ctx(&f);
        let scene = SceneBuilder::new(f.mesh).object_count(10).seed(9).build();
        let q = scene.random_query(2);
        let terrain = f.mesh.extent();
        let seeds = scene.dxy().knn(q.pos.xy(), 4);
        let mut cands: Vec<Candidate> = seeds
            .iter()
            .map(|&(_, _, id)| Candidate::new(&q, id, scene.object(id).point, &terrain))
            .collect();
        let mut stats = QueryStats::default();
        let radius = c.estimate_radius(&q, &mut cands, &mut stats);
        assert!(radius.is_finite() && radius > 0.0);
        // The radius must cover the 4 seeds' exact distances.
        let geo = sknn_geodesic::ExactGeodesic::new(f.mesh);
        for cand in &cands {
            let exact = geo.distance(q.to_mesh_point(), cand.point.to_mesh_point());
            assert!(exact <= radius + 1e-6, "seed {} at {exact} > radius {radius}", cand.id);
        }
    }

    #[test]
    fn estimate_pair_accuracy_improves_with_resolution() {
        let f = fixture();
        let c = ctx(&f);
        let scene = SceneBuilder::new(f.mesh).object_count(2).seed(13).build();
        let a = scene.random_query(1);
        let b = scene.random_query(7);
        let mut stats = QueryStats::default();
        let coarse = c.estimate_pair(&a, &b, 0.005, 0, &mut stats);
        let fine = c.estimate_pair(&a, &b, 2.0, 4, &mut stats);
        assert!(fine.accuracy() >= coarse.accuracy() - 0.02);
        assert!(fine.accuracy() > 0.5, "final accuracy {}", fine.accuracy());
        assert!(fine.lb <= fine.ub);
    }

    #[test]
    fn out_marking_never_drops_a_true_neighbor() {
        let f = fixture();
        let c = ctx(&f);
        let scene = SceneBuilder::new(f.mesh).object_count(15).seed(21).build();
        let q = scene.random_query(11);
        let terrain = f.mesh.extent();
        let mut cands: Vec<Candidate> =
            scene.objects().iter().map(|o| Candidate::new(&q, o.id, o.point, &terrain)).collect();
        let mut stats = QueryStats::default();
        let k = 4;
        c.rank_top_k(&q, &mut cands, k, &mut stats);
        let geo = sknn_geodesic::ExactGeodesic::new(f.mesh);
        let mut by_exact: Vec<(f64, u32)> = cands
            .iter()
            .map(|cd| (geo.distance(q.to_mesh_point(), cd.point.to_mesh_point()), cd.id))
            .collect();
        by_exact.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let true_top: Vec<u32> = by_exact.iter().take(k).map(|&(_, id)| id).collect();
        for cd in &cands {
            if cd.out {
                assert!(!true_top.contains(&cd.id), "true neighbor {} was eliminated", cd.id);
            }
        }
    }
}
