//! Search-region management: prune ellipses and integrated I/O regions.
//!
//! §4.2 of the paper: each candidate's search region projects to the
//! ellipse whose foci are the query and candidate projections and whose
//! constant is the current upper bound; its MBR is the candidate's I/O
//! region. "As there may have multiple candidate points to be considered
//! at each iteration, their I/O regions can be combined if they are
//! significantly overlapped (e.g., over 80 %) in order to reduce I/O
//! cost."

use sknn_geom::{Ellipse2, Point2, Rect2};

/// The I/O region of a candidate at some iteration: the MBR of its prune
/// ellipse (or the whole terrain before any upper bound is known).
pub fn candidate_region(q: Point2, cand: Point2, ub: f64, terrain: &Rect2) -> Rect2 {
    if !ub.is_finite() {
        return *terrain;
    }
    Ellipse2::new(q, cand, ub).mbr().intersection(terrain)
}

/// A merged fetch group: which candidates it covers and the union region.
#[derive(Debug, Clone, PartialEq)]
pub struct IoGroup {
    /// Indices into the caller's candidate array.
    pub members: Vec<usize>,
    /// Union MBR to fetch.
    pub region: Rect2,
}

/// Greedily merge candidate regions whose pairwise overlap fraction
/// reaches `threshold`. With `threshold > 1.0` (or integration disabled)
/// every candidate keeps its own group.
pub fn merge_regions(regions: &[Rect2], threshold: f64) -> Vec<IoGroup> {
    let mut groups: Vec<IoGroup> =
        regions.iter().enumerate().map(|(i, r)| IoGroup { members: vec![i], region: *r }).collect();
    loop {
        let mut merged_any = false;
        'outer: for i in 0..groups.len() {
            for j in i + 1..groups.len() {
                if groups[i].region.overlap_fraction(&groups[j].region) >= threshold {
                    let other = groups.remove(j);
                    groups[i].members.extend(other.members);
                    groups[i].region = groups[i].region.union(&other.region);
                    merged_any = true;
                    break 'outer;
                }
            }
        }
        if !merged_any {
            return groups;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ax: f64, ay: f64, bx: f64, by: f64) -> Rect2 {
        Rect2::new(Point2::new(ax, ay), Point2::new(bx, by))
    }

    #[test]
    fn region_is_ellipse_mbr_clipped_to_terrain() {
        let terrain = r(0.0, 0.0, 100.0, 100.0);
        let q = Point2::new(10.0, 50.0);
        let c = Point2::new(30.0, 50.0);
        let reg = candidate_region(q, c, 40.0, &terrain);
        // Ellipse: a = 20, c = 10, b = sqrt(300) ~ 17.32, centered (20,50).
        assert!((reg.lo.x - 0.0).abs() < 1e-9); // clipped at terrain edge
        assert!((reg.hi.x - 40.0).abs() < 1e-9);
        assert!((reg.hi.y - (50.0 + 300f64.sqrt())).abs() < 1e-9);
        // Unknown ub -> whole terrain.
        assert_eq!(candidate_region(q, c, f64::INFINITY, &terrain), terrain);
    }

    #[test]
    fn merge_overlapping_regions() {
        let regions = vec![
            r(0.0, 0.0, 10.0, 10.0),
            r(0.5, 0.5, 10.5, 10.5), // ~90 % overlap with the first
            r(50.0, 50.0, 60.0, 60.0),
        ];
        let groups = merge_regions(&regions, 0.8);
        assert_eq!(groups.len(), 2);
        let big = groups.iter().find(|g| g.members.len() == 2).unwrap();
        assert!(big.members.contains(&0) && big.members.contains(&1));
        assert_eq!(big.region, r(0.0, 0.0, 10.5, 10.5));
    }

    #[test]
    fn merge_is_transitive_through_unions() {
        // a overlaps b, b overlaps c, a does not overlap c directly; the
        // union of (a, b) then overlaps c.
        let regions =
            vec![r(0.0, 0.0, 10.0, 10.0), r(2.0, 0.0, 12.0, 10.0), r(4.0, 0.0, 14.0, 10.0)];
        let groups = merge_regions(&regions, 0.6);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 3);
    }

    #[test]
    fn disabled_threshold_keeps_singletons() {
        let regions = vec![r(0.0, 0.0, 10.0, 10.0); 4];
        let groups = merge_regions(&regions, 1.1);
        assert_eq!(groups.len(), 4);
        for g in groups {
            assert_eq!(g.members.len(), 1);
        }
    }

    #[test]
    fn empty_input() {
        assert!(merge_regions(&[], 0.8).is_empty());
    }
}
