//! Scenes: object sets on a terrain plus the planar object index.
//!
//! The paper's workload is "object points uniformly distributed on the
//! surface with varying object density 1 <= o <= 10" per km² (§5.1). A
//! [`Scene`] holds those objects, the triangle locator, and the R-tree
//! over their (x, y) projections (`Dxy`) that steps 1 and 3 of MR3 query.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sknn_geom::{Point2, Point3, Rect2};
use sknn_spatial::RTree;
use sknn_terrain::locate::TriangleLocator;
use sknn_terrain::mesh::{TerrainMesh, TriId};

/// A point on the terrain surface: its facet and 3-D position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfacePoint {
    /// Containing facet.
    pub tri: TriId,
    /// 3-D position.
    pub pos: Point3,
}

impl SurfacePoint {
    /// To mesh point.
    pub fn to_mesh_point(self) -> sknn_geodesic::MeshPoint {
        sknn_geodesic::MeshPoint::Interior { tri: self.tri, pos: self.pos }
    }
}

/// An object placed on the surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneObject {
    /// Object identifier.
    pub id: u32,
    /// Position on the surface.
    pub point: SurfacePoint,
}

/// Builder for [`Scene`].
pub struct SceneBuilder<'m> {
    mesh: &'m TerrainMesh,
    density: f64,
    count: Option<usize>,
    seed: u64,
    explicit: Option<Vec<Point2>>,
    clusters: Option<(usize, f64)>,
}

impl<'m> SceneBuilder<'m> {
    /// Creates the value from its parts.
    pub fn new(mesh: &'m TerrainMesh) -> Self {
        Self { mesh, density: 4.0, count: None, seed: 0, explicit: None, clusters: None }
    }

    /// Objects per km² (the paper's `o`). Ignored if an explicit count is
    /// set.
    pub fn object_density_per_km2(mut self, o: f64) -> Self {
        self.density = o;
        self
    }

    /// Explicit object count (overrides density).
    pub fn object_count(mut self, n: usize) -> Self {
        self.count = Some(n);
        self
    }

    /// Seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Place objects at explicit planar positions (lifted to the surface).
    /// Positions outside the terrain are skipped.
    pub fn objects_at(mut self, positions: Vec<Point2>) -> Self {
        self.explicit = Some(positions);
        self
    }

    /// Clustered placement instead of uniform: objects gather around
    /// `n_clusters` random centres with Gaussian-ish spread `spread_m`
    /// (animals cluster near water sources — the paper's own narrative).
    pub fn clustered(mut self, n_clusters: usize, spread_m: f64) -> Self {
        self.clusters = Some((n_clusters.max(1), spread_m.max(0.0)));
        self
    }

    /// Materialise the scene: place objects, build the locator and Dxy.
    pub fn build(self) -> Scene<'m> {
        let locator = TriangleLocator::build(self.mesh);
        let extent = self.mesh.extent();
        let area_km2 = extent.area() / 1e6;
        let n = self.count.unwrap_or_else(|| ((self.density * area_km2).round() as usize).max(1));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut objects = Vec::with_capacity(n);
        if let Some(positions) = &self.explicit {
            for &p in positions {
                if let Some(sp) = lift(self.mesh, &locator, p) {
                    objects.push(SceneObject { id: objects.len() as u32, point: sp });
                }
            }
        } else if let Some((n_clusters, spread)) = self.clusters {
            let centres: Vec<Point2> =
                (0..n_clusters).map(|_| random_point(&mut rng, &extent)).collect();
            while objects.len() < n {
                let c = centres[rng.gen_range(0..n_clusters)];
                // Sum of uniforms approximates a Gaussian well enough here.
                let dx = (rng.gen_range(-1.0..1.0f64) + rng.gen_range(-1.0..1.0)) * spread;
                let dy = (rng.gen_range(-1.0..1.0f64) + rng.gen_range(-1.0..1.0)) * spread;
                let p = Point2::new(
                    (c.x + dx).clamp(extent.lo.x + 1e-6, extent.hi.x - 1e-6),
                    (c.y + dy).clamp(extent.lo.y + 1e-6, extent.hi.y - 1e-6),
                );
                if let Some(sp) = lift(self.mesh, &locator, p) {
                    objects.push(SceneObject { id: objects.len() as u32, point: sp });
                }
            }
        } else {
            while objects.len() < n {
                let p = random_point(&mut rng, &extent);
                if let Some(sp) = lift(self.mesh, &locator, p) {
                    objects.push(SceneObject { id: objects.len() as u32, point: sp });
                }
            }
        }
        let rtree = RTree::bulk_load(
            objects.iter().map(|o| (Rect2::from_point(o.point.pos.xy()), o.id)).collect(),
        );
        Scene { mesh: self.mesh, locator, objects, rtree, density: self.density }
    }
}

/// Objects on a terrain with their planar index.
pub struct Scene<'m> {
    mesh: &'m TerrainMesh,
    locator: TriangleLocator,
    objects: Vec<SceneObject>,
    rtree: RTree<u32>,
    density: f64,
}

impl<'m> Scene<'m> {
    /// Mesh.
    pub fn mesh(&self) -> &'m TerrainMesh {
        self.mesh
    }

    /// Locator.
    pub fn locator(&self) -> &TriangleLocator {
        self.locator_ref()
    }

    fn locator_ref(&self) -> &TriangleLocator {
        &self.locator
    }

    /// Objects.
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// Object.
    pub fn object(&self, id: u32) -> &SceneObject {
        &self.objects[id as usize]
    }

    /// Num objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Density.
    pub fn density(&self) -> f64 {
        self.density
    }

    /// The `Dxy` R-tree (projections of objects on the (x, y) plane).
    pub fn dxy(&self) -> &RTree<u32> {
        &self.rtree
    }

    /// Lift an arbitrary planar position onto the surface.
    pub fn surface_point(&self, p: Point2) -> Option<SurfacePoint> {
        lift(self.mesh, &self.locator, p)
    }

    /// A deterministic random query point on the surface.
    pub fn random_query(&self, seed: u64) -> SurfacePoint {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let extent = self.mesh.extent();
        loop {
            let p = random_point(&mut rng, &extent);
            if let Some(sp) = lift(self.mesh, &self.locator, p) {
                return sp;
            }
        }
    }

    /// A batch of deterministic query points.
    pub fn random_queries(&self, n: usize, seed: u64) -> Vec<SurfacePoint> {
        (0..n as u64).map(|i| self.random_query(seed ^ (i + 1))).collect()
    }
}

fn random_point(rng: &mut StdRng, extent: &Rect2) -> Point2 {
    // Stay off the exact boundary so facet location is unambiguous.
    let margin = 1e-6;
    Point2::new(
        rng.gen_range(extent.lo.x + margin..extent.hi.x - margin),
        rng.gen_range(extent.lo.y + margin..extent.hi.y - margin),
    )
}

fn lift(mesh: &TerrainMesh, locator: &TriangleLocator, p: Point2) -> Option<SurfacePoint> {
    let tri = locator.locate(mesh, p)?;
    let pos = mesh.triangle(tri).lift_xy(p)?;
    Some(SurfacePoint { tri, pos })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sknn_terrain::dem::TerrainConfig;

    #[test]
    fn density_controls_count() {
        let mesh = TerrainConfig::bh().with_grid(33).build_mesh(1);
        // 320 m x 320 m = 0.1024 km².
        let s10 = SceneBuilder::new(&mesh).object_density_per_km2(100.0).seed(2).build();
        let s100 = SceneBuilder::new(&mesh).object_density_per_km2(1000.0).seed(2).build();
        assert_eq!(s10.num_objects(), 10);
        assert_eq!(s100.num_objects(), 102);
        assert_eq!(s10.density(), 100.0);
    }

    #[test]
    fn explicit_count_wins() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(1);
        let s = SceneBuilder::new(&mesh).object_count(37).seed(5).build();
        assert_eq!(s.num_objects(), 37);
    }

    #[test]
    fn objects_are_on_surface() {
        let mesh = TerrainConfig::ep().with_grid(17).build_mesh(3);
        let s = SceneBuilder::new(&mesh).object_count(50).seed(7).build();
        for o in s.objects() {
            let lifted = s.locator().lift(&mesh, o.point.pos.xy()).unwrap();
            assert!((lifted.z - o.point.pos.z).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(4);
        let a = SceneBuilder::new(&mesh).object_count(20).seed(9).build();
        let b = SceneBuilder::new(&mesh).object_count(20).seed(9).build();
        assert_eq!(a.objects(), b.objects());
        assert_eq!(a.random_query(3), b.random_query(3));
        assert_ne!(a.random_query(3), a.random_query(4));
    }

    #[test]
    fn explicit_object_placement() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(2);
        let pts = vec![Point2::new(20.0, 20.0), Point2::new(100.0, 120.0), Point2::new(-5.0, 0.0)];
        let s = SceneBuilder::new(&mesh).objects_at(pts).build();
        assert_eq!(s.num_objects(), 2); // off-terrain point skipped
        assert!((s.object(0).point.pos.x - 20.0).abs() < 1e-9);
        assert!((s.object(1).point.pos.y - 120.0).abs() < 1e-9);
    }

    #[test]
    fn clustered_placement_is_tighter_than_uniform() {
        let mesh = TerrainConfig::ep().with_grid(33).build_mesh(7);
        let uniform = SceneBuilder::new(&mesh).object_count(60).seed(1).build();
        let clustered =
            SceneBuilder::new(&mesh).object_count(60).clustered(3, 15.0).seed(1).build();
        // Mean nearest-neighbour (planar) distance should shrink markedly.
        let mean_nn = |s: &Scene<'_>| -> f64 {
            let mut total = 0.0;
            for o in s.objects() {
                let mut best = f64::INFINITY;
                for p in s.objects() {
                    if p.id != o.id {
                        best = best.min(o.point.pos.xy().dist(p.point.pos.xy()));
                    }
                }
                total += best;
            }
            total / s.num_objects() as f64
        };
        assert!(mean_nn(&clustered) < mean_nn(&uniform) * 0.8);
    }

    #[test]
    fn dxy_knn_returns_planar_neighbors() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(6);
        let s = SceneBuilder::new(&mesh).object_count(40).seed(11).build();
        let q = s.random_query(1);
        let knn = s.dxy().knn(q.pos.xy(), 5);
        assert_eq!(knn.len(), 5);
        // Verify against a scan.
        let mut dists: Vec<f64> =
            s.objects().iter().map(|o| o.point.pos.xy().dist(q.pos.xy())).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((knn[4].0 - dists[4]).abs() < 1e-12);
    }

    #[test]
    fn random_queries_are_distinct() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(8);
        let s = SceneBuilder::new(&mesh).object_count(10).seed(1).build();
        let qs = s.random_queries(10, 42);
        for i in 0..qs.len() {
            for j in i + 1..qs.len() {
                assert_ne!(qs[i].pos, qs[j].pos);
            }
        }
    }
}
