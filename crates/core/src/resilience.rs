//! Query-level fault absorption and graceful degradation.
//!
//! Storage faults that survive the pager's retry budget surface to the
//! ranking engine as [`StoreError`]s. MR3's bounds make a stronger
//! recovery possible than fail-the-query: every materialised resolution's
//! bounds are *valid* (coarser just means looser), so when a
//! finer-resolution DMTM or MSDN fetch fails permanently the ranking can
//! simply keep the last resolution's bounds and carry on. The query then
//! completes with a correct-by-bounds answer and a [`Degraded`] marker
//! explaining what was skipped.
//!
//! A per-query fault budget ([`Mr3Config::fault_budget`]
//! (crate::Mr3Config::fault_budget)) caps how much absorption one query
//! tolerates; past it, resolution escalation halts and the fallible entry
//! points ([`Mr3Engine::try_query`](crate::Mr3Engine::try_query)) return a
//! typed [`QueryError`] instead of looping against dead media.

use sknn_store::StoreError;
use std::cell::RefCell;
use std::fmt;

/// Marker that a query completed with valid but looser-than-scheduled
/// bounds because storage faults were absorbed along the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degraded {
    /// Ranking phase of the first absorbed fault (`"ub"`, `"lb"`,
    /// `"pair_ub"`, `"pair_lb"`).
    pub phase: &'static str,
    /// Number of storage faults absorbed during the query.
    pub faults: usize,
    /// Human-readable description of the first fault.
    pub reason: String,
}

impl fmt::Display for Degraded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degraded ({} faults, first in {} phase: {})",
            self.faults, self.phase, self.reason
        )
    }
}

/// Typed failure of a fallible query entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Absorbed storage faults exceeded the per-query budget: the media is
    /// failing faster than degradation can paper over.
    FaultBudgetExceeded {
        /// The configured budget.
        budget: usize,
        /// Faults absorbed before giving up.
        faults: usize,
        /// The fault that broke the budget.
        last: StoreError,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::FaultBudgetExceeded { budget, faults, last } => {
                write!(f, "query absorbed {faults} storage faults (budget {budget}); last: {last}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Per-query accumulator of absorbed storage faults.
///
/// Lives inside the [`RankingContext`](crate::ranking::RankingContext)
/// (one per query per thread), so interior mutability via `RefCell` is
/// safe — a context never crosses threads.
#[derive(Debug)]
pub struct FaultLog {
    budget: usize,
    events: RefCell<Vec<(&'static str, StoreError)>>,
}

impl FaultLog {
    /// An empty log with the given fault budget.
    pub fn new(budget: usize) -> Self {
        Self { budget, events: RefCell::new(Vec::new()) }
    }

    /// Record one absorbed fault.
    pub fn absorb(&self, phase: &'static str, err: StoreError) {
        self.events.borrow_mut().push((phase, err));
    }

    /// Faults absorbed so far.
    pub fn count(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether the budget is spent: refinement should halt and fallible
    /// entry points should return [`QueryError::FaultBudgetExceeded`].
    pub fn exceeded(&self) -> bool {
        self.count() > self.budget
    }

    /// The degradation marker for a completed query: `None` when the
    /// query ran fault-free.
    pub fn degraded(&self) -> Option<Degraded> {
        let events = self.events.borrow();
        let &(phase, first) = events.first()?;
        Some(Degraded { phase, faults: events.len(), reason: first.to_string() })
    }

    /// The typed error when the budget is exceeded, else `None`.
    pub fn error(&self) -> Option<QueryError> {
        if !self.exceeded() {
            return None;
        }
        let events = self.events.borrow();
        let &(_, last) = events.last().expect("exceeded implies non-empty");
        Some(QueryError::FaultBudgetExceeded { budget: self.budget, faults: events.len(), last })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_gates_error_but_not_degradation() {
        let log = FaultLog::new(2);
        assert!(log.degraded().is_none() && log.error().is_none());
        log.absorb("ub", StoreError::PermanentRead { page: 7 });
        log.absorb("lb", StoreError::PermanentRead { page: 8 });
        assert!(!log.exceeded());
        let d = log.degraded().unwrap();
        assert_eq!((d.phase, d.faults), ("ub", 2));
        assert!(d.reason.contains('7'));
        assert!(log.error().is_none());
        log.absorb("lb", StoreError::PermanentRead { page: 9 });
        assert!(log.exceeded());
        match log.error().unwrap() {
            QueryError::FaultBudgetExceeded { budget, faults, last } => {
                assert_eq!((budget, faults), (2, 3));
                assert_eq!(last, StoreError::PermanentRead { page: 9 });
            }
        }
    }
}
