//! MR3 configuration: step schedules and optimisation switches.

/// A resolution escalation schedule (paper §5.3). Each iteration pairs a
/// DMTM resolution with an MSDN level; longer steps mean fewer iterations
/// over coarser-grained jumps.
///
/// DMTM resolutions are fractions of the original vertex count; values
/// above `1.0` select the pathnet (`2.0` = one Steiner point per edge, the
/// paper's "200 %" level where `dN = dS` by their definition).
#[derive(Debug, Clone, PartialEq)]
pub struct StepSchedule {
    /// DMTM resolution per iteration.
    pub dmtm: Vec<f64>,
    /// MSDN level *index* (into [`Mr3Config::msdn_levels`]) per iteration.
    pub msdn: Vec<usize>,
    /// Human-readable name ("s=1" etc.).
    pub name: &'static str,
}

impl StepSchedule {
    /// s = 1: DMTM 0.5, 25, 50, 75, 100, 200 %; MSDN 25, 37.5, 50, 75, 100 %.
    pub fn s1() -> Self {
        Self {
            dmtm: vec![0.005, 0.25, 0.5, 0.75, 1.0, 2.0],
            msdn: vec![0, 1, 2, 3, 4, 4],
            name: "s=1",
        }
    }

    /// s = 2: DMTM 0.5, 50, 100, 200 %; MSDN 25, 50, 100 %.
    pub fn s2() -> Self {
        Self { dmtm: vec![0.005, 0.5, 1.0, 2.0], msdn: vec![0, 2, 4, 4], name: "s=2" }
    }

    /// s = 3: DMTM 0.5, 100, 200 %; MSDN 25, 100 % — "less multiresolution",
    /// simulating a traditional filter-and-refine jump to full resolution.
    pub fn s3() -> Self {
        Self { dmtm: vec![0.005, 1.0, 2.0], msdn: vec![0, 4, 4], name: "s=3" }
    }

    /// Number of iterations.
    pub fn len(&self) -> usize {
        self.dmtm.len()
    }

    /// Whether it holds nothing.
    pub fn is_empty(&self) -> bool {
        self.dmtm.is_empty()
    }

    /// MSDN level index for iteration `i` (clamped to the last entry).
    pub fn msdn_level(&self, i: usize) -> usize {
        self.msdn[i.min(self.msdn.len() - 1)]
    }
}

/// Configuration of the shared process-wide cut cache (materialized DMTM
/// fronts and MSDN line bands, shared across concurrent queries).
///
/// Results are bit-identical with the cache enabled or disabled: fetch
/// regions are canonicalized (padded by `pad_tiles` and snapped to a
/// `tiles × tiles` lattice) in both modes, and cached cuts are byte-equal
/// to freshly extracted ones, so the cache only removes repeated work.
#[derive(Debug, Clone, PartialEq)]
pub struct CutCacheConfig {
    /// Master switch.
    pub enabled: bool,
    /// Total resident-weight budget in approximate bytes, split 3:1
    /// between the DMTM front cache and the MSDN line cache.
    pub capacity_bytes: usize,
    /// Tiles per side of the region-canonicalization lattice.
    pub tiles: usize,
    /// Loading-radius hysteresis: fetch regions are padded by this many
    /// tiles before snapping, so repeat traffic around a hot spot lands
    /// inside already-materialized cuts.
    pub pad_tiles: f64,
    /// Extractions admitted per tick, prioritized by query demand;
    /// `0` = unlimited (no admission control).
    pub extract_budget: usize,
    /// Admission tick length in milliseconds.
    pub tick_ms: u64,
}

impl Default for CutCacheConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            capacity_bytes: 64 << 20,
            tiles: 16,
            pad_tiles: 0.5,
            extract_budget: 0,
            tick_ms: 10,
        }
    }
}

/// Knobs of the MR3 engine.
#[derive(Debug, Clone)]
pub struct Mr3Config {
    /// The schedule.
    pub schedule: StepSchedule,
    /// MSDN resolution levels to materialise (ascending fractions).
    pub msdn_levels: Vec<f64>,
    /// Overlap fraction above which candidate I/O regions merge (§4.2:
    /// "significantly overlapped (e.g., over 80%)").
    pub io_merge_threshold: f64,
    /// Master switch for integrated I/O regions (Fig. 9's experiment).
    pub integrated_io: bool,
    /// Prune search regions to the ellipse of foci (q, candidate) with
    /// constant = current upper bound (§4.2.1).
    pub ellipse_prune: bool,
    /// Restrict upper-bound Dijkstra to the corridor of the previous
    /// round's path ("selectively refined search region", §4.2.1).
    pub corridor_refinement: bool,
    /// Use the corridor-restricted dummy lower bound before a full one
    /// (§4.2.2).
    pub dummy_lower_bound: bool,
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
    /// Steiner points per edge for the pathnet (>100 %) level.
    pub pathnet_steiner: usize,
    /// MSDN plane spacing override, metres (`None` = mean edge length).
    pub plane_spacing: Option<f64>,
    /// Storage faults one query may absorb (degrading to the last
    /// materialised resolution's bounds) before the fallible entry points
    /// return [`QueryError`](crate::QueryError) instead.
    pub fault_budget: usize,
    /// Per-query wall-clock budget. Checked between MR3 refinement
    /// iterations: on expiry the query stops escalating resolution and
    /// returns its current valid-but-looser bounds with a
    /// [`Degraded`](crate::Degraded) reason of `DeadlineExpired` — every
    /// materialised resolution's bounds bracket the exact distance, so an
    /// expired query still answers correctly, just less tightly. `None`
    /// (the default) runs to convergence. The serving layer overrides this
    /// per request via `Mr3Engine::try_query_at`.
    pub deadline: Option<std::time::Duration>,
    /// Shared cut cache (process-wide materialized-cut reuse).
    pub cut_cache: CutCacheConfig,
    /// Priority-queue implementation for every Dijkstra run (bound
    /// estimation, constrained paths, SDN lower bounds). `Bucket` is the
    /// monotone Dial-style queue and the default; `Heap` keeps the binary
    /// heap for comparison. Both produce bit-identical distances.
    pub queue: sknn_geodesic::graph::QueuePolicy,
}

impl Default for Mr3Config {
    fn default() -> Self {
        Self {
            schedule: StepSchedule::s1(),
            msdn_levels: vec![0.25, 0.375, 0.5, 0.75, 1.0],
            io_merge_threshold: 0.8,
            integrated_io: true,
            ellipse_prune: true,
            corridor_refinement: true,
            dummy_lower_bound: true,
            pool_pages: 256,
            pathnet_steiner: 1,
            plane_spacing: None,
            fault_budget: 16,
            deadline: None,
            cut_cache: CutCacheConfig::default(),
            queue: sknn_geodesic::graph::QueuePolicy::default(),
        }
    }
}

impl Mr3Config {
    /// With schedule.
    pub fn with_schedule(mut self, schedule: StepSchedule) -> Self {
        self.schedule = schedule;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_match_paper_listing() {
        let s1 = StepSchedule::s1();
        assert_eq!(s1.dmtm, vec![0.005, 0.25, 0.5, 0.75, 1.0, 2.0]);
        assert_eq!(s1.len(), 6);
        let s2 = StepSchedule::s2();
        assert_eq!(s2.dmtm, vec![0.005, 0.5, 1.0, 2.0]);
        let s3 = StepSchedule::s3();
        assert_eq!(s3.dmtm, vec![0.005, 1.0, 2.0]);
        // All schedules start at 0.5 % and end at the pathnet.
        for s in [&s1, &s2, &s3] {
            assert_eq!(s.dmtm[0], 0.005);
            assert_eq!(*s.dmtm.last().unwrap(), 2.0);
        }
    }

    #[test]
    fn msdn_level_clamps() {
        let s = StepSchedule::s2();
        assert_eq!(s.msdn_level(0), 0);
        assert_eq!(s.msdn_level(2), 4);
        assert_eq!(s.msdn_level(99), 4);
    }

    #[test]
    fn default_config_is_fully_enabled() {
        let c = Mr3Config::default();
        assert!(c.integrated_io && c.ellipse_prune && c.corridor_refinement && c.dummy_lower_bound);
        assert_eq!(c.io_merge_threshold, 0.8);
        assert_eq!(c.msdn_levels.len(), 5);
        assert!(c.cut_cache.enabled);
        assert_eq!(c.cut_cache.extract_budget, 0, "admission control off by default");
    }
}
