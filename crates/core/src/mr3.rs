//! Algorithm MR3 — Multi-Resolution Range Ranking (paper §4.1).
//!
//! ```text
//! 1. 2D k-NN Query      : seeds C1 from the Dxy R-tree
//! 2. Surface Ranking    : tighten the seeds' upper bounds -> radius ub(q,b)
//! 3. 2D Range Query     : C2 = objects within the radius (planar circle)
//! 4. Surface Ranking    : rank C2 until ub(p_k) <= lb(p_{k+1})
//! ```
//!
//! Correctness (paper): any object outside `C2` has Euclidean — hence
//! surface — distance beyond `ub(q, b)`, and k objects are already known
//! to be within that bound.

use crate::config::Mr3Config;
use crate::metrics::{CpuTimer, Neighbor, QueryResult, QueryStats};
use crate::objects::{ObjectSnapshot, ObjectStore, WriteStats};
use crate::ranking::{Candidate, RankScratch, RankingContext};
use crate::resilience::{FaultLog, QueryError};
use crate::workload::{Scene, SurfacePoint};
use sknn_multires::{CutCache, CutGrid, PagedDmtm};
use sknn_obs::{field, QueryTrace, Recorder, RingRecorder, NOOP};
use sknn_sdn::{LineCutCache, PagedMsdn};
use sknn_store::{DiskModel, Pager, StructureTag};
use sknn_terrain::mesh::TerrainMesh;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default ring capacity when tracing is enabled: comfortably holds the
/// spans, iteration events and I/O roll-up of one query.
const TRACE_RING_CAPACITY: usize = 4096;

/// The MR3 surface k-NN query engine.
///
/// The engine is `Sync`: every query-path structure is either immutable
/// (mesh, scene, DMTM, MSDN) or internally synchronised (the mutex-backed
/// [`Pager`], the ring recorder, atomic counters), so independent queries
/// may run concurrently through `&self` — see [`query_batch`]
/// (Self::query_batch). Query *results* depend only on the immutable
/// structures; the shared mutable state only feeds cost counters, which
/// become aggregate (not per-query-exact) under concurrency.
pub struct Mr3Engine<'s, 'm> {
    mesh: &'m TerrainMesh,
    scene: &'s Scene<'m>,
    /// The dynamic object set: durable heap + WAL behind copy-on-write
    /// snapshots. Queries pin one snapshot for their whole run, so
    /// concurrent mutations never shift the ground mid-ranking.
    objects: ObjectStore,
    dmtm: PagedDmtm,
    msdn: PagedMsdn,
    pager: Pager,
    cfg: Mr3Config,
    /// Trace sink; `None` means tracing off (no-op recorder, no overhead).
    ring: Option<Arc<RingRecorder>>,
    /// Fetch-region canonicalizer shared by every query context; applied
    /// whether or not the cut caches are enabled (bit-identity, see
    /// [`CutCacheConfig`](crate::config::CutCacheConfig)).
    cut_grid: CutGrid,
    /// Shared process-wide DMTM front cache (`None` = disabled).
    cut_cache: Option<CutCache>,
    /// Shared process-wide MSDN line cache (`None` = disabled).
    line_cache: Option<LineCutCache>,
    /// Recycled per-query ranking scratches (see
    /// [`RankingContext::pool`](crate::ranking::RankingContext)).
    scratch_pool: Mutex<Vec<RankScratch>>,
    /// Query sequence number stamped on trace records.
    query_seq: AtomicU64,
    /// Drop cached pages before each query (cold-cache measurement, the
    /// regime of the paper's figures).
    pub cold_cache: bool,
    /// Disk model used when reporting response times.
    pub disk: DiskModel,
}

impl<'s, 'm> Mr3Engine<'s, 'm> {
    /// Build the engine: constructs the DMTM and MSDN of the scene's mesh
    /// and lays them out on the simulated disk.
    pub fn build(mesh: &'m TerrainMesh, scene: &'s Scene<'m>, cfg: &Mr3Config) -> Self {
        Self::build_from(mesh, scene, cfg, crate::persist::Structures::build(mesh, cfg))
    }

    /// Build the engine from prebuilt (e.g. loaded) structures.
    pub fn build_from(
        mesh: &'m TerrainMesh,
        scene: &'s Scene<'m>,
        cfg: &Mr3Config,
        structures: crate::persist::Structures,
    ) -> Self {
        let pager = Pager::new(cfg.pool_pages);
        // Tag each structure's pages so query I/O is attributable.
        let dmtm = {
            let _tag = pager.tag_scope(StructureTag::Dmtm);
            PagedDmtm::build(&pager, structures.tree)
        };
        let msdn = {
            let _tag = pager.tag_scope(StructureTag::Msdn);
            PagedMsdn::build(&pager, &structures.msdn)
        };
        let (cut_cache, line_cache) = Self::build_caches(cfg);
        let objects = ObjectStore::genesis(scene.objects(), cfg.pool_pages, None);
        Self {
            mesh,
            scene,
            objects,
            dmtm,
            msdn,
            pager,
            cfg: cfg.clone(),
            ring: None,
            cut_grid: CutGrid::new(mesh.extent(), cfg.cut_cache.tiles, cfg.cut_cache.pad_tiles),
            cut_cache,
            line_cache,
            scratch_pool: Mutex::new(Vec::new()),
            query_seq: AtomicU64::new(0),
            cold_cache: true,
            disk: DiskModel::default(),
        }
    }

    /// Build (or skip) the shared cut caches per the config. The weight
    /// budget splits 3:1 between fronts and line bands — extracted fronts
    /// are the larger objects by far.
    fn build_caches(cfg: &Mr3Config) -> (Option<CutCache>, Option<LineCutCache>) {
        if !cfg.cut_cache.enabled {
            return (None, None);
        }
        let cc = &cfg.cut_cache;
        let tick = Duration::from_millis(cc.tick_ms.max(1));
        let front_cap = (cc.capacity_bytes / 4 * 3).max(1);
        let line_cap = (cc.capacity_bytes / 4).max(1);
        (
            Some(CutCache::new(front_cap, cc.extract_budget, tick)),
            Some(LineCutCache::new(line_cap, cc.extract_budget, tick)),
        )
    }

    /// Whether the shared cut caches are active.
    pub fn cut_cache_enabled(&self) -> bool {
        self.cut_cache.is_some()
    }

    /// Enable or disable the shared cut caches at runtime (rebuilds them
    /// from the config; disabling drops every resident cut). Results are
    /// bit-identical either way — only the work profile changes.
    pub fn set_cut_cache(&mut self, enabled: bool) {
        self.cfg.cut_cache.enabled = enabled;
        let (cut, line) = Self::build_caches(&self.cfg);
        self.cut_cache = cut;
        self.line_cache = line;
    }

    /// Combined counter/occupancy snapshot of the shared cut caches, or
    /// `None` when disabled.
    pub fn cut_cache_snapshot(&self) -> Option<CutCacheSnapshot> {
        if self.cut_cache.is_none() && self.line_cache.is_none() {
            return None;
        }
        let mut s = CutCacheSnapshot::default();
        let mut absorb =
            |stats: sknn_store::CacheStats, gauges: sknn_store::CacheGauges, in_flight: u64| {
                s.hits += stats.hits;
                s.misses += stats.misses;
                s.singleflight_waits += stats.singleflight_waits;
                s.evictions += stats.evictions;
                s.failed_loads += stats.failed_loads;
                s.budget_deferrals += stats.budget_deferrals;
                s.warm_entries += gauges.warm;
                s.cooling_entries += gauges.cooling;
                s.loading += gauges.loading;
                s.resident_bytes += gauges.resident_weight;
                s.in_flight += in_flight;
            };
        if let Some(c) = &self.cut_cache {
            absorb(c.stats(), c.gauges(), c.loads_in_flight());
        }
        if let Some(c) = &self.line_cache {
            absorb(c.stats(), c.gauges(), c.loads_in_flight());
        }
        Some(s)
    }

    /// Zero the shared caches' cumulative counters (hit/miss/wait/…),
    /// leaving resident cuts in place. For scoping measurements; a no-op
    /// when the caches are disabled.
    pub fn reset_cut_cache_stats(&self) {
        if let Some(c) = &self.cut_cache {
            c.reset_stats();
        }
        if let Some(c) = &self.line_cache {
            c.reset_stats();
        }
    }

    /// Drop every resident cut from the shared caches (counters keep
    /// running). The cold-cache query path calls this alongside the buffer
    /// pool clear so page-count determinism holds per query.
    pub fn clear_cut_caches(&self) {
        if let Some(c) = &self.cut_cache {
            c.clear();
        }
        if let Some(c) = &self.line_cache {
            c.clear();
        }
    }

    /// Turn on per-query tracing: subsequent queries carry a
    /// [`QueryTrace`] in their results (spans for the four MR3 steps, one
    /// event per ranking iteration, and per-structure I/O attribution).
    pub fn enable_tracing(&mut self) {
        if self.ring.is_none() {
            self.ring = Some(Arc::new(RingRecorder::new(TRACE_RING_CAPACITY)));
        }
    }

    /// Turn tracing back off (queries stop paying the recording cost).
    pub fn disable_tracing(&mut self) {
        self.ring = None;
    }

    /// Whether queries are currently traced.
    pub fn tracing_enabled(&self) -> bool {
        self.ring.is_some()
    }

    fn recorder(&self) -> &dyn Recorder {
        match &self.ring {
            Some(r) => r.as_ref(),
            None => &NOOP,
        }
    }

    fn next_query_id(&self) -> u64 {
        self.query_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Emit per-structure I/O attribution and the buffer-pool roll-up for
    /// the query that just ran (pager stats are per-query: they were reset
    /// at query start).
    fn emit_io(&self, rec: &dyn Recorder, qid: u64, stats: &QueryStats, rtree_accesses: u64) {
        // Dijkstra queue-traffic roll-up: how much priority-queue work the
        // query's bound estimations did, and how much of it was wasted on
        // stale (lazily deleted) entries.
        rec.event(
            "dijkstra",
            qid,
            vec![
                field("settled", stats.settled),
                field("pushes", stats.queue_pushes),
                field("pops", stats.queue_pops),
                field("stale_pops", stats.stale_pops),
                field("queue", self.cfg.queue.as_str()),
            ],
        );
        for (tag, io) in self.pager.io_by_structure() {
            rec.event(
                "io",
                qid,
                vec![
                    field("structure", tag.name()),
                    field("logical", io.logical_reads),
                    field("physical", io.physical_reads),
                    field("hits", io.hits()),
                    field("evictions", self.pager.evictions_for(tag)),
                ],
            );
        }
        // The Dxy R-tree is in-memory and counts node accesses itself;
        // report it under the same schema (every access charged physical).
        let rtree = rtree_accesses;
        if rtree > 0 {
            rec.event(
                "io",
                qid,
                vec![
                    field("structure", StructureTag::Rtree.name()),
                    field("logical", rtree),
                    field("physical", rtree),
                    field("hits", 0u64),
                    field("evictions", 0u64),
                ],
            );
        }
        let conc = self.pager.concurrency_stats();
        rec.event(
            "pool",
            qid,
            vec![
                field("hit_rate", self.pager.hit_rate()),
                field("evictions", self.pager.evictions()),
                field("logical", self.pager.stats().logical_reads),
                field("physical", self.pager.stats().physical_reads),
                field("coalesced", conc.coalesced_misses),
                field("sf_waits", conc.singleflight_waits),
                field("contention", conc.shard_contention),
                field("shards", self.pager.num_shards() as u64),
            ],
        );
        // Shared cut-cache roll-up (cumulative counters + instant gauges).
        if let Some(cc) = self.cut_cache_snapshot() {
            rec.event(
                "cutcache",
                qid,
                vec![
                    field("hits", cc.hits),
                    field("misses", cc.misses),
                    field("sf_waits", cc.singleflight_waits),
                    field("evictions", cc.evictions),
                    field("deferrals", cc.budget_deferrals),
                    field("warm", cc.warm_entries),
                    field("cooling", cc.cooling_entries),
                    field("in_flight", cc.in_flight),
                    field("bytes", cc.resident_bytes),
                ],
            );
        }
        // Fault/retry counters (cumulative over the pager's lifetime —
        // they are deliberately not cleared by the per-query stat reset).
        let faults = self.pager.fault_stats();
        if faults.injected > 0 || faults.checksum_failures > 0 || faults.retries > 0 {
            rec.event(
                "faults",
                qid,
                vec![
                    field("injected", faults.injected),
                    field("retries", faults.retries),
                    field("exhausted", faults.exhausted),
                    field("checksum", faults.checksum_failures),
                    field("permanent", faults.permanent_failures),
                ],
            );
        }
    }

    /// Config.
    pub fn config(&self) -> &Mr3Config {
        &self.cfg
    }

    /// Pager.
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// The scene this engine answers queries over.
    ///
    /// This is the *genesis* object set. Once mutations run, the live set
    /// is the object store's current snapshot ([`objects`](Self::objects));
    /// the scene keeps serving the mesh, locator and query generators.
    pub fn scene(&self) -> &'s Scene<'m> {
        self.scene
    }

    /// The dynamic object store behind the query path.
    pub fn objects(&self) -> &ObjectStore {
        &self.objects
    }

    /// Replace the engine's object store — the recovery path: build the
    /// engine from the same mesh/scene/config, then install the store
    /// rebuilt from a [`CrashImage`](sknn_store::CrashImage) (or one
    /// created with a fault injector). Queries switch to the installed
    /// store's snapshots immediately.
    pub fn with_object_store(mut self, store: ObjectStore) -> Self {
        self.objects = store;
        self
    }

    /// Insert an object at a surface point; returns its id. Durable (WAL
    /// commit fsynced) once this returns.
    pub fn insert(&self, point: SurfacePoint) -> sknn_store::StoreResult<u32> {
        self.objects.insert(point)
    }

    /// Delete an object. `Ok(false)` if the id is not live.
    pub fn delete(&self, id: u32) -> sknn_store::StoreResult<bool> {
        self.objects.delete(id)
    }

    /// Move an object to a new surface position. `Ok(false)` if the id is
    /// not live.
    pub fn move_object(&self, id: u32, point: SurfacePoint) -> sknn_store::StoreResult<bool> {
        self.objects.move_object(id, point)
    }

    /// Write-path counters (`sknn_wal_*` metric families).
    pub fn write_stats(&self) -> WriteStats {
        self.objects.write_stats()
    }

    /// Ranking context over this engine's structures (shared by the k-NN,
    /// range and closest-pair front ends).
    pub(crate) fn ranking_context(&self) -> RankingContext<'_, 'm> {
        self.ctx()
    }

    fn ctx(&self) -> RankingContext<'_, 'm> {
        // `query_seq` counts queries *started*; the in-flight query's id is
        // one less (0 before any query runs). Only approximate once
        // queries run concurrently — the concurrent entry points pass
        // their own id via `ctx_for`.
        self.ctx_for(self.query_seq.load(Ordering::Relaxed).saturating_sub(1))
    }

    fn ctx_for(&self, qid: u64) -> RankingContext<'_, 'm> {
        self.ctx_at(qid, None)
    }

    /// Ranking context with an explicit wall-clock deadline; falls back to
    /// the config's per-query budget when the caller passes `None`.
    fn ctx_at(&self, qid: u64, deadline: Option<Instant>) -> RankingContext<'_, 'm> {
        let deadline = deadline.or_else(|| self.cfg.deadline.map(|d| Instant::now() + d));
        let mut scratch: RankScratch =
            self.scratch_pool.lock().unwrap_or_else(|e| e.into_inner()).pop().unwrap_or_default();
        // A pooled scratch may have served a query under a different
        // (CLI-overridden) policy; re-pin it to this engine's config.
        scratch.set_queue_policy(self.cfg.queue);
        RankingContext {
            mesh: self.mesh,
            dmtm: &self.dmtm,
            msdn: &self.msdn,
            pager: &self.pager,
            cfg: &self.cfg,
            rec: self.recorder(),
            query: qid,
            scratch: RefCell::new(scratch),
            cuts: self.cut_cache.as_ref(),
            lines: self.line_cache.as_ref(),
            grid: self.cut_grid,
            faults: FaultLog::new(self.cfg.fault_budget),
            deadline,
            deadline_hit: std::cell::Cell::new(false),
            pool: Some(&self.scratch_pool),
        }
    }

    /// Degradation marker combining absorbed faults and deadline expiry.
    /// Deadline expiry dominates the reported reason — it explains why the
    /// bounds are looser than scheduled even when faults also occurred.
    fn degraded_marker(ctx: &RankingContext<'_, 'm>) -> Option<crate::resilience::Degraded> {
        if ctx.deadline_hit.get() {
            return Some(crate::resilience::Degraded {
                phase: "deadline",
                faults: ctx.faults.count(),
                reason: "DeadlineExpired".to_string(),
            });
        }
        ctx.faults.degraded()
    }

    /// Answer a surface k-NN query.
    ///
    /// Panics if the query exceeds its storage-fault budget; use
    /// [`try_query`](Self::try_query) to handle that case as a value.
    pub fn query(&self, q: SurfacePoint, k: usize) -> QueryResult {
        self.try_query(q, k).unwrap_or_else(|e| panic!("sknn query failed: {e}"))
    }

    /// Answer a surface k-NN query, surfacing storage-fault exhaustion as
    /// a typed error.
    ///
    /// Storage faults below the budget degrade gracefully: the affected
    /// refinement steps are skipped, the returned bounds stay valid (the
    /// last materialised resolution's bounds are correct, just looser),
    /// and the result carries a [`Degraded`](crate::Degraded) marker.
    pub fn try_query(&self, q: SurfacePoint, k: usize) -> Result<QueryResult, QueryError> {
        self.try_query_at(q, k, None)
    }

    /// [`try_query`](Self::try_query) with an explicit per-query deadline
    /// (the serving layer's per-request budget). The deadline is checked
    /// between refinement iterations: on expiry the query stops escalating
    /// resolution and returns its current valid bounds with a `Degraded`
    /// reason of `DeadlineExpired`. `None` falls back to
    /// [`Mr3Config::deadline`], then to running to convergence.
    pub fn try_query_at(
        &self,
        q: SurfacePoint,
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<QueryResult, QueryError> {
        self.try_query_traced(q, k, deadline, 0)
    }

    /// [`try_query_at`](Self::try_query_at) with an explicit request trace
    /// id. When `trace_id` is non-zero it stamps every obs record the
    /// query emits — step spans, iteration events, I/O attribution, fault
    /// events — in place of the engine's own sequence number, so a
    /// serving-layer request keeps its records attributable even when
    /// batched with strangers. `0` means "no external id" and falls back
    /// to the engine's sequence.
    pub fn try_query_traced(
        &self,
        q: SurfacePoint,
        k: usize,
        deadline: Option<Instant>,
        trace_id: u64,
    ) -> Result<QueryResult, QueryError> {
        let qid = if trace_id != 0 { trace_id } else { self.next_query_id() };
        let mut stats = QueryStats::default();
        if self.cold_cache {
            self.pager.clear_pool();
            self.clear_cut_caches();
        }
        self.pager.reset_stats();
        // Pin the object snapshot for the whole query: concurrent
        // mutations publish new snapshots without disturbing this one.
        let objs: Arc<ObjectSnapshot> = self.objects.snapshot();
        objs.rtree().reset_accesses();
        let timer = CpuTimer::start();
        let rec = self.recorder();
        let traced = rec.enabled();
        let query_start = Instant::now();

        let k = k.min(objs.live());
        let terrain = self.mesh.extent();
        let ctx = self.ctx_at(qid, deadline);
        let mut neighbors = Vec::new();
        let mut search_radius = 0.0f64;

        if k > 0 {
            // Step 1: 2D k-NN on the projections, canonically selected
            // and ordered (see `canonical_seeds2d`) so the seed list —
            // and every order-sensitive bound downstream — is a pure
            // function of the object set, which is what lets a sharding
            // router reproduce this run from per-shard partial lists.
            let step = Instant::now();
            let seeds = canonical_seeds2d(&objs, q.pos.xy(), k);
            stats.stages.knn2d_us = step.elapsed().as_micros() as u64;
            if traced {
                rec.span(
                    "step1_knn2d",
                    qid,
                    vec![
                        field("dur_us", stats.stages.knn2d_us),
                        field("k", k),
                        field("seeds", seeds.len()),
                    ],
                );
            }

            // Step 2: rank the seeds to bound the k-th neighbour's distance.
            let step = Instant::now();
            let mut seed_cands: Vec<Candidate> = seeds
                .iter()
                .map(|&(_, id)| Candidate::new(&q, id, objs.point(id), &terrain))
                .collect();
            let radius = ctx.estimate_radius(&q, &mut seed_cands, &mut stats);
            search_radius = radius;
            stats.stages.radius_us = step.elapsed().as_micros() as u64;
            if traced {
                rec.span(
                    "step2_radius",
                    qid,
                    vec![field("dur_us", stats.stages.radius_us), field("radius", radius)],
                );
            }

            // Step 3: planar range query with the safe radius.
            let step = Instant::now();
            let mut in_range: Vec<u32> = if radius.is_finite() {
                objs.rtree()
                    .within_distance(q.pos.xy(), radius)
                    .into_iter()
                    .map(|(_, id)| id)
                    .collect()
            } else {
                // Radius estimation failed (degenerate scene); fall back to
                // ranking everything.
                objs.live_ids()
            };
            // Canonical candidate order: ascending id (the R-tree range
            // query yields DFS tree order, which depends on insertion
            // history). Candidate order steers region grouping in step 4,
            // so it must be reproducible from the object set alone.
            in_range.sort_unstable();
            stats.stages.range_us = step.elapsed().as_micros() as u64;
            if traced {
                rec.span(
                    "step3_range",
                    qid,
                    vec![
                        field("dur_us", stats.stages.range_us),
                        field("candidates", in_range.len()),
                    ],
                );
            }

            // Step 4: rank C2. Seed bounds carry over so step-2 work is
            // not repeated.
            let step = Instant::now();
            let mut cands: Vec<Candidate> = in_range
                .iter()
                .map(|&id| {
                    seed_cands
                        .iter()
                        .find(|c| c.id == id)
                        .cloned()
                        .unwrap_or_else(|| Candidate::new(&q, id, objs.point(id), &terrain))
                })
                .collect();
            stats.candidates = cands.len();
            let resolved = ctx.rank_top_k(&q, &mut cands, k, &mut stats);
            stats.stages.rank_us = step.elapsed().as_micros() as u64;
            if traced {
                rec.span(
                    "step4_rank",
                    qid,
                    vec![
                        field("dur_us", stats.stages.rank_us),
                        field("resolved", resolved),
                        field("iterations", stats.iterations),
                    ],
                );
            }

            let mut alive: Vec<&Candidate> = cands.iter().filter(|c| !c.out).collect();
            alive.sort_by(|a, b| {
                a.range
                    .ub
                    .partial_cmp(&b.range.ub)
                    .unwrap()
                    .then(a.range.lb.partial_cmp(&b.range.lb).unwrap())
            });
            neighbors =
                alive.into_iter().take(k).map(|c| Neighbor { id: c.id, range: c.range }).collect();
        }

        timer.stop_into(&mut stats.cpu);
        stats.wall = query_start.elapsed();
        stats.pages = self.pager.stats().physical_reads + objs.rtree().accesses();
        if let Some(err) = ctx.faults.error() {
            return Err(err);
        }
        let trace = if traced {
            self.emit_io(rec, qid, &stats, objs.rtree().accesses());
            rec.span(
                "query",
                qid,
                vec![
                    field("dur_us", query_start.elapsed().as_micros() as u64),
                    field("k", k),
                    field("pages", stats.pages),
                ],
            );
            self.drain_trace()
        } else {
            None
        };
        Ok(QueryResult {
            neighbors,
            stats,
            trace,
            degraded: Self::degraded_marker(&ctx),
            radius: search_radius,
        })
    }

    /// Answer a batch of independent k-NN queries on `threads` worker
    /// threads, returning results in batch order.
    ///
    /// Neighbour sets and distance ranges are bit-identical to calling
    /// [`query`](Self::query) in a sequential loop: results depend only on
    /// the engine's immutable structures, and each query carries its own
    /// ranking scratch. The shared buffer pool and access counters do race
    /// under concurrency, so the *cost* fields (`stats.pages`, pager
    /// stats) describe the batch in aggregate rather than any one query;
    /// the same applies to trace attribution when tracing is enabled.
    ///
    /// Panics if any query exceeds its storage-fault budget; use
    /// [`try_query_batch`](Self::try_query_batch) to handle failures
    /// per query.
    pub fn query_batch(&self, batch: &[(SurfacePoint, usize)], threads: usize) -> Vec<QueryResult> {
        sknn_exec::par_map(threads, batch, |_, &(q, k)| self.query(q, k))
    }

    /// Fallible batch variant: each query independently returns its result
    /// or its typed error, in batch order. One failing query does not
    /// disturb the others — the determinism guarantee of
    /// [`query_batch`](Self::query_batch) holds per element.
    pub fn try_query_batch(
        &self,
        batch: &[(SurfacePoint, usize)],
        threads: usize,
    ) -> Vec<Result<QueryResult, QueryError>> {
        sknn_exec::par_map(threads, batch, |_, &(q, k)| self.try_query(q, k))
    }

    /// [`try_query_batch`](Self::try_query_batch) with a per-request
    /// wall-clock deadline per element — the serving layer's micro-batch
    /// entry point, where coalesced requests arrived with different
    /// deadlines. Elements with `None` run to convergence (or the config's
    /// budget); see [`try_query_at`](Self::try_query_at).
    pub fn try_query_batch_at(
        &self,
        batch: &[(SurfacePoint, usize, Option<Instant>)],
        threads: usize,
    ) -> Vec<Result<QueryResult, QueryError>> {
        sknn_exec::par_map(threads, batch, |_, &(q, k, dl)| self.try_query_at(q, k, dl))
    }

    /// [`try_query_batch_at`](Self::try_query_batch_at) with a request
    /// trace id per element (see
    /// [`try_query_traced`](Self::try_query_traced)): the serving layer's
    /// telemetry entry point, where each coalesced request keeps its own
    /// wire-propagated id. Under tracing the ring is drained per query, so
    /// each result's trace holds *some* complete set of records and the
    /// union over the batch holds them all — every record stamped with the
    /// id of the request that emitted it.
    pub fn try_query_batch_traced(
        &self,
        batch: &[(SurfacePoint, usize, Option<Instant>, u64)],
        threads: usize,
    ) -> Vec<Result<QueryResult, QueryError>> {
        sknn_exec::par_map(threads, batch, |_, &(q, k, dl, tid)| {
            self.try_query_traced(q, k, dl, tid)
        })
    }

    // -----------------------------------------------------------------
    // Decomposed MR3 steps for sharded serving. A router that partitions
    // the object set across engines reconstructs a single-engine run by
    // merging per-shard `seeds2d`/`range2d` lists in canonical order and
    // handing the merged lists back to one engine via
    // `estimate_radius_for`/`exec_ranked`. Bounds in the ranking phase
    // depend on the candidate population *and order*, so the guarantee
    // is: same lists in, bit-identical bounds out.
    // -----------------------------------------------------------------

    /// MR3 step 1 in isolation: the `k` nearest live objects to `xy` by
    /// 2D plan distance, in canonical ascending `(distance, id)` order,
    /// each with its located surface point (so a peer without this
    /// shard's object table can rebuild the candidate).
    pub fn seeds2d(&self, xy: sknn_geom::Point2, k: usize) -> Vec<(f64, u32, SurfacePoint)> {
        let objs = self.objects.snapshot();
        let k = k.min(objs.live());
        canonical_seeds2d(&objs, xy, k).into_iter().map(|(d, id)| (d, id, objs.point(id))).collect()
    }

    /// MR3 step 3 in isolation: every live object within 2D plan distance
    /// `radius` of `xy`, ascending by id. A non-finite radius returns
    /// every live object — the degenerate fallback
    /// [`try_query`](Self::try_query) takes when radius estimation fails.
    pub fn range2d(&self, xy: sknn_geom::Point2, radius: f64) -> Vec<(u32, SurfacePoint)> {
        let objs = self.objects.snapshot();
        let mut ids: Vec<u32> = if radius.is_finite() {
            objs.rtree().within_distance(xy, radius).into_iter().map(|(_, id)| id).collect()
        } else {
            objs.live_ids()
        };
        ids.sort_unstable();
        ids.into_iter().map(|id| (id, objs.point(id))).collect()
    }

    /// MR3 step 2 with an explicit seed list: estimates the search radius
    /// exactly as a full query would if step 1 had produced `seeds` (in
    /// the given order — pass them in canonical `(distance, id)` order to
    /// match). Seed points travel with their ids because the seeds may
    /// live on other shards, absent from this engine's object table.
    pub fn estimate_radius_for(
        &self,
        q: SurfacePoint,
        seeds: &[(u32, SurfacePoint)],
        deadline: Option<Instant>,
        trace_id: u64,
    ) -> Result<f64, QueryError> {
        let qid = if trace_id != 0 { trace_id } else { self.next_query_id() };
        let mut stats = QueryStats::default();
        if self.cold_cache {
            self.pager.clear_pool();
            self.clear_cut_caches();
        }
        self.pager.reset_stats();
        let terrain = self.mesh.extent();
        let ctx = self.ctx_at(qid, deadline);
        let mut cands: Vec<Candidate> =
            seeds.iter().map(|&(id, p)| Candidate::new(&q, id, p, &terrain)).collect();
        let radius = ctx.estimate_radius(&q, &mut cands, &mut stats);
        if let Some(err) = ctx.faults.error() {
            return Err(err);
        }
        Ok(radius)
    }

    /// MR3 steps 2 + 4 with explicit seed and candidate lists: the
    /// coupled ranking run of a sharded query, executed on the query's
    /// home shard over the router-merged global lists. `seeds` must be in
    /// canonical `(distance, id)` order and `cands` ascending by id —
    /// the orders [`try_query`](Self::try_query) itself produces — and
    /// `k` must already be clamped to the *union* live-object count (this
    /// method cannot see other shards' objects, so it does not clamp).
    ///
    /// Returns up to `k + 1` neighbors (one past the answer) so the
    /// caller can re-verify the `ub(p_k) ≤ lb(p_{k+1})` termination
    /// bound itself before truncating; every returned id, `lb`, `ub`,
    /// and the radius are bit-identical to a single engine over the
    /// union object set running the same query.
    pub fn exec_ranked(
        &self,
        q: SurfacePoint,
        k: usize,
        seeds: &[(u32, SurfacePoint)],
        cands: &[(u32, SurfacePoint)],
        deadline: Option<Instant>,
        trace_id: u64,
    ) -> Result<QueryResult, QueryError> {
        let qid = if trace_id != 0 { trace_id } else { self.next_query_id() };
        let mut stats = QueryStats::default();
        if self.cold_cache {
            self.pager.clear_pool();
            self.clear_cut_caches();
        }
        self.pager.reset_stats();
        let objs: Arc<ObjectSnapshot> = self.objects.snapshot();
        objs.rtree().reset_accesses();
        let timer = CpuTimer::start();
        let rec = self.recorder();
        let traced = rec.enabled();
        let query_start = Instant::now();

        let terrain = self.mesh.extent();
        let ctx = self.ctx_at(qid, deadline);
        let mut neighbors = Vec::new();
        let mut search_radius = 0.0f64;

        if k > 0 {
            // Step 2 re-runs here (not reused from a prior
            // `estimate_radius_for` call) because the refined seed bounds
            // must carry over into step 4's candidates, exactly as in a
            // single-engine run.
            let step = Instant::now();
            let mut seed_cands: Vec<Candidate> =
                seeds.iter().map(|&(id, p)| Candidate::new(&q, id, p, &terrain)).collect();
            search_radius = ctx.estimate_radius(&q, &mut seed_cands, &mut stats);
            stats.stages.radius_us = step.elapsed().as_micros() as u64;
            if traced {
                rec.span(
                    "step2_radius",
                    qid,
                    vec![field("dur_us", stats.stages.radius_us), field("radius", search_radius)],
                );
            }

            let step = Instant::now();
            let mut cl: Vec<Candidate> = cands
                .iter()
                .map(|&(id, p)| {
                    seed_cands
                        .iter()
                        .find(|c| c.id == id)
                        .cloned()
                        .unwrap_or_else(|| Candidate::new(&q, id, p, &terrain))
                })
                .collect();
            stats.candidates = cl.len();
            let resolved = ctx.rank_top_k(&q, &mut cl, k, &mut stats);
            stats.stages.rank_us = step.elapsed().as_micros() as u64;
            if traced {
                rec.span(
                    "step4_rank",
                    qid,
                    vec![
                        field("dur_us", stats.stages.rank_us),
                        field("resolved", resolved),
                        field("iterations", stats.iterations),
                    ],
                );
            }

            let mut alive: Vec<&Candidate> = cl.iter().filter(|c| !c.out).collect();
            alive.sort_by(|a, b| {
                a.range
                    .ub
                    .partial_cmp(&b.range.ub)
                    .unwrap()
                    .then(a.range.lb.partial_cmp(&b.range.lb).unwrap())
            });
            neighbors = alive
                .into_iter()
                .take(k + 1)
                .map(|c| Neighbor { id: c.id, range: c.range })
                .collect();
        }

        timer.stop_into(&mut stats.cpu);
        stats.wall = query_start.elapsed();
        stats.pages = self.pager.stats().physical_reads + objs.rtree().accesses();
        if let Some(err) = ctx.faults.error() {
            return Err(err);
        }
        let trace = if traced {
            self.emit_io(rec, qid, &stats, objs.rtree().accesses());
            self.drain_trace()
        } else {
            None
        };
        Ok(QueryResult {
            neighbors,
            stats,
            trace,
            degraded: Self::degraded_marker(&ctx),
            radius: search_radius,
        })
    }

    fn drain_trace(&self) -> Option<QueryTrace> {
        self.ring.as_ref().map(|r| r.drain())
    }

    /// Progressive distance estimation (paper §5.3): "a query like 'what
    /// is the surface distance between a and b within accuracy 95%' can be
    /// directly processed". Refines the pair's distance range level by
    /// level and stops as soon as `lb/ub >= accuracy` (or the schedule is
    /// exhausted — the achieved accuracy is in the returned range).
    pub fn distance_with_accuracy(
        &self,
        a: SurfacePoint,
        b: SurfacePoint,
        accuracy: f64,
    ) -> (crate::bounds::DistRange, QueryStats) {
        let mut stats = QueryStats::default();
        if self.cold_cache {
            self.pager.clear_pool();
            self.clear_cut_caches();
        }
        self.pager.reset_stats();
        let timer = CpuTimer::start();
        let start = Instant::now();
        let ctx = self.ctx();
        let mut range = crate::bounds::DistRange::unbounded();
        range.tighten_lb(a.pos.dist(b.pos));
        if a.tri == b.tri {
            range.tighten_ub(a.pos.dist(b.pos));
        }
        for i in 0..self.cfg.schedule.len() {
            if range.accuracy() >= accuracy {
                break;
            }
            let est = ctx.estimate_pair(
                &a,
                &b,
                self.cfg.schedule.dmtm[i],
                self.cfg.schedule.msdn_level(i),
                &mut stats,
            );
            range.tighten_lb(est.lb);
            range.tighten_ub(est.ub);
            stats.iterations += 1;
        }
        timer.stop_into(&mut stats.cpu);
        stats.wall = start.elapsed();
        stats.pages = self.pager.stats().physical_reads;
        (range, stats)
    }

    /// Surface *range query* (paper §6): all objects whose surface distance
    /// from `q` is at most `radius`, found without computing any exact
    /// surface distance. Candidates come from a planar range query (always
    /// a superset, since `dE <= dS`), then distance-range ranking classifies
    /// each one. Returns ids ascending plus the usual cost counters.
    pub fn range_query(&self, q: SurfacePoint, radius: f64) -> RangeResult {
        let qid = self.next_query_id();
        let mut stats = QueryStats::default();
        if self.cold_cache {
            self.pager.clear_pool();
            self.clear_cut_caches();
        }
        self.pager.reset_stats();
        let objs = self.objects.snapshot();
        objs.rtree().reset_accesses();
        let timer = CpuTimer::start();
        let rec = self.recorder();
        let query_start = Instant::now();

        let terrain = self.mesh.extent();
        let seeds = objs.rtree().within_distance(q.pos.xy(), radius);
        stats.candidates = seeds.len();
        let mut cands: Vec<Candidate> =
            seeds.iter().map(|&(_, id)| Candidate::new(&q, id, objs.point(id), &terrain)).collect();
        let ctx = self.ctx_for(qid);
        let (inside, undecided) = ctx.resolve_within(&q, &mut cands, radius, &mut stats);

        timer.stop_into(&mut stats.cpu);
        stats.wall = query_start.elapsed();
        stats.pages = self.pager.stats().physical_reads + objs.rtree().accesses();
        let trace = if rec.enabled() {
            self.emit_io(rec, qid, &stats, objs.rtree().accesses());
            rec.span(
                "range_query",
                qid,
                vec![
                    field("dur_us", query_start.elapsed().as_micros() as u64),
                    field("radius", radius),
                    field("pages", stats.pages),
                ],
            );
            self.drain_trace()
        } else {
            None
        };
        RangeResult { inside, undecided, stats, trace, degraded: Self::degraded_marker(&ctx) }
    }
}

/// Combined counter/occupancy snapshot of the engine's shared cut caches
/// (DMTM fronts + MSDN line bands summed), as returned by
/// [`Mr3Engine::cut_cache_snapshot`]. Counters are cumulative since engine
/// build (or the last reset); gauges describe the current instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CutCacheSnapshot {
    /// Fetches served from a resident cut.
    pub hits: u64,
    /// Fetches that led an extraction.
    pub misses: u64,
    /// Fetches that waited on another query's in-flight extraction.
    pub singleflight_waits: u64,
    /// Resident cuts evicted to stay within the weight budget.
    pub evictions: u64,
    /// Extractions that failed (storage faults); no entry was published.
    pub failed_loads: u64,
    /// Extractions delayed by the per-tick admission budget.
    pub budget_deferrals: u64,
    /// Resident cuts currently marked warm (recently used).
    pub warm_entries: u64,
    /// Resident cuts cooled by the CLOCK hand (eviction candidates).
    pub cooling_entries: u64,
    /// Keys currently holding a loading latch.
    pub loading: u64,
    /// Approximate bytes of resident cut data.
    pub resident_bytes: u64,
    /// Extractions running right now.
    pub in_flight: u64,
}

impl CutCacheSnapshot {
    /// Hit rate over all fetches so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Result of a surface range query.
#[derive(Debug, Clone)]
pub struct RangeResult {
    /// Objects classified (or estimated, when listed in `undecided`) to be
    /// within the radius, ascending by id.
    pub inside: Vec<u32>,
    /// Objects whose final range still straddled the radius (classified by
    /// range midpoint in `inside`).
    pub undecided: Vec<u32>,
    /// Cost counters of the query.
    pub stats: QueryStats,
    /// Execution trace, when the engine has tracing enabled.
    pub trace: Option<QueryTrace>,
    /// Set when storage faults were absorbed: classifications remain
    /// bound-correct, but more objects may be left `undecided`.
    pub degraded: Option<crate::resilience::Degraded>,
}

/// Canonically *selected and ordered* 2-D seed set: the `k` nearest live
/// objects by the total order (plan distance, then id), as
/// `(distance, id)` pairs in that order.
///
/// `knn` alone resolves equal-distance ties at the selection boundary in
/// best-first heap order, which depends on tree shape — so a shard's
/// local tree and the union tree over the same objects could select
/// *different* members of a tie group, and every bound downstream of the
/// seed list would diverge. Over-fetching one extra neighbour detects a
/// tie spanning the boundary; when one exists, the whole tie group is
/// re-fetched by a range probe at the k-th distance and the winners
/// picked by id. The selected set is then a pure function of the object
/// set, which is what sharded serving's exact-merge guarantee rests on.
fn canonical_seeds2d(objs: &ObjectSnapshot, xy: sknn_geom::Point2, k: usize) -> Vec<(f64, u32)> {
    let mut seeds: Vec<(f64, u32)> =
        objs.rtree().knn(xy, k + 1).into_iter().map(|(d, _, id)| (d, id)).collect();
    seeds.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    if k > 0 && seeds.len() > k && seeds[k].0 == seeds[k - 1].0 {
        // The k-th distance is shared across the selection boundary: pull
        // every object within that distance and re-select by the total
        // order. Probe distances are recomputed with the same formula the
        // batched k-NN kernel uses, so they compare bit-identically.
        let kth = seeds[k - 1].0;
        for (rect, id) in objs.rtree().within_distance(xy, kth) {
            if !seeds.iter().any(|&(_, s)| s == id) {
                seeds.push((rect.min_dist_point(xy), id));
            }
        }
        seeds.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }
    seeds.truncate(k);
    seeds
}

/// Compile-time seal of the thread-safety contract `query_batch` relies
/// on: if any engine component regresses to unsynchronised interior
/// mutability (`Cell`, `RefCell`, raw pointers), this stops compiling.
#[allow(dead_code)]
fn _assert_engine_sync<'a>(engine: &'a Mr3Engine<'_, '_>) -> &'a (dyn Sync + 'a) {
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ch::ChEngine;
    use crate::config::StepSchedule;
    use crate::workload::SceneBuilder;
    use sknn_terrain::dem::TerrainConfig;

    fn mesh() -> TerrainMesh {
        TerrainConfig::ep().with_grid(17).build_mesh(55)
    }

    #[test]
    fn returns_k_neighbors_with_bracketing_ranges() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(25).seed(1).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let q = scene.random_query(3);
        let res = engine.query(q, 5);
        assert_eq!(res.neighbors.len(), 5);
        assert!(res.stats.pages > 0);
        assert!(res.stats.candidates >= 5);
        // Ranges are ordered and well-formed.
        for n in &res.neighbors {
            assert!(n.range.lb <= n.range.ub + 1e-9);
        }
        for w in res.neighbors.windows(2) {
            assert!(w[0].range.ub <= w[1].range.ub + 1e-9);
        }
    }

    #[test]
    fn matches_exact_ground_truth_within_bound_error() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(30).seed(7).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let exact = ChEngine::new(&scene);
        for qseed in [1u64, 2, 3] {
            let q = scene.random_query(qseed);
            let k = 4;
            let got = engine.query(q, k);
            let truth = exact.query(q, k);
            let kth_exact = truth.neighbors.last().unwrap().range.ub;
            // Every returned neighbour's true distance must be within the
            // k-th exact distance plus the engine's residual bound width.
            // The top resolution is the 1-Steiner pathnet, whose error
            // budget matches the paper's 97 %-accuracy setting, so allow
            // 5 % of the k-th distance.
            for n in &got.neighbors {
                let d = exact.pair_distance(q, scene.object(n.id).point);
                let slack = (n.range.width()).max(kth_exact * 0.05) + 1e-6;
                assert!(
                    d <= kth_exact + slack,
                    "q{qseed}: object {} at {d} vs kth {kth_exact} (slack {slack})",
                    n.id
                );
            }
        }
    }

    /// The sharded-serving keystone: reconstructing a query from the
    /// decomposed steps (`seeds2d` → `estimate_radius_for` → `range2d` →
    /// `exec_ranked`) is bit-identical to the monolithic path — same ids,
    /// same bound bits, same radius bits.
    #[test]
    fn decomposed_steps_match_monolithic_query_bit_exact() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(30).seed(9).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        for qseed in [1u64, 4, 8] {
            let q = scene.random_query(qseed);
            let k = 4;
            let whole = engine.try_query(q, k).unwrap();

            let seeds: Vec<(u32, SurfacePoint)> =
                engine.seeds2d(q.pos.xy(), k).into_iter().map(|(_, id, p)| (id, p)).collect();
            let radius = engine.estimate_radius_for(q, &seeds, None, 0).unwrap();
            assert_eq!(radius.to_bits(), whole.radius.to_bits(), "q{qseed}: radius differs");
            let cands = engine.range2d(q.pos.xy(), radius);
            let split = engine.exec_ranked(q, k, &seeds, &cands, None, 0).unwrap();

            assert_eq!(split.radius.to_bits(), whole.radius.to_bits());
            // exec_ranked returns up to k + 1 neighbors; the first k must
            // match the monolithic answer bit for bit.
            assert!(split.neighbors.len() >= whole.neighbors.len());
            for (a, b) in whole.neighbors.iter().zip(&split.neighbors) {
                assert_eq!(a.id, b.id, "q{qseed}: id order differs");
                assert_eq!(a.range.lb.to_bits(), b.range.lb.to_bits());
                assert_eq!(a.range.ub.to_bits(), b.range.ub.to_bits());
            }
        }
    }

    #[test]
    fn k_larger_than_object_count() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(4).seed(5).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let q = scene.random_query(1);
        let res = engine.query(q, 10);
        assert_eq!(res.neighbors.len(), 4);
    }

    #[test]
    fn k_zero() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(5).seed(5).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let res = engine.query(scene.random_query(1), 0);
        assert!(res.neighbors.is_empty());
    }

    #[test]
    fn schedules_agree_on_results() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(20).seed(17).build();
        let q = scene.random_query(9);
        let exact = ChEngine::new(&scene);
        let mut per_schedule = Vec::new();
        for sched in [StepSchedule::s1(), StepSchedule::s2(), StepSchedule::s3()] {
            let cfg = Mr3Config::default().with_schedule(sched);
            let engine = Mr3Engine::build(&mesh, &scene, &cfg);
            let res = engine.query(q, 3);
            assert_eq!(res.neighbors.len(), 3);
            // Identical distance quality across schedules (3rd neighbour's
            // true distance within mutual slack).
            let worst = res
                .neighbors
                .iter()
                .map(|n| exact.pair_distance(q, scene.object(n.id).point))
                .fold(0.0f64, f64::max);
            per_schedule.push(worst);
        }
        let best = per_schedule.iter().cloned().fold(f64::INFINITY, f64::min);
        for w in &per_schedule {
            assert!(*w <= best * 1.05 + 1e-6, "schedule mismatch: {per_schedule:?}");
        }
    }

    #[test]
    fn integrated_io_reduces_pages() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(40).seed(23).build();
        let q = scene.random_query(4);
        let on = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let off_cfg = Mr3Config { integrated_io: false, ..Mr3Config::default() };
        let off = Mr3Engine::build(&mesh, &scene, &off_cfg);
        let pages_on = on.query(q, 8).stats.pages;
        let pages_off = off.query(q, 8).stats.pages;
        assert!(pages_on <= pages_off, "integration on {pages_on} > off {pages_off}");
    }

    #[test]
    fn range_query_matches_exact_up_to_bound_width() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(30).seed(31).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let exact = ChEngine::new(&scene);
        let q = scene.random_query(5);
        for radius in [40.0, 80.0, 150.0] {
            let got = engine.range_query(q, radius);
            let want = exact.range_query(q, radius);
            // Decided candidates must match the exact answer exactly;
            // undecided ones may differ by the residual bound width.
            for id in &want {
                assert!(
                    got.inside.contains(id) || got.undecided.contains(id),
                    "radius {radius}: missing object {id}"
                );
            }
            for id in &got.inside {
                if !got.undecided.contains(id) {
                    assert!(want.contains(id), "radius {radius}: spurious object {id}");
                }
            }
        }
    }

    #[test]
    fn distance_with_accuracy_brackets_and_stops_early() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(4).seed(13).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let a = scene.random_query(1);
        let b = scene.random_query(9);
        let exact = ChEngine::new(&scene);
        let ds = exact.pair_distance(a, b);
        let (loose, loose_stats) = engine.distance_with_accuracy(a, b, 0.5);
        let (tight, tight_stats) = engine.distance_with_accuracy(a, b, 0.95);
        for r in [loose, tight] {
            assert!(r.lb <= ds + 1e-6 && ds <= r.ub + 1e-6, "range {r:?} misses {ds}");
        }
        assert!(loose.accuracy() >= 0.5);
        assert!(tight.accuracy() >= loose.accuracy() - 1e-9);
        // The looser target must not cost more iterations.
        assert!(loose_stats.iterations <= tight_stats.iterations);
    }

    #[test]
    fn range_query_zero_radius() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(10).seed(3).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        // Query exactly at an object: only that object is within radius 0+.
        let at = scene.object(4).point;
        let res = engine.range_query(at, 1e-6);
        assert_eq!(res.inside, vec![4]);
    }

    #[test]
    fn range_query_covers_everything_with_huge_radius() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(12).seed(9).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let q = scene.random_query(2);
        let res = engine.range_query(q, 1e9);
        assert_eq!(res.inside.len(), 12);
        assert!(res.undecided.is_empty());
    }

    #[test]
    fn expired_deadline_still_brackets_exact_distances() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(20).seed(41).build();
        // A zero deadline expires before the first ranking iteration: the
        // query must still answer, with Euclidean/seed bounds that bracket
        // the exact surface distances, and carry the DeadlineExpired
        // degradation marker.
        let cfg = Mr3Config { deadline: Some(std::time::Duration::ZERO), ..Mr3Config::default() };
        let engine = Mr3Engine::build(&mesh, &scene, &cfg);
        let q = scene.random_query(6);
        let res = engine.query(q, 4);
        assert_eq!(res.neighbors.len(), 4);
        let d = res.degraded.expect("zero deadline must degrade");
        assert_eq!(d.phase, "deadline");
        assert_eq!(d.reason, "DeadlineExpired");
        let exact = ChEngine::new(&scene);
        for n in &res.neighbors {
            let ds = exact.pair_distance(q, scene.object(n.id).point);
            assert!(n.range.lb <= ds + 1e-6, "object {}: lb {} > exact {ds}", n.id, n.range.lb);
            assert!(n.range.ub >= ds - 1e-6, "object {}: ub {} < exact {ds}", n.id, n.range.ub);
        }
    }

    #[test]
    fn generous_deadline_matches_unbounded_query() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(15).seed(43).build();
        let free = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let budgeted_cfg = Mr3Config {
            deadline: Some(std::time::Duration::from_secs(600)),
            ..Mr3Config::default()
        };
        let budgeted = Mr3Engine::build(&mesh, &scene, &budgeted_cfg);
        let q = scene.random_query(8);
        let a = free.query(q, 3);
        let b = budgeted.query(q, 3);
        assert!(b.degraded.is_none(), "generous deadline must not degrade");
        let ids = |r: &QueryResult| {
            r.neighbors
                .iter()
                .map(|n| (n.id, n.range.lb.to_bits(), n.range.ub.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn explicit_deadline_overrides_config() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(10).seed(47).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let q = scene.random_query(2);
        // An already-expired explicit deadline degrades even though the
        // config itself has no budget.
        let res = engine.try_query_at(q, 3, Some(Instant::now())).unwrap();
        let d = res.degraded.expect("expired explicit deadline must degrade");
        assert_eq!(d.reason, "DeadlineExpired");
    }

    #[test]
    fn deterministic_across_runs() {
        let mesh = mesh();
        let scene = SceneBuilder::new(&mesh).object_count(15).seed(2).build();
        let engine = Mr3Engine::build(&mesh, &scene, &Mr3Config::default());
        let q = scene.random_query(6);
        let a = engine.query(q, 3);
        let b = engine.query(q, 3);
        let ids = |r: &QueryResult| r.neighbors.iter().map(|n| n.id).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
        assert_eq!(a.stats.pages, b.stats.pages);
    }
}
