//! Dynamic object store: the write path of the engine.
//!
//! The paper evaluates a *static* object set; this module adds the moving
//! objects its motivating scenarios describe (soldiers, animals) without
//! giving up the reproducibility of the static design. Objects live in
//! three places that must agree:
//!
//! * a **heap file** of logical operation records — the durable object
//!   log, paged through the simulated disk ([`sknn_store::HeapFile`]);
//! * a **redo WAL** ([`sknn_store::Wal`]) making each mutation atomic and
//!   durable (fsync-on-commit, no-steal page writeback);
//! * an in-memory **snapshot** — the id → [`SurfacePoint`] table plus the
//!   `Dxy` R-tree — published copy-on-write so readers never block and
//!   never observe a half-applied mutation.
//!
//! Concurrency model: readers clone an `Arc` to the current
//! [`ObjectSnapshot`] and use it for the whole query; writers serialise on
//! a single write half (heap + WAL + transaction counter) and swap in a
//! new snapshot only after the commit record is fsynced. A failed fsync
//! aborts: the WAL's pending records are withdrawn and the heap's volatile
//! pages rolled back byte-for-byte, so the aborted operation leaves no
//! trace anywhere.
//!
//! Recovery ([`ObjectStore::recover`]) rebuilds everything from a
//! [`CrashImage`] (durable pages + durable WAL prefix): redo committed
//! page writes after the last checkpoint, reopen the heap, replay the
//! logical op log, and cross-check the replayed tail against the WAL's
//! own `Op` records. Committed mutations survive every kill point;
//! uncommitted ones vanish atomically.

use crate::workload::{SceneObject, SurfacePoint};
use sknn_geom::{Point3, Rect2};
use sknn_spatial::RTree;
use sknn_store::{
    CrashImage, FaultInjector, HeapFile, PageId, Pager, StoreResult, StructureTag, Wal, WalRecord,
    WalStats,
};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// A mutex poisoned by a panicking holder still guards valid data for our
/// use (all writes go through commit/rollback pairs); recover the guard.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// Logical operations
// ---------------------------------------------------------------------------

/// One logical mutation of the object set. `Genesis` marks the initial
/// bulk placement: recovery bulk-loads the leading run of genesis records
/// (bit-identical to [`SceneBuilder`](crate::workload::SceneBuilder)'s
/// R-tree) and replays everything after it incrementally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjOp {
    /// Initial placement of object `id` (bulk-loaded on recovery).
    Genesis {
        /// Object id (dense, assigned in order).
        id: u32,
        /// Placement.
        point: SurfacePoint,
    },
    /// A new object appears.
    Insert {
        /// Object id (dense, assigned in order).
        id: u32,
        /// Placement.
        point: SurfacePoint,
    },
    /// Object `id` disappears.
    Delete {
        /// Object id.
        id: u32,
    },
    /// Object `id` moves to a new surface position.
    Move {
        /// Object id.
        id: u32,
        /// New placement.
        point: SurfacePoint,
    },
}

/// Bytes of a delete record: kind + id.
const OP_DELETE_LEN: usize = 1 + 4;
/// Bytes of an insert/move record: kind + id + tri + (x, y, z).
const OP_POINT_LEN: usize = 1 + 4 + 4 + 24;

impl ObjOp {
    /// Encode as a heap/WAL record. The same bytes serve as the heap
    /// record *and* the WAL `Op` payload — the recovery cross-check
    /// compares them verbatim.
    pub fn encode(&self) -> Vec<u8> {
        let put_point = |out: &mut Vec<u8>, p: &SurfacePoint| {
            out.extend_from_slice(&p.tri.to_le_bytes());
            out.extend_from_slice(&p.pos.x.to_le_bytes());
            out.extend_from_slice(&p.pos.y.to_le_bytes());
            out.extend_from_slice(&p.pos.z.to_le_bytes());
        };
        match self {
            ObjOp::Genesis { id, point } | ObjOp::Insert { id, point } => {
                let mut out = Vec::with_capacity(OP_POINT_LEN);
                out.push(if matches!(self, ObjOp::Genesis { .. }) { 0 } else { 1 });
                out.extend_from_slice(&id.to_le_bytes());
                put_point(&mut out, point);
                out
            }
            ObjOp::Delete { id } => {
                let mut out = Vec::with_capacity(OP_DELETE_LEN);
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
                out
            }
            ObjOp::Move { id, point } => {
                let mut out = Vec::with_capacity(OP_POINT_LEN);
                out.push(3);
                out.extend_from_slice(&id.to_le_bytes());
                put_point(&mut out, point);
                out
            }
        }
    }

    /// Decode a record written by [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Option<ObjOp> {
        let u32_at = |off: usize| -> Option<u32> {
            bytes.get(off..off + 4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        };
        let f64_at = |off: usize| -> Option<f64> {
            bytes.get(off..off + 8).map(|b| f64::from_le_bytes(b.try_into().unwrap()))
        };
        let kind = *bytes.first()?;
        let id = u32_at(1)?;
        if kind == 2 {
            return (bytes.len() == OP_DELETE_LEN).then_some(ObjOp::Delete { id });
        }
        if bytes.len() != OP_POINT_LEN {
            return None;
        }
        let point = SurfacePoint {
            tri: u32_at(5)?,
            pos: Point3::new(f64_at(9)?, f64_at(17)?, f64_at(25)?),
        };
        match kind {
            0 => Some(ObjOp::Genesis { id, point }),
            1 => Some(ObjOp::Insert { id, point }),
            3 => Some(ObjOp::Move { id, point }),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// An immutable view of the object set: the id table, the live count, and
/// the `Dxy` R-tree over planar projections. Queries hold one snapshot
/// for their whole run; mutations publish a fresh one.
#[derive(Clone)]
pub struct ObjectSnapshot {
    /// `table[id]` is the object's position, `None` once deleted. Ids are
    /// dense and never reused.
    table: Vec<Option<SurfacePoint>>,
    live: usize,
    rtree: RTree<u32>,
}

impl ObjectSnapshot {
    /// Position of a live object. Panics for deleted/unknown ids — the
    /// query path only sees ids it got from this snapshot's own R-tree.
    pub fn point(&self, id: u32) -> SurfacePoint {
        self.table[id as usize].expect("id must be live in this snapshot")
    }

    /// Position of `id`, or `None` if deleted or never assigned.
    pub fn get(&self, id: u32) -> Option<SurfacePoint> {
        self.table.get(id as usize).copied().flatten()
    }

    /// Number of live objects.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Ids ever assigned (dense upper bound; some may be deleted).
    pub fn id_bound(&self) -> u32 {
        self.table.len() as u32
    }

    /// Ids of all live objects, ascending.
    pub fn live_ids(&self) -> Vec<u32> {
        (0..self.table.len() as u32).filter(|&i| self.table[i as usize].is_some()).collect()
    }

    /// The `Dxy` R-tree over live objects' planar projections.
    pub fn rtree(&self) -> &RTree<u32> {
        &self.rtree
    }

    /// Check the snapshot's invariants: R-tree structure, tree/table
    /// agreement on membership and position.
    pub fn validate(&self) -> Result<(), String> {
        self.rtree.validate()?;
        if self.rtree.len() != self.live {
            return Err(format!(
                "rtree has {} entries, table {} live",
                self.rtree.len(),
                self.live
            ));
        }
        let mut seen = vec![false; self.table.len()];
        for (rect, id) in self.rtree.iter_all() {
            let p =
                self.get(id).ok_or_else(|| format!("rtree entry {id} is not live in the table"))?;
            if rect != Rect2::from_point(p.pos.xy()) {
                return Err(format!("rtree rect for {id} disagrees with the table position"));
            }
            if std::mem::replace(&mut seen[id as usize], true) {
                return Err(format!("rtree holds {id} twice"));
            }
        }
        Ok(())
    }

    /// Apply one non-genesis op. Panics on log corruption (replaying a
    /// committed log can only fail if the durability layer is broken).
    fn apply(&mut self, op: &ObjOp) {
        match *op {
            ObjOp::Genesis { .. } => panic!("genesis records precede the incremental log"),
            ObjOp::Insert { id, point } => {
                assert_eq!(id as usize, self.table.len(), "insert ids are dense");
                self.table.push(Some(point));
                self.rtree.insert(Rect2::from_point(point.pos.xy()), id);
                self.live += 1;
            }
            ObjOp::Delete { id } => {
                let old = self.table[id as usize].take().expect("delete of a live object");
                assert!(
                    self.rtree.delete(&Rect2::from_point(old.pos.xy()), &id),
                    "rtree and table disagree on object {id}"
                );
                self.live -= 1;
            }
            ObjOp::Move { id, point } => {
                let old = self.table[id as usize].replace(point).expect("move of a live object");
                assert!(
                    self.rtree.delete(&Rect2::from_point(old.pos.xy()), &id),
                    "rtree and table disagree on object {id}"
                );
                self.rtree.insert(Rect2::from_point(point.pos.xy()), id);
            }
        }
    }

    fn from_genesis(objects: &[(u32, SurfacePoint)]) -> Self {
        for (i, &(id, _)) in objects.iter().enumerate() {
            assert_eq!(id as usize, i, "genesis ids are dense and ordered");
        }
        let rtree = RTree::bulk_load(
            objects.iter().map(|&(id, p)| (Rect2::from_point(p.pos.xy()), id)).collect(),
        );
        Self { table: objects.iter().map(|&(_, p)| Some(p)).collect(), live: objects.len(), rtree }
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Everything a writer needs, behind one mutex: mutations are serialised,
/// so the WAL sees ops in a total order and LSN order equals heap order.
struct WriteHalf {
    heap: HeapFile,
    wal: Wal,
    next_txn: u64,
}

/// Write-path counters, exported as the `sknn_wal_*` metric families.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteStats {
    /// WAL counters (appends, fsyncs, failed fsyncs, truncations).
    pub wal: WalStats,
    /// Dirty pages written back to the durable image.
    pub flushed_pages: u64,
    /// Mutations aborted by a failed commit fsync.
    pub aborted_ops: u64,
    /// Times this store was rebuilt from a crash image (0 or 1).
    pub recoveries: u64,
    /// WAL records redone/replayed by the last recovery.
    pub replay_records: u64,
    /// Live objects in the current snapshot.
    pub live_objects: usize,
    /// Pages currently dirty (awaiting writeback).
    pub dirty_pages: usize,
}

/// What [`ObjectStore::recover`] did, for assertions and telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Committed WAL records redone after the last checkpoint.
    pub replay_records: u64,
    /// Logical ops replayed on top of the genesis bulk load.
    pub replayed_ops: u64,
    /// Transactions with a durable commit in the log.
    pub committed_txns: usize,
    /// Bytes discarded as a torn/corrupt WAL tail.
    pub torn_tail_bytes: usize,
}

/// The durable, concurrently readable object set. See the module docs.
pub struct ObjectStore {
    pager: Arc<Pager>,
    fault: Option<Arc<FaultInjector>>,
    snap: RwLock<Arc<ObjectSnapshot>>,
    write: Mutex<WriteHalf>,
    aborted: AtomicU64,
    recoveries: u64,
    replay_records: u64,
}

impl ObjectStore {
    /// Create a store from the initial object set ("genesis"): every
    /// object is written to the heap as a genesis record under one
    /// committed transaction, a checkpoint is logged, and the page image
    /// is sealed as the recovery baseline. Genesis is never
    /// fault-injected — it models the pre-built database the paper
    /// starts from.
    pub fn genesis(
        objects: &[SceneObject],
        pool_pages: usize,
        fault: Option<Arc<FaultInjector>>,
    ) -> Self {
        let pager = Arc::new(Pager::new(pool_pages));
        let mut heap = HeapFile::new();
        let mut wal = Wal::new();
        {
            let _scope = pager.tag_scope(StructureTag::Objects);
            for o in objects {
                let rec = ObjOp::Genesis { id: o.id, point: o.point }.encode();
                heap.append_logged(&pager, &mut wal, 1, &rec);
            }
        }
        wal.append(1, &WalRecord::Commit);
        wal.sync(None).expect("genesis fsync is not fault-injected");
        wal.append(0, &WalRecord::Checkpoint);
        wal.sync(None).expect("genesis fsync is not fault-injected");
        pager.observe_wal_lsn(wal.durable_commit_lsn());
        pager.seal_base_image();
        let snap = ObjectSnapshot::from_genesis(
            &objects.iter().map(|o| (o.id, o.point)).collect::<Vec<_>>(),
        );
        Self {
            pager,
            fault,
            snap: RwLock::new(Arc::new(snap)),
            write: Mutex::new(WriteHalf { heap, wal, next_txn: 2 }),
            aborted: AtomicU64::new(0),
            recoveries: 0,
            replay_records: 0,
        }
    }

    /// The current snapshot. Clone-cheap (`Arc`); hold it for the whole
    /// query so concurrent mutations cannot shift the ground mid-ranking.
    pub fn snapshot(&self) -> Arc<ObjectSnapshot> {
        match self.snap.read() {
            Ok(g) => Arc::clone(&g),
            Err(p) => Arc::clone(&p.into_inner()),
        }
    }

    /// Insert a new object; returns its id. Durable once this returns.
    pub fn insert(&self, point: SurfacePoint) -> StoreResult<u32> {
        let mut w = lock_recover(&self.write);
        let id = self.snapshot().id_bound();
        self.commit_op(&mut w, ObjOp::Insert { id, point })?;
        Ok(id)
    }

    /// Delete an object. `Ok(false)` if the id is not live (no-op, not
    /// logged).
    pub fn delete(&self, id: u32) -> StoreResult<bool> {
        let mut w = lock_recover(&self.write);
        if self.snapshot().get(id).is_none() {
            return Ok(false);
        }
        self.commit_op(&mut w, ObjOp::Delete { id })?;
        Ok(true)
    }

    /// Move an object to a new surface position. `Ok(false)` if the id is
    /// not live.
    pub fn move_object(&self, id: u32, point: SurfacePoint) -> StoreResult<bool> {
        let mut w = lock_recover(&self.write);
        if self.snapshot().get(id).is_none() {
            return Ok(false);
        }
        self.commit_op(&mut w, ObjOp::Move { id, point })?;
        Ok(true)
    }

    /// The commit protocol. Under the write lock: log the op (logical
    /// record, then the heap's alloc/page-write records), log `Commit`,
    /// fsync. Success publishes a new snapshot and opportunistically
    /// writes back eligible dirty pages; failure rolls the heap and WAL
    /// back to the pre-op mark, leaving no trace.
    fn commit_op(&self, w: &mut WriteHalf, op: ObjOp) -> StoreResult<()> {
        let fault = self.fault.as_deref();
        let txn = w.next_txn;
        let wal_mark = w.wal.mark();
        let heap_mark = w.heap.state_mark(&self.pager);
        let rec = op.encode();
        w.wal.append(txn, &WalRecord::Op { payload: rec.clone() });
        {
            let _scope = self.pager.tag_scope(StructureTag::Objects);
            w.heap.append_logged(&self.pager, &mut w.wal, txn, &rec);
        }
        w.wal.append(txn, &WalRecord::Commit);
        match w.wal.sync(fault) {
            Ok(commit_lsn) => {
                w.next_txn += 1;
                self.pager.observe_wal_lsn(commit_lsn);
                let mut next = ObjectSnapshot::clone(&self.snapshot());
                next.apply(&op);
                match self.snap.write() {
                    Ok(mut g) => *g = Arc::new(next),
                    Err(p) => *p.into_inner() = Arc::new(next),
                }
                // Writeback failures are not commit failures: the op is
                // durable in the WAL, the page just stays dirty for the
                // next flush or checkpoint.
                let _ = self.pager.flush_dirty(fault);
                Ok(())
            }
            Err(e) => {
                w.heap.rollback_to(&self.pager, heap_mark);
                w.wal.truncate_pending(wal_mark);
                self.aborted.fetch_add(1, Relaxed);
                Err(e)
            }
        }
    }

    /// Write back every eligible dirty page and log a checkpoint, letting
    /// recovery skip everything before it. Returns pages flushed. Fails
    /// (without logging the checkpoint) if any flush fails or a crash
    /// was requested mid-flush — a checkpoint must never claim more than
    /// the durable image holds.
    pub fn checkpoint(&self) -> StoreResult<u64> {
        let mut w = lock_recover(&self.write);
        let fault = self.fault.as_deref();
        let flushed = self.pager.flush_dirty(fault)?;
        if fault.is_some_and(|f| f.kill_requested()) {
            return Err(sknn_store::StoreError::WriteFault { page: u64::MAX });
        }
        w.wal.append(0, &WalRecord::Checkpoint);
        w.wal.sync(fault)?;
        Ok(flushed)
    }

    /// What a crash preserves: the durable WAL prefix and the durable
    /// page image. Everything volatile — buffer-pool contents, dirty
    /// pages, pending WAL bytes, the in-memory snapshot — is gone.
    pub fn crash_image(&self) -> CrashImage {
        let w = lock_recover(&self.write);
        CrashImage { wal: w.wal.durable_bytes().to_vec(), pages: self.pager.durable_image() }
    }

    /// ARIES-lite redo recovery. Restores the durable pages, redoes
    /// committed page writes after the last checkpoint (skipping the torn
    /// tail), reopens the heap, replays the logical op log into a fresh
    /// snapshot, and cross-checks the replayed tail against the WAL's own
    /// `Op` records. Panics if the cross-check fails — that is a
    /// durability bug, not an environmental condition.
    pub fn recover(
        image: &CrashImage,
        pool_pages: usize,
        fault: Option<Arc<FaultInjector>>,
    ) -> StoreResult<(Self, RecoveryReport)> {
        let pager = Arc::new(Pager::new(pool_pages));
        for p in &image.pages {
            pager.restore_page(p);
        }
        let plan = Wal::redo_plan(&image.wal);
        let mut heap_pages: Vec<u64> =
            image.pages.iter().filter(|p| p.tag == StructureTag::Objects).map(|p| p.id).collect();
        let mut wal_ops: Vec<Vec<u8>> = Vec::new();
        let mut replay_records = 0u64;
        for e in &plan.entries[plan.start..] {
            if !plan.committed.contains(&e.txn) {
                continue;
            }
            match &e.record {
                WalRecord::Alloc { page, tag } => {
                    let t = StructureTag::from_idx(*tag);
                    pager.ensure_allocated(*page, t);
                    if t == StructureTag::Objects {
                        heap_pages.push(*page);
                    }
                    replay_records += 1;
                }
                WalRecord::PageWrite { page, offset, bytes } => {
                    pager.ensure_allocated(*page, StructureTag::Objects);
                    pager.write_logged(PageId(*page), *offset as usize, bytes, e.lsn);
                    replay_records += 1;
                }
                WalRecord::Op { payload } => {
                    wal_ops.push(payload.clone());
                    replay_records += 1;
                }
                WalRecord::Commit | WalRecord::Checkpoint => {}
            }
        }
        let wal = Wal::from_durable(&image.wal);
        pager.observe_wal_lsn(wal.durable_commit_lsn());
        // Re-persist what redo rebuilt so the durable image is whole again
        // (and torn pages are repaired on disk, not just in memory).
        pager.flush_dirty(None)?;

        heap_pages.sort_unstable();
        heap_pages.dedup();
        let heap = HeapFile::reopen(&pager, heap_pages.into_iter().map(PageId).collect())?;
        let mut raw: Vec<Vec<u8>> = Vec::with_capacity(heap.len());
        heap.scan(&pager, |_, rec| raw.push(rec.to_vec()))?;
        assert!(
            raw.len() >= wal_ops.len() && raw[raw.len() - wal_ops.len()..] == wal_ops[..],
            "recovery cross-check failed: heap tail and WAL op log disagree"
        );
        let ops: Vec<ObjOp> = raw
            .iter()
            .map(|r| ObjOp::decode(r).expect("undecodable committed op record"))
            .collect();
        let split = ops.iter().take_while(|o| matches!(o, ObjOp::Genesis { .. })).count();
        let genesis: Vec<(u32, SurfacePoint)> = ops[..split]
            .iter()
            .map(|o| match *o {
                ObjOp::Genesis { id, point } => (id, point),
                _ => unreachable!(),
            })
            .collect();
        let mut snap = ObjectSnapshot::from_genesis(&genesis);
        for op in &ops[split..] {
            snap.apply(op);
        }
        let next_txn = plan.committed.iter().max().copied().unwrap_or(1) + 1;
        let report = RecoveryReport {
            replay_records,
            replayed_ops: (ops.len() - split) as u64,
            committed_txns: plan.committed.len(),
            torn_tail_bytes: image.wal.len() - plan.valid_len,
        };
        let store = Self {
            pager,
            fault,
            snap: RwLock::new(Arc::new(snap)),
            write: Mutex::new(WriteHalf { heap, wal, next_txn }),
            aborted: AtomicU64::new(0),
            recoveries: 1,
            replay_records,
        };
        Ok((store, report))
    }

    /// True once the fault injector has requested a crash (a torn write
    /// landed or a `kill_at_lsn` target was reached). The workload
    /// harness polls this and stops issuing operations.
    pub fn kill_requested(&self) -> bool {
        self.fault.as_deref().is_some_and(|f| f.kill_requested())
    }

    /// The store's pager (page accounting for the object structures).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Write-path counters for the `sknn_wal_*` metric families.
    pub fn write_stats(&self) -> WriteStats {
        let w = lock_recover(&self.write);
        WriteStats {
            wal: w.wal.stats(),
            flushed_pages: self.pager.flushed_pages(),
            aborted_ops: self.aborted.load(Relaxed),
            recoveries: self.recoveries,
            replay_records: self.replay_records,
            live_objects: self.snapshot().live(),
            dirty_pages: self.pager.dirty_pages().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SceneBuilder;
    use sknn_terrain::dem::TerrainConfig;

    fn scene_store(n: usize, seed: u64) -> (Vec<SceneObject>, ObjectStore) {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(seed);
        let scene = SceneBuilder::new(&mesh).object_count(n).seed(seed).build();
        let objects = scene.objects().to_vec();
        let store = ObjectStore::genesis(&objects, 32, None);
        (objects, store)
    }

    fn shifted(p: SurfacePoint, dx: f64) -> SurfacePoint {
        SurfacePoint { tri: p.tri, pos: Point3::new(p.pos.x + dx, p.pos.y, p.pos.z) }
    }

    #[test]
    fn op_encoding_roundtrip() {
        let p = SurfacePoint { tri: 7, pos: Point3::new(1.5, -2.25, 3.125) };
        for op in [
            ObjOp::Genesis { id: 0, point: p },
            ObjOp::Insert { id: 41, point: p },
            ObjOp::Delete { id: 9 },
            ObjOp::Move { id: 3, point: p },
        ] {
            assert_eq!(ObjOp::decode(&op.encode()), Some(op));
        }
        assert_eq!(ObjOp::decode(&[]), None);
        assert_eq!(ObjOp::decode(&[9, 0, 0, 0, 0]), None);
        let mut short = ObjOp::Insert { id: 1, point: p }.encode();
        short.pop();
        assert_eq!(ObjOp::decode(&short), None);
    }

    #[test]
    fn genesis_matches_scene_and_validates() {
        let (objects, store) = scene_store(25, 3);
        let snap = store.snapshot();
        assert_eq!(snap.live(), objects.len());
        snap.validate().unwrap();
        for o in &objects {
            assert_eq!(snap.get(o.id), Some(o.point));
        }
    }

    #[test]
    fn mutations_publish_new_snapshots_and_leave_old_ones_alone() {
        let (objects, store) = scene_store(10, 5);
        let before = store.snapshot();
        let id = store.insert(shifted(objects[0].point, 0.5)).unwrap();
        assert_eq!(id, 10);
        assert!(store.delete(3).unwrap());
        assert!(!store.delete(3).unwrap(), "double delete is a no-op");
        assert!(store.move_object(4, shifted(objects[4].point, 0.25)).unwrap());
        assert!(!store.move_object(3, objects[3].point).unwrap(), "moving a deleted id fails");
        // The pre-mutation snapshot is untouched.
        assert_eq!(before.live(), 10);
        assert_eq!(before.get(3), Some(objects[3].point));
        let after = store.snapshot();
        assert_eq!(after.live(), 10); // +1 insert, -1 delete
        assert_eq!(after.get(3), None);
        assert_eq!(after.get(4).unwrap().pos.x, objects[4].point.pos.x + 0.25);
        after.validate().unwrap();
    }

    #[test]
    fn clean_crash_recovery_is_bit_identical() {
        let (objects, store) = scene_store(20, 7);
        let ins = store.insert(shifted(objects[1].point, 0.75)).unwrap();
        store.delete(5).unwrap();
        store.move_object(2, shifted(objects[2].point, -0.5)).unwrap();
        store.checkpoint().unwrap();
        store.insert(shifted(objects[6].point, 1.25)).unwrap();
        store.delete(ins).unwrap();

        let image = store.crash_image();
        let (rec, report) = ObjectStore::recover(&image, 32, None).unwrap();
        assert!(report.replayed_ops >= 2, "post-checkpoint ops replayed");
        assert_eq!(report.torn_tail_bytes, 0);
        let a = store.snapshot();
        let b = rec.snapshot();
        b.validate().unwrap();
        assert_eq!(a.live(), b.live());
        assert_eq!(a.id_bound(), b.id_bound());
        for id in 0..a.id_bound() {
            assert_eq!(a.get(id), b.get(id), "object {id}");
        }
        // The planar index answers identically (structure and all).
        let q = objects[0].point.pos.xy();
        let ka: Vec<_> = a.rtree().knn(q, 8).iter().map(|&(d, _, id)| (d, id)).collect();
        let kb: Vec<_> = b.rtree().knn(q, 8).iter().map(|&(d, _, id)| (d, id)).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn uncommitted_tail_is_invisible_after_crash() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(11);
        let scene = SceneBuilder::new(&mesh).object_count(12).seed(11).build();
        // Every post-commit writeback fails, so the heap page with the
        // insert never reaches the durable image — which lets us model a
        // crash *during* the commit fsync by tearing the WAL tail.
        let fault = Arc::new((1..100).fold(FaultInjector::script(), |f, n| {
            f.fail_nth_write(n, sknn_store::FaultKind::WriteFault)
        }));
        let store = ObjectStore::genesis(scene.objects(), 32, Some(fault));
        store.insert(shifted(scene.objects()[0].point, 0.5)).unwrap();
        let mut image = store.crash_image();
        // Tear the tail mid-commit-frame: keep the op and page-write
        // records plus 3 bytes of the commit record.
        let (entries, _) = Wal::scan(&image.wal);
        let last = entries.last().unwrap();
        assert!(matches!(last.record, WalRecord::Commit));
        let before_commit = entries[entries.len() - 2].end;
        image.wal.truncate(before_commit + 3);
        let (rec, report) = ObjectStore::recover(&image, 32, None).unwrap();
        assert_eq!(report.torn_tail_bytes, 3);
        // The torn-off commit means the insert never happened.
        let snap = rec.snapshot();
        snap.validate().unwrap();
        assert_eq!(snap.live(), 12);
        assert_eq!(snap.get(12), None);
        assert_eq!(snap.id_bound(), 12);
    }

    #[test]
    fn failed_fsync_aborts_without_a_trace() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(13);
        let scene = SceneBuilder::new(&mesh).object_count(8).seed(13).build();
        let fault = Arc::new(FaultInjector::script().fail_nth_fsync(1));
        let store = ObjectStore::genesis(scene.objects(), 32, Some(fault));
        let before = store.snapshot();
        let err = store.insert(scene.objects()[0].point).unwrap_err();
        assert!(matches!(err, sknn_store::StoreError::FsyncFailed { .. }));
        // Nothing moved: snapshot, WAL, heap, dirty set all unchanged.
        let after = store.snapshot();
        assert_eq!(after.live(), before.live());
        let stats = store.write_stats();
        assert_eq!(stats.aborted_ops, 1);
        assert!(stats.wal.truncated > 0);
        // The next (un-faulted) insert succeeds and recovery agrees.
        let id = store.insert(scene.objects()[1].point).unwrap();
        assert_eq!(id, 8);
        let (rec, _) = ObjectStore::recover(&store.crash_image(), 32, None).unwrap();
        assert_eq!(rec.snapshot().live(), 9);
        rec.snapshot().validate().unwrap();
    }
}
