//! Persistence of the query structures.
//!
//! DMTM + MSDN construction is fast but not free; a production deployment
//! builds them once per terrain and reuses them across sessions (the paper
//! likewise pre-creates both and stores them in the database). The bundle
//! format concatenates the two structures' own binary formats under a
//! small header.

use crate::config::Mr3Config;
use sknn_multires::{build_dmtm, DmtmTree};
use sknn_sdn::{Msdn, MsdnConfig};
use sknn_terrain::mesh::TerrainMesh;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SKNN";
const VERSION: u32 = 1;

/// The prebuilt multiresolution structures of one terrain.
pub struct Structures {
    /// The DMTM collapse tree.
    pub tree: DmtmTree,
    /// The MSDN resolution stack.
    pub msdn: Msdn,
}

impl Structures {
    /// Build both structures for a mesh under `cfg`'s parameters.
    pub fn build(mesh: &TerrainMesh, cfg: &Mr3Config) -> Self {
        let tree = build_dmtm(mesh);
        let msdn = Msdn::build(
            mesh,
            &MsdnConfig { levels: cfg.msdn_levels.clone(), plane_spacing: cfg.plane_spacing },
        );
        Self { tree, msdn }
    }

    /// Serialise the bundle.
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        sknn_multires::io::write_tree(&self.tree, w)?;
        sknn_sdn::io::write_msdn(&self.msdn, w)?;
        Ok(())
    }

    /// Deserialise a bundle written by [`Structures::write`].
    pub fn read(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a SKNN bundle"));
        }
        let mut ver = [0u8; 4];
        r.read_exact(&mut ver)?;
        if u32::from_le_bytes(ver) != VERSION {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "unsupported bundle version"));
        }
        let tree = sknn_multires::io::read_tree(r)?;
        let msdn = sknn_sdn::io::read_msdn(r)?;
        Ok(Self { tree, msdn })
    }

    /// Convenience: save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write(&mut f)?;
        f.flush()
    }

    /// Convenience: load from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        Self::read(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr3::Mr3Engine;
    use crate::workload::SceneBuilder;
    use sknn_terrain::dem::TerrainConfig;

    #[test]
    fn bundle_roundtrip_gives_identical_engine_behaviour() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(42);
        let scene = SceneBuilder::new(&mesh).object_count(15).seed(1).build();
        let cfg = Mr3Config::default();
        let structures = Structures::build(&mesh, &cfg);

        let mut buf = Vec::new();
        structures.write(&mut buf).unwrap();
        let loaded = Structures::read(&mut buf.as_slice()).unwrap();

        let fresh = Mr3Engine::build(&mesh, &scene, &cfg);
        let restored = Mr3Engine::build_from(&mesh, &scene, &cfg, loaded);
        let q = scene.random_query(7);
        let a = fresh.query(q, 4);
        let b = restored.query(q, 4);
        let ids = |r: &crate::metrics::QueryResult| {
            r.neighbors.iter().map(|n| (n.id, n.range)).collect::<Vec<_>>()
        };
        assert_eq!(ids(&a), ids(&b));
        assert_eq!(a.stats.pages, b.stats.pages);
    }

    #[test]
    fn save_load_via_files() {
        let mesh = TerrainConfig::ep().with_grid(9).build_mesh(3);
        let cfg = Mr3Config::default();
        let structures = Structures::build(&mesh, &cfg);
        let path = std::env::temp_dir().join("sknn_persist_test.sknn");
        structures.save(&path).unwrap();
        let loaded = Structures::load(&path).unwrap();
        assert_eq!(loaded.tree.num_leaves(), structures.tree.num_leaves());
        assert_eq!(loaded.msdn.levels, structures.msdn.levels);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        assert!(Structures::read(&mut &b"JUNKJUNK"[..]).is_err());
    }
}
