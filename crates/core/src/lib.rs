#![warn(missing_docs)]
//! Surface k-NN query processing — the MR3 algorithm of Deng, Zhou, Shen,
//! Xu & Lin, *"Surface k-NN Query Processing"*, ICDE 2006.
//!
//! A surface k-NN (sk-NN) query returns the `k` objects nearest a query
//! point by **surface distance** — shortest-path length along a terrain.
//! Computing surface distances exactly is prohibitively expensive, so MR3
//! (Multi-Resolution Range Ranking) ranks candidates by *distance ranges*
//! `[lb, ub]` estimated from two multiresolution structures —
//! upper bounds from the DMTM (`sknn-multires`), lower bounds from the
//! MSDN (`sknn-sdn`) — escalating resolution and shrinking per-candidate
//! regions only until the ranking resolves (`ub(p_k) <= lb(p_{k+1})`,
//! the VA-file termination test the paper adopts from Weber et al.).
//!
//! The four-step pipeline (paper §4.1):
//!
//! 1. **2D k-NN** on the objects' planar projections (R-tree best-first);
//! 2. **surface distance ranking** of those seeds to obtain a safe radius
//!    `ub(q, b)` for the k-th neighbour;
//! 3. **2D range query** with that radius — the candidate set `C2`;
//! 4. **surface distance ranking** of `C2` until the top `k` separate.
//!
//! Baselines implemented alongside: [`ea`] (the paper's benchmark —
//! Kanai–Suzuki upper bounds at full resolution + 100 % SDN lower bounds,
//! same filters, no multiresolution) and [`ch`] (exact surface distances
//! for ground truth, playing Chen–Han's role).

pub mod bounds;
pub mod ch;
pub mod cluster;
pub mod config;
pub mod constrained;
pub mod ea;
pub mod metrics;
pub mod mr3;
pub mod objects;
pub mod pairs;
pub mod persist;
pub mod ranking;
pub mod regions;
pub mod resilience;
pub mod workload;

pub use bounds::DistRange;
pub use ch::ChEngine;
pub use cluster::{assign_sightings, surface_dbscan, Clustering, DbscanConfig};
pub use config::{CutCacheConfig, Mr3Config, StepSchedule};
pub use constrained::{ConstrainedEngine, ObstacleMask};
pub use ea::EaEngine;
pub use metrics::{QueryResult, QueryStats};
pub use mr3::{CutCacheSnapshot, Mr3Engine, RangeResult};
pub use objects::{ObjOp, ObjectSnapshot, ObjectStore, RecoveryReport, WriteStats};
pub use pairs::ClosestPair;
pub use persist::Structures;
pub use resilience::{Degraded, FaultLog, QueryError};
pub use workload::{Scene, SceneBuilder, SurfacePoint};
