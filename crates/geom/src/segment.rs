//! Line segments in 2-D and 3-D.

use crate::aabb::{Aabb3, Rect2};
use crate::point::{Point2, Point3};

/// A 2-D line segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment2 {
    /// First endpoint.
    pub a: Point2,
    /// Second endpoint.
    pub b: Point2,
}

impl Segment2 {
    /// Creates the value from its parts.
    pub fn new(a: Point2, b: Point2) -> Self {
        Self { a, b }
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Minimum bounding rectangle/box.
    pub fn mbr(&self) -> Rect2 {
        Rect2::from_points([self.a, self.b])
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Point2) -> Point2 {
        let d = self.b - self.a;
        let len_sq = d.dot(d);
        if len_sq <= 0.0 {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.a + d * t
    }

    /// Dist point.
    pub fn dist_point(&self, p: Point2) -> f64 {
        self.closest_point(p).dist(p)
    }
}

/// A 3-D line segment. Crossing-line pieces in the SDN are stored as these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment3 {
    /// First endpoint.
    pub a: Point3,
    /// Second endpoint.
    pub b: Point3,
}

impl Segment3 {
    /// Creates the value from its parts.
    pub fn new(a: Point3, b: Point3) -> Self {
        Self { a, b }
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Minimum bounding rectangle/box.
    pub fn mbr(&self) -> Aabb3 {
        Aabb3::from_points([self.a, self.b])
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point3 {
        (self.a + self.b) * 0.5
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Point3) -> Point3 {
        let d = self.b - self.a;
        let len_sq = d.dot(d);
        if len_sq <= 0.0 {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.a + d * t
    }

    /// Dist point.
    pub fn dist_point(&self, p: Point3) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// Minimum distance between two 3-D segments (Ericson, "Real-Time
    /// Collision Detection" §5.1.9). This is the exact-geometry edge weight
    /// of full-resolution SDN networks, where a crossing-line segment *is*
    /// the original surface cross-section.
    pub fn dist_segment(&self, other: &Segment3) -> f64 {
        let d1 = self.b - self.a;
        let d2 = other.b - other.a;
        let r = self.a - other.a;
        let a = d1.dot(d1);
        let e = d2.dot(d2);
        let f = d2.dot(r);
        let (s, t);
        if a <= 1e-18 && e <= 1e-18 {
            return self.a.dist(other.a);
        }
        if a <= 1e-18 {
            s = 0.0;
            t = (f / e).clamp(0.0, 1.0);
        } else {
            let c = d1.dot(r);
            if e <= 1e-18 {
                t = 0.0;
                s = (-c / a).clamp(0.0, 1.0);
            } else {
                let b = d1.dot(d2);
                let denom = a * e - b * b;
                let mut s_ =
                    if denom > 1e-18 { ((b * f - c * e) / denom).clamp(0.0, 1.0) } else { 0.0 };
                let mut t_ = (b * s_ + f) / e;
                if t_ < 0.0 {
                    t_ = 0.0;
                    s_ = (-c / a).clamp(0.0, 1.0);
                } else if t_ > 1.0 {
                    t_ = 1.0;
                    s_ = ((b - c) / a).clamp(0.0, 1.0);
                }
                s = s_;
                t = t_;
            }
        }
        let p1 = self.a + d1 * s;
        let p2 = other.a + d2 * t;
        p1.dist(p2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_point_2d_clamps_to_endpoints() {
        let s = Segment2::new(Point2::new(0.0, 0.0), Point2::new(2.0, 0.0));
        assert_eq!(s.closest_point(Point2::new(-1.0, 1.0)), Point2::new(0.0, 0.0));
        assert_eq!(s.closest_point(Point2::new(3.0, 1.0)), Point2::new(2.0, 0.0));
        assert_eq!(s.closest_point(Point2::new(1.0, 1.0)), Point2::new(1.0, 0.0));
        assert_eq!(s.dist_point(Point2::new(1.0, 3.0)), 3.0);
    }

    #[test]
    fn degenerate_segment() {
        let p = Point3::new(1.0, 1.0, 1.0);
        let s = Segment3::new(p, p);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.closest_point(Point3::new(5.0, 1.0, 1.0)), p);
    }

    #[test]
    fn segment3_mbr_and_midpoint() {
        let s = Segment3::new(Point3::new(0.0, 2.0, -1.0), Point3::new(4.0, 0.0, 3.0));
        let m = s.mbr();
        assert_eq!(m.lo, Point3::new(0.0, 0.0, -1.0));
        assert_eq!(m.hi, Point3::new(4.0, 2.0, 3.0));
        assert_eq!(s.midpoint(), Point3::new(2.0, 1.0, 1.0));
    }

    #[test]
    fn dist_point_3d() {
        let s = Segment3::new(Point3::new(0.0, 0.0, 0.0), Point3::new(10.0, 0.0, 0.0));
        assert_eq!(s.dist_point(Point3::new(5.0, 3.0, 4.0)), 5.0);
    }

    #[test]
    fn dist_segment_parallel_and_skew() {
        let a = Segment3::new(Point3::new(0.0, 0.0, 0.0), Point3::new(10.0, 0.0, 0.0));
        // Parallel, offset by 3 in y.
        let b = Segment3::new(Point3::new(2.0, 3.0, 0.0), Point3::new(8.0, 3.0, 0.0));
        assert!((a.dist_segment(&b) - 3.0).abs() < 1e-12);
        // Skew crossing above the middle.
        let c = Segment3::new(Point3::new(5.0, -1.0, 2.0), Point3::new(5.0, 1.0, 2.0));
        assert!((a.dist_segment(&c) - 2.0).abs() < 1e-12);
        // Disjoint colinear.
        let d = Segment3::new(Point3::new(13.0, 0.0, 0.0), Point3::new(20.0, 0.0, 0.0));
        assert!((a.dist_segment(&d) - 3.0).abs() < 1e-12);
        // Symmetry.
        assert!((a.dist_segment(&c) - c.dist_segment(&a)).abs() < 1e-12);
    }

    #[test]
    fn dist_segment_degenerate() {
        let p = Segment3::new(Point3::new(1.0, 1.0, 1.0), Point3::new(1.0, 1.0, 1.0));
        let q = Segment3::new(Point3::new(4.0, 5.0, 1.0), Point3::new(4.0, 5.0, 1.0));
        assert!((p.dist_segment(&q) - 5.0).abs() < 1e-12);
        let s = Segment3::new(Point3::new(0.0, 0.0, 0.0), Point3::new(10.0, 0.0, 0.0));
        // Point (1,1,1) to its projection (1,0,0): sqrt(2).
        assert!((p.dist_segment(&s) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dist_segment_opposing_slopes_beats_boxes() {
        // Two ascending segments offset in z: their y-ranges overlap and
        // their z-ranges touch, so boxes report only the x gap (1), but
        // the true geometry never gets closer than sqrt(51). This is
        // exactly why full-resolution SDN edges use segment distances.
        let a = Segment3::new(Point3::new(0.0, 0.0, 0.0), Point3::new(0.0, 10.0, 10.0));
        let b = Segment3::new(Point3::new(1.0, 0.0, 10.0), Point3::new(1.0, 10.0, 20.0));
        let box_dist = a.mbr().min_dist_box(&b.mbr());
        assert!((box_dist - 1.0).abs() < 1e-12);
        let seg_dist = a.dist_segment(&b);
        // min over (s,t) of sqrt(1 + 100(s-t)^2 + (10 - 10(s-t))^2) = sqrt(51).
        assert!((seg_dist - 51f64.sqrt()).abs() < 1e-9, "got {seg_dist}");
    }
}
