//! Axis-aligned bounding boxes in 2-D and 3-D with minimum-distance kernels.
//!
//! MBR-to-MBR minimum distances are the edge weights of the SDN lower-bound
//! network (paper §3.3), and rectangle overlap areas drive the integrated
//! I/O-region merging in MR3 (§4.2), so these kernels are on the hot path.

use crate::point::{Point2, Point3};

/// A 2-D axis-aligned rectangle. An *empty* rectangle has `lo > hi` per axis
/// and acts as the identity for [`Rect2::union`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect2 {
    /// Minimum corner.
    pub lo: Point2,
    /// Maximum corner.
    pub hi: Point2,
}

impl Rect2 {
    /// The empty rectangle (identity for union, intersects nothing).
    pub const EMPTY: Rect2 = Rect2 {
        lo: Point2::new(f64::INFINITY, f64::INFINITY),
        hi: Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Creates the value from its parts.
    pub fn new(lo: Point2, hi: Point2) -> Self {
        Self { lo, hi }
    }

    /// Rectangle covering a single point.
    pub fn from_point(p: Point2) -> Self {
        Self { lo: p, hi: p }
    }

    /// Smallest rectangle covering all `points`; `EMPTY` when empty input.
    pub fn from_points(points: impl IntoIterator<Item = Point2>) -> Self {
        points.into_iter().fold(Self::EMPTY, |r, p| r.union(&Self::from_point(p)))
    }

    /// Whether it holds nothing.
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Extent along x.
    pub fn width(&self) -> f64 {
        (self.hi.x - self.lo.x).max(0.0)
    }

    /// Extent along y.
    pub fn height(&self) -> f64 {
        (self.hi.y - self.lo.y).max(0.0)
    }

    /// Covered area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre.
    pub fn center(&self) -> Point2 {
        Point2::new((self.lo.x + self.hi.x) * 0.5, (self.lo.y + self.hi.y) * 0.5)
    }

    /// Smallest rectangle covering both operands.
    pub fn union(&self, other: &Rect2) -> Rect2 {
        Rect2 {
            lo: Point2::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point2::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Intersection; `EMPTY`-like (lo > hi) when disjoint.
    pub fn intersection(&self, other: &Rect2) -> Rect2 {
        Rect2 {
            lo: Point2::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y)),
            hi: Point2::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y)),
        }
    }

    /// Intersects.
    pub fn intersects(&self, other: &Rect2) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Contains point.
    pub fn contains_point(&self, p: Point2) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Contains rect.
    pub fn contains_rect(&self, other: &Rect2) -> bool {
        other.is_empty()
            || (self.lo.x <= other.lo.x
                && self.lo.y <= other.lo.y
                && self.hi.x >= other.hi.x
                && self.hi.y >= other.hi.y)
    }

    /// Minimum Euclidean distance from `p` to the rectangle (0 inside).
    pub fn min_dist_point(&self, p: Point2) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum distance between two rectangles (0 when they intersect).
    pub fn min_dist_rect(&self, other: &Rect2) -> f64 {
        let dx = (self.lo.x - other.hi.x).max(0.0).max(other.lo.x - self.hi.x);
        let dy = (self.lo.y - other.hi.y).max(0.0).max(other.lo.y - self.hi.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Fraction of the *smaller* rectangle's area covered by the overlap,
    /// in `[0, 1]`. This is the ">= 80 % overlapped" test MR3 uses when
    /// deciding to merge candidate I/O regions (paper §4.2). Degenerate
    /// (zero-area) rectangles overlap fully iff they intersect.
    pub fn overlap_fraction(&self, other: &Rect2) -> f64 {
        if !self.intersects(other) {
            return 0.0;
        }
        let inter = self.intersection(other).area();
        let smaller = self.area().min(other.area());
        if smaller <= 0.0 {
            1.0
        } else {
            inter / smaller
        }
    }

    /// Grow the rectangle by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Rect2 {
        Rect2 {
            lo: Point2::new(self.lo.x - margin, self.lo.y - margin),
            hi: Point2::new(self.hi.x + margin, self.hi.y + margin),
        }
    }
}

/// A 3-D axis-aligned box. Used as the MBR of SDN crossing-line segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb3 {
    /// Minimum corner.
    pub lo: Point3,
    /// Maximum corner.
    pub hi: Point3,
}

impl Aabb3 {
    /// The empty.
    pub const EMPTY: Aabb3 = Aabb3 {
        lo: Point3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
        hi: Point3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Creates the value from its parts.
    pub fn new(lo: Point3, hi: Point3) -> Self {
        Self { lo, hi }
    }

    /// From point.
    pub fn from_point(p: Point3) -> Self {
        Self { lo: p, hi: p }
    }

    /// From points.
    pub fn from_points(points: impl IntoIterator<Item = Point3>) -> Self {
        points.into_iter().fold(Self::EMPTY, |b, p| b.union(&Self::from_point(p)))
    }

    /// Whether it holds nothing.
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y || self.lo.z > self.hi.z
    }

    /// Geometric centre.
    pub fn center(&self) -> Point3 {
        (self.lo + self.hi) * 0.5
    }

    /// Union.
    pub fn union(&self, other: &Aabb3) -> Aabb3 {
        Aabb3 {
            lo: Point3::new(
                self.lo.x.min(other.lo.x),
                self.lo.y.min(other.lo.y),
                self.lo.z.min(other.lo.z),
            ),
            hi: Point3::new(
                self.hi.x.max(other.hi.x),
                self.hi.y.max(other.hi.y),
                self.hi.z.max(other.hi.z),
            ),
        }
    }

    /// Contains box.
    pub fn contains_box(&self, other: &Aabb3) -> bool {
        other.is_empty()
            || (self.lo.x <= other.lo.x
                && self.lo.y <= other.lo.y
                && self.lo.z <= other.lo.z
                && self.hi.x >= other.hi.x
                && self.hi.y >= other.hi.y
                && self.hi.z >= other.hi.z)
    }

    /// Minimum Euclidean distance from `p` to the box (0 inside).
    pub fn min_dist_point(&self, p: Point3) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        let dz = (self.lo.z - p.z).max(0.0).max(p.z - self.hi.z);
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Minimum distance between two boxes (0 when they intersect). This is
    /// the SDN edge-weight kernel: it never exceeds the distance between any
    /// pair of points drawn from the two boxes, which is what makes the SDN
    /// shortest path a valid lower bound of the surface distance.
    pub fn min_dist_box(&self, other: &Aabb3) -> f64 {
        let dx = (self.lo.x - other.hi.x).max(0.0).max(other.lo.x - self.hi.x);
        let dy = (self.lo.y - other.hi.y).max(0.0).max(other.lo.y - self.hi.y);
        let dz = (self.lo.z - other.hi.z).max(0.0).max(other.lo.z - self.hi.z);
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Projection onto the horizontal plane.
    pub fn xy(&self) -> Rect2 {
        Rect2::new(self.lo.xy(), self.hi.xy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ax: f64, ay: f64, bx: f64, by: f64) -> Rect2 {
        Rect2::new(Point2::new(ax, ay), Point2::new(bx, by))
    }

    #[test]
    fn empty_rect_is_union_identity() {
        let a = r(1.0, 2.0, 3.0, 4.0);
        assert_eq!(Rect2::EMPTY.union(&a), a);
        assert_eq!(a.union(&Rect2::EMPTY), a);
        assert!(Rect2::EMPTY.is_empty());
        assert!(!Rect2::EMPTY.intersects(&a));
    }

    #[test]
    fn rect_min_dist_point() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_dist_point(Point2::new(1.0, 1.0)), 0.0);
        assert_eq!(a.min_dist_point(Point2::new(5.0, 2.0)), 3.0);
        assert_eq!(a.min_dist_point(Point2::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn rect_min_dist_rect_disjoint_and_overlapping() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.min_dist_rect(&b), 5.0); // dx=3, dy=4
        let c = r(0.5, 0.5, 2.0, 2.0);
        assert_eq!(a.min_dist_rect(&c), 0.0);
    }

    #[test]
    fn overlap_fraction_bounds() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 0.0, 3.0, 2.0); // half of each overlaps
        assert!((a.overlap_fraction(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.overlap_fraction(&a), 1.0);
        assert_eq!(a.overlap_fraction(&r(5.0, 5.0, 6.0, 6.0)), 0.0);
        // Containment of a smaller box => fraction 1.
        let small = r(0.5, 0.5, 1.0, 1.0);
        assert_eq!(a.overlap_fraction(&small), 1.0);
    }

    #[test]
    fn overlap_fraction_degenerate() {
        let line = r(0.0, 1.0, 2.0, 1.0); // zero height
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.overlap_fraction(&line), 1.0);
    }

    #[test]
    fn aabb3_min_dist_box() {
        let a = Aabb3::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0));
        let b = Aabb3::new(Point3::new(4.0, 0.0, 0.0), Point3::new(5.0, 1.0, 1.0));
        assert_eq!(a.min_dist_box(&b), 3.0);
        assert_eq!(a.min_dist_box(&a), 0.0);
        // Touching boxes have distance zero.
        let c = Aabb3::new(Point3::new(1.0, 0.0, 0.0), Point3::new(2.0, 1.0, 1.0));
        assert_eq!(a.min_dist_box(&c), 0.0);
    }

    #[test]
    fn aabb3_union_and_contains() {
        let a = Aabb3::from_points([Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 2.0, 3.0)]);
        let b = Aabb3::from_point(Point3::new(-1.0, 5.0, 1.0));
        let u = a.union(&b);
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&b));
        assert!(!a.contains_box(&b));
    }

    #[test]
    fn min_dist_box_lower_bounds_point_pairs() {
        // Sanity: box min-dist <= distance between arbitrary contained points.
        let a = Aabb3::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0));
        let b = Aabb3::new(Point3::new(3.0, 3.0, 3.0), Point3::new(4.0, 4.0, 4.0));
        let d = a.min_dist_box(&b);
        let p = Point3::new(0.9, 0.7, 1.0);
        let q = Point3::new(3.2, 3.9, 3.0);
        assert!(d <= p.dist(q));
    }
}
