//! Triangles embedded in 3-space (terrain facets).

use crate::aabb::{Aabb3, Rect2};
use crate::point::{Point2, Point3, Vec3};

/// A triangle in 3-space. Terrain facets are non-degenerate and have
/// non-vertical projections onto the (x, y) plane, which the barycentric
/// helpers rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle3 {
    /// First endpoint.
    pub a: Point3,
    /// Second endpoint.
    pub b: Point3,
    /// The c.
    pub c: Point3,
}

impl Triangle3 {
    /// Creates the value from its parts.
    pub fn new(a: Point3, b: Point3, c: Point3) -> Self {
        Self { a, b, c }
    }

    /// The vertices.
    pub fn vertices(&self) -> [Point3; 3] {
        [self.a, self.b, self.c]
    }

    /// Face normal (not normalised).
    pub fn normal(&self) -> Vec3 {
        (self.b - self.a).cross(self.c - self.a)
    }

    /// Covered area.
    pub fn area(&self) -> f64 {
        self.normal().norm() * 0.5
    }

    /// Signed area of the (x, y) projection; positive when the projected
    /// vertices wind counter-clockwise.
    pub fn signed_area_xy(&self) -> f64 {
        let ab = self.b.xy() - self.a.xy();
        let ac = self.c.xy() - self.a.xy();
        ab.cross(ac) * 0.5
    }

    /// Minimum bounding rectangle/box.
    pub fn mbr(&self) -> Aabb3 {
        Aabb3::from_points([self.a, self.b, self.c])
    }

    /// Mbr xy.
    pub fn mbr_xy(&self) -> Rect2 {
        Rect2::from_points([self.a.xy(), self.b.xy(), self.c.xy()])
    }

    /// Barycentric coordinates of `p` with respect to the (x, y) projection.
    /// Returns `None` for a projected-degenerate triangle.
    pub fn barycentric_xy(&self, p: Point2) -> Option<(f64, f64, f64)> {
        let v0 = self.b.xy() - self.a.xy();
        let v1 = self.c.xy() - self.a.xy();
        let v2 = p - self.a.xy();
        let d00 = v0.dot(v0);
        let d01 = v0.dot(v1);
        let d11 = v1.dot(v1);
        let d20 = v2.dot(v0);
        let d21 = v2.dot(v1);
        let denom = d00 * d11 - d01 * d01;
        if denom.abs() <= f64::EPSILON {
            return None;
        }
        let v = (d11 * d20 - d01 * d21) / denom;
        let w = (d00 * d21 - d01 * d20) / denom;
        Some((1.0 - v - w, v, w))
    }

    /// Whether the (x, y) projection of the triangle contains `p`
    /// (boundary inclusive, with a small tolerance).
    pub fn contains_xy(&self, p: Point2) -> bool {
        match self.barycentric_xy(p) {
            Some((u, v, w)) => {
                let eps = 1e-9;
                u >= -eps && v >= -eps && w >= -eps
            }
            None => false,
        }
    }

    /// The surface point directly above/below `p`: barycentric interpolation
    /// of the vertex elevations. Returns `None` when `p` is outside the
    /// projected triangle or the projection is degenerate.
    pub fn lift_xy(&self, p: Point2) -> Option<Point3> {
        let (u, v, w) = self.barycentric_xy(p)?;
        let eps = 1e-9;
        if u < -eps || v < -eps || w < -eps {
            return None;
        }
        Some(Point3::new(p.x, p.y, u * self.a.z + v * self.b.z + w * self.c.z))
    }

    /// Closest point on the (solid) triangle to `p` in 3-space.
    pub fn closest_point(&self, p: Point3) -> Point3 {
        // Ericson, "Real-Time Collision Detection", §5.1.5.
        let ab = self.b - self.a;
        let ac = self.c - self.a;
        let ap = p - self.a;
        let d1 = ab.dot(ap);
        let d2 = ac.dot(ap);
        if d1 <= 0.0 && d2 <= 0.0 {
            return self.a;
        }
        let bp = p - self.b;
        let d3 = ab.dot(bp);
        let d4 = ac.dot(bp);
        if d3 >= 0.0 && d4 <= d3 {
            return self.b;
        }
        let vc = d1 * d4 - d3 * d2;
        if vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0 {
            let t = d1 / (d1 - d3);
            return self.a + ab * t;
        }
        let cp = p - self.c;
        let d5 = ab.dot(cp);
        let d6 = ac.dot(cp);
        if d6 >= 0.0 && d5 <= d6 {
            return self.c;
        }
        let vb = d5 * d2 - d1 * d6;
        if vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0 {
            let t = d2 / (d2 - d6);
            return self.a + ac * t;
        }
        let va = d3 * d6 - d5 * d4;
        if va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0 {
            let t = (d4 - d3) / ((d4 - d3) + (d5 - d6));
            return self.b + (self.c - self.b) * t;
        }
        let denom = 1.0 / (va + vb + vc);
        let v = vb * denom;
        let w = vc * denom;
        self.a + ab * v + ac * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Triangle3 {
        Triangle3::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 2.0),
            Point3::new(0.0, 2.0, 4.0),
        )
    }

    #[test]
    fn area_of_right_triangle() {
        let t = Triangle3::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(3.0, 0.0, 0.0),
            Point3::new(0.0, 4.0, 0.0),
        );
        assert_eq!(t.area(), 6.0);
        assert_eq!(t.signed_area_xy(), 6.0);
    }

    #[test]
    fn barycentric_at_vertices_and_centroid() {
        let t = tri();
        let (u, v, w) = t.barycentric_xy(Point2::new(0.0, 0.0)).unwrap();
        assert!((u - 1.0).abs() < 1e-12 && v.abs() < 1e-12 && w.abs() < 1e-12);
        let c = Point2::new(2.0 / 3.0, 2.0 / 3.0);
        let (u, v, w) = t.barycentric_xy(c).unwrap();
        for x in [u, v, w] {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn contains_and_lift() {
        let t = tri();
        assert!(t.contains_xy(Point2::new(0.5, 0.5)));
        assert!(!t.contains_xy(Point2::new(2.0, 2.0)));
        // Elevation at centroid = mean of vertex elevations.
        let lifted = t.lift_xy(Point2::new(2.0 / 3.0, 2.0 / 3.0)).unwrap();
        assert!((lifted.z - 2.0).abs() < 1e-12);
        assert!(t.lift_xy(Point2::new(5.0, 5.0)).is_none());
    }

    #[test]
    fn degenerate_projection_rejected() {
        // A vertical wall: projection collapses to a line.
        let t = Triangle3::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.5, 0.0, 1.0),
        );
        assert!(t.barycentric_xy(Point2::new(0.5, 0.0)).is_none());
        assert!(!t.contains_xy(Point2::new(0.5, 0.0)));
    }

    #[test]
    fn closest_point_regions() {
        let t = Triangle3::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(4.0, 0.0, 0.0),
            Point3::new(0.0, 4.0, 0.0),
        );
        // Above the interior: projects straight down.
        let p = Point3::new(1.0, 1.0, 5.0);
        assert_eq!(t.closest_point(p), Point3::new(1.0, 1.0, 0.0));
        // Beyond vertex a.
        let p = Point3::new(-3.0, -4.0, 0.0);
        assert_eq!(t.closest_point(p), t.a);
        // Beside edge ab.
        let p = Point3::new(2.0, -3.0, 0.0);
        assert_eq!(t.closest_point(p), Point3::new(2.0, 0.0, 0.0));
    }

    #[test]
    fn closest_point_is_no_farther_than_vertices() {
        let t = tri();
        let p = Point3::new(1.3, -0.4, 2.2);
        let d = t.closest_point(p).dist(p);
        for v in t.vertices() {
            assert!(d <= v.dist(p) + 1e-12);
        }
    }
}
