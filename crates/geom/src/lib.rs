#![warn(missing_docs)]
//! Computational-geometry substrate for surface k-NN query processing.
//!
//! This crate provides the small, allocation-free geometric kernel shared by
//! every other crate in the workspace: 2-D/3-D points and vectors, segments,
//! triangles, axis-aligned boxes with minimum-distance kernels, axis planes
//! (for the MSDN sweep), triangle unfolding (for the exact geodesic engine)
//! and the elliptical prune regions used by the MR3 query processor.
//!
//! All coordinates are `f64`. The kernel favours simple, robust formulations
//! over exact arithmetic; the terrain meshes we operate on are generated from
//! regular grids, so near-degenerate configurations are rare and handled with
//! explicit epsilons where they matter.

pub mod aabb;
pub mod ellipse;
pub mod plane;
pub mod point;
pub mod segment;
pub mod triangle;
pub mod unfold;

pub use aabb::{Aabb3, Rect2};
pub use ellipse::Ellipse2;
pub use plane::{Axis, AxisPlane};
pub use point::{Point2, Point3, Vec3};
pub use segment::{Segment2, Segment3};
pub use triangle::Triangle3;

/// Epsilon used for geometric comparisons throughout the workspace.
pub const EPS: f64 = 1e-9;
