//! Points and vectors in two and three dimensions.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or vector) in the horizontal plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates the value from its parts.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist_sq(&self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Dot product treating both points as vectors from the origin.
    pub fn dot(&self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product `self × other`.
    pub fn cross(&self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Vector length.
    pub fn norm(&self) -> f64 {
        self.dot(*self).sqrt()
    }

    /// Unit vector in the same direction; the zero vector is returned
    /// unchanged rather than producing NaNs.
    pub fn normalized(&self) -> Point2 {
        let n = self.norm();
        if n <= 0.0 {
            *self
        } else {
            *self / n
        }
    }

    /// Angle (radians, in `[0, π/2]`) between the vector and the x-axis,
    /// folding all quadrants together. Used by the MSDN plane-orientation
    /// heuristic from the paper (§3.3).
    pub fn axis_angle(&self) -> f64 {
        if self.x == 0.0 && self.y == 0.0 {
            return 0.0;
        }
        (self.y.abs()).atan2(self.x.abs())
    }
}

impl Add for Point2 {
    type Output = Point2;
    fn add(self, o: Point2) -> Point2 {
        Point2::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    fn sub(self, o: Point2) -> Point2 {
        Point2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    fn mul(self, s: f64) -> Point2 {
        Point2::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Point2 {
    type Output = Point2;
    fn div(self, s: f64) -> Point2 {
        Point2::new(self.x / s, self.y / s)
    }
}

/// A point in 3-space. The z axis is elevation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
    /// Z coordinate (elevation).
    pub z: f64,
}

/// A displacement in 3-space.
pub type Vec3 = Point3;

impl Point3 {
    /// Creates the value from its parts.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Projection onto the horizontal (x, y) plane.
    pub fn xy(&self) -> Point2 {
        Point2::new(self.x, self.y)
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: Point3) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist_sq(&self, other: Point3) -> f64 {
        let d = *self - other;
        d.dot(d)
    }

    /// Dot product.
    pub fn dot(&self, other: Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(&self, other: Point3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Vector length.
    pub fn norm(&self) -> f64 {
        self.dot(*self).sqrt()
    }

    /// Unit vector in the same direction; the zero vector is returned
    /// unchanged rather than producing NaNs.
    pub fn normalized(&self) -> Vec3 {
        let n = self.norm();
        if n <= 0.0 {
            *self
        } else {
            *self / n
        }
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(&self, other: Point3, t: f64) -> Point3 {
        *self + (other - *self) * t
    }
}

impl Add for Point3 {
    type Output = Point3;
    fn add(self, o: Point3) -> Point3 {
        Point3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Point3 {
    type Output = Point3;
    fn sub(self, o: Point3) -> Point3 {
        Point3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    fn mul(self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Point3 {
    type Output = Point3;
    fn div(self, s: f64) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point2_distance() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
    }

    #[test]
    fn point2_cross_sign() {
        let a = Point2::new(1.0, 0.0);
        let b = Point2::new(0.0, 1.0);
        assert!(a.cross(b) > 0.0);
        assert!(b.cross(a) < 0.0);
    }

    #[test]
    fn axis_angle_quadrant_folding() {
        // 30 degrees in every quadrant folds to the same angle.
        let deg30 = 30f64.to_radians();
        for (sx, sy) in [(1.0, 1.0), (-1.0, 1.0), (1.0, -1.0), (-1.0, -1.0)] {
            let v = Point2::new(sx * deg30.cos(), sy * deg30.sin());
            assert!((v.axis_angle() - deg30).abs() < 1e-12);
        }
        assert_eq!(Point2::new(0.0, 0.0).axis_angle(), 0.0);
    }

    #[test]
    fn point3_cross_orthogonal() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = x.cross(y);
        assert_eq!(z, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(z.dot(x), 0.0);
        assert_eq!(z.dot(y), 0.0);
    }

    #[test]
    fn point3_lerp_endpoints() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 5.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point3::new(2.5, 3.5, 4.5));
    }

    #[test]
    fn normalized_zero_vector_is_safe() {
        let z = Vec3::new(0.0, 0.0, 0.0);
        assert_eq!(z.normalized(), z);
        let v = Vec3::new(0.0, 3.0, 4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }
}
