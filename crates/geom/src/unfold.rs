//! Planar unfolding of mesh triangles.
//!
//! Exact polyhedral shortest-path algorithms (Chen–Han, MMP and our window
//! propagation in `sknn-geodesic`) work by *unfolding* a strip of triangles
//! into a common plane; a geodesic becomes a straight line in the unfolded
//! picture. The primitive needed is: given the 2-D images of an edge's two
//! endpoints and the 3-D edge lengths to the apex of the next triangle,
//! place the apex in 2-D on a chosen side of the edge.

use crate::point::Point2;

/// Which side of the directed edge `a -> b` to place the unfolded apex on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Positive cross product (counter-clockwise of `a -> b`).
    Left,
    /// Negative cross product.
    Right,
}

/// Place the apex of a triangle in the plane.
///
/// `a` and `b` are the 2-D images of the shared edge's endpoints; `la` and
/// `lb` are the 3-D distances from the apex to those endpoints. The returned
/// point `c` satisfies `|c - a| = la`, `|c - b| = lb` (up to floating error)
/// and lies on `side` of `a -> b`. Returns `None` when the edge is degenerate
/// or the triangle inequality fails beyond tolerance (the apex is then
/// clamped onto the line only if mildly inconsistent).
pub fn unfold_apex(a: Point2, b: Point2, la: f64, lb: f64, side: Side) -> Option<Point2> {
    let ab = b - a;
    let d = ab.norm();
    if d <= 0.0 {
        return None;
    }
    // Coordinates along/perpendicular to the edge.
    let x = (la * la - lb * lb + d * d) / (2.0 * d);
    let h_sq = la * la - x * x;
    // Tolerate slight negative h^2 from floating error (degenerate flat
    // triangle); reject wildly inconsistent inputs.
    let h = if h_sq >= 0.0 {
        h_sq.sqrt()
    } else if h_sq > -1e-9 * (1.0 + la * la) {
        0.0
    } else {
        return None;
    };
    let dir = ab / d;
    let perp = match side {
        Side::Left => Point2::new(-dir.y, dir.x),
        Side::Right => Point2::new(dir.y, -dir.x),
    };
    Some(a + dir * x + perp * h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfold_equilateral() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = unfold_apex(a, b, 1.0, 1.0, Side::Left).unwrap();
        assert!((c.x - 0.5).abs() < 1e-12);
        assert!((c.y - 3f64.sqrt() / 2.0).abs() < 1e-12);
        let c2 = unfold_apex(a, b, 1.0, 1.0, Side::Right).unwrap();
        assert!((c2.y + 3f64.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn unfold_preserves_lengths_on_skew_edge() {
        let a = Point2::new(2.0, -1.0);
        let b = Point2::new(5.0, 3.0); // |ab| = 5
        let (la, lb) = (4.2, 3.3);
        let c = unfold_apex(a, b, la, lb, Side::Left).unwrap();
        assert!((c.dist(a) - la).abs() < 1e-9);
        assert!((c.dist(b) - lb).abs() < 1e-9);
        // Left side means positive cross.
        assert!((b - a).cross(c - a) > 0.0);
    }

    #[test]
    fn unfold_degenerate_edge_rejected() {
        let a = Point2::new(1.0, 1.0);
        assert!(unfold_apex(a, a, 1.0, 1.0, Side::Left).is_none());
    }

    #[test]
    fn unfold_flat_triangle_clamps() {
        // la + lb == |ab| exactly: apex on the segment.
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 0.0);
        let c = unfold_apex(a, b, 0.5, 1.5, Side::Left).unwrap();
        assert!(c.y.abs() < 1e-9);
        assert!((c.x - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unfold_inconsistent_lengths_rejected() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 0.0);
        // la too short to reach past b: triangle inequality broken badly.
        assert!(unfold_apex(a, b, 0.1, 5.0, Side::Left).is_none());
    }
}
