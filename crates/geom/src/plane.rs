//! Axis-aligned sweep planes and their intersections with terrain facets.
//!
//! The MSDN (paper §3.3) cuts the terrain with vertical planes `x = c` or
//! `y = c`; intersecting the TIN with such a plane yields *crossing lines*
//! (polylines on the surface). This module produces the per-triangle
//! intersection segments that the `sdn` crate chains into polylines.

use crate::point::Point3;
use crate::segment::Segment3;
use crate::triangle::Triangle3;

/// Horizontal axis a sweep plane is perpendicular to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Planes `x = c` (perpendicular to the x-axis).
    X,
    /// Planes `y = c` (perpendicular to the y-axis).
    Y,
}

impl Axis {
    /// Coordinate of `p` along this axis.
    pub fn coord(&self, p: Point3) -> f64 {
        match self {
            Axis::X => p.x,
            Axis::Y => p.y,
        }
    }

    /// The other horizontal axis.
    pub fn other(&self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

/// A vertical plane `axis = value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisPlane {
    /// The sweep axis.
    pub axis: Axis,
    /// Plane coordinate along the axis.
    pub value: f64,
}

impl AxisPlane {
    /// Creates the value from its parts.
    pub fn new(axis: Axis, value: f64) -> Self {
        Self { axis, value }
    }

    /// Signed distance of `p` from the plane along the axis.
    pub fn side(&self, p: Point3) -> f64 {
        self.axis.coord(p) - self.value
    }

    /// Whether the plane strictly separates `a` and `b` along its axis.
    pub fn separates(&self, a: Point3, b: Point3) -> bool {
        let sa = self.side(a);
        let sb = self.side(b);
        (sa < 0.0 && sb > 0.0) || (sa > 0.0 && sb < 0.0)
    }

    /// Intersection of the plane with segment `(a, b)`, if the segment
    /// crosses (or touches) the plane.
    pub fn intersect_segment(&self, a: Point3, b: Point3) -> Option<Point3> {
        let sa = self.side(a);
        let sb = self.side(b);
        if sa == 0.0 {
            return Some(a);
        }
        if sb == 0.0 {
            return Some(b);
        }
        if (sa < 0.0) == (sb < 0.0) {
            return None;
        }
        let t = sa / (sa - sb);
        Some(a.lerp(b, t))
    }

    /// Intersection of the plane with a triangle: `None` when disjoint,
    /// otherwise the chord where the plane crosses the facet. Tangencies at
    /// a single vertex return a degenerate (zero-length) segment, which the
    /// polyline chaining in `sdn` drops.
    pub fn intersect_triangle(&self, tri: &Triangle3) -> Option<Segment3> {
        let mut pts: Vec<Point3> = Vec::with_capacity(2);
        let vs = tri.vertices();
        for i in 0..3 {
            let a = vs[i];
            let b = vs[(i + 1) % 3];
            if let Some(p) = self.intersect_segment(a, b) {
                // Deduplicate points shared by adjacent edges.
                if !pts.iter().any(|q| q.dist_sq(p) < 1e-18) {
                    pts.push(p);
                }
            }
        }
        match pts.len() {
            2 => Some(Segment3::new(pts[0], pts[1])),
            1 => Some(Segment3::new(pts[0], pts[0])),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_and_separates() {
        let pl = AxisPlane::new(Axis::Y, 1.0);
        let below = Point3::new(0.0, 0.0, 0.0);
        let above = Point3::new(0.0, 2.0, 0.0);
        assert!(pl.side(below) < 0.0);
        assert!(pl.side(above) > 0.0);
        assert!(pl.separates(below, above));
        assert!(!pl.separates(below, below));
        // On-plane point does not *strictly* separate.
        let on = Point3::new(0.0, 1.0, 0.0);
        assert!(!pl.separates(below, on));
    }

    #[test]
    fn intersect_segment_midpoint() {
        let pl = AxisPlane::new(Axis::X, 1.0);
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 2.0, 4.0);
        let p = pl.intersect_segment(a, b).unwrap();
        assert_eq!(p, Point3::new(1.0, 1.0, 2.0));
        assert!(pl.intersect_segment(a, Point3::new(0.5, 9.0, 9.0)).is_none());
    }

    #[test]
    fn intersect_triangle_chord() {
        let tri = Triangle3::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(0.0, 2.0, 2.0),
        );
        let pl = AxisPlane::new(Axis::Y, 1.0);
        let seg = pl.intersect_triangle(&tri).unwrap();
        // The chord runs at y = 1 from the a-c edge to the b-c edge.
        assert!((seg.a.y - 1.0).abs() < 1e-12);
        assert!((seg.b.y - 1.0).abs() < 1e-12);
        assert!(seg.length() > 0.0);
    }

    #[test]
    fn intersect_triangle_disjoint_and_vertex_touch() {
        let tri = Triangle3::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(1.0, 2.0, 0.0),
        );
        assert!(AxisPlane::new(Axis::Y, 5.0).intersect_triangle(&tri).is_none());
        // Touching only the apex vertex yields a degenerate segment.
        let touch = AxisPlane::new(Axis::Y, 2.0).intersect_triangle(&tri).unwrap();
        assert_eq!(touch.length(), 0.0);
    }
}
