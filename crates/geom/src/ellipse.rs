//! Elliptical search regions.
//!
//! MR3 prunes the area that upper-bound (and lower-bound) estimation may use
//! to "the area whose projection inside the (x, y)-plane is an ellipse-like
//! area" (paper §4.2.1): the ellipse whose foci are the projections of the
//! query point and the candidate, and whose constant (major-axis length) is
//! the current upper bound. Any surface path longer than the upper bound
//! cannot be the shortest one, and every path of length `<= ub` projects
//! inside this ellipse — so data outside it can never matter.

use crate::aabb::Rect2;
use crate::point::Point2;

/// An ellipse given by its two foci and the focal-sum constant
/// (`dist(p, f1) + dist(p, f2) <= constant` for points inside).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ellipse2 {
    /// First focus.
    pub f1: Point2,
    /// Second focus.
    pub f2: Point2,
    /// Focal-sum constant (major-axis length).
    pub constant: f64,
}

impl Ellipse2 {
    /// Create an ellipse; the constant is clamped up to the focal distance
    /// so the region always contains both foci (a degenerate segment when
    /// `constant == dist(f1, f2)`).
    pub fn new(f1: Point2, f2: Point2, constant: f64) -> Self {
        let c = constant.max(f1.dist(f2));
        Self { f1, f2, constant: c }
    }

    /// Whether `p` lies inside or on the ellipse.
    pub fn contains(&self, p: Point2) -> bool {
        p.dist(self.f1) + p.dist(self.f2) <= self.constant + 1e-12
    }

    /// Semi-major axis length.
    pub fn semi_major(&self) -> f64 {
        self.constant * 0.5
    }

    /// Semi-minor axis length.
    pub fn semi_minor(&self) -> f64 {
        let a = self.semi_major();
        let c = self.f1.dist(self.f2) * 0.5;
        (a * a - c * c).max(0.0).sqrt()
    }

    /// Axis-aligned bounding rectangle of the ellipse. Conservative and
    /// exact for axis-aligned foci; for rotated ellipses it uses the exact
    /// support-function extents, so it is always tight.
    pub fn mbr(&self) -> Rect2 {
        let a = self.semi_major();
        let b = self.semi_minor();
        let center = (self.f1 + self.f2) * 0.5;
        let d = self.f2 - self.f1;
        let n = d.norm();
        let (ux, uy) = if n <= 0.0 { (1.0, 0.0) } else { (d.x / n, d.y / n) };
        // Extent of a rotated ellipse along axis e: sqrt((a u.e)^2 + (b v.e)^2)
        let ex = ((a * ux).powi(2) + (b * uy).powi(2)).sqrt();
        let ey = ((a * uy).powi(2) + (b * ux).powi(2)).sqrt();
        Rect2::new(
            Point2::new(center.x - ex, center.y - ey),
            Point2::new(center.x + ex, center.y + ey),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_special_case() {
        // Coincident foci: a circle of radius constant/2.
        let c = Point2::new(1.0, 1.0);
        let e = Ellipse2::new(c, c, 4.0);
        assert!(e.contains(Point2::new(3.0, 1.0)));
        assert!(!e.contains(Point2::new(3.1, 1.0)));
        assert_eq!(e.semi_major(), 2.0);
        assert_eq!(e.semi_minor(), 2.0);
        let m = e.mbr();
        assert_eq!(m.lo, Point2::new(-1.0, -1.0));
        assert_eq!(m.hi, Point2::new(3.0, 3.0));
    }

    #[test]
    fn foci_always_inside() {
        let e = Ellipse2::new(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0), 3.0);
        // Constant was clamped up to the focal distance.
        assert!(e.constant >= 10.0);
        assert!(e.contains(e.f1));
        assert!(e.contains(e.f2));
    }

    #[test]
    fn axis_aligned_ellipse_geometry() {
        // Foci at (+-3, 0), constant 10 => a=5, b=4.
        let e = Ellipse2::new(Point2::new(-3.0, 0.0), Point2::new(3.0, 0.0), 10.0);
        assert_eq!(e.semi_major(), 5.0);
        assert!((e.semi_minor() - 4.0).abs() < 1e-12);
        assert!(e.contains(Point2::new(5.0, 0.0)));
        assert!(e.contains(Point2::new(0.0, 4.0)));
        assert!(!e.contains(Point2::new(0.0, 4.01)));
        let m = e.mbr();
        assert!((m.lo.x + 5.0).abs() < 1e-12 && (m.hi.y - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rotated_mbr_covers_sampled_boundary() {
        let e = Ellipse2::new(Point2::new(0.0, 0.0), Point2::new(4.0, 4.0), 9.0);
        let m = e.mbr();
        // Sample the boundary parametrically and confirm containment.
        let center = (e.f1 + e.f2) * 0.5;
        let a = e.semi_major();
        let b = e.semi_minor();
        let d = (e.f2 - e.f1).normalized();
        for i in 0..360 {
            let t = (i as f64).to_radians();
            let local = Point2::new(a * t.cos(), b * t.sin());
            let p = Point2::new(
                center.x + d.x * local.x - d.y * local.y,
                center.y + d.y * local.x + d.x * local.y,
            );
            assert!(m.contains_point(p), "boundary point {p:?} outside mbr");
            assert!(e.contains(p));
        }
    }
}
