//! Property-based tests of the geometry kernel.

use proptest::prelude::*;
use sknn_geom::{Aabb3, Ellipse2, Point2, Point3, Rect2, Segment3, Triangle3};

fn pt2() -> impl Strategy<Value = Point2> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point2::new(x, y))
}

fn pt3() -> impl Strategy<Value = Point3> {
    (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0)
        .prop_map(|(x, y, z)| Point3::new(x, y, z))
}

proptest! {
    /// Segment–segment distance: symmetric, non-negative, zero on self,
    /// and a true lower bound of distances between sampled points.
    #[test]
    fn segment_distance_properties(a in pt3(), b in pt3(), c in pt3(), d in pt3(),
                                   s in 0.0f64..1.0, t in 0.0f64..1.0) {
        let s1 = Segment3::new(a, b);
        let s2 = Segment3::new(c, d);
        let dist = s1.dist_segment(&s2);
        prop_assert!(dist >= -1e-12);
        prop_assert!((dist - s2.dist_segment(&s1)).abs() < 1e-9);
        prop_assert!(s1.dist_segment(&s1) < 1e-9);
        // Lower bound of any sampled point pair.
        let p = a.lerp(b, s);
        let q = c.lerp(d, t);
        prop_assert!(dist <= p.dist(q) + 1e-9);
        // And at least the box distance.
        prop_assert!(dist >= s1.mbr().min_dist_box(&s2.mbr()) - 1e-9);
    }

    /// Rect min-distance is a metric-style lower bound for contained points.
    #[test]
    fn rect_min_dist_bounds_contained_points(
        a in pt2(), b in pt2(), c in pt2(), d in pt2(),
        s in 0.0f64..1.0, t in 0.0f64..1.0, u in 0.0f64..1.0, v in 0.0f64..1.0,
    ) {
        let r1 = Rect2::from_points([a, b]);
        let r2 = Rect2::from_points([c, d]);
        let p = Point2::new(
            r1.lo.x + s * r1.width(),
            r1.lo.y + t * r1.height(),
        );
        let q = Point2::new(
            r2.lo.x + u * r2.width(),
            r2.lo.y + v * r2.height(),
        );
        prop_assert!(r1.min_dist_rect(&r2) <= p.dist(q) + 1e-9);
        prop_assert!(r1.min_dist_point(q) <= p.dist(q) + 1e-9);
    }

    /// Union is commutative, associative-enough, and covering.
    #[test]
    fn aabb_union_covers(a in pt3(), b in pt3(), c in pt3()) {
        let b1 = Aabb3::from_points([a, b]);
        let b2 = Aabb3::from_point(c);
        let u = b1.union(&b2);
        prop_assert!(u.contains_box(&b1));
        prop_assert!(u.contains_box(&b2));
        prop_assert_eq!(u, b2.union(&b1));
    }

    /// Ellipse: points sampled inside by definition are classified inside,
    /// and the MBR contains every inside point.
    #[test]
    fn ellipse_classification(f1 in pt2(), f2 in pt2(), slack in 0.1f64..50.0,
                              angle in 0.0f64..std::f64::consts::TAU, radial in 0.0f64..1.0) {
        let constant = f1.dist(f2) + slack;
        let e = Ellipse2::new(f1, f2, constant);
        // A point on the segment between the foci is always inside.
        let mid = (f1 + f2) * 0.5;
        prop_assert!(e.contains(mid));
        // A boundary-ish sample scaled inward is inside and in the MBR.
        let a = e.semi_major() * radial;
        let bsemi = e.semi_minor() * radial;
        let dir = (f2 - f1).normalized();
        let dir = if dir.norm() == 0.0 { Point2::new(1.0, 0.0) } else { dir };
        let center = mid;
        let local = Point2::new(a * angle.cos(), bsemi * angle.sin());
        let p = Point2::new(
            center.x + dir.x * local.x - dir.y * local.y,
            center.y + dir.y * local.x + dir.x * local.y,
        );
        prop_assert!(e.contains(p), "interior sample escaped");
        prop_assert!(e.mbr().contains_point(p));
    }

    /// Barycentric lift: inside-classified points interpolate z within the
    /// vertex range; the closest point on a triangle is never farther than
    /// the nearest vertex.
    #[test]
    fn triangle_lift_and_closest(
        ax in -10.0f64..10.0, ay in -10.0f64..10.0, az in -10.0f64..10.0,
        bx in -10.0f64..10.0, by in -10.0f64..10.0, bz in -10.0f64..10.0,
        cx in -10.0f64..10.0, cy in -10.0f64..10.0, cz in -10.0f64..10.0,
        u in 0.0f64..1.0, v in 0.0f64..1.0,
        p in pt3(),
    ) {
        let t = Triangle3::new(
            Point3::new(ax, ay, az),
            Point3::new(bx, by, bz),
            Point3::new(cx, cy, cz),
        );
        prop_assume!(t.signed_area_xy().abs() > 1e-6);
        // A barycentric interior point.
        let (u, v) = if u + v > 1.0 { (1.0 - u, 1.0 - v) } else { (u, v) };
        let w = 1.0 - u - v;
        let q = t.a * w + t.b * u + t.c * v;
        if let Some(lifted) = t.lift_xy(q.xy()) {
            let zmin = t.a.z.min(t.b.z).min(t.c.z) - 1e-9;
            let zmax = t.a.z.max(t.b.z).max(t.c.z) + 1e-9;
            prop_assert!(lifted.z >= zmin && lifted.z <= zmax);
            prop_assert!((lifted.z - q.z).abs() < 1e-6);
        }
        // Closest point optimality versus the vertices.
        let cp = t.closest_point(p);
        let d = cp.dist(p);
        for vtx in t.vertices() {
            prop_assert!(d <= vtx.dist(p) + 1e-9);
        }
    }
}
