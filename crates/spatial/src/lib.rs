#![warn(missing_docs)]
//! Spatial indexing substrate.
//!
//! The paper's MR3 algorithm issues two classic 2-D spatial queries against
//! the object table `Dxy` (projections of the objects onto the (x, y)
//! plane): a k-NN query (step 1) and a range query (step 3). Both are served
//! by [`rtree::RTree`], an R-tree with STR bulk loading, Guttman quadratic
//! insertion, window queries and best-first incremental k-NN
//! (Hjaltason–Samet). Node accesses are counted so the storage layer can
//! charge them as page I/O, as the paper's Oracle-backed setup did.

//! ```
//! use sknn_spatial::RTree;
//! use sknn_geom::{Point2, Rect2};
//!
//! let pts: Vec<(Rect2, u32)> = (0..100)
//!     .map(|i| (Rect2::from_point(Point2::new(i as f64, (i * 7 % 100) as f64)), i))
//!     .collect();
//! let tree = RTree::bulk_load(pts);
//! let nearest = tree.knn(Point2::new(50.0, 50.0), 3);
//! assert_eq!(nearest.len(), 3);
//! assert!(nearest[0].0 <= nearest[2].0); // ascending by distance
//! ```

pub mod grid;
pub mod kernel;
pub mod rtree;

pub use rtree::RTree;
