//! A uniform bucket-grid index over 2-D rectangles.
//!
//! Simpler and faster to build than the R-tree for data whose extent and
//! density are known up front (e.g. SDN crossing-line segments, which are
//! regenerated per resolution level). Supports window queries only.

use sknn_geom::{Point2, Rect2};

/// Uniform grid over items keyed by rectangle.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    extent: Rect2,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
    buckets: Vec<Vec<(Rect2, T)>>,
    len: usize,
}

impl<T: Clone> GridIndex<T> {
    /// Build a grid with approximately `target_per_bucket` items per bucket.
    pub fn build(extent: Rect2, items: Vec<(Rect2, T)>, target_per_bucket: usize) -> Self {
        let n = items.len().max(1);
        let buckets_wanted = n.div_ceil(target_per_bucket.max(1)).max(1);
        let aspect = (extent.height() / extent.width().max(1e-12)).max(1e-6);
        let nx = ((buckets_wanted as f64 / aspect).sqrt().ceil() as usize).max(1);
        let ny = (buckets_wanted.div_ceil(nx)).max(1);
        let cell_w = extent.width() / nx as f64;
        let cell_h = extent.height() / ny as f64;
        let mut grid =
            Self { extent, nx, ny, cell_w, cell_h, buckets: vec![Vec::new(); nx * ny], len: 0 };
        for (r, item) in items {
            grid.insert(r, item);
        }
        grid
    }

    /// Number of contained items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether it holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an item; it is registered in every bucket its MBR touches.
    pub fn insert(&mut self, rect: Rect2, item: T) {
        let (c0, r0) = self.cell_of(rect.lo);
        let (c1, r1) = self.cell_of(rect.hi);
        for r in r0..=r1 {
            for c in c0..=c1 {
                self.buckets[r * self.nx + c].push((rect, item.clone()));
            }
        }
        self.len += 1;
    }

    /// All items intersecting `window`. Items spanning multiple buckets are
    /// deduplicated by pointer-free rescan (callers supply unique payloads).
    pub fn range<'a>(&'a self, window: &Rect2, mut visit: impl FnMut(&'a Rect2, &'a T)) {
        let w = window.intersection(&self.extent);
        if w.is_empty() && !self.extent.contains_rect(window) {
            // Window entirely off-grid.
            if !window.intersects(&self.extent) {
                return;
            }
        }
        let (c0, r0) = self.cell_of(w.lo);
        let (c1, r1) = self.cell_of(w.hi);
        for r in r0..=r1 {
            for c in c0..=c1 {
                for (rect, item) in &self.buckets[r * self.nx + c] {
                    if rect.intersects(window) {
                        // Only report from the bucket owning the rect's lo
                        // corner (clamped), so multi-bucket items appear once.
                        let (oc, or) = self.cell_of(clamp_point(rect.lo, &w));
                        let (oc, or) = (oc.max(c0), or.max(r0));
                        if oc == c && or == r {
                            visit(rect, item);
                        }
                    }
                }
            }
        }
    }

    fn cell_of(&self, p: Point2) -> (usize, usize) {
        let cx = if self.cell_w <= 0.0 {
            0
        } else {
            (((p.x - self.extent.lo.x) / self.cell_w) as isize).clamp(0, self.nx as isize - 1)
                as usize
        };
        let cy = if self.cell_h <= 0.0 {
            0
        } else {
            (((p.y - self.extent.lo.y) / self.cell_h) as isize).clamp(0, self.ny as isize - 1)
                as usize
        };
        (cx, cy)
    }
}

fn clamp_point(p: Point2, r: &Rect2) -> Point2 {
    Point2::new(p.x.clamp(r.lo.x, r.hi.x), p.y.clamp(r.lo.y, r.hi.y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_matches_scan_with_dedup() {
        let extent = Rect2::new(Point2::new(0.0, 0.0), Point2::new(100.0, 100.0));
        let mut items = Vec::new();
        // Mix of points and spanning rectangles.
        for i in 0..200u32 {
            let x = (i as f64 * 7.3) % 100.0;
            let y = (i as f64 * 13.7) % 100.0;
            let w = (i % 5) as f64 * 3.0;
            items.push((
                Rect2::new(Point2::new(x, y), Point2::new((x + w).min(100.0), (y + w).min(100.0))),
                i,
            ));
        }
        let grid = GridIndex::build(extent, items.clone(), 4);
        let window = Rect2::new(Point2::new(20.0, 30.0), Point2::new(60.0, 70.0));
        let mut got: Vec<u32> = Vec::new();
        grid.range(&window, |_, &v| got.push(v));
        got.sort_unstable();
        got.dedup();
        let mut want: Vec<u32> =
            items.iter().filter(|(r, _)| r.intersects(&window)).map(|&(_, v)| v).collect();
        want.sort_unstable();
        // No duplicates should have been emitted in the first place.
        let mut got_raw: Vec<u32> = Vec::new();
        grid.range(&window, |_, &v| got_raw.push(v));
        assert_eq!(got_raw.len(), got.len(), "duplicates emitted");
        assert_eq!(got, want);
    }

    #[test]
    fn empty_grid() {
        let extent = Rect2::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        let grid: GridIndex<u32> = GridIndex::build(extent, vec![], 4);
        assert!(grid.is_empty());
        let mut n = 0;
        grid.range(&extent, |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn off_grid_window() {
        let extent = Rect2::new(Point2::new(0.0, 0.0), Point2::new(10.0, 10.0));
        let grid =
            GridIndex::build(extent, vec![(Rect2::from_point(Point2::new(5.0, 5.0)), 1u32)], 4);
        let mut n = 0;
        grid.range(&Rect2::new(Point2::new(20.0, 20.0), Point2::new(30.0, 30.0)), |_, _| n += 1);
        assert_eq!(n, 0);
    }
}
