//! An R-tree over 2-D rectangles.
//!
//! Supports Sort-Tile-Recursive (STR) bulk loading, Guttman quadratic-split
//! insertion, window (range) queries, and best-first incremental nearest
//! neighbour search (Hjaltason & Samet, TODS'99) — the "distance browsing"
//! strategy the paper cites for constraint-free k-NN processing.
//!
//! Every node visited by a query increments an internal access counter;
//! the storage layer maps node visits to disk-page accesses.

use crate::kernel::{min_dists_point, min_dists_point_sq, MAX_BATCH};
use sknn_geom::{Point2, Rect2};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Maximum entries per node.
pub const MAX_FANOUT: usize = 16;
/// Minimum entries per node after a split.
pub const MIN_FANOUT: usize = 6;

/// Nodes keep their entry rectangles and payloads in parallel arrays
/// (SoA): `rects[i]` bounds `items[i]` / `children[i]`. The contiguous
/// rectangle slice is what the batched mindist kernel consumes — one pass
/// of autovectorized lanes per node instead of a scalar call per entry.
#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { rects: Vec<Rect2>, items: Vec<T> },
    Inner { rects: Vec<Rect2>, children: Vec<usize> },
}

impl<T> Node<T> {
    fn leaf(entries: Vec<(Rect2, T)>) -> Self {
        let (rects, items) = entries.into_iter().unzip();
        Node::Leaf { rects, items }
    }

    fn inner(entries: Vec<(Rect2, usize)>) -> Self {
        let (rects, children) = entries.into_iter().unzip();
        Node::Inner { rects, children }
    }
}

/// An R-tree mapping rectangles to payloads.
///
/// The access counter is atomic so concurrent queries over a shared tree
/// (batch execution) stay `Sync`; counts from overlapping queries simply
/// sum.
#[derive(Debug)]
pub struct RTree<T> {
    nodes: Vec<Node<T>>,
    root: usize,
    len: usize,
    height: usize,
    /// Node slots vacated by deletes, reused by the next split — without
    /// this, a clone-per-mutation snapshot regime would grow the node
    /// arena (and every snapshot clone) unboundedly under churn.
    free: Vec<usize>,
    accesses: AtomicU64,
}

impl<T: Clone> Clone for RTree<T> {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            root: self.root,
            len: self.len,
            height: self.height,
            free: self.free.clone(),
            accesses: AtomicU64::new(self.accesses.load(AtomicOrdering::Relaxed)),
        }
    }
}

impl<T: Clone> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> RTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::Leaf { rects: Vec::new(), items: Vec::new() }],
            root: 0,
            len: 0,
            height: 1,
            free: Vec::new(),
            accesses: AtomicU64::new(0),
        }
    }

    /// STR bulk load: sort by x, tile into vertical slices, sort each slice
    /// by y, pack leaves, then repeat on parent level.
    pub fn bulk_load(mut items: Vec<(Rect2, T)>) -> Self {
        if items.is_empty() {
            return Self::new();
        }
        let len = items.len();
        let mut nodes: Vec<Node<T>> = Vec::new();

        // Pack the leaf level.
        let leaf_count = len.div_ceil(MAX_FANOUT);
        let slices = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slice = len.div_ceil(slices);
        items.sort_by(|a, b| cmp_f64(a.0.center().x, b.0.center().x));
        let mut level: Vec<(Rect2, usize)> = Vec::with_capacity(leaf_count);
        for slice in items.chunks_mut(per_slice.max(1)) {
            slice.sort_by(|a, b| cmp_f64(a.0.center().y, b.0.center().y));
            for group in slice.chunks(MAX_FANOUT) {
                let mbr = group.iter().fold(Rect2::EMPTY, |r, (g, _)| r.union(g));
                nodes.push(Node::leaf(group.to_vec()));
                level.push((mbr, nodes.len() - 1));
            }
        }
        let mut height = 1;

        // Pack upper levels the same way.
        while level.len() > 1 {
            let count = level.len().div_ceil(MAX_FANOUT);
            let slices = (count as f64).sqrt().ceil() as usize;
            let per_slice = level.len().div_ceil(slices);
            level.sort_by(|a, b| cmp_f64(a.0.center().x, b.0.center().x));
            let mut next: Vec<(Rect2, usize)> = Vec::with_capacity(count);
            let mut chunks: Vec<Vec<(Rect2, usize)>> = Vec::new();
            for slice in level.chunks(per_slice.max(1)) {
                let mut slice = slice.to_vec();
                slice.sort_by(|a, b| cmp_f64(a.0.center().y, b.0.center().y));
                for group in slice.chunks(MAX_FANOUT) {
                    chunks.push(group.to_vec());
                }
            }
            for group in chunks {
                let mbr = group.iter().fold(Rect2::EMPTY, |r, (g, _)| r.union(g));
                nodes.push(Node::inner(group));
                next.push((mbr, nodes.len() - 1));
            }
            level = next;
            height += 1;
        }
        let root = level[0].1;
        Self { nodes, root, len, height, free: Vec::new(), accesses: AtomicU64::new(0) }
    }

    /// Number of contained items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether it holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Extent along y.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cumulative node accesses made by queries so far.
    pub fn accesses(&self) -> u64 {
        self.accesses.load(AtomicOrdering::Relaxed)
    }

    /// Reset the node-access counter (typically per query).
    pub fn reset_accesses(&self) {
        self.accesses.store(0, AtomicOrdering::Relaxed);
    }

    fn touch(&self) {
        self.accesses.fetch_add(1, AtomicOrdering::Relaxed);
    }

    // ----- insertion ------------------------------------------------------

    /// Insert one item (Guttman: least-enlargement descent, quadratic split).
    pub fn insert(&mut self, rect: Rect2, item: T) {
        self.insert_no_count(rect, item);
        self.len += 1;
    }

    /// Insert without advancing `len` — used by [`insert`](Self::insert)
    /// and by delete's reinsertion of condensed orphans (already counted).
    fn insert_no_count(&mut self, rect: Rect2, item: T) {
        let split = self.insert_at(self.root, rect, item);
        if let Some((left_mbr, right_mbr, right_id)) = split {
            // Grow the tree: new root over old root and the split sibling.
            let old_root = self.root;
            let new_root =
                self.alloc_node(Node::inner(vec![(left_mbr, old_root), (right_mbr, right_id)]));
            self.root = new_root;
            self.height += 1;
        }
    }

    /// Place a node in a free slot if one exists, else grow the arena.
    fn alloc_node(&mut self, node: Node<T>) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Recursive insert; returns Some((this_mbr, sibling_mbr, sibling_id))
    /// when `node` was split.
    fn insert_at(&mut self, node: usize, rect: Rect2, item: T) -> Option<(Rect2, Rect2, usize)> {
        match &self.nodes[node] {
            Node::Leaf { .. } => {
                if let Node::Leaf { rects, items } = &mut self.nodes[node] {
                    rects.push(rect);
                    items.push(item);
                    if rects.len() <= MAX_FANOUT {
                        return None;
                    }
                }
                Some(self.split_leaf(node))
            }
            Node::Inner { rects, .. } => {
                // Choose subtree with least enlargement (ties: smaller area).
                let mut best = 0usize;
                let mut best_enl = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, mbr) in rects.iter().enumerate() {
                    let enl = mbr.union(&rect).area() - mbr.area();
                    let area = mbr.area();
                    if enl < best_enl || (enl == best_enl && area < best_area) {
                        best = i;
                        best_enl = enl;
                        best_area = area;
                    }
                }
                let child = match &self.nodes[node] {
                    Node::Inner { children, .. } => children[best],
                    _ => unreachable!(),
                };
                let split = self.insert_at(child, rect, item);
                if let Node::Inner { rects, children } = &mut self.nodes[node] {
                    rects[best] = rects[best].union(&rect);
                    if let Some((l_mbr, r_mbr, r_id)) = split {
                        rects[best] = l_mbr;
                        children[best] = child;
                        rects.push(r_mbr);
                        children.push(r_id);
                        if rects.len() > MAX_FANOUT {
                            return Some(self.split_inner(node));
                        }
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, node: usize) -> (Rect2, Rect2, usize) {
        let entries = match std::mem::replace(
            &mut self.nodes[node],
            Node::Leaf { rects: vec![], items: vec![] },
        ) {
            Node::Leaf { rects, items } => rects.into_iter().zip(items).collect::<Vec<_>>(),
            _ => unreachable!(),
        };
        let (a, b) = quadratic_split(entries, |e| e.0);
        let a_mbr = mbr_of(&a, |e| e.0);
        let b_mbr = mbr_of(&b, |e| e.0);
        self.nodes[node] = Node::leaf(a);
        let sibling = self.alloc_node(Node::leaf(b));
        (a_mbr, b_mbr, sibling)
    }

    fn split_inner(&mut self, node: usize) -> (Rect2, Rect2, usize) {
        let entries = match std::mem::replace(
            &mut self.nodes[node],
            Node::Inner { rects: vec![], children: vec![] },
        ) {
            Node::Inner { rects, children } => rects.into_iter().zip(children).collect::<Vec<_>>(),
            _ => unreachable!(),
        };
        let (a, b) = quadratic_split(entries, |e| e.0);
        let a_mbr = mbr_of(&a, |e| e.0);
        let b_mbr = mbr_of(&b, |e| e.0);
        self.nodes[node] = Node::inner(a);
        let sibling = self.alloc_node(Node::inner(b));
        (a_mbr, b_mbr, sibling)
    }

    // ----- deletion -------------------------------------------------------

    /// Delete the entry with exactly this rectangle and payload (Guttman
    /// delete with condensation). Returns whether an entry was removed.
    ///
    /// Underfull non-root nodes along the deletion path are dissolved:
    /// their surviving entries are collected and reinserted, their slots
    /// pushed onto the free list for the next split to reuse. The root
    /// shrinks while it has a single child, so repeated deletes walk the
    /// tree back down exactly as inserts grew it.
    pub fn delete(&mut self, rect: &Rect2, item: &T) -> bool
    where
        T: PartialEq,
    {
        let mut path = Vec::with_capacity(self.height);
        if !self.find_leaf(self.root, rect, item, &mut path) {
            return false;
        }
        let leaf = *path.last().unwrap();
        if let Node::Leaf { rects, items } = &mut self.nodes[leaf] {
            let i = rects
                .iter()
                .zip(items.iter())
                .position(|(r, it)| r == rect && it == item)
                .expect("find_leaf certified the entry");
            rects.remove(i);
            items.remove(i);
        }
        self.len -= 1;

        // Condense bottom-up: dissolve underfull non-root nodes, refresh
        // the MBRs of survivors. Parents are visited after their child, so
        // each check sees the removals below it.
        let mut orphans: Vec<(Rect2, T)> = Vec::new();
        for depth in (1..path.len()).rev() {
            let node = path[depth];
            let parent = path[depth - 1];
            if self.entry_count(node) < MIN_FANOUT {
                if let Node::Inner { rects, children } = &mut self.nodes[parent] {
                    let ci = children.iter().position(|&c| c == node).expect("path parent");
                    rects.remove(ci);
                    children.remove(ci);
                }
                self.drain_subtree(node, &mut orphans);
            } else {
                let mbr = self.node_mbr(node);
                if let Node::Inner { rects, children } = &mut self.nodes[parent] {
                    let ci = children.iter().position(|&c| c == node).expect("path parent");
                    rects[ci] = mbr;
                }
            }
        }

        // Shrink the root while it has one child; an emptied inner root
        // (every child dissolved) collapses back to an empty leaf.
        loop {
            match &self.nodes[self.root] {
                Node::Inner { children, .. } if children.len() == 1 => {
                    let child = children[0];
                    let old = self.root;
                    self.nodes[old] = Node::Leaf { rects: Vec::new(), items: Vec::new() };
                    self.free.push(old);
                    self.root = child;
                    self.height -= 1;
                }
                Node::Inner { children, .. } if children.is_empty() => {
                    self.nodes[self.root] = Node::Leaf { rects: Vec::new(), items: Vec::new() };
                    self.height = 1;
                    break;
                }
                _ => break,
            }
        }

        // Reinsert the condensed orphans (already counted in `len`).
        for (r, it) in orphans {
            self.insert_no_count(r, it);
        }
        true
    }

    /// DFS for the leaf holding the exact `(rect, item)` entry; fills
    /// `path` with the node chain root → leaf when found.
    fn find_leaf(&self, node: usize, rect: &Rect2, item: &T, path: &mut Vec<usize>) -> bool
    where
        T: PartialEq,
    {
        path.push(node);
        match &self.nodes[node] {
            Node::Leaf { rects, items } => {
                if rects.iter().zip(items.iter()).any(|(r, it)| r == rect && it == item) {
                    return true;
                }
            }
            Node::Inner { rects, children } => {
                for (r, &c) in rects.iter().zip(children.iter()) {
                    if r.contains_rect(rect) && self.find_leaf(c, rect, item, path) {
                        return true;
                    }
                }
            }
        }
        path.pop();
        false
    }

    fn entry_count(&self, node: usize) -> usize {
        match &self.nodes[node] {
            Node::Leaf { rects, .. } | Node::Inner { rects, .. } => rects.len(),
        }
    }

    fn node_mbr(&self, node: usize) -> Rect2 {
        match &self.nodes[node] {
            Node::Leaf { rects, .. } | Node::Inner { rects, .. } => {
                rects.iter().fold(Rect2::EMPTY, |m, r| m.union(r))
            }
        }
    }

    /// Move every leaf entry of `node`'s subtree into `out` and free all
    /// its node slots.
    fn drain_subtree(&mut self, node: usize, out: &mut Vec<(Rect2, T)>) {
        let taken = std::mem::replace(
            &mut self.nodes[node],
            Node::Leaf { rects: Vec::new(), items: Vec::new() },
        );
        match taken {
            Node::Leaf { rects, items } => out.extend(rects.into_iter().zip(items)),
            Node::Inner { children, .. } => {
                for c in children {
                    self.drain_subtree(c, out);
                }
            }
        }
        self.free.push(node);
    }

    // ----- invariants -----------------------------------------------------

    /// Check every structural invariant the dynamic test suite pins:
    /// uniform leaf depth, SoA array parallelism, fanout bounds, each
    /// inner entry's rectangle *exactly* equal to its child subtree's MBR
    /// (exact because MBRs are min/max folds of the same inputs — no
    /// rounding slack needed), and `len` equal to the leaf-entry total.
    /// Returns a description of the first violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        let mut total = 0usize;
        self.validate_rec(self.root, 1, true, &mut total)?;
        if total != self.len {
            return Err(format!("len {} but leaves hold {total} entries", self.len));
        }
        Ok(())
    }

    fn validate_rec(
        &self,
        node: usize,
        depth: usize,
        is_root: bool,
        total: &mut usize,
    ) -> Result<Rect2, String> {
        match &self.nodes[node] {
            Node::Leaf { rects, items } => {
                if rects.len() != items.len() {
                    return Err(format!(
                        "leaf {node}: SoA arrays diverge ({} rects, {} items)",
                        rects.len(),
                        items.len()
                    ));
                }
                if depth != self.height {
                    return Err(format!("leaf {node} at depth {depth}, height is {}", self.height));
                }
                if rects.len() > MAX_FANOUT {
                    return Err(format!("leaf {node} overfull: {}", rects.len()));
                }
                if !is_root && rects.is_empty() {
                    return Err(format!("non-root leaf {node} is empty"));
                }
                *total += rects.len();
                Ok(rects.iter().fold(Rect2::EMPTY, |m, r| m.union(r)))
            }
            Node::Inner { rects, children } => {
                if rects.len() != children.len() {
                    return Err(format!(
                        "inner {node}: SoA arrays diverge ({} rects, {} children)",
                        rects.len(),
                        children.len()
                    ));
                }
                if rects.len() > MAX_FANOUT {
                    return Err(format!("inner {node} overfull: {}", rects.len()));
                }
                let floor = if is_root { 2 } else { 1 };
                if rects.len() < floor {
                    return Err(format!("inner {node} underfull: {} < {floor}", rects.len()));
                }
                let mut mbr = Rect2::EMPTY;
                for (r, &c) in rects.iter().zip(children.iter()) {
                    let child_mbr = self.validate_rec(c, depth + 1, false, total)?;
                    if *r != child_mbr {
                        return Err(format!(
                            "inner {node}: entry rect {r:?} is not child {c}'s MBR {child_mbr:?}"
                        ));
                    }
                    mbr = mbr.union(r);
                }
                Ok(mbr)
            }
        }
    }

    /// Node slots currently on the free list (tests pin arena reuse).
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Total node slots in the arena, free or live.
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    // ----- queries --------------------------------------------------------

    /// All items whose rectangle intersects `window`.
    pub fn range(&self, window: &Rect2) -> Vec<(Rect2, T)> {
        let mut out = Vec::new();
        self.range_rec(self.root, window, &mut out);
        out
    }

    fn range_rec(&self, node: usize, window: &Rect2, out: &mut Vec<(Rect2, T)>) {
        self.touch();
        match &self.nodes[node] {
            Node::Leaf { rects, items } => {
                for (r, item) in rects.iter().zip(items) {
                    if r.intersects(window) {
                        out.push((*r, item.clone()));
                    }
                }
            }
            Node::Inner { rects, children } => {
                for (r, child) in rects.iter().zip(children) {
                    if r.intersects(window) {
                        self.range_rec(*child, window, out);
                    }
                }
            }
        }
    }

    /// All items whose rectangle lies within distance `radius` of `center`.
    /// This is MR3's step-3 range query (circle, not window).
    pub fn within_distance(&self, center: Point2, radius: f64) -> Vec<(Rect2, T)> {
        let window = Rect2::new(
            Point2::new(center.x - radius, center.y - radius),
            Point2::new(center.x + radius, center.y + radius),
        );
        let mut out = Vec::new();
        self.within_rec(self.root, &window, center, radius, &mut out);
        out
    }

    fn within_rec(
        &self,
        node: usize,
        window: &Rect2,
        center: Point2,
        radius: f64,
        out: &mut Vec<(Rect2, T)>,
    ) {
        self.touch();
        // One batched-kernel pass per node: all entry distances in
        // autovectorized lanes, then a branchy-but-cheap filter. The
        // squared variant spares the sqrt lane — `d² <= radius²` is the
        // same predicate (both sides non-negative).
        let mut d2 = [0.0f64; MAX_BATCH];
        let r2 = radius * radius;
        match &self.nodes[node] {
            Node::Leaf { rects, items } => {
                let n = min_dists_point_sq(center, rects, &mut d2);
                for i in 0..n {
                    if d2[i] <= r2 {
                        out.push((rects[i], items[i].clone()));
                    }
                }
            }
            Node::Inner { rects, children } => {
                let n = min_dists_point_sq(center, rects, &mut d2);
                for i in 0..n {
                    if rects[i].intersects(window) && d2[i] <= r2 {
                        self.within_rec(children[i], window, center, radius, out);
                    }
                }
            }
        }
    }

    /// The `k` items nearest to `p` by rectangle min-distance, ascending.
    /// Best-first (priority-queue) traversal.
    pub fn knn(&self, p: Point2, k: usize) -> Vec<(f64, Rect2, T)> {
        let mut out = Vec::with_capacity(k);
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        heap.push(HeapItem { dist: 0.0, kind: ItemKind::Node(self.root) });
        while let Some(HeapItem { dist, kind }) = heap.pop() {
            match kind {
                ItemKind::Node(n) => {
                    self.touch();
                    // Batched kernel: every entry's mindist in one pass,
                    // then the heap pushes read off the lane buffer.
                    let mut d = [0.0f64; MAX_BATCH];
                    match &self.nodes[n] {
                        Node::Leaf { rects, .. } => {
                            let cnt = min_dists_point(p, rects, &mut d);
                            for (i, &dist) in d[..cnt].iter().enumerate() {
                                heap.push(HeapItem { dist, kind: ItemKind::Entry(n, i) });
                            }
                        }
                        Node::Inner { rects, children } => {
                            let cnt = min_dists_point(p, rects, &mut d);
                            for (i, &dist) in d[..cnt].iter().enumerate() {
                                heap.push(HeapItem { dist, kind: ItemKind::Node(children[i]) });
                            }
                        }
                    }
                }
                ItemKind::Entry(n, i) => {
                    if let Node::Leaf { rects, items } = &self.nodes[n] {
                        out.push((dist, rects[i], items[i].clone()));
                        if out.len() == k {
                            break;
                        }
                    }
                }
            }
        }
        out
    }

    /// Exhaustive iteration (for verification in tests).
    pub fn iter_all(&self) -> Vec<(Rect2, T)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            match &self.nodes[n] {
                Node::Leaf { rects, items } => {
                    out.extend(rects.iter().copied().zip(items.iter().cloned()))
                }
                Node::Inner { children, .. } => stack.extend(children.iter().copied()),
            }
        }
        out
    }
}

fn mbr_of<E>(entries: &[E], rect: impl Fn(&E) -> Rect2) -> Rect2 {
    entries.iter().fold(Rect2::EMPTY, |r, e| r.union(&rect(e)))
}

/// Guttman quadratic split: pick the pair wasting the most area as seeds,
/// then assign each remaining entry to the group needing least enlargement,
/// respecting the minimum fill.
fn quadratic_split<E: Clone>(entries: Vec<E>, rect: impl Fn(&E) -> Rect2) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() > MAX_FANOUT);
    // Seed selection.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let ri = rect(&entries[i]);
            let rj = rect(&entries[j]);
            let waste = ri.union(&rj).area() - ri.area() - rj.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut a = vec![entries[s1].clone()];
    let mut b = vec![entries[s2].clone()];
    let mut a_mbr = rect(&entries[s1]);
    let mut b_mbr = rect(&entries[s2]);
    let mut rest: Vec<E> = entries
        .into_iter()
        .enumerate()
        .filter_map(|(i, e)| (i != s1 && i != s2).then_some(e))
        .collect();

    while let Some(e) = rest.pop() {
        let remaining = rest.len();
        // Force assignment when a group must take everything left to reach
        // the minimum fill.
        if a.len() + remaining < MIN_FANOUT {
            a_mbr = a_mbr.union(&rect(&e));
            a.push(e);
            continue;
        }
        if b.len() + remaining < MIN_FANOUT {
            b_mbr = b_mbr.union(&rect(&e));
            b.push(e);
            continue;
        }
        let r = rect(&e);
        let enl_a = a_mbr.union(&r).area() - a_mbr.area();
        let enl_b = b_mbr.union(&r).area() - b_mbr.area();
        if enl_a < enl_b || (enl_a == enl_b && a.len() <= b.len()) {
            a_mbr = a_mbr.union(&r);
            a.push(e);
        } else {
            b_mbr = b_mbr.union(&r);
            b.push(e);
        }
    }
    (a, b)
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    kind: ItemKind,
}

#[derive(PartialEq, Eq)]
enum ItemKind {
    Node(usize),
    Entry(usize, usize),
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; entries before nodes at equal distance so
        // results pop as early as possible.
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal).then_with(|| {
            match (&self.kind, &other.kind) {
                (ItemKind::Entry(..), ItemKind::Node(_)) => Ordering::Greater,
                (ItemKind::Node(_), ItemKind::Entry(..)) => Ordering::Less,
                _ => Ordering::Equal,
            }
        })
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Rect2 {
        Rect2::from_point(Point2::new(x, y))
    }

    fn grid_points(n: usize) -> Vec<(Rect2, usize)> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                v.push((pt(i as f64, j as f64), i * n + j));
            }
        }
        v
    }

    #[test]
    fn bulk_load_roundtrip() {
        let items = grid_points(10);
        let t = RTree::bulk_load(items.clone());
        assert_eq!(t.len(), 100);
        let mut all: Vec<usize> = t.iter_all().into_iter().map(|(_, v)| v).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn insert_roundtrip_and_growth() {
        let mut t = RTree::new();
        for (r, v) in grid_points(12) {
            t.insert(r, v);
        }
        assert_eq!(t.len(), 144);
        assert!(t.height() >= 2);
        let mut all: Vec<usize> = t.iter_all().into_iter().map(|(_, v)| v).collect();
        all.sort_unstable();
        assert_eq!(all, (0..144).collect::<Vec<_>>());
    }

    #[test]
    fn range_query_matches_scan() {
        let items = grid_points(15);
        let t = RTree::bulk_load(items.clone());
        let w = Rect2::new(Point2::new(2.5, 3.5), Point2::new(7.5, 9.0));
        let mut got: Vec<usize> = t.range(&w).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let mut want: Vec<usize> =
            items.iter().filter(|(r, _)| w.intersects(r)).map(|&(_, v)| v).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn within_distance_matches_scan() {
        let items = grid_points(15);
        let t = RTree::bulk_load(items.clone());
        let c = Point2::new(7.2, 7.9);
        let r = 3.3;
        let mut got: Vec<usize> = t.within_distance(c, r).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let mut want: Vec<usize> =
            items.iter().filter(|(rect, _)| rect.min_dist_point(c) <= r).map(|&(_, v)| v).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn knn_matches_scan_and_is_sorted() {
        let items = grid_points(15);
        let t = RTree::bulk_load(items.clone());
        let p = Point2::new(6.4, 2.1);
        let got = t.knn(p, 10);
        assert_eq!(got.len(), 10);
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Compare the k-th distance against a scan.
        let mut dists: Vec<f64> = items.iter().map(|(r, _)| r.min_dist_point(p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((got.last().unwrap().0 - dists[9]).abs() < 1e-12);
    }

    #[test]
    fn knn_more_than_len_returns_all() {
        let t = RTree::bulk_load(grid_points(3));
        let got = t.knn(Point2::new(0.0, 0.0), 100);
        assert_eq!(got.len(), 9);
    }

    #[test]
    fn empty_tree_queries() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert!(t.knn(Point2::new(0.0, 0.0), 5).is_empty());
        assert!(t.range(&Rect2::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0))).is_empty());
    }

    #[test]
    fn access_counter_moves_and_resets() {
        let t = RTree::bulk_load(grid_points(20));
        t.reset_accesses();
        assert_eq!(t.accesses(), 0);
        let _ = t.knn(Point2::new(3.0, 3.0), 5);
        let a = t.accesses();
        assert!(a > 0);
        let _ = t.range(&Rect2::new(Point2::new(0.0, 0.0), Point2::new(5.0, 5.0)));
        assert!(t.accesses() > a);
        t.reset_accesses();
        assert_eq!(t.accesses(), 0);
    }

    #[test]
    fn delete_roundtrip_down_to_empty() {
        let mut t = RTree::new();
        let items = grid_points(12); // 144 entries, several levels
        for &(r, v) in &items {
            t.insert(r, v);
        }
        t.validate().expect("valid after inserts");
        // Delete in an order unrelated to insertion order.
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.reverse();
        order.rotate_left(37);
        for (step, &i) in order.iter().enumerate() {
            let (r, v) = items[i];
            assert!(t.delete(&r, &v), "entry {v} should be present");
            assert!(!t.delete(&r, &v), "double delete must fail");
            if let Err(e) = t.validate() {
                panic!("invariants broken after delete #{step}: {e}");
            }
            assert_eq!(t.len(), items.len() - step - 1);
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.knn(Point2::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    fn delete_missing_entry_is_a_clean_no_op() {
        let mut t = RTree::bulk_load(grid_points(8));
        let before = t.len();
        assert!(!t.delete(&pt(99.0, 99.0), &12345));
        // Same rect as an existing entry, different payload.
        assert!(!t.delete(&pt(1.0, 1.0), &usize::MAX));
        assert_eq!(t.len(), before);
        t.validate().unwrap();
    }

    #[test]
    fn queries_stay_correct_under_mixed_churn() {
        let mut t = RTree::new();
        let mut live: Vec<(Rect2, usize)> = Vec::new();
        // Deterministic mixed workload: 3 inserts, 1 delete, repeat.
        for (next, round) in (0..400).enumerate() {
            let x = (round * 7 % 83) as f64;
            let y = (round * 13 % 97) as f64;
            let e = (pt(x, y + 0.25 * (next % 4) as f64), next);
            t.insert(e.0, e.1);
            live.push(e);
            if round % 4 == 3 {
                let victim = live.remove((round * 31) % live.len());
                assert!(t.delete(&victim.0, &victim.1));
            }
        }
        t.validate().unwrap();
        assert_eq!(t.len(), live.len());
        // knn against a scan of the live set.
        let q = Point2::new(41.5, 33.3);
        let got = t.knn(q, 12);
        let mut want: Vec<f64> = live.iter().map(|(r, _)| r.min_dist_point(q)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, (d, _, _)) in got.iter().enumerate() {
            assert!((d - want[i]).abs() < 1e-12, "k={i}: {d} vs {}", want[i]);
        }
    }

    #[test]
    fn free_list_bounds_arena_growth_under_churn() {
        let mut t = RTree::new();
        for (r, v) in grid_points(10) {
            t.insert(r, v);
        }
        let arena_high = t.arena_size();
        // Sustained delete/insert churn at constant population must not
        // grow the arena without bound: freed slots are recycled.
        let items = grid_points(10);
        for round in 0..20 {
            for (r, v) in &items {
                assert!(t.delete(r, v), "round {round}");
            }
            for &(r, v) in &items {
                t.insert(r, v);
            }
            t.validate().unwrap();
        }
        assert!(
            t.arena_size() <= arena_high * 2,
            "arena grew {} → {} despite the free list",
            arena_high,
            t.arena_size()
        );
    }

    #[test]
    fn validate_catches_a_stale_parent_mbr() {
        let mut t = RTree::bulk_load(grid_points(12));
        t.validate().unwrap();
        // Corrupt one inner entry's rectangle.
        let root = t.root;
        if let Node::Inner { rects, .. } = &mut t.nodes[root] {
            rects[0] = rects[0].union(&pt(1e6, 1e6));
        }
        assert!(t.validate().is_err(), "inflated parent MBR must be flagged");
    }

    #[test]
    fn best_first_visits_fewer_nodes_than_full_scan() {
        let t = RTree::bulk_load(grid_points(32)); // 1024 points
        t.reset_accesses();
        let _ = t.knn(Point2::new(1.0, 1.0), 3);
        // A full scan would touch every node; best-first should touch a
        // small corner of the tree.
        let total_nodes = t.nodes.len() as u64;
        assert!(t.accesses() < total_nodes / 2, "{} vs {}", t.accesses(), total_nodes);
    }
}
