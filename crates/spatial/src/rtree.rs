//! An R-tree over 2-D rectangles.
//!
//! Supports Sort-Tile-Recursive (STR) bulk loading, Guttman quadratic-split
//! insertion, window (range) queries, and best-first incremental nearest
//! neighbour search (Hjaltason & Samet, TODS'99) — the "distance browsing"
//! strategy the paper cites for constraint-free k-NN processing.
//!
//! Every node visited by a query increments an internal access counter;
//! the storage layer maps node visits to disk-page accesses.

use crate::kernel::{min_dists_point, min_dists_point_sq, MAX_BATCH};
use sknn_geom::{Point2, Rect2};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Maximum entries per node.
pub const MAX_FANOUT: usize = 16;
/// Minimum entries per node after a split.
pub const MIN_FANOUT: usize = 6;

/// Nodes keep their entry rectangles and payloads in parallel arrays
/// (SoA): `rects[i]` bounds `items[i]` / `children[i]`. The contiguous
/// rectangle slice is what the batched mindist kernel consumes — one pass
/// of autovectorized lanes per node instead of a scalar call per entry.
#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { rects: Vec<Rect2>, items: Vec<T> },
    Inner { rects: Vec<Rect2>, children: Vec<usize> },
}

impl<T> Node<T> {
    fn leaf(entries: Vec<(Rect2, T)>) -> Self {
        let (rects, items) = entries.into_iter().unzip();
        Node::Leaf { rects, items }
    }

    fn inner(entries: Vec<(Rect2, usize)>) -> Self {
        let (rects, children) = entries.into_iter().unzip();
        Node::Inner { rects, children }
    }
}

/// An R-tree mapping rectangles to payloads.
///
/// The access counter is atomic so concurrent queries over a shared tree
/// (batch execution) stay `Sync`; counts from overlapping queries simply
/// sum.
#[derive(Debug)]
pub struct RTree<T> {
    nodes: Vec<Node<T>>,
    root: usize,
    len: usize,
    height: usize,
    accesses: AtomicU64,
}

impl<T: Clone> Clone for RTree<T> {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            root: self.root,
            len: self.len,
            height: self.height,
            accesses: AtomicU64::new(self.accesses.load(AtomicOrdering::Relaxed)),
        }
    }
}

impl<T: Clone> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> RTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::Leaf { rects: Vec::new(), items: Vec::new() }],
            root: 0,
            len: 0,
            height: 1,
            accesses: AtomicU64::new(0),
        }
    }

    /// STR bulk load: sort by x, tile into vertical slices, sort each slice
    /// by y, pack leaves, then repeat on parent level.
    pub fn bulk_load(mut items: Vec<(Rect2, T)>) -> Self {
        if items.is_empty() {
            return Self::new();
        }
        let len = items.len();
        let mut nodes: Vec<Node<T>> = Vec::new();

        // Pack the leaf level.
        let leaf_count = len.div_ceil(MAX_FANOUT);
        let slices = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slice = len.div_ceil(slices);
        items.sort_by(|a, b| cmp_f64(a.0.center().x, b.0.center().x));
        let mut level: Vec<(Rect2, usize)> = Vec::with_capacity(leaf_count);
        for slice in items.chunks_mut(per_slice.max(1)) {
            slice.sort_by(|a, b| cmp_f64(a.0.center().y, b.0.center().y));
            for group in slice.chunks(MAX_FANOUT) {
                let mbr = group.iter().fold(Rect2::EMPTY, |r, (g, _)| r.union(g));
                nodes.push(Node::leaf(group.to_vec()));
                level.push((mbr, nodes.len() - 1));
            }
        }
        let mut height = 1;

        // Pack upper levels the same way.
        while level.len() > 1 {
            let count = level.len().div_ceil(MAX_FANOUT);
            let slices = (count as f64).sqrt().ceil() as usize;
            let per_slice = level.len().div_ceil(slices);
            level.sort_by(|a, b| cmp_f64(a.0.center().x, b.0.center().x));
            let mut next: Vec<(Rect2, usize)> = Vec::with_capacity(count);
            let mut chunks: Vec<Vec<(Rect2, usize)>> = Vec::new();
            for slice in level.chunks(per_slice.max(1)) {
                let mut slice = slice.to_vec();
                slice.sort_by(|a, b| cmp_f64(a.0.center().y, b.0.center().y));
                for group in slice.chunks(MAX_FANOUT) {
                    chunks.push(group.to_vec());
                }
            }
            for group in chunks {
                let mbr = group.iter().fold(Rect2::EMPTY, |r, (g, _)| r.union(g));
                nodes.push(Node::inner(group));
                next.push((mbr, nodes.len() - 1));
            }
            level = next;
            height += 1;
        }
        let root = level[0].1;
        Self { nodes, root, len, height, accesses: AtomicU64::new(0) }
    }

    /// Number of contained items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether it holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Extent along y.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cumulative node accesses made by queries so far.
    pub fn accesses(&self) -> u64 {
        self.accesses.load(AtomicOrdering::Relaxed)
    }

    /// Reset the node-access counter (typically per query).
    pub fn reset_accesses(&self) {
        self.accesses.store(0, AtomicOrdering::Relaxed);
    }

    fn touch(&self) {
        self.accesses.fetch_add(1, AtomicOrdering::Relaxed);
    }

    // ----- insertion ------------------------------------------------------

    /// Insert one item (Guttman: least-enlargement descent, quadratic split).
    pub fn insert(&mut self, rect: Rect2, item: T) {
        let split = self.insert_at(self.root, rect, item);
        if let Some((left_mbr, right_mbr, right_id)) = split {
            // Grow the tree: new root over old root and the split sibling.
            let old_root = self.root;
            self.nodes.push(Node::inner(vec![(left_mbr, old_root), (right_mbr, right_id)]));
            self.root = self.nodes.len() - 1;
            self.height += 1;
        }
        self.len += 1;
    }

    /// Recursive insert; returns Some((this_mbr, sibling_mbr, sibling_id))
    /// when `node` was split.
    fn insert_at(&mut self, node: usize, rect: Rect2, item: T) -> Option<(Rect2, Rect2, usize)> {
        match &self.nodes[node] {
            Node::Leaf { .. } => {
                if let Node::Leaf { rects, items } = &mut self.nodes[node] {
                    rects.push(rect);
                    items.push(item);
                    if rects.len() <= MAX_FANOUT {
                        return None;
                    }
                }
                Some(self.split_leaf(node))
            }
            Node::Inner { rects, .. } => {
                // Choose subtree with least enlargement (ties: smaller area).
                let mut best = 0usize;
                let mut best_enl = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, mbr) in rects.iter().enumerate() {
                    let enl = mbr.union(&rect).area() - mbr.area();
                    let area = mbr.area();
                    if enl < best_enl || (enl == best_enl && area < best_area) {
                        best = i;
                        best_enl = enl;
                        best_area = area;
                    }
                }
                let child = match &self.nodes[node] {
                    Node::Inner { children, .. } => children[best],
                    _ => unreachable!(),
                };
                let split = self.insert_at(child, rect, item);
                if let Node::Inner { rects, children } = &mut self.nodes[node] {
                    rects[best] = rects[best].union(&rect);
                    if let Some((l_mbr, r_mbr, r_id)) = split {
                        rects[best] = l_mbr;
                        children[best] = child;
                        rects.push(r_mbr);
                        children.push(r_id);
                        if rects.len() > MAX_FANOUT {
                            return Some(self.split_inner(node));
                        }
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, node: usize) -> (Rect2, Rect2, usize) {
        let entries = match std::mem::replace(
            &mut self.nodes[node],
            Node::Leaf { rects: vec![], items: vec![] },
        ) {
            Node::Leaf { rects, items } => rects.into_iter().zip(items).collect::<Vec<_>>(),
            _ => unreachable!(),
        };
        let (a, b) = quadratic_split(entries, |e| e.0);
        let a_mbr = mbr_of(&a, |e| e.0);
        let b_mbr = mbr_of(&b, |e| e.0);
        self.nodes[node] = Node::leaf(a);
        self.nodes.push(Node::leaf(b));
        (a_mbr, b_mbr, self.nodes.len() - 1)
    }

    fn split_inner(&mut self, node: usize) -> (Rect2, Rect2, usize) {
        let entries = match std::mem::replace(
            &mut self.nodes[node],
            Node::Inner { rects: vec![], children: vec![] },
        ) {
            Node::Inner { rects, children } => rects.into_iter().zip(children).collect::<Vec<_>>(),
            _ => unreachable!(),
        };
        let (a, b) = quadratic_split(entries, |e| e.0);
        let a_mbr = mbr_of(&a, |e| e.0);
        let b_mbr = mbr_of(&b, |e| e.0);
        self.nodes[node] = Node::inner(a);
        self.nodes.push(Node::inner(b));
        (a_mbr, b_mbr, self.nodes.len() - 1)
    }

    // ----- queries --------------------------------------------------------

    /// All items whose rectangle intersects `window`.
    pub fn range(&self, window: &Rect2) -> Vec<(Rect2, T)> {
        let mut out = Vec::new();
        self.range_rec(self.root, window, &mut out);
        out
    }

    fn range_rec(&self, node: usize, window: &Rect2, out: &mut Vec<(Rect2, T)>) {
        self.touch();
        match &self.nodes[node] {
            Node::Leaf { rects, items } => {
                for (r, item) in rects.iter().zip(items) {
                    if r.intersects(window) {
                        out.push((*r, item.clone()));
                    }
                }
            }
            Node::Inner { rects, children } => {
                for (r, child) in rects.iter().zip(children) {
                    if r.intersects(window) {
                        self.range_rec(*child, window, out);
                    }
                }
            }
        }
    }

    /// All items whose rectangle lies within distance `radius` of `center`.
    /// This is MR3's step-3 range query (circle, not window).
    pub fn within_distance(&self, center: Point2, radius: f64) -> Vec<(Rect2, T)> {
        let window = Rect2::new(
            Point2::new(center.x - radius, center.y - radius),
            Point2::new(center.x + radius, center.y + radius),
        );
        let mut out = Vec::new();
        self.within_rec(self.root, &window, center, radius, &mut out);
        out
    }

    fn within_rec(
        &self,
        node: usize,
        window: &Rect2,
        center: Point2,
        radius: f64,
        out: &mut Vec<(Rect2, T)>,
    ) {
        self.touch();
        // One batched-kernel pass per node: all entry distances in
        // autovectorized lanes, then a branchy-but-cheap filter. The
        // squared variant spares the sqrt lane — `d² <= radius²` is the
        // same predicate (both sides non-negative).
        let mut d2 = [0.0f64; MAX_BATCH];
        let r2 = radius * radius;
        match &self.nodes[node] {
            Node::Leaf { rects, items } => {
                let n = min_dists_point_sq(center, rects, &mut d2);
                for i in 0..n {
                    if d2[i] <= r2 {
                        out.push((rects[i], items[i].clone()));
                    }
                }
            }
            Node::Inner { rects, children } => {
                let n = min_dists_point_sq(center, rects, &mut d2);
                for i in 0..n {
                    if rects[i].intersects(window) && d2[i] <= r2 {
                        self.within_rec(children[i], window, center, radius, out);
                    }
                }
            }
        }
    }

    /// The `k` items nearest to `p` by rectangle min-distance, ascending.
    /// Best-first (priority-queue) traversal.
    pub fn knn(&self, p: Point2, k: usize) -> Vec<(f64, Rect2, T)> {
        let mut out = Vec::with_capacity(k);
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        heap.push(HeapItem { dist: 0.0, kind: ItemKind::Node(self.root) });
        while let Some(HeapItem { dist, kind }) = heap.pop() {
            match kind {
                ItemKind::Node(n) => {
                    self.touch();
                    // Batched kernel: every entry's mindist in one pass,
                    // then the heap pushes read off the lane buffer.
                    let mut d = [0.0f64; MAX_BATCH];
                    match &self.nodes[n] {
                        Node::Leaf { rects, .. } => {
                            let cnt = min_dists_point(p, rects, &mut d);
                            for (i, &dist) in d[..cnt].iter().enumerate() {
                                heap.push(HeapItem { dist, kind: ItemKind::Entry(n, i) });
                            }
                        }
                        Node::Inner { rects, children } => {
                            let cnt = min_dists_point(p, rects, &mut d);
                            for (i, &dist) in d[..cnt].iter().enumerate() {
                                heap.push(HeapItem { dist, kind: ItemKind::Node(children[i]) });
                            }
                        }
                    }
                }
                ItemKind::Entry(n, i) => {
                    if let Node::Leaf { rects, items } = &self.nodes[n] {
                        out.push((dist, rects[i], items[i].clone()));
                        if out.len() == k {
                            break;
                        }
                    }
                }
            }
        }
        out
    }

    /// Exhaustive iteration (for verification in tests).
    pub fn iter_all(&self) -> Vec<(Rect2, T)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            match &self.nodes[n] {
                Node::Leaf { rects, items } => {
                    out.extend(rects.iter().copied().zip(items.iter().cloned()))
                }
                Node::Inner { children, .. } => stack.extend(children.iter().copied()),
            }
        }
        out
    }
}

fn mbr_of<E>(entries: &[E], rect: impl Fn(&E) -> Rect2) -> Rect2 {
    entries.iter().fold(Rect2::EMPTY, |r, e| r.union(&rect(e)))
}

/// Guttman quadratic split: pick the pair wasting the most area as seeds,
/// then assign each remaining entry to the group needing least enlargement,
/// respecting the minimum fill.
fn quadratic_split<E: Clone>(entries: Vec<E>, rect: impl Fn(&E) -> Rect2) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() > MAX_FANOUT);
    // Seed selection.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let ri = rect(&entries[i]);
            let rj = rect(&entries[j]);
            let waste = ri.union(&rj).area() - ri.area() - rj.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut a = vec![entries[s1].clone()];
    let mut b = vec![entries[s2].clone()];
    let mut a_mbr = rect(&entries[s1]);
    let mut b_mbr = rect(&entries[s2]);
    let mut rest: Vec<E> = entries
        .into_iter()
        .enumerate()
        .filter_map(|(i, e)| (i != s1 && i != s2).then_some(e))
        .collect();

    while let Some(e) = rest.pop() {
        let remaining = rest.len();
        // Force assignment when a group must take everything left to reach
        // the minimum fill.
        if a.len() + remaining < MIN_FANOUT {
            a_mbr = a_mbr.union(&rect(&e));
            a.push(e);
            continue;
        }
        if b.len() + remaining < MIN_FANOUT {
            b_mbr = b_mbr.union(&rect(&e));
            b.push(e);
            continue;
        }
        let r = rect(&e);
        let enl_a = a_mbr.union(&r).area() - a_mbr.area();
        let enl_b = b_mbr.union(&r).area() - b_mbr.area();
        if enl_a < enl_b || (enl_a == enl_b && a.len() <= b.len()) {
            a_mbr = a_mbr.union(&r);
            a.push(e);
        } else {
            b_mbr = b_mbr.union(&r);
            b.push(e);
        }
    }
    (a, b)
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    kind: ItemKind,
}

#[derive(PartialEq, Eq)]
enum ItemKind {
    Node(usize),
    Entry(usize, usize),
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; entries before nodes at equal distance so
        // results pop as early as possible.
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal).then_with(|| {
            match (&self.kind, &other.kind) {
                (ItemKind::Entry(..), ItemKind::Node(_)) => Ordering::Greater,
                (ItemKind::Node(_), ItemKind::Entry(..)) => Ordering::Less,
                _ => Ordering::Equal,
            }
        })
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Rect2 {
        Rect2::from_point(Point2::new(x, y))
    }

    fn grid_points(n: usize) -> Vec<(Rect2, usize)> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                v.push((pt(i as f64, j as f64), i * n + j));
            }
        }
        v
    }

    #[test]
    fn bulk_load_roundtrip() {
        let items = grid_points(10);
        let t = RTree::bulk_load(items.clone());
        assert_eq!(t.len(), 100);
        let mut all: Vec<usize> = t.iter_all().into_iter().map(|(_, v)| v).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn insert_roundtrip_and_growth() {
        let mut t = RTree::new();
        for (r, v) in grid_points(12) {
            t.insert(r, v);
        }
        assert_eq!(t.len(), 144);
        assert!(t.height() >= 2);
        let mut all: Vec<usize> = t.iter_all().into_iter().map(|(_, v)| v).collect();
        all.sort_unstable();
        assert_eq!(all, (0..144).collect::<Vec<_>>());
    }

    #[test]
    fn range_query_matches_scan() {
        let items = grid_points(15);
        let t = RTree::bulk_load(items.clone());
        let w = Rect2::new(Point2::new(2.5, 3.5), Point2::new(7.5, 9.0));
        let mut got: Vec<usize> = t.range(&w).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let mut want: Vec<usize> =
            items.iter().filter(|(r, _)| w.intersects(r)).map(|&(_, v)| v).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn within_distance_matches_scan() {
        let items = grid_points(15);
        let t = RTree::bulk_load(items.clone());
        let c = Point2::new(7.2, 7.9);
        let r = 3.3;
        let mut got: Vec<usize> = t.within_distance(c, r).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let mut want: Vec<usize> =
            items.iter().filter(|(rect, _)| rect.min_dist_point(c) <= r).map(|&(_, v)| v).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn knn_matches_scan_and_is_sorted() {
        let items = grid_points(15);
        let t = RTree::bulk_load(items.clone());
        let p = Point2::new(6.4, 2.1);
        let got = t.knn(p, 10);
        assert_eq!(got.len(), 10);
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Compare the k-th distance against a scan.
        let mut dists: Vec<f64> = items.iter().map(|(r, _)| r.min_dist_point(p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((got.last().unwrap().0 - dists[9]).abs() < 1e-12);
    }

    #[test]
    fn knn_more_than_len_returns_all() {
        let t = RTree::bulk_load(grid_points(3));
        let got = t.knn(Point2::new(0.0, 0.0), 100);
        assert_eq!(got.len(), 9);
    }

    #[test]
    fn empty_tree_queries() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert!(t.knn(Point2::new(0.0, 0.0), 5).is_empty());
        assert!(t.range(&Rect2::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0))).is_empty());
    }

    #[test]
    fn access_counter_moves_and_resets() {
        let t = RTree::bulk_load(grid_points(20));
        t.reset_accesses();
        assert_eq!(t.accesses(), 0);
        let _ = t.knn(Point2::new(3.0, 3.0), 5);
        let a = t.accesses();
        assert!(a > 0);
        let _ = t.range(&Rect2::new(Point2::new(0.0, 0.0), Point2::new(5.0, 5.0)));
        assert!(t.accesses() > a);
        t.reset_accesses();
        assert_eq!(t.accesses(), 0);
    }

    #[test]
    fn best_first_visits_fewer_nodes_than_full_scan() {
        let t = RTree::bulk_load(grid_points(32)); // 1024 points
        t.reset_accesses();
        let _ = t.knn(Point2::new(1.0, 1.0), 3);
        // A full scan would touch every node; best-first should touch a
        // small corner of the tree.
        let total_nodes = t.nodes.len() as u64;
        assert!(t.accesses() < total_nodes / 2, "{} vs {}", t.accesses(), total_nodes);
    }
}
