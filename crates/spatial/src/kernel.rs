//! Batched point–MBR distance kernels.
//!
//! The R-tree hot paths (best-first k-NN descent, the radius stage of
//! MR3's step 3) evaluate one query point against *every* entry of a
//! node before deciding where to descend. Doing that one scalar call at
//! a time hides the data parallelism from the compiler; these kernels
//! take the node's full rectangle slice — contiguous, thanks to the SoA
//! node layout — and compute all distances in one pass of branch-free
//! `max` lanes, which LLVM autovectorizes.
//!
//! Bit-identity: the per-lane arithmetic is exactly
//! [`Rect2::min_dist_point`] (`max(lo-p, 0, p-hi)` per axis, then
//! `hypot`-free `sqrt(dx²+dy²)`), in slice order, so callers switching
//! from per-entry scalar calls to the batch see identical `f64` results.

use sknn_geom::{Point2, Rect2};

/// Maximum batch width the fixed-size output buffers must cover: an
/// R-tree node's entry slice (one above [`crate::rtree::MAX_FANOUT`],
/// the transient overflow length during an insert split).
pub const MAX_BATCH: usize = 24;

/// Minimum distances from `p` to each rectangle of `rects`, written to
/// `out[..rects.len()]` (zero for containing rectangles). Returns the
/// lane count.
///
/// # Panics
/// Panics when `out` is shorter than `rects`.
#[inline]
pub fn min_dists_point(p: Point2, rects: &[Rect2], out: &mut [f64]) -> usize {
    let n = rects.len();
    let (rects, out) = (&rects[..n], &mut out[..n]);
    for i in 0..n {
        let r = &rects[i];
        let dx = (r.lo.x - p.x).max(0.0).max(p.x - r.hi.x);
        let dy = (r.lo.y - p.y).max(0.0).max(p.y - r.hi.y);
        out[i] = (dx * dx + dy * dy).sqrt();
    }
    n
}

/// Squared minimum distances — the comparison-only variant (radius
/// filtering) that skips the `sqrt` lane entirely.
#[inline]
pub fn min_dists_point_sq(p: Point2, rects: &[Rect2], out: &mut [f64]) -> usize {
    let n = rects.len();
    let (rects, out) = (&rects[..n], &mut out[..n]);
    for i in 0..n {
        let r = &rects[i];
        let dx = (r.lo.x - p.x).max(0.0).max(p.x - r.hi.x);
        let dy = (r.lo.y - p.y).max(0.0).max(p.y - r.hi.y);
        out[i] = dx * dx + dy * dy;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rects() -> Vec<Rect2> {
        let mut v = Vec::new();
        for i in 0..20 {
            let x = (i as f64) * 1.7 - 10.0;
            let y = (i as f64) * -0.9 + 4.0;
            v.push(Rect2::new(Point2::new(x, y), Point2::new(x + 2.0, y + 1.5)));
        }
        v
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        let rs = rects();
        let p = Point2::new(0.3, -1.8);
        let mut out = [0.0f64; MAX_BATCH];
        let n = min_dists_point(p, &rs, &mut out);
        assert_eq!(n, rs.len());
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(out[i].to_bits(), r.min_dist_point(p).to_bits(), "lane {i}");
        }
    }

    #[test]
    fn squared_variant_orders_identically() {
        let rs = rects();
        let p = Point2::new(-3.0, 2.0);
        let mut d = [0.0f64; MAX_BATCH];
        let mut d2 = [0.0f64; MAX_BATCH];
        min_dists_point(p, &rs, &mut d);
        min_dists_point_sq(p, &rs, &mut d2);
        for i in 0..rs.len() {
            assert_eq!(d2[i].sqrt().to_bits(), d[i].to_bits());
        }
    }

    #[test]
    fn containment_is_zero() {
        let r = Rect2::new(Point2::new(-1.0, -1.0), Point2::new(1.0, 1.0));
        let mut out = [f64::NAN; 1];
        min_dists_point(Point2::new(0.25, -0.5), &[r], &mut out);
        assert_eq!(out[0], 0.0);
    }
}
