//! Storage layout of the DMTM over the simulated disk.
//!
//! The paper stores DMTM nodes in the database under a clustering B+-tree
//! (§5.1) and measures query cost in *disk pages accessed*. We reproduce
//! that: each node's **payload** — its adjacency entries with distances,
//! the bulk of the structure — is serialised into a [`BPlusTree`] record,
//! clustered by the Morton (Z-order) code of the node's representative so
//! that spatially coherent retrieval (an ROI at some LOD) touches few
//! pages and overlapping candidate regions share pages (the basis of the
//! integrated-I/O-region optimisation). The light per-node **metadata**
//! (birth/death steps, MBR, parent links, offsets) stays in memory and
//! plays the role of DM's resident directory: deciding *which* records to
//! fetch is free, fetching them is charged.

use crate::front::FrontGraph;
use crate::tree::DmtmTree;
use sknn_geom::{Point3, Rect2};
use sknn_store::{BPlusTree, Pager, StoreResult};
use sknn_terrain::mesh::{TerrainMesh, TriId};
use std::collections::HashMap;

/// Reusable buffers for [`PagedDmtm::fetch_ids_with`] /
/// [`PagedDmtm::fetch_front_with`], mirroring the `RankScratch` pattern:
/// a caller that fetches fronts in a loop keeps one of these around and
/// the per-fetch allocations (key ordering, the id→local index, edge and
/// position buffers) disappear after warm-up. [`FetchScratch::recycle`]
/// harvests the buffers of a [`FrontGraph`] that is being replaced.
#[derive(Debug, Default)]
pub struct FetchScratch {
    /// (storage key, node id), sorted by key for the batched lookup.
    order: Vec<(u64, u32)>,
    /// The sorted keys handed to `BPlusTree::get_many`.
    sorted_keys: Vec<u64>,
    /// Recycled `FrontGraph` buffers.
    index: HashMap<u32, u32>,
    edges: Vec<(u32, u32, f64)>,
    rep_pos: Vec<Point3>,
    /// Spare id buffer for `fetch_front_with`.
    ids: Vec<u32>,
}

impl FetchScratch {
    /// Take back the buffers of a front that is no longer needed so the
    /// next fetch reuses them instead of allocating.
    pub fn recycle(&mut self, fg: FrontGraph) {
        let FrontGraph { ids, index, edges, rep_pos, .. } = fg;
        if ids.capacity() > self.ids.capacity() {
            self.ids = ids;
            self.ids.clear();
        }
        self.index = index;
        self.index.clear();
        self.edges = edges;
        self.edges.clear();
        self.rep_pos = rep_pos;
        self.rep_pos.clear();
    }
}

/// DMTM with payloads resident on the simulated disk.
pub struct PagedDmtm {
    tree: DmtmTree,
    btree: BPlusTree,
    /// Node id -> storage key.
    keys: Vec<u64>,
}

impl PagedDmtm {
    /// Serialise a tree's node payloads into `pager` pages.
    pub fn build(pager: &Pager, tree: DmtmTree) -> Self {
        let extent = tree
            .nodes()
            .iter()
            .fold(Rect2::EMPTY, |r, n| r.union(&Rect2::from_point(n.rep_pos.xy())));
        let mut keyed: Vec<(u64, u32)> = tree
            .nodes()
            .iter()
            .enumerate()
            .map(|(id, n)| {
                let code = morton(&extent, n.rep_pos);
                ((code << 24) | id as u64, id as u32)
            })
            .collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);
        let mut keys = vec![0u64; tree.nodes().len()];
        let mut records = Vec::with_capacity(keyed.len());
        for (k, id) in keyed {
            keys[id as usize] = k;
            records.push((k, serialize_payload(&tree, id)));
        }
        let btree = BPlusTree::bulk_build(pager, &records);
        Self { tree, btree, keys }
    }

    /// The resident metadata (no payload access is charged through this).
    pub fn tree(&self) -> &DmtmTree {
        &self.tree
    }

    /// Fetch the front after `m` collapses within `roi`, charging one page
    /// read per B+-tree page touched. Fetches happen in storage-key order
    /// to exploit the Morton clustering. Read failures surface as
    /// [`StoreError`](sknn_store::StoreError) so the engine can degrade
    /// to a coarser, already-materialized resolution.
    pub fn fetch_front(
        &self,
        pager: &Pager,
        m: u32,
        roi: Option<&Rect2>,
    ) -> StoreResult<FrontGraph> {
        self.fetch_front_with(pager, m, roi, &mut FetchScratch::default())
    }

    /// [`PagedDmtm::fetch_front`] with caller-provided scratch buffers.
    pub fn fetch_front_with(
        &self,
        pager: &Pager,
        m: u32,
        roi: Option<&Rect2>,
        scratch: &mut FetchScratch,
    ) -> StoreResult<FrontGraph> {
        let mut ids = std::mem::take(&mut scratch.ids);
        ids.clear();
        self.live_ids_into(m, roi, &mut ids);
        self.fetch_ids_with(pager, m, ids, scratch)
    }

    /// Live node ids at step `m` intersecting `roi` (metadata only).
    pub fn live_ids(&self, m: u32, roi: Option<&Rect2>) -> Vec<u32> {
        let mut ids = Vec::new();
        self.live_ids_into(m, roi, &mut ids);
        ids
    }

    /// [`PagedDmtm::live_ids`] into a reused buffer.
    pub fn live_ids_into(&self, m: u32, roi: Option<&Rect2>, out: &mut Vec<u32>) {
        out.extend((0..self.tree.nodes().len() as u32).filter(|&id| {
            self.tree.live_at(id, m) && roi.is_none_or(|r| r.intersects(&self.tree.node(id).mbr))
        }));
    }

    /// Fetch an explicit id set (the integrated-I/O path: ids from several
    /// merged candidate regions, deduplicated, fetched once).
    pub fn fetch_ids(&self, pager: &Pager, m: u32, ids: Vec<u32>) -> StoreResult<FrontGraph> {
        self.fetch_ids_with(pager, m, ids, &mut FetchScratch::default())
    }

    /// [`PagedDmtm::fetch_ids`] with caller-provided scratch buffers: the
    /// id set is taken by value (no defensive clone), the id→local index
    /// and edge/position buffers are recycled from previous fronts, and
    /// the payload lookups go through [`BPlusTree::get_many`] — one
    /// descent per leaf run of Morton-adjacent keys instead of one per
    /// node, which can only lower the page-access count.
    pub fn fetch_ids_with(
        &self,
        pager: &Pager,
        m: u32,
        ids: Vec<u32>,
        scratch: &mut FetchScratch,
    ) -> StoreResult<FrontGraph> {
        scratch.order.clear();
        scratch.order.extend(ids.iter().map(|&id| (self.keys[id as usize], id)));
        scratch.order.sort_unstable_by_key(|&(k, _)| k);
        scratch.sorted_keys.clear();
        scratch.sorted_keys.extend(scratch.order.iter().map(|&(k, _)| k));
        let mut index = std::mem::take(&mut scratch.index);
        index.clear();
        index.extend(ids.iter().enumerate().map(|(i, &id)| (id, i as u32)));
        let mut edges = std::mem::take(&mut scratch.edges);
        edges.clear();
        let order = &scratch.order;
        let mut cursor = 0usize;
        let fetched = self.btree.get_many(pager, &scratch.sorted_keys, |_, payload| {
            let id = order[cursor].1;
            cursor += 1;
            let local = index[&id];
            for (w, d) in payload_neighbors(&payload) {
                if let Some(&wl) = index.get(&w) {
                    if self.tree.live_at(w, m) && local < wl {
                        edges.push((local, wl, d));
                    }
                }
            }
        });
        match fetched {
            // Every known id has a payload record: a clean lookup that
            // finds fewer is a build-time programmer error, not an I/O
            // fault.
            Ok(found) => assert_eq!(found, order.len(), "node payload missing"),
            Err(e) => {
                // Return the partially-filled buffers to the scratch so a
                // degraded caller's next fetch still reuses them.
                index.clear();
                edges.clear();
                scratch.index = index;
                scratch.edges = edges;
                scratch.ids = ids;
                scratch.ids.clear();
                return Err(e);
            }
        }
        edges.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.partial_cmp(&b.2).unwrap()));
        edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        let mut rep_pos = std::mem::take(&mut scratch.rep_pos);
        rep_pos.clear();
        rep_pos.extend(ids.iter().map(|&id| self.tree.node(id).rep_pos));
        Ok(FrontGraph { ids, index, edges, rep_pos, step: m })
    }

    /// Embed a surface point into a fetched front (metadata only; the
    /// entry costs come from facet geometry and resident offsets).
    pub fn embed(
        &self,
        fg: &FrontGraph,
        mesh: &TerrainMesh,
        tri: TriId,
        pos: Point3,
    ) -> Vec<(u32, f64)> {
        fg.embed(&self.tree, mesh, tri, pos)
    }
}

fn serialize_payload(tree: &DmtmTree, id: u32) -> Vec<u8> {
    let node = tree.node(id);
    let mut out = Vec::with_capacity(4 + node.neighbors.len() * 12);
    out.extend_from_slice(&(node.neighbors.len() as u32).to_le_bytes());
    for &(w, d) in &node.neighbors {
        out.extend_from_slice(&w.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
    }
    out
}

/// Iterate a payload's `(neighbor, distance)` entries without allocating.
fn payload_neighbors(bytes: &[u8]) -> impl Iterator<Item = (u32, f64)> + '_ {
    let deg = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    (0..deg).map(move |i| {
        let off = 4 + i * 12;
        let w = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let d = f64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap());
        (w, d)
    })
}

/// 2-D Morton code over the extent, 16 bits per axis.
fn morton(extent: &Rect2, p: Point3) -> u64 {
    let nx = ((p.x - extent.lo.x) / extent.width().max(1e-12)).clamp(0.0, 1.0);
    let ny = ((p.y - extent.lo.y) / extent.height().max(1e-12)).clamp(0.0, 1.0);
    let xi = (nx * 65535.0) as u64;
    let yi = (ny * 65535.0) as u64;
    interleave(xi) | (interleave(yi) << 1)
}

fn interleave(mut v: u64) -> u64 {
    v &= 0xFFFF;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::build_dmtm;
    use sknn_geom::Point2;
    use sknn_terrain::dem::TerrainConfig;

    fn setup() -> (Pager, PagedDmtm) {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(4);
        let tree = build_dmtm(&mesh);
        let pager = Pager::new(256);
        let paged = PagedDmtm::build(&pager, tree);
        (pager, paged)
    }

    #[test]
    fn fetched_front_matches_in_memory_extraction() {
        let (pager, paged) = setup();
        let m = paged.tree().step_for_fraction(0.3);
        let mem = FrontGraph::extract(paged.tree(), m, None);
        let disk = paged.fetch_front(&pager, m, None).unwrap();
        assert_eq!(mem.ids, disk.ids);
        let norm = |mut e: Vec<(u32, u32, f64)>| {
            e.sort_by_key(|&(a, b, _)| (a, b));
            e
        };
        assert_eq!(norm(mem.edges), norm(disk.edges));
    }

    #[test]
    fn roi_fetch_reads_fewer_pages() {
        let (pager, paged) = setup();
        let m = paged.tree().step_for_fraction(1.0);
        pager.clear_pool();
        pager.reset_stats();
        let _ = paged.fetch_front(&pager, m, None).unwrap();
        let full_pages = pager.stats().physical_reads;
        let roi = Rect2::new(Point2::new(0.0, 0.0), Point2::new(40.0, 40.0));
        pager.clear_pool();
        pager.reset_stats();
        let _ = paged.fetch_front(&pager, m, Some(&roi)).unwrap();
        let roi_pages = pager.stats().physical_reads;
        assert!(roi_pages * 2 < full_pages, "roi {roi_pages} vs full {full_pages}");
        assert!(roi_pages > 0);
    }

    #[test]
    fn warm_pool_fetches_are_cheaper() {
        let (pager, paged) = setup();
        let m = paged.tree().step_for_fraction(0.2);
        pager.clear_pool();
        pager.reset_stats();
        let _ = paged.fetch_front(&pager, m, None).unwrap();
        let cold = pager.stats().physical_reads;
        pager.reset_stats();
        let _ = paged.fetch_front(&pager, m, None).unwrap();
        let warm = pager.stats().physical_reads;
        assert!(warm < cold / 2, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn coarser_levels_read_fewer_pages() {
        let (pager, paged) = setup();
        let fine = paged.tree().step_for_fraction(1.0);
        let coarse = paged.tree().step_for_fraction(0.05);
        pager.clear_pool();
        pager.reset_stats();
        let _ = paged.fetch_front(&pager, fine, None).unwrap();
        let fine_pages = pager.stats().physical_reads;
        pager.clear_pool();
        pager.reset_stats();
        let _ = paged.fetch_front(&pager, coarse, None).unwrap();
        let coarse_pages = pager.stats().physical_reads;
        assert!(coarse_pages < fine_pages, "coarse {coarse_pages} vs fine {fine_pages}");
    }

    #[test]
    fn scratch_fetches_match_fresh_fetches() {
        let (pager, paged) = setup();
        let mut scratch = FetchScratch::default();
        let mut prev: Option<FrontGraph> = None;
        for frac in [0.1, 0.3, 0.3, 0.6] {
            let m = paged.tree().step_for_fraction(frac);
            let fresh = paged.fetch_front(&pager, m, None).unwrap();
            if let Some(old) = prev.take() {
                scratch.recycle(old);
            }
            let reused = paged.fetch_front_with(&pager, m, None, &mut scratch).unwrap();
            assert_eq!(fresh.ids, reused.ids);
            assert_eq!(fresh.edges, reused.edges);
            assert_eq!(fresh.step, reused.step);
            prev = Some(reused);
        }
    }

    #[test]
    fn morton_interleave_is_monotone_in_locality() {
        // Nearby points share high-order bits more often than far points;
        // spot-check the codec itself.
        assert_eq!(interleave(0), 0);
        assert_eq!(interleave(1), 1);
        assert_eq!(interleave(0b11), 0b101);
        assert_eq!(interleave(0xFFFF), 0x5555_5555);
    }
}
