//! QEM edge-collapse construction of the DMTM tree.
//!
//! "A pair of connected nodes are selected to collapse to form their parent
//! node if the resultant terrain after the merger causes minimum
//! approximation error according to some error measure (e.g. the quadric
//! error matrices)" (paper §3.2). The driver maintains the live front's
//! adjacency, a priority queue of candidate collapses (lazily invalidated
//! by per-node version stamps), and decorates every collapse with the DDM
//! distance information (representatives, neighbour distances, offsets).

use crate::quadric::Quadric;
use crate::tree::{DmtmNode, DmtmTree};
use sknn_geom::{Point3, Rect2};
use sknn_terrain::mesh::{TerrainMesh, TriId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Penalty weight for boundary-edge constraint planes, relative to the
/// squared edge length. Keeps the simplified terrain from eroding inward.
const BOUNDARY_WEIGHT: f64 = 100.0;

struct Candidate {
    err: f64,
    u: u32,
    v: u32,
    ver_u: u32,
    ver_v: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.err == other.err
    }
}
impl Eq for Candidate {}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        other.err.partial_cmp(&self.err).unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Build the DMTM collapse tree of a terrain mesh.
pub fn build_dmtm(mesh: &TerrainMesh) -> DmtmTree {
    let n = mesh.num_vertices();
    let mut nodes: Vec<DmtmNode> = Vec::with_capacity(2 * n);
    let mut quadrics: Vec<Quadric> = Vec::with_capacity(2 * n);
    let mut adj: Vec<HashMap<u32, f64>> = Vec::with_capacity(2 * n);
    let mut version: Vec<u32> = Vec::with_capacity(2 * n);

    // Leaves.
    for v in 0..n as u32 {
        let pos = mesh.vertex(v);
        nodes.push(DmtmNode {
            pos,
            rep: v,
            rep_pos: pos,
            error: 0.0,
            birth: 0,
            death: u32::MAX,
            parent: None,
            children: None,
            rep_offset: 0.0,
            neighbors: Vec::new(),
            mbr: Rect2::from_point(pos.xy()),
        });
        quadrics.push(Quadric::default());
        adj.push(HashMap::new());
        version.push(0);
    }
    // Facet quadrics.
    for t in 0..mesh.num_triangles() as TriId {
        let tri = mesh.triangle(t);
        let q = Quadric::from_triangle(tri.a, tri.b, tri.c);
        for v in mesh.triangle_ids(t) {
            quadrics[v as usize] = quadrics[v as usize].add(&q);
        }
        // Boundary constraint planes.
        let ids = mesh.triangle_ids(t);
        for i in 0..3 {
            if mesh.tri_neighbor(t, i).is_none() {
                let a = mesh.vertex(ids[i]);
                let b = mesh.vertex(ids[(i + 1) % 3]);
                let edge = b - a;
                let nf = tri.normal().normalized();
                let pn = edge.cross(nf).normalized();
                if pn.norm() > 0.0 {
                    let w = -pn.dot(a);
                    let bq = Quadric::from_plane(pn, w, BOUNDARY_WEIGHT * edge.dot(edge));
                    quadrics[ids[i] as usize] = quadrics[ids[i] as usize].add(&bq);
                    quadrics[ids[(i + 1) % 3] as usize] =
                        quadrics[ids[(i + 1) % 3] as usize].add(&bq);
                }
            }
        }
    }
    // Original edges with 3-D lengths: both the front adjacency and the
    // leaves' recorded neighbour entries.
    for (a, b) in mesh.edges() {
        let d = mesh.edge_length(a, b);
        adj[a as usize].insert(b, d);
        adj[b as usize].insert(a, d);
        nodes[a as usize].neighbors.push((b, d));
        nodes[b as usize].neighbors.push((a, d));
    }

    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    let push_candidate = |heap: &mut BinaryHeap<Candidate>,
                          nodes: &[DmtmNode],
                          quadrics: &[Quadric],
                          version: &[u32],
                          u: u32,
                          v: u32| {
        let (err, _) = best_position(&nodes[u as usize], &nodes[v as usize], quadrics, u, v);
        heap.push(Candidate { err, u, v, ver_u: version[u as usize], ver_v: version[v as usize] });
    };
    for (a, b) in mesh.edges() {
        push_candidate(&mut heap, &nodes, &quadrics, &version, a, b);
    }

    let mut step: u32 = 0;
    let mut live = n;
    while live > 1 {
        let Some(cand) = heap.pop() else { break };
        let (u, v) = (cand.u, cand.v);
        if version[u as usize] != cand.ver_u || version[v as usize] != cand.ver_v {
            continue;
        }
        if !adj[u as usize].contains_key(&v) {
            continue;
        }
        step += 1;
        let c = nodes.len() as u32;
        let duv = adj[u as usize][&v];
        let (err, pos) = best_position(&nodes[u as usize], &nodes[v as usize], &quadrics, u, v);
        // Keep the representative of the child closer to the merged
        // position ("the representative node of c is set to be the
        // representative node of either a or b").
        let keep_u =
            nodes[u as usize].rep_pos.dist_sq(pos) <= nodes[v as usize].rep_pos.dist_sq(pos);
        let (keep, other) = if keep_u { (u, v) } else { (v, u) };
        let rep = nodes[keep as usize].rep;
        let rep_pos = nodes[keep as usize].rep_pos;

        // Merged adjacency with the DDM distance recurrence, generalised to
        // take the tighter of the two available paths when both children
        // know `w`: through the kept child directly, or through the other
        // child plus the recorded `d(u, v)`.
        let mut merged: HashMap<u32, f64> =
            HashMap::with_capacity(adj[u as usize].len() + adj[v as usize].len());
        for (&w, &d) in &adj[keep as usize] {
            if w != other {
                merged.insert(w, d);
            }
        }
        for (&w, &d) in &adj[other as usize] {
            if w == keep {
                continue;
            }
            let via_other = d + duv;
            merged.entry(w).and_modify(|cur| *cur = cur.min(via_other)).or_insert(via_other);
        }

        let mbr = nodes[u as usize].mbr.union(&nodes[v as usize].mbr);
        nodes[u as usize].death = step;
        nodes[v as usize].death = step;
        nodes[u as usize].parent = Some(c);
        nodes[v as usize].parent = Some(c);
        nodes[keep as usize].rep_offset = 0.0;
        nodes[other as usize].rep_offset = duv;

        let neighbor_list: Vec<(u32, f64)> = merged.iter().map(|(&w, &d)| (w, d)).collect();
        nodes.push(DmtmNode {
            pos,
            rep,
            rep_pos,
            error: err,
            birth: step,
            death: u32::MAX,
            parent: None,
            children: Some((u, v)),
            rep_offset: 0.0,
            neighbors: neighbor_list,
            mbr,
        });
        quadrics.push(quadrics[u as usize].add(&quadrics[v as usize]));
        adj.push(merged.clone());
        version.push(0);

        // Rewire the front: neighbours drop u/v, gain c, and record the new
        // entry in their stored lists.
        for (&w, &d) in &merged {
            let wa = &mut adj[w as usize];
            wa.remove(&u);
            wa.remove(&v);
            wa.insert(c, d);
            nodes[w as usize].neighbors.push((c, d));
            version[w as usize] += 1;
        }
        adj[u as usize].clear();
        adj[v as usize].clear();
        version[u as usize] += 1;
        version[v as usize] += 1;
        live -= 1;

        for &(w, _) in &nodes[c as usize].neighbors.clone() {
            push_candidate(&mut heap, &nodes, &quadrics, &version, c, w);
        }
    }

    DmtmTree { nodes, num_leaves: n, num_steps: step }
}

/// Candidate merge position (endpoints or midpoint, whichever minimises
/// the summed quadric) and its error.
fn best_position(
    nu: &DmtmNode,
    nv: &DmtmNode,
    quadrics: &[Quadric],
    u: u32,
    v: u32,
) -> (f64, Point3) {
    let q = quadrics[u as usize].add(&quadrics[v as usize]);
    let mid = (nu.pos + nv.pos) * 0.5;
    let mut best = (q.error(nu.pos), nu.pos);
    for p in [nv.pos, mid] {
        let e = q.error(p);
        if e < best.0 {
            best = (e, p);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sknn_terrain::dem::TerrainConfig;

    #[test]
    fn tree_invariants_hold() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(3);
        let tree = build_dmtm(&mesh);
        assert_eq!(tree.num_leaves(), mesh.num_vertices());
        // A connected mesh collapses to a single root.
        assert_eq!(tree.num_steps() as usize, mesh.num_vertices() - 1);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn leaf_front_is_original_mesh() {
        let mesh = TerrainConfig::ep().with_grid(9).build_mesh(1);
        let tree = build_dmtm(&mesh);
        let front = tree.front_at_step(0);
        assert_eq!(front.len(), mesh.num_vertices());
        // Leaf adjacency carries the original edge lengths.
        for (a, b) in mesh.edges() {
            let found = tree
                .node(a)
                .neighbors
                .iter()
                .any(|&(w, d)| w == b && (d - mesh.edge_length(a, b)).abs() < 1e-12);
            assert!(found, "edge ({a},{b}) not recorded on leaf");
        }
    }

    #[test]
    fn representative_is_descendant_leaf() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(7);
        let tree = build_dmtm(&mesh);
        for id in (0..tree.nodes().len() as u32).step_by(17) {
            let rep = tree.node(id).rep;
            let leaves = tree.descendant_leaves(id);
            assert!(leaves.contains(&rep), "node {id}: rep {rep} not a descendant");
        }
    }

    #[test]
    fn recorded_distances_are_valid_network_paths() {
        // Every recorded neighbour distance must be >= the straight-line
        // distance between the two representatives (it is a path length),
        // and finite.
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(2);
        let tree = build_dmtm(&mesh);
        for (id, node) in tree.nodes().iter().enumerate() {
            for &(w, d) in &node.neighbors {
                let wr = tree.node(w).rep_pos;
                let straight = node.rep_pos.dist(wr);
                assert!(
                    d >= straight - 1e-9,
                    "node {id} -> {w}: recorded {d} < straight {straight}"
                );
                assert!(d.is_finite());
            }
        }
    }

    #[test]
    fn errors_grow_roughly_with_coarseness() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(5);
        let tree = build_dmtm(&mesh);
        // Mean error of the last 10% of collapses should exceed that of the
        // first 10% (greedy PQ order is only approximately monotone).
        let n = tree.num_steps() as usize;
        let err_of = |step: u32| -> f64 {
            tree.nodes().iter().find(|nd| nd.birth == step).map(|nd| nd.error).unwrap_or(0.0)
        };
        let early: f64 = (1..=n / 10).map(|s| err_of(s as u32)).sum::<f64>() / (n / 10) as f64;
        let late: f64 =
            (n - n / 10 + 1..=n).map(|s| err_of(s as u32)).sum::<f64>() / (n / 10) as f64;
        assert!(late > early, "late {late} <= early {early}");
    }

    #[test]
    fn lift_to_front_reaches_live_ancestor() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(4);
        let tree = build_dmtm(&mesh);
        let m = tree.step_for_fraction(0.25);
        for leaf in (0..tree.num_leaves() as u32).step_by(11) {
            let (anc, off) = tree.lift_to_front(leaf, m);
            assert!(tree.live_at(anc, m));
            assert!(off >= 0.0 && off.is_finite());
            // The ancestor's subtree contains the leaf.
            assert!(tree.descendant_leaves(anc).contains(&leaf));
        }
    }

    #[test]
    fn step_for_fraction_endpoints() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(0);
        let tree = build_dmtm(&mesh);
        assert_eq!(tree.step_for_fraction(1.0), 0);
        let m_min = tree.step_for_fraction(0.0);
        assert_eq!(tree.front_size(m_min), 1);
        let m_half = tree.step_for_fraction(0.5);
        let half = tree.front_size(m_half);
        assert!((half as f64 - tree.num_leaves() as f64 * 0.5).abs() <= 1.0);
    }
}
