//! Process-wide cache of materialized DMTM cuts.
//!
//! Extracting a front — scanning live ids, walking the clustering B+-tree,
//! decoding payloads, sorting edges — dominates MR3's CPU-bound cost, and
//! concurrent queries over hot terrain redo the exact same extractions.
//! [`CutCache`] memoizes extracted [`FrontGraph`]s keyed by `(resolution
//! step, fetch region)`, with single-flight extraction, CLOCK eviction and
//! an optional per-tick extraction budget (all provided by
//! [`SingleFlightCache`] in `sknn-store`).
//!
//! ## Region canonicalization and bit-identity
//!
//! A cache keyed by raw query-dependent regions would never hit: every
//! query computes slightly different candidate MBRs. [`CutGrid`] therefore
//! canonicalizes fetch regions *before* they reach the store layer —
//! padding them by a loading-radius fraction of a tile (hysteresis: repeat
//! traffic in a hot neighbourhood lands inside an already-materialized
//! cut) and snapping the result outward to a fixed tile lattice over the
//! terrain extent. Crucially the ranking layer applies the same
//! canonicalization **whether the cache is on or off**: extraction is a
//! pure function of `(step, canonical region)`, a superset region only
//! adds nodes that ROI filtering would admit anyway, and so query results
//! are bit-identical in both modes — the cache can only change *when* work
//! happens, never *what* it produces. Keys match exactly (`f64::to_bits`
//! of the snapped bounds); there is no containment-based reuse across
//! different keys, which would change Dijkstra inputs per query ordering.

use crate::front::FrontGraph;
use crate::paged::PagedDmtm;
use sknn_geom::{Point2, Rect2};
use sknn_store::{CacheGauges, CacheOutcome, CacheStats, Pager, SingleFlightCache, StoreResult};
use std::time::Duration;

/// Fixed tile lattice over the terrain extent used to canonicalize fetch
/// regions (see module docs). Copy-cheap; the engine builds one and hands
/// it to every query context.
#[derive(Debug, Clone, Copy)]
pub struct CutGrid {
    extent: Rect2,
    tiles: usize,
    tile_w: f64,
    tile_h: f64,
    /// Loading-radius padding in tiles, applied before snapping.
    pad_tiles: f64,
}

impl CutGrid {
    /// A lattice of `tiles × tiles` cells over `extent`, padding regions
    /// by `pad_tiles` tiles before snapping them outward.
    pub fn new(extent: Rect2, tiles: usize, pad_tiles: f64) -> Self {
        let tiles = tiles.max(1);
        Self {
            extent,
            tiles,
            tile_w: extent.width() / tiles as f64,
            tile_h: extent.height() / tiles as f64,
            pad_tiles: pad_tiles.max(0.0),
        }
    }

    /// Canonicalize a fetch region: pad by the loading radius, snap
    /// outward to tile boundaries, clamp to the extent. Snapped bounds are
    /// computed from integer tile indices so equal inputs produce
    /// bit-equal outputs on any machine. Returns the full extent for
    /// regions that cover it (the common first-iteration case, where the
    /// candidate upper bound is still infinite). Apply exactly once per
    /// raw region — with a nonzero pad, re-snapping a snapped region grows
    /// it by another tile (the pad always extends).
    pub fn snap(&self, r: &Rect2) -> Rect2 {
        if r.contains_rect(&self.extent) {
            return self.extent;
        }
        let (x0, x1) =
            self.snap_axis(r.lo.x, r.hi.x, self.extent.lo.x, self.extent.hi.x, self.tile_w);
        let (y0, y1) =
            self.snap_axis(r.lo.y, r.hi.y, self.extent.lo.y, self.extent.hi.y, self.tile_h);
        Rect2::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    /// Canonicalize a 1-D band (an MSDN plane-coordinate interval) along
    /// `axis` (0 = x, 1 = y) with the same pad-and-snap rule.
    pub fn snap_band(&self, axis: usize, lo: f64, hi: f64) -> (f64, f64) {
        if axis == 0 {
            self.snap_axis(lo, hi, self.extent.lo.x, self.extent.hi.x, self.tile_w)
        } else {
            self.snap_axis(lo, hi, self.extent.lo.y, self.extent.hi.y, self.tile_h)
        }
    }

    fn snap_axis(&self, lo: f64, hi: f64, origin: f64, end: f64, tile: f64) -> (f64, f64) {
        if tile <= 0.0 || !lo.is_finite() || !hi.is_finite() {
            // Degenerate extent or unbounded band: the whole axis range.
            return (origin, end);
        }
        let pad = self.pad_tiles * tile;
        let i0 = ((((lo - pad) - origin) / tile).floor().max(0.0) as usize).min(self.tiles);
        let i1 =
            (((((hi + pad) - origin) / tile).ceil()).max(0.0) as usize).min(self.tiles).max(i0);
        // Tile indices 0 and `tiles` resolve to the exact extent bounds so
        // clamped regions share bit patterns with the full extent.
        let a = if i0 == 0 { origin } else { origin + i0 as f64 * tile };
        let b = if i1 >= self.tiles { end } else { origin + i1 as f64 * tile };
        (a, b)
    }

    /// The terrain extent the lattice covers.
    pub fn extent(&self) -> Rect2 {
        self.extent
    }
}

/// Exact identity of a materialized cut: resolution step plus the bit
/// patterns of the canonical fetch region (`None` = unrestricted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CutKey {
    /// Collapse step of the front.
    pub step: u32,
    /// `[lo.x, lo.y, hi.x, hi.y]` as `f64::to_bits`, or `None` for a
    /// whole-terrain cut.
    pub roi: Option<[u64; 4]>,
}

impl CutKey {
    /// Key for a (already canonicalized) fetch.
    pub fn new(step: u32, roi: Option<&Rect2>) -> Self {
        Self {
            step,
            roi: roi
                .map(|r| [r.lo.x.to_bits(), r.lo.y.to_bits(), r.hi.x.to_bits(), r.hi.y.to_bits()]),
        }
    }
}

/// Approximate resident bytes of a front (cache weight).
fn front_weight(fg: &FrontGraph) -> usize {
    64 + fg.ids.len() * 4 + fg.index.len() * 16 + fg.edges.len() * 24 + fg.rep_pos.len() * 24
}

/// The shared DMTM cut cache. See the module docs for semantics; pass
/// canonical ([`CutGrid::snap`]ped) regions only.
pub struct CutCache {
    inner: SingleFlightCache<CutKey, FrontGraph>,
}

impl CutCache {
    /// A cache bounded by `capacity_bytes`, admitting at most
    /// `budget_per_tick` extractions per `tick` (`0` = unlimited).
    pub fn new(capacity_bytes: usize, budget_per_tick: usize, tick: Duration) -> Self {
        Self { inner: SingleFlightCache::new(capacity_bytes, budget_per_tick, tick) }
    }

    /// Fetch the front at step `m` restricted to (canonical) `roi`,
    /// extracting through `dmtm`/`pager` under single-flight on a cold
    /// key. `demand` is the number of candidates the requesting group
    /// resolves from this cut (extraction-budget priority). I/O cost is
    /// charged to `pager` only when an extraction actually runs.
    pub fn get_or_extract(
        &self,
        dmtm: &PagedDmtm,
        pager: &Pager,
        m: u32,
        roi: Option<&Rect2>,
        demand: usize,
    ) -> StoreResult<CacheOutcome<FrontGraph>> {
        let key = CutKey::new(m, roi);
        self.inner.get_or_load(key, demand, || {
            let fg = dmtm.fetch_front(pager, m, roi)?;
            let weight = front_weight(&fg);
            Ok((fg, weight))
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Occupancy snapshot.
    pub fn gauges(&self) -> CacheGauges {
        self.inner.gauges()
    }

    /// Extractions currently running.
    pub fn loads_in_flight(&self) -> u64 {
        self.inner.loads_in_flight()
    }

    /// Drop every resident cut (cold-cache mode between queries).
    pub fn clear(&self) {
        self.inner.clear();
    }

    /// Zero the counters.
    pub fn reset_stats(&self) {
        self.inner.reset_stats();
    }

    /// Resident cuts.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no cut is resident.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> CutGrid {
        CutGrid::new(Rect2::new(Point2::new(0.0, 0.0), Point2::new(1600.0, 800.0)), 16, 0.5)
    }

    #[test]
    fn snap_is_idempotent_and_containing() {
        let g = grid();
        let r = Rect2::new(Point2::new(123.4, 77.7), Point2::new(456.7, 301.0));
        let s = g.snap(&r);
        assert!(s.contains_rect(&r), "{s:?} must contain {r:?}");
        // Snapped bounds sit on lattice lines (tile 100 × 50 here).
        assert_eq!(s.lo.x % 100.0, 0.0);
        assert_eq!(s.hi.x % 100.0, 0.0);
        assert_eq!(s.lo.y % 50.0, 0.0);
        assert_eq!(s.hi.y % 50.0, 0.0);
        // Determinism: equal inputs give bit-equal outputs.
        assert_eq!(g.snap(&r), s);
    }

    #[test]
    fn snap_clamps_to_extent() {
        let g = grid();
        let r = Rect2::new(Point2::new(-500.0, -500.0), Point2::new(5000.0, 5000.0));
        assert_eq!(g.snap(&r), g.extent());
        // Near-edge regions clamp to the exact extent corner bits.
        let r = Rect2::new(Point2::new(1.0, 1.0), Point2::new(2.0, 2.0));
        let s = g.snap(&r);
        assert_eq!(s.lo.x.to_bits(), 0f64.to_bits());
        assert_eq!(s.lo.y.to_bits(), 0f64.to_bits());
    }

    #[test]
    fn snap_band_matches_axis_snapping() {
        let g = grid();
        let (lo, hi) = g.snap_band(0, 123.4, 456.7);
        let s = g.snap(&Rect2::new(Point2::new(123.4, 0.0), Point2::new(456.7, 1.0)));
        assert_eq!((lo.to_bits(), hi.to_bits()), (s.lo.x.to_bits(), s.hi.x.to_bits()));
        let (lo, hi) = g.snap_band(1, 10.0, 20.0);
        assert!(lo <= 10.0 && hi >= 20.0);
        assert!(lo >= 0.0 && hi <= 800.0);
    }

    #[test]
    fn keys_discriminate_step_and_region() {
        let g = grid();
        let a = g.snap(&Rect2::new(Point2::new(100.0, 100.0), Point2::new(200.0, 200.0)));
        let b = g.snap(&Rect2::new(Point2::new(900.0, 100.0), Point2::new(1100.0, 200.0)));
        assert_ne!(CutKey::new(3, Some(&a)), CutKey::new(3, Some(&b)));
        assert_ne!(CutKey::new(3, Some(&a)), CutKey::new(4, Some(&a)));
        assert_ne!(CutKey::new(3, Some(&a)), CutKey::new(3, None));
        // Two regions snapping to the same tiles share a key: that is the
        // whole point of canonicalization.
        let a2 = g.snap(&Rect2::new(Point2::new(101.0, 101.0), Point2::new(199.0, 199.0)));
        assert_eq!(CutKey::new(3, Some(&a)), CutKey::new(3, Some(&a2)));
    }
}
