//! Front (cut) extraction and query-point embedding.
//!
//! "A surface approximation for a given LOD r and ROI can be derived from
//! DDM, just as in DM. A surface mesh is a network, thus Dijkstra's
//! shortest path algorithm can be used to compute the upper bound between a
//! pair of object points" (paper §3.2). A [`FrontGraph`] is that network:
//! the set of tree nodes alive after `m` collapses (optionally restricted
//! to a region of interest), with the recorded representative-to-
//! representative distances as edge weights.

use crate::tree::DmtmTree;
use sknn_geom::{Point3, Rect2};
use sknn_terrain::mesh::{TerrainMesh, TriId};
use std::collections::HashMap;

/// An extracted resolution front: a weighted graph whose nodes are DMTM
/// tree nodes and whose edge weights are original-surface path lengths
/// between node representatives.
#[derive(Debug, Clone)]
pub struct FrontGraph {
    /// Tree node ids, ascending.
    pub ids: Vec<u32>,
    /// Tree node id -> local index.
    pub index: HashMap<u32, u32>,
    /// Edges in local indices, `a < b`.
    pub edges: Vec<(u32, u32, f64)>,
    /// Representative positions, per local node.
    pub rep_pos: Vec<Point3>,
    /// The collapse step this front corresponds to.
    pub step: u32,
}

impl FrontGraph {
    /// Extract the front after `m` collapses; when `roi` is given, only
    /// nodes whose descendant MBR intersects it are included (the paper's
    /// ROI-restricted retrieval).
    pub fn extract(tree: &DmtmTree, m: u32, roi: Option<&Rect2>) -> Self {
        let mut ids = Vec::new();
        for id in 0..tree.nodes().len() as u32 {
            if !tree.live_at(id, m) {
                continue;
            }
            if let Some(r) = roi {
                if !r.intersects(&tree.node(id).mbr) {
                    continue;
                }
            }
            ids.push(id);
        }
        Self::from_ids(tree, m, ids)
    }

    /// Build the graph over an explicit live node set (used by the paged
    /// layer, which fetches records itself).
    pub fn from_ids(tree: &DmtmTree, m: u32, ids: Vec<u32>) -> Self {
        let index: HashMap<u32, u32> =
            ids.iter().enumerate().map(|(i, &id)| (id, i as u32)).collect();
        let mut edges = Vec::new();
        for (&id, &local) in &index {
            for &(w, d) in &tree.node(id).neighbors {
                if let Some(&wl) = index.get(&w) {
                    if tree.live_at(w, m) && local < wl {
                        edges.push((local, wl, d));
                    }
                }
            }
        }
        // Entries exist on both endpoints, so each edge may appear twice
        // (once from each side); keep the tighter record.
        edges.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.partial_cmp(&b.2).unwrap()));
        edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        let rep_pos = ids.iter().map(|&id| tree.node(id).rep_pos).collect();
        Self { ids, index, edges, rep_pos, step: m }
    }

    /// Num nodes.
    pub fn num_nodes(&self) -> usize {
        self.ids.len()
    }

    /// Variable-LOD extraction: the terrain at `fine_step` resolution
    /// inside `roi` and `coarse_step` resolution outside — one *mixed cut*
    /// through the collapse tree, the fullest form of the paper's
    /// "just-enough LOD from a just-enough ROI".
    ///
    /// The cut is built by taking the coarse front and re-expanding every
    /// node whose MBR touches the ROI down to the fine front. Edges
    /// between nodes of different levels are recovered from the recorded
    /// adjacency: an entry `(w, d)` of a cut node `u` whose partner `w`
    /// lies *below* the cut is lifted to `w`'s cut ancestor `W` with
    /// weight `d + offset(w -> W)` — still the length of a real
    /// original-surface path between representatives, so Dijkstra over a
    /// mixed cut remains a valid upper bound.
    pub fn extract_variable(
        tree: &DmtmTree,
        fine_step: u32,
        coarse_step: u32,
        roi: &Rect2,
    ) -> Self {
        let (fine, coarse) = (fine_step.min(coarse_step), fine_step.max(coarse_step));
        // Cut membership: fine-live nodes inside the ROI; coarse-live nodes
        // outside; plus fine-live descendants of coarse nodes that touch
        // the ROI.
        let mut ids: Vec<u32> = Vec::new();
        for id in 0..tree.nodes().len() as u32 {
            let node = tree.node(id);
            let in_roi = roi.intersects(&node.mbr);
            let cut_here = if in_roi {
                tree.live_at(id, fine)
            } else {
                // Outside the ROI: a node belongs to the cut if it is
                // coarse-live, or if it is fine-live under a coarse
                // ancestor that straddles the ROI (that ancestor was
                // expanded, so its non-ROI descendants must appear at the
                // fine level to keep the cut a partition).
                if tree.live_at(id, coarse) {
                    true
                } else if tree.live_at(id, fine) {
                    // Does the coarse ancestor touch the ROI?
                    let (anc, _) = {
                        let mut cur = id;
                        let mut off = 0.0;
                        while !tree.live_at(cur, coarse) {
                            off += tree.node(cur).rep_offset;
                            cur = tree.node(cur).parent.expect("below coarse front");
                        }
                        (cur, off)
                    };
                    roi.intersects(&tree.node(anc).mbr)
                } else {
                    false
                }
            };
            // Exclude coarse nodes that were expanded (they touch the ROI
            // and are not fine-live themselves).
            if cut_here {
                let expanded = roi.intersects(&node.mbr)
                    && tree.live_at(id, coarse)
                    && !tree.live_at(id, fine);
                if !expanded {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();

        let index: HashMap<u32, u32> =
            ids.iter().enumerate().map(|(i, &id)| (id, i as u32)).collect();
        // Lift a node to its cut member (itself, or the nearest ancestor in
        // the cut), accumulating representative offsets.
        let lift = |mut id: u32| -> Option<(u32, f64)> {
            let mut off = 0.0;
            loop {
                if index.contains_key(&id) {
                    return Some((id, off));
                }
                off += tree.node(id).rep_offset;
                id = tree.node(id).parent?;
            }
        };
        let mut edges: Vec<(u32, u32, f64)> = Vec::new();
        let push_edge = |edges: &mut Vec<(u32, u32, f64)>, a: u32, b: u32, w: f64| {
            if a != b {
                let (a, b) = if a < b { (a, b) } else { (b, a) };
                edges.push((a, b, w));
            }
        };
        for (&id, &local) in &index {
            for &(w, d) in &tree.node(id).neighbors {
                if let Some((cw, off)) = lift(w) {
                    if cw == id {
                        continue;
                    }
                    push_edge(&mut edges, local, index[&cw], d + off);
                } else {
                    // The partner sits *above* the cut (a fine/coarse
                    // boundary): fan out to every cut descendant, charging
                    // each its representative-offset path up to `w`.
                    let mut stack: Vec<(u32, f64)> = vec![(w, 0.0)];
                    while let Some((n, acc)) = stack.pop() {
                        if let Some(&wl) = index.get(&n) {
                            push_edge(&mut edges, local, wl, d + acc);
                            continue;
                        }
                        if let Some((a, b)) = tree.node(n).children {
                            stack.push((a, acc + tree.node(a).rep_offset));
                            stack.push((b, acc + tree.node(b).rep_offset));
                        }
                    }
                }
            }
        }
        edges.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.partial_cmp(&b.2).unwrap()));
        edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        let rep_pos = ids.iter().map(|&id| tree.node(id).rep_pos).collect();
        // `step` is the fine step: embedding lifts leaves until they hit a
        // cut member, which `embed_cut` below handles explicitly.
        Self { ids, index, edges, rep_pos, step: fine }
    }

    /// Embed a surface point into a *mixed* cut (see
    /// [`FrontGraph::extract_variable`]): lift each facet corner until it
    /// reaches a cut member.
    pub fn embed_cut(
        &self,
        tree: &DmtmTree,
        mesh: &TerrainMesh,
        tri: TriId,
        pos: Point3,
    ) -> Vec<(u32, f64)> {
        let mut out: Vec<(u32, f64)> = Vec::with_capacity(3);
        for &corner in &mesh.triangle_ids(tri) {
            let mut id = corner;
            let mut off = 0.0;
            let found = loop {
                if let Some(&local) = self.index.get(&id) {
                    break Some((local, off));
                }
                off += tree.node(id).rep_offset;
                match tree.node(id).parent {
                    Some(p) => id = p,
                    None => break None,
                }
            };
            if let Some((local, lift_off)) = found {
                let w = pos.dist(mesh.vertex(corner)) + lift_off;
                match out.iter_mut().find(|(l, _)| *l == local) {
                    Some(entry) => entry.1 = entry.1.min(w),
                    None => out.push((local, w)),
                }
            }
        }
        out
    }

    /// Embed a surface point into the front: connect it to the live
    /// ancestors of its original facet's corners. Each entry's cost is a
    /// valid surface path length (in-facet segment + leaf-to-representative
    /// offset bound), so Dijkstra from these entries yields a true upper
    /// bound of the surface distance at any resolution.
    pub fn embed(
        &self,
        tree: &DmtmTree,
        mesh: &TerrainMesh,
        tri: TriId,
        pos: Point3,
    ) -> Vec<(u32, f64)> {
        let mut out: Vec<(u32, f64)> = Vec::with_capacity(3);
        for &corner in &mesh.triangle_ids(tri) {
            let (anc, off) = tree.lift_to_front(corner, self.step);
            if let Some(&local) = self.index.get(&anc) {
                let w = pos.dist(mesh.vertex(corner)) + off;
                match out.iter_mut().find(|(l, _)| *l == local) {
                    Some(entry) => entry.1 = entry.1.min(w),
                    None => out.push((local, w)),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::build_dmtm;
    use sknn_geodesic::exact::ExactGeodesic;
    use sknn_geodesic::graph::{Dijkstra, Graph};
    use sknn_geodesic::mesh_net::{MeshNetwork, MeshPoint};
    use sknn_terrain::dem::TerrainConfig;
    use sknn_terrain::locate::TriangleLocator;

    fn ub_between(
        tree: &DmtmTree,
        mesh: &TerrainMesh,
        fg: &FrontGraph,
        a: (TriId, Point3),
        b: (TriId, Point3),
    ) -> f64 {
        let g = Graph::from_undirected(fg.num_nodes(), &fg.edges);
        let src = fg.embed(tree, mesh, a.0, a.1);
        let dst = fg.embed(tree, mesh, b.0, b.1);
        let d = Dijkstra::run_multi(&g, &src, None);
        dst.iter().map(|&(v, exit)| d.dist[v as usize] + exit).fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn full_front_matches_mesh_network() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(3);
        let tree = build_dmtm(&mesh);
        let fg = FrontGraph::extract(&tree, 0, None);
        assert_eq!(fg.num_nodes(), mesh.num_vertices());
        assert_eq!(fg.edges.len(), mesh.num_edges());
        // Distances equal plain network distances at full resolution.
        let g = Graph::from_undirected(fg.num_nodes(), &fg.edges);
        let net = MeshNetwork::build(&mesh);
        let d_fg = Dijkstra::run(&g, fg.index[&0]);
        let d_net = Dijkstra::run(net.graph(), 0);
        for v in [5usize, 40, 80] {
            let local = fg.index[&(v as u32)] as usize;
            assert!((d_fg.dist[local] - d_net.dist[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn coarse_fronts_shrink_but_stay_connected() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(1);
        let tree = build_dmtm(&mesh);
        for frac in [0.5, 0.25, 0.05] {
            let m = tree.step_for_fraction(frac);
            let fg = FrontGraph::extract(&tree, m, None);
            assert_eq!(fg.num_nodes(), tree.front_size(m));
            // Connectivity: Dijkstra reaches every node.
            let g = Graph::from_undirected(fg.num_nodes(), &fg.edges);
            let d = Dijkstra::run(&g, 0);
            assert!(d.dist.iter().all(|x| x.is_finite()), "front at {frac} disconnected");
        }
    }

    #[test]
    fn upper_bound_dominates_exact_distance() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(6);
        let tree = build_dmtm(&mesh);
        let loc = TriangleLocator::build(&mesh);
        let geo = ExactGeodesic::new(&mesh);
        let pts = [
            sknn_geom::Point2::new(8.0, 12.0),
            sknn_geom::Point2::new(71.0, 66.0),
            sknn_geom::Point2::new(15.0, 70.0),
        ];
        let lifted: Vec<(TriId, Point3)> = pts
            .iter()
            .map(|&p| (loc.locate(&mesh, p).unwrap(), loc.lift(&mesh, p).unwrap()))
            .collect();
        for i in 0..lifted.len() {
            for j in i + 1..lifted.len() {
                let exact = geo.distance(
                    MeshPoint::Interior { tri: lifted[i].0, pos: lifted[i].1 },
                    MeshPoint::Interior { tri: lifted[j].0, pos: lifted[j].1 },
                );
                for frac in [0.05, 0.25, 0.5, 1.0] {
                    let m = tree.step_for_fraction(frac);
                    let fg = FrontGraph::extract(&tree, m, None);
                    let ub = ub_between(&tree, &mesh, &fg, lifted[i], lifted[j]);
                    assert!(ub >= exact - 1e-6, "frac {frac}: ub {ub} below exact {exact}");
                }
            }
        }
    }

    #[test]
    fn upper_bound_tightens_with_resolution_on_average() {
        let mesh = TerrainConfig::ep().with_grid(17).build_mesh(9);
        let tree = build_dmtm(&mesh);
        let loc = TriangleLocator::build(&mesh);
        let pairs = [
            (sknn_geom::Point2::new(11.0, 17.0), sknn_geom::Point2::new(140.0, 150.0)),
            (sknn_geom::Point2::new(30.0, 140.0), sknn_geom::Point2::new(150.0, 20.0)),
            (sknn_geom::Point2::new(60.0, 60.0), sknn_geom::Point2::new(100.0, 120.0)),
        ];
        let mut coarse_sum = 0.0;
        let mut fine_sum = 0.0;
        for (pa, pb) in pairs {
            let a = (loc.locate(&mesh, pa).unwrap(), loc.lift(&mesh, pa).unwrap());
            let b = (loc.locate(&mesh, pb).unwrap(), loc.lift(&mesh, pb).unwrap());
            let coarse = ub_between(
                &tree,
                &mesh,
                &FrontGraph::extract(&tree, tree.step_for_fraction(0.05), None),
                a,
                b,
            );
            let fine = ub_between(
                &tree,
                &mesh,
                &FrontGraph::extract(&tree, tree.step_for_fraction(1.0), None),
                a,
                b,
            );
            coarse_sum += coarse;
            fine_sum += fine;
            // Per-pair: fine should not be substantially worse than coarse.
            assert!(fine <= coarse * 1.05, "fine {fine} >> coarse {coarse}");
        }
        assert!(fine_sum <= coarse_sum + 1e-9);
    }

    #[test]
    fn variable_cut_partitions_leaves_and_mixes_levels() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(12);
        let tree = build_dmtm(&mesh);
        let fine = tree.step_for_fraction(1.0);
        let coarse = tree.step_for_fraction(0.1);
        let e = mesh.extent();
        let roi = Rect2::new(
            e.lo,
            sknn_geom::Point2::new(e.lo.x + e.width() * 0.4, e.lo.y + e.height() * 0.4),
        );
        let cut = FrontGraph::extract_variable(&tree, fine, coarse, &roi);
        // The cut partitions every original vertex exactly once.
        let mut covered = vec![0u32; tree.num_leaves()];
        for &id in &cut.ids {
            for leaf in tree.descendant_leaves(id) {
                covered[leaf as usize] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "not a partition");
        // Size sits strictly between pure-coarse and pure-fine.
        let n_coarse = tree.front_size(coarse);
        let n_fine = tree.front_size(fine);
        assert!(cut.num_nodes() > n_coarse, "{} <= {n_coarse}", cut.num_nodes());
        assert!(cut.num_nodes() < n_fine, "{} >= {n_fine}", cut.num_nodes());
        // Connected: Dijkstra reaches every node across the level boundary.
        let g = Graph::from_undirected(cut.num_nodes(), &cut.edges);
        let d = Dijkstra::run(&g, 0);
        assert!(d.dist.iter().all(|x| x.is_finite()), "mixed cut disconnected");
    }

    #[test]
    fn variable_cut_upper_bound_is_valid_and_between_levels() {
        let mesh = TerrainConfig::ep().with_grid(17).build_mesh(31);
        let tree = build_dmtm(&mesh);
        let loc = TriangleLocator::build(&mesh);
        let geo = ExactGeodesic::new(&mesh);
        let pa = sknn_geom::Point2::new(20.0, 25.0);
        let pb = sknn_geom::Point2::new(60.0, 70.0);
        let a = (loc.locate(&mesh, pa).unwrap(), loc.lift(&mesh, pa).unwrap());
        let b = (loc.locate(&mesh, pb).unwrap(), loc.lift(&mesh, pb).unwrap());
        let exact = geo.distance(
            MeshPoint::Interior { tri: a.0, pos: a.1 },
            MeshPoint::Interior { tri: b.0, pos: b.1 },
        );
        let fine = tree.step_for_fraction(1.0);
        let coarse = tree.step_for_fraction(0.05);
        // ROI covering both endpoints generously.
        let roi = Rect2::new(sknn_geom::Point2::new(0.0, 0.0), sknn_geom::Point2::new(90.0, 100.0));
        let cut = FrontGraph::extract_variable(&tree, fine, coarse, &roi);
        let g = Graph::from_undirected(cut.num_nodes(), &cut.edges);
        let src = cut.embed_cut(&tree, &mesh, a.0, a.1);
        let dst = cut.embed_cut(&tree, &mesh, b.0, b.1);
        assert!(!src.is_empty() && !dst.is_empty());
        let dd = Dijkstra::run_multi(&g, &src, None);
        let ub_mixed =
            dst.iter().map(|&(v, exit)| dd.dist[v as usize] + exit).fold(f64::INFINITY, f64::min);
        assert!(ub_mixed >= exact - 1e-6, "mixed ub {ub_mixed} below exact {exact}");
        // It should be at least as good as the pure coarse front's bound
        // (both endpoints sit inside the fine region).
        let coarse_fg = FrontGraph::extract(&tree, coarse, None);
        let ub_coarse = ub_between(&tree, &mesh, &coarse_fg, a, b);
        assert!(ub_mixed <= ub_coarse + 1e-6, "mixed {ub_mixed} worse than coarse {ub_coarse}");
    }

    #[test]
    fn variable_cut_degenerates_to_pure_fronts() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(3);
        let tree = build_dmtm(&mesh);
        let fine = tree.step_for_fraction(1.0);
        let coarse = tree.step_for_fraction(0.2);
        let e = mesh.extent();
        // ROI covering everything -> the fine front.
        let all = FrontGraph::extract_variable(&tree, fine, coarse, &e);
        assert_eq!(all.num_nodes(), tree.front_size(fine));
        // Empty ROI -> the coarse front.
        let nowhere = Rect2::new(
            sknn_geom::Point2::new(-100.0, -100.0),
            sknn_geom::Point2::new(-50.0, -50.0),
        );
        let none = FrontGraph::extract_variable(&tree, fine, coarse, &nowhere);
        assert_eq!(none.num_nodes(), tree.front_size(coarse));
    }

    #[test]
    fn roi_extraction_filters_nodes() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(2);
        let tree = build_dmtm(&mesh);
        let m = tree.step_for_fraction(0.5);
        let full = FrontGraph::extract(&tree, m, None);
        let roi = Rect2::new(sknn_geom::Point2::new(0.0, 0.0), sknn_geom::Point2::new(50.0, 50.0));
        let part = FrontGraph::extract(&tree, m, Some(&roi));
        assert!(part.num_nodes() < full.num_nodes());
        assert!(part.num_nodes() > 0);
        // Every included node's MBR intersects the ROI.
        for &id in &part.ids {
            assert!(tree.node(id).mbr.intersects(&roi));
        }
    }

    #[test]
    fn embedding_entries_reference_live_locals() {
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(5);
        let tree = build_dmtm(&mesh);
        let loc = TriangleLocator::build(&mesh);
        let m = tree.step_for_fraction(0.1);
        let fg = FrontGraph::extract(&tree, m, None);
        let p = sknn_geom::Point2::new(33.0, 47.0);
        let tri = loc.locate(&mesh, p).unwrap();
        let pos = loc.lift(&mesh, p).unwrap();
        let emb = fg.embed(&tree, &mesh, tri, pos);
        assert!(!emb.is_empty());
        for (local, w) in emb {
            assert!((local as usize) < fg.num_nodes());
            assert!(w >= 0.0 && w.is_finite());
        }
    }
}
