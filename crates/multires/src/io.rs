//! Binary serialisation of the DMTM collapse tree.
//!
//! Building the tree is `O(n log n)` with a decent constant; for repeated
//! query sessions over the same terrain it is worth persisting. The format
//! is a versioned little-endian dump — no external dependencies, exact
//! float round-trip.

use crate::tree::{DmtmNode, DmtmTree};
use sknn_geom::{Point2, Point3, Rect2};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DMTM";
const VERSION: u32 = 1;

/// Serialise a tree.
pub fn write_tree(tree: &DmtmTree, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(tree.num_leaves() as u64).to_le_bytes())?;
    w.write_all(&tree.num_steps().to_le_bytes())?;
    w.write_all(&(tree.nodes().len() as u64).to_le_bytes())?;
    for n in tree.nodes() {
        write_point3(w, n.pos)?;
        w.write_all(&n.rep.to_le_bytes())?;
        write_point3(w, n.rep_pos)?;
        w.write_all(&n.error.to_le_bytes())?;
        w.write_all(&n.birth.to_le_bytes())?;
        w.write_all(&n.death.to_le_bytes())?;
        w.write_all(&n.parent.unwrap_or(u32::MAX).to_le_bytes())?;
        let (ca, cb) = n.children.unwrap_or((u32::MAX, u32::MAX));
        w.write_all(&ca.to_le_bytes())?;
        w.write_all(&cb.to_le_bytes())?;
        w.write_all(&n.rep_offset.to_le_bytes())?;
        write_point2(w, n.mbr.lo)?;
        write_point2(w, n.mbr.hi)?;
        w.write_all(&(n.neighbors.len() as u32).to_le_bytes())?;
        for &(id, d) in &n.neighbors {
            w.write_all(&id.to_le_bytes())?;
            w.write_all(&d.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialise a tree written by [`write_tree`].
pub fn read_tree(r: &mut impl Read) -> io::Result<DmtmTree> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a DMTM file"));
    }
    if read_u32(r)? != VERSION {
        return Err(bad("unsupported DMTM version"));
    }
    let num_leaves = read_u64(r)? as usize;
    let num_steps = read_u32(r)?;
    let count = read_u64(r)? as usize;
    if count < num_leaves || count > (1 << 33) {
        return Err(bad("implausible node count"));
    }
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        let pos = read_point3(r)?;
        let rep = read_u32(r)?;
        let rep_pos = read_point3(r)?;
        let error = read_f64(r)?;
        let birth = read_u32(r)?;
        let death = read_u32(r)?;
        let parent = match read_u32(r)? {
            u32::MAX => None,
            v => Some(v),
        };
        let (ca, cb) = (read_u32(r)?, read_u32(r)?);
        let children = if ca == u32::MAX { None } else { Some((ca, cb)) };
        let rep_offset = read_f64(r)?;
        let mbr = Rect2::new(read_point2(r)?, read_point2(r)?);
        let deg = read_u32(r)? as usize;
        let mut neighbors = Vec::with_capacity(deg);
        for _ in 0..deg {
            let id = read_u32(r)?;
            let d = read_f64(r)?;
            neighbors.push((id, d));
        }
        nodes.push(DmtmNode {
            pos,
            rep,
            rep_pos,
            error,
            birth,
            death,
            parent,
            children,
            rep_offset,
            neighbors,
            mbr,
        });
    }
    let tree = DmtmTree { nodes, num_leaves, num_steps };
    tree.check_invariants().map_err(|e| bad(&format!("corrupt tree: {e}")))?;
    Ok(tree)
}

fn write_point3(w: &mut impl Write, p: Point3) -> io::Result<()> {
    for v in [p.x, p.y, p.z] {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn write_point2(w: &mut impl Write, p: Point2) -> io::Result<()> {
    for v in [p.x, p.y] {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_point3(r: &mut impl Read) -> io::Result<Point3> {
    Ok(Point3::new(read_f64(r)?, read_f64(r)?, read_f64(r)?))
}

fn read_point2(r: &mut impl Read) -> io::Result<Point2> {
    Ok(Point2::new(read_f64(r)?, read_f64(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::build_dmtm;
    use sknn_terrain::dem::TerrainConfig;

    #[test]
    fn roundtrip_preserves_everything() {
        let mesh = TerrainConfig::bh().with_grid(17).build_mesh(9);
        let tree = build_dmtm(&mesh);
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).unwrap();
        let back = read_tree(&mut buf.as_slice()).unwrap();
        assert_eq!(back.num_leaves(), tree.num_leaves());
        assert_eq!(back.num_steps(), tree.num_steps());
        assert_eq!(back.nodes().len(), tree.nodes().len());
        for (a, b) in tree.nodes().iter().zip(back.nodes()) {
            assert_eq!(a.pos, b.pos);
            assert_eq!(a.rep, b.rep);
            assert_eq!(a.birth, b.birth);
            assert_eq!(a.death, b.death);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.children, b.children);
            assert_eq!(a.rep_offset, b.rep_offset);
            assert_eq!(a.neighbors, b.neighbors);
            assert_eq!(a.mbr, b.mbr);
        }
        back.check_invariants().unwrap();
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_tree(&mut &b"NOPE"[..]).is_err());
        assert!(read_tree(&mut &b"DMTM\x63\x00\x00\x00"[..]).is_err());
        // Truncated file.
        let mesh = TerrainConfig::bh().with_grid(9).build_mesh(1);
        let tree = build_dmtm(&mesh);
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_tree(&mut buf.as_slice()).is_err());
    }
}
