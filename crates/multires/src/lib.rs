#![warn(missing_docs)]
//! DMTM — the Distance Multiresolution Terrain Mesh (paper §3.2).
//!
//! The DMTM unifies two structures into one multiresolution model of the
//! terrain:
//!
//! * a **DDM** (Distance Direct Mesh): the Direct-Mesh binary collapse tree
//!   [Xu, Zhou, Lin — ICDE'04] built by quadric-error-metric edge collapse
//!   [Garland–Heckbert], *decorated with distance information*: every node
//!   carries a representative vertex of the original mesh, and every
//!   recorded adjacency carries the length of an original-surface network
//!   path between the two representatives. Extracting the "front" of the
//!   tree after `m` collapses yields an approximate terrain at any
//!   resolution from one vertex up to the original mesh, and Dijkstra over
//!   that front yields a surface-distance **upper bound** that improves
//!   monotonically with resolution;
//! * a **pathnet** above the original resolution (Steiner points, built by
//!   `sknn-geodesic`), used for the >100 % levels where the upper bound
//!   converges to the true surface distance.
//!
//! Module map: [`quadric`] (error metric), [`simplify`] (collapse driver),
//! [`tree`] (the decorated collapse tree), [`front`] (cut extraction, ROI
//! filtering, query-point embedding), [`paged`] (storage layout over
//! `sknn-store` with page-accurate retrieval).

//! ```
//! use sknn_multires::{build_dmtm, FrontGraph};
//! use sknn_terrain::TerrainConfig;
//!
//! let mesh = TerrainConfig::bh().with_grid(17).build_mesh(1);
//! let tree = build_dmtm(&mesh);
//! // The front after 0 collapses is the original mesh ...
//! let full = FrontGraph::extract(&tree, 0, None);
//! assert_eq!(full.num_nodes(), mesh.num_vertices());
//! // ... and coarser fronts shrink towards a single node.
//! let coarse = FrontGraph::extract(&tree, tree.step_for_fraction(0.1), None);
//! assert!(coarse.num_nodes() < full.num_nodes() / 5);
//! ```

pub mod cache;
pub mod front;
pub mod io;
pub mod paged;
pub mod quadric;
pub mod simplify;
pub mod tree;

pub use cache::{CutCache, CutGrid, CutKey};
pub use front::FrontGraph;
pub use paged::{FetchScratch, PagedDmtm};
pub use simplify::build_dmtm;
pub use tree::{DmtmNode, DmtmTree};
