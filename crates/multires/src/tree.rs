//! The decorated collapse tree (DDM part of the DMTM).
//!
//! Leaves are the original mesh vertices; each collapse step merges two
//! front-adjacent nodes into a parent. A node records:
//!
//! * its **representative** — an original mesh vertex (a collapse keeps one
//!   child's representative), so "distance between nodes" always means the
//!   length of an original-surface network path between two real vertices;
//! * its **neighbour entries** `(other node, distance)` following the
//!   paper's recurrence `d(c, w) = d(a, w)` if `w ∈ N(a)`, else
//!   `d(b, w) + d(a, b)`;
//! * its **birth/death steps**, so the *front after m collapses* — the set
//!   of nodes with `birth <= m < death` — reconstructs exactly the
//!   simplification state at that moment (fronts are nested, which is what
//!   makes upper bounds monotone);
//! * a **representative offset**: an upper bound on the original-surface
//!   path length from this node's representative to its parent's, used to
//!   embed query points soundly at any resolution;
//! * the 2-D **MBR** of its descendant leaves, for ROI filtering.

use sknn_geom::{Point3, Rect2};
use sknn_terrain::mesh::VertexId;

/// One node of the DMTM collapse tree.
#[derive(Debug, Clone)]
pub struct DmtmNode {
    /// Geometric position of the node (for leaves: the vertex; for merged
    /// nodes: the collapse target position).
    pub pos: Point3,
    /// Representative original vertex.
    pub rep: VertexId,
    /// Position of the representative vertex.
    pub rep_pos: Point3,
    /// Quadric approximation error recorded at creation (0 for leaves).
    pub error: f64,
    /// Collapse step that created this node (0 for leaves; step `s >= 1`
    /// creates exactly one node).
    pub birth: u32,
    /// Collapse step that merged this node away (`u32::MAX` while alive).
    pub death: u32,
    /// The parent.
    pub parent: Option<u32>,
    /// The children.
    pub children: Option<(u32, u32)>,
    /// Upper bound on the original-network path length from `rep` to the
    /// parent's representative (0 when this node's rep was kept).
    pub rep_offset: f64,
    /// Adjacency entries: the front neighbours at birth, plus entries to
    /// later-born nodes that merged next to this one. An edge of the front
    /// after `m` collapses joins `u` and `w` iff both are alive at `m` and
    /// either list contains the other.
    pub neighbors: Vec<(u32, f64)>,
    /// MBR (xy) of all descendant leaves.
    pub mbr: Rect2,
}

/// The DMTM collapse tree.
#[derive(Debug, Clone)]
pub struct DmtmTree {
    pub(crate) nodes: Vec<DmtmNode>,
    pub(crate) num_leaves: usize,
    pub(crate) num_steps: u32,
}

impl DmtmTree {
    /// Nodes.
    pub fn nodes(&self) -> &[DmtmNode] {
        &self.nodes
    }

    /// Node.
    pub fn node(&self, id: u32) -> &DmtmNode {
        &self.nodes[id as usize]
    }

    /// Num leaves.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Total collapse steps performed during construction.
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// Is node `id` part of the front after `m` collapses?
    pub fn live_at(&self, id: u32, m: u32) -> bool {
        let n = &self.nodes[id as usize];
        n.birth <= m && m < n.death
    }

    /// Node ids of the front after `m` collapses. The front after 0 steps
    /// is the original mesh; after `num_steps` it is the root set.
    pub fn front_at_step(&self, m: u32) -> Vec<u32> {
        (0..self.nodes.len() as u32).filter(|&id| self.live_at(id, m)).collect()
    }

    /// Collapse step whose front holds (approximately) `fraction` of the
    /// original vertex count. `fraction = 1.0` is the original mesh
    /// (step 0); smaller fractions are coarser.
    pub fn step_for_fraction(&self, fraction: f64) -> u32 {
        let want = ((self.num_leaves as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let want = want.clamp(1, self.num_leaves);
        (self.num_leaves - want).min(self.num_steps as usize) as u32
    }

    /// Front size after `m` collapses (each collapse removes one node).
    pub fn front_size(&self, m: u32) -> usize {
        self.num_leaves - (m.min(self.num_steps) as usize)
    }

    /// Walk up from a leaf to its unique ancestor alive at step `m`,
    /// accumulating representative offsets. Returns `(ancestor id, path
    /// bound from the leaf's vertex to the ancestor's representative)`.
    pub fn lift_to_front(&self, leaf: u32, m: u32) -> (u32, f64) {
        debug_assert!((leaf as usize) < self.num_leaves);
        let mut id = leaf;
        let mut offset = 0.0;
        while !self.live_at(id, m) {
            let n = &self.nodes[id as usize];
            let parent = n.parent.expect("non-live node must have a parent");
            offset += n.rep_offset;
            id = parent;
        }
        (id, offset)
    }

    /// Structural invariants; used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Every leaf is covered exactly once by every front.
        for m in [0, self.num_steps / 2, self.num_steps] {
            let front = self.front_at_step(m);
            if front.len() != self.front_size(m) {
                return Err(format!(
                    "front size at {m}: {} != {}",
                    front.len(),
                    self.front_size(m)
                ));
            }
            let mut covered = vec![0u32; self.num_leaves];
            for &id in &front {
                for leaf in self.descendant_leaves(id) {
                    covered[leaf as usize] += 1;
                }
            }
            if covered.iter().any(|&c| c != 1) {
                return Err(format!("front at {m} does not partition the leaves"));
            }
        }
        // Parent/child symmetry and birth/death ordering.
        for (id, n) in self.nodes.iter().enumerate() {
            if let Some((a, b)) = n.children {
                for c in [a, b] {
                    let cn = &self.nodes[c as usize];
                    if cn.parent != Some(id as u32) {
                        return Err(format!("child {c} of {id} disagrees"));
                    }
                    if cn.death != n.birth {
                        return Err(format!("child {c} death != parent {id} birth"));
                    }
                    if !n.mbr.contains_rect(&cn.mbr) {
                        return Err(format!("mbr of {id} does not cover child {c}"));
                    }
                }
                // Representative inherited from one child.
                let (a_rep, b_rep) = (self.nodes[a as usize].rep, self.nodes[b as usize].rep);
                if n.rep != a_rep && n.rep != b_rep {
                    return Err(format!("node {id} rep not inherited"));
                }
            }
            if n.birth >= n.death {
                return Err(format!("node {id} birth {} >= death {}", n.birth, n.death));
            }
        }
        Ok(())
    }

    /// All original-vertex leaves under `id`.
    pub fn descendant_leaves(&self, id: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            match self.nodes[n as usize].children {
                None => out.push(n),
                Some((a, b)) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        out
    }
}
