//! Quadric error metrics (Garland & Heckbert, SIGGRAPH'97).
//!
//! The error of placing a vertex at `p` is the sum of squared distances
//! from `p` to a set of planes (initially: the planes of the facets
//! incident to the vertices merged into it). A quadric is the symmetric
//! 4×4 matrix of that quadratic form; quadrics add when vertices merge.

use sknn_geom::{Point3, Vec3};

/// A symmetric 4x4 quadratic form, stored as its 10 unique coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Quadric {
    // | a b c d |
    // | b e f g |
    // | c f h i |
    // | d g i j |
    a: f64,
    b: f64,
    c: f64,
    d: f64,
    e: f64,
    f: f64,
    g: f64,
    h: f64,
    i: f64,
    j: f64,
}

impl Quadric {
    /// Quadric of the plane `n·x + w = 0` (with `n` unit length), weighted
    /// by `weight` (facet area is customary).
    pub fn from_plane(n: Vec3, w: f64, weight: f64) -> Self {
        Self {
            a: weight * n.x * n.x,
            b: weight * n.x * n.y,
            c: weight * n.x * n.z,
            d: weight * n.x * w,
            e: weight * n.y * n.y,
            f: weight * n.y * n.z,
            g: weight * n.y * w,
            h: weight * n.z * n.z,
            i: weight * n.z * w,
            j: weight * w * w,
        }
    }

    /// Quadric of a triangle's supporting plane, area-weighted. Degenerate
    /// triangles contribute nothing.
    pub fn from_triangle(a: Point3, b: Point3, c: Point3) -> Self {
        let n = (b - a).cross(c - a);
        let len = n.norm();
        if len <= 0.0 {
            return Self::default();
        }
        let unit = n / len;
        let w = -unit.dot(a);
        Self::from_plane(unit, w, len * 0.5)
    }

    /// Squared-distance error of placing a vertex at `p`.
    pub fn error(&self, p: Point3) -> f64 {
        let (x, y, z) = (p.x, p.y, p.z);
        (self.a * x * x
            + self.e * y * y
            + self.h * z * z
            + 2.0 * (self.b * x * y + self.c * x * z + self.f * y * z)
            + 2.0 * (self.d * x + self.g * y + self.i * z)
            + self.j)
            .max(0.0)
    }

    /// Add.
    pub fn add(&self, other: &Quadric) -> Quadric {
        Quadric {
            a: self.a + other.a,
            b: self.b + other.b,
            c: self.c + other.c,
            d: self.d + other.d,
            e: self.e + other.e,
            f: self.f + other.f,
            g: self.g + other.g,
            h: self.h + other.h,
            i: self.i + other.i,
            j: self.j + other.j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_quadric_measures_squared_distance() {
        // Plane z = 0, unit weight.
        let q = Quadric::from_plane(Vec3::new(0.0, 0.0, 1.0), 0.0, 1.0);
        assert_eq!(q.error(Point3::new(5.0, -3.0, 0.0)), 0.0);
        assert!((q.error(Point3::new(1.0, 2.0, 3.0)) - 9.0).abs() < 1e-12);
        assert!((q.error(Point3::new(0.0, 0.0, -2.0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn offset_plane() {
        // Plane z = 4: n=(0,0,1), w=-4.
        let q = Quadric::from_plane(Vec3::new(0.0, 0.0, 1.0), -4.0, 1.0);
        assert!(q.error(Point3::new(9.0, 9.0, 4.0)) < 1e-12);
        assert!((q.error(Point3::new(0.0, 0.0, 6.0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quadrics_add() {
        // Planes z = 0 and x = 0: error = z^2 + x^2.
        let q1 = Quadric::from_plane(Vec3::new(0.0, 0.0, 1.0), 0.0, 1.0);
        let q2 = Quadric::from_plane(Vec3::new(1.0, 0.0, 0.0), 0.0, 1.0);
        let q = q1.add(&q2);
        assert!((q.error(Point3::new(3.0, 7.0, 4.0)) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_quadric_zero_on_its_plane() {
        let a = Point3::new(0.0, 0.0, 1.0);
        let b = Point3::new(2.0, 0.0, 1.0);
        let c = Point3::new(0.0, 2.0, 1.0);
        let q = Quadric::from_triangle(a, b, c);
        assert!(q.error(Point3::new(0.5, 0.5, 1.0)) < 1e-12);
        // Area-weighted: area = 2, so off-plane error = 2 * dz^2.
        assert!((q.error(Point3::new(0.0, 0.0, 3.0)) - 8.0).abs() < 1e-9);
        // Degenerate triangle is inert.
        let dq = Quadric::from_triangle(a, a, b);
        assert_eq!(dq, Quadric::default());
    }
}
