#![warn(missing_docs)]
//! Structured parallelism for batch query execution.
//!
//! The engine answers independent queries over shared immutable
//! structures, so batch throughput is an embarrassingly parallel map.
//! The vendored dependency registry has no real `rayon`, and the work
//! here does not need one: this crate provides a scoped, chunk-claiming
//! fork/join built from `std::thread::scope`, an atomic work cursor, and
//! an `mpsc` channel — nothing else.
//!
//! Design points:
//!
//! * **Scoped**: workers borrow the items and the closure directly; no
//!   `'static` bounds, no `Arc` wrapping of the engine.
//! * **Chunk-claiming**: workers grab contiguous index ranges from a
//!   shared atomic cursor. Chunks keep the cursor traffic negligible
//!   while still load-balancing uneven per-item costs (sk-NN query times
//!   vary by an order of magnitude with terrain locality).
//! * **Order-preserving**: results are returned in item order no matter
//!   which worker computed them, so a parallel map over a query batch is
//!   output-identical to the sequential loop.
//! * **Panic-transparent**: a panicking item panics the caller (via the
//!   scope join), it is not swallowed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Threads the host offers (`available_parallelism`), at least 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A fork/join pool configuration. The pool is *scoped*: threads live only
/// for the duration of each [`map`](Pool::map) call, so a `Pool` is just a
/// validated thread count and is trivially `Copy`.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// A pool sized to the host.
    pub fn host_sized() -> Self {
        Self::new(available_threads())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item, in parallel across the pool's workers,
    /// returning the results in item order. Equivalent to
    /// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` — the
    /// sequential loop is exactly what runs when the pool has one thread
    /// (or one item), so the two paths are trivially result-identical.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        par_map(self.threads, items, f)
    }
}

/// [`Pool::map`] as a free function: map `f` over `items` on `threads`
/// scoped workers, preserving item order in the result.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Chunks of ~len/(4*threads) balance cursor traffic against skewed
    // per-item costs; the `.max(1)` floor keeps short batches correct.
    let chunk = (items.len() / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let tx = tx.clone();
                let cursor = &cursor;
                let f = &f;
                s.spawn(move || loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        // A send can only fail if the receiver is gone,
                        // which means the caller is already unwinding.
                        let _ = tx.send((i, f(i, item)));
                    }
                })
            })
            .collect();
        // Join explicitly so a worker panic resurfaces with its original
        // payload instead of the scope's generic one.
        for w in workers {
            if let Err(payload) = w.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    drop(tx);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("worker produced every claimed item")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::RecvTimeoutError;
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn matches_sequential_map_in_order() {
        let items: Vec<u64> = (0..103).collect();
        let seq: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as u64).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let par = par_map(threads, &items, |i, x| x * 3 + i as u64);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(4, &[7u32], |i, x| *x + i as u32), vec![7]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map(32, &[1u32, 2, 3], |_, x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn every_index_claimed_exactly_once() {
        let hits = Mutex::new(vec![0u32; 257]);
        par_map(5, &[(); 257], |i, ()| {
            hits.lock().unwrap()[i] += 1;
        });
        assert!(hits.lock().unwrap().iter().all(|&h| h == 1));
    }

    /// Two items rendezvous through channels: each sends to the other and
    /// waits for the other's message. This only completes if the pool
    /// really runs items on concurrently live threads.
    #[test]
    fn items_run_concurrently() {
        let (tx_a, rx_a) = mpsc::channel::<()>();
        let (tx_b, rx_b) = mpsc::channel::<()>();
        let chans = [(tx_b, Mutex::new(rx_a)), (tx_a, Mutex::new(rx_b))];
        let oks = par_map(2, &chans, |_, (tx, rx)| {
            tx.send(()).unwrap();
            rx.lock().unwrap().recv_timeout(Duration::from_secs(10))
        });
        assert!(oks.iter().all(|r| !matches!(r, Err(RecvTimeoutError::Timeout))));
    }

    #[test]
    fn pool_wrapper_clamps_and_maps() {
        let p = Pool::new(0);
        assert_eq!(p.threads(), 1);
        assert_eq!(Pool::new(4).map(&[1u8, 2, 3], |_, x| x + 1), vec![2, 3, 4]);
        assert!(Pool::host_sized().threads() >= 1);
        assert!(available_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        par_map(2, &[0u32, 1, 2, 3], |i, _| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
