//! Deadline-aware admission lanes for the router, mirroring the shard
//! engines' own EDF-with-starvation-floor queue (`sknn-serve`): the
//! request with the least slack is dispatched to a worker first,
//! deadline-less requests stay FIFO among themselves and cannot be
//! starved past the floor, and queued requests can be withdrawn by
//! `(req_id, trace_id)` — the client-facing half of the cancellation
//! story whose shard-facing half is the speculative-leg CANCEL.
//!
//! Duplicated rather than shared with `sknn-serve` because the two
//! queues carry different job types (the shard's job is an engine op
//! bound to a micro-batcher; the router's is a raw query frame bound to
//! an orchestration worker) and the scheduling rule is ~40 lines.

use crate::router::RouterJob;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused. The job is handed back so the caller can
/// answer it with the right typed error.
pub(crate) enum PushError {
    /// The queue is at capacity; shed the job (`Overloaded`).
    Full(RouterJob),
    /// The lanes are closed (router draining); reject (`ShuttingDown`).
    Closed(RouterJob),
}

struct Inner {
    jobs: Vec<RouterJob>,
    closed: bool,
}

/// The shared admission queue. Producers are the per-connection
/// readers; consumers are the orchestration workers.
pub(crate) struct RouterLanes {
    inner: Mutex<Inner>,
    cond: Condvar,
    capacity: usize,
    floor: Duration,
}

impl RouterLanes {
    /// An empty queue bounded at `capacity` with the given starvation
    /// floor (a zero floor disables the floor — pure EDF).
    pub(crate) fn new(capacity: usize, floor: Duration) -> Self {
        Self {
            inner: Mutex::new(Inner { jobs: Vec::new(), closed: false }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
            floor,
        }
    }

    /// Offers a job; never blocks. On refusal the job comes back in the
    /// error so the caller can reply to it.
    pub(crate) fn try_push(&self, job: RouterJob) -> Result<(), PushError> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.closed {
            return Err(PushError::Closed(job));
        }
        if g.jobs.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        g.jobs.push(job);
        drop(g);
        self.cond.notify_one();
        Ok(())
    }

    /// Withdraws a queued job matching both ids. Returns the job — with
    /// its reply writer — when the cancel lands; `None` is a miss.
    pub(crate) fn cancel(&self, req_id: u64, trace_id: u64) -> Option<RouterJob> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let i = g.jobs.iter().position(|j| j.req_id == req_id && j.trace_id == trace_id)?;
        Some(g.jobs.remove(i))
    }

    /// Closes the lanes: future pushes fail with [`PushError::Closed`],
    /// queued jobs keep draining, and poppers see `None` once empty.
    pub(crate) fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.cond.notify_all();
    }

    /// Blocking pop: the scheduled-next job, or `None` once the lanes
    /// are closed and empty (a worker's exit condition).
    pub(crate) fn pop(&self) -> Option<RouterJob> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(i) = self.pick(&g.jobs) {
                return Some(g.jobs.remove(i));
            }
            if g.closed {
                return None;
            }
            g = self.cond.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The scheduling rule: starvation floor first, then EDF, then FIFO
    /// among the deadline-less.
    fn pick(&self, jobs: &[RouterJob]) -> Option<usize> {
        if jobs.is_empty() {
            return None;
        }
        let (oldest, job) =
            jobs.iter().enumerate().min_by_key(|(_, j)| j.enqueued).expect("non-empty");
        if !self.floor.is_zero() && job.enqueued.elapsed() >= self.floor {
            return Some(oldest);
        }
        jobs.iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| match (a.deadline, b.deadline) {
                (Some(x), Some(y)) => x.cmp(&y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => a.enqueued.cmp(&b.enqueued),
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{ReplyWriter, RouterJob};
    use sknn_serve::protocol::QueryFrame;
    use std::sync::Arc;
    use std::time::Instant;

    fn job(req_id: u64, deadline: Option<Instant>, enqueued: Instant) -> RouterJob {
        RouterJob {
            req_id,
            trace_id: req_id + 1000,
            query: QueryFrame {
                req_id,
                tri: 0,
                x: 0.0,
                y: 0.0,
                z: 0.0,
                k: 1,
                deadline_ms: 0,
                trace_id: 0,
            },
            deadline,
            enqueued,
            wire_version: 3,
            writer: Arc::new(ReplyWriter::null()),
        }
    }

    #[test]
    fn edf_with_floor_and_cancel() {
        let lanes = RouterLanes::new(8, Duration::from_secs(60));
        let t0 = Instant::now();
        lanes.try_push(job(1, Some(t0 + Duration::from_secs(30)), t0)).ok().unwrap();
        lanes.try_push(job(2, None, t0)).ok().unwrap();
        lanes.try_push(job(3, Some(t0 + Duration::from_secs(1)), t0)).ok().unwrap();
        assert!(lanes.cancel(2, 0).is_none(), "trace id must match");
        let withdrawn = lanes.cancel(2, 1002).unwrap();
        assert_eq!(withdrawn.req_id, 2);
        let order: Vec<u64> = (0..2).map(|_| lanes.pop().unwrap().req_id).collect();
        assert_eq!(order, vec![3, 1]);
        lanes.close();
        assert!(lanes.pop().is_none());
        assert!(matches!(lanes.try_push(job(4, None, t0)), Err(PushError::Closed(_))));
    }
}
